use crate::tables::{gf_mul, INV_SBOX, SBOX, T0, T1, T2, T3};

/// An AES-128 block, 16 bytes.
pub type Block = [u8; 16];

/// One table lookup performed during encryption, as seen by the memory
/// system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableLookup {
    /// Which table: 0–3 for the round T-tables, 4 for the last-round T4.
    pub table: u8,
    /// The 8-bit index into the table.
    pub index: u8,
}

/// The per-round table lookups one thread performs while encrypting one
/// block: rounds 1–9 do 16 T0–T3 lookups each; round 10 does 16 T4
/// lookups, one per ciphertext byte and **indexed by ciphertext byte
/// position** — exactly the ordering the correlation attack exploits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookupTrace {
    /// `rounds[r - 1]` holds round `r`'s 16 lookups, `r ∈ 1..=10`.
    pub rounds: Vec<[TableLookup; 16]>,
}

impl LookupTrace {
    /// The 16 last-round T4 indices, `t_j` for ciphertext byte `j`.
    ///
    /// # Panics
    ///
    /// Panics on an empty trace.
    pub fn last_round_indices(&self) -> [u8; 16] {
        let last = self.rounds.last().expect("trace covers at least one round");
        let mut out = [0u8; 16];
        for (j, l) in last.iter().enumerate() {
            debug_assert_eq!(l.table, 4);
            out[j] = l.index;
        }
        out
    }
}

/// An expanded AES-128 key schedule.
///
/// ```
/// use rcoal_aes::Aes128;
///
/// let key = [0u8; 16];
/// let aes = Aes128::new(&key);
/// let ct = aes.encrypt_block([0u8; 16]);
/// assert_eq!(aes.decrypt_block(ct), [0u8; 16]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Aes128 {
    round_keys: [u32; 44],
}

const RCON: [u32; 10] = [
    0x0100_0000,
    0x0200_0000,
    0x0400_0000,
    0x0800_0000,
    0x1000_0000,
    0x2000_0000,
    0x4000_0000,
    0x8000_0000,
    0x1b00_0000,
    0x3600_0000,
];

/// FIPS-197 key expansion for a key of `nk` 32-bit words into
/// `4 · (nr + 1)` round-key words.
fn expand_key(key: &[u8], nk: usize, nr: usize) -> Vec<u32> {
    debug_assert_eq!(key.len(), 4 * nk);
    let total = 4 * (nr + 1);
    let mut w = vec![0u32; total];
    for (i, word) in w.iter_mut().take(nk).enumerate() {
        *word = u32::from_be_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
    }
    for i in nk..total {
        let mut temp = w[i - 1];
        if i % nk == 0 {
            temp = sub_word(temp.rotate_left(8)) ^ RCON[i / nk - 1];
        } else if nk > 6 && i % nk == 4 {
            // AES-256's extra SubWord step.
            temp = sub_word(temp);
        }
        w[i] = w[i - nk] ^ temp;
    }
    w
}

/// The shared T-table encryption core for any AES variant: `nr` rounds
/// over the round keys `w`.
fn encrypt_rounds(
    w: &[u32],
    nr: usize,
    plaintext: Block,
    mut trace: Option<&mut LookupTrace>,
) -> Block {
    let mut s = [0u32; 4];
    for i in 0..4 {
        s[i] = u32::from_be_bytes([
            plaintext[4 * i],
            plaintext[4 * i + 1],
            plaintext[4 * i + 2],
            plaintext[4 * i + 3],
        ]) ^ w[i];
    }
    for r in 1..nr {
        let mut t = [0u32; 4];
        let mut lookups = [TableLookup { table: 0, index: 0 }; 16];
        for i in 0..4 {
            let i0 = (s[i] >> 24) as usize;
            let i1 = (s[(i + 1) % 4] >> 16) as usize & 0xff;
            let i2 = (s[(i + 2) % 4] >> 8) as usize & 0xff;
            let i3 = s[(i + 3) % 4] as usize & 0xff;
            t[i] = T0[i0] ^ T1[i1] ^ T2[i2] ^ T3[i3] ^ w[4 * r + i];
            lookups[4 * i] = TableLookup {
                table: 0,
                index: i0 as u8,
            };
            lookups[4 * i + 1] = TableLookup {
                table: 1,
                index: i1 as u8,
            };
            lookups[4 * i + 2] = TableLookup {
                table: 2,
                index: i2 as u8,
            };
            lookups[4 * i + 3] = TableLookup {
                table: 3,
                index: i3 as u8,
            };
        }
        if let Some(tr) = trace.as_deref_mut() {
            tr.rounds.push(lookups);
        }
        s = t;
    }
    // Last round: SubBytes + ShiftRows + AddRoundKey via T4. Lookup j
    // produces ciphertext byte j.
    let mut ct = [0u8; 16];
    let mut lookups = [TableLookup { table: 4, index: 0 }; 16];
    for j in 0..16 {
        let word = j / 4;
        let lane = j % 4;
        let src = s[(word + lane) % 4];
        let idx = (src >> (24 - 8 * lane)) as usize & 0xff;
        let key_byte = (w[4 * nr + word] >> (24 - 8 * lane)) as u8;
        ct[j] = SBOX[idx] ^ key_byte;
        lookups[j] = TableLookup {
            table: 4,
            index: idx as u8,
        };
    }
    if let Some(tr) = trace {
        tr.rounds.push(lookups);
    }
    ct
}

#[inline]
fn sub_word(w: u32) -> u32 {
    (u32::from(SBOX[(w >> 24) as usize]) << 24)
        | (u32::from(SBOX[(w >> 16) as usize & 0xff]) << 16)
        | (u32::from(SBOX[(w >> 8) as usize & 0xff]) << 8)
        | u32::from(SBOX[w as usize & 0xff])
}

impl Aes128 {
    /// Expands a 128-bit key into the 11-round key schedule.
    pub fn new(key: &[u8; 16]) -> Self {
        let w = expand_key(key, 4, 10);
        Aes128 {
            round_keys: w.try_into().expect("44 round-key words"),
        }
    }

    /// The 16-byte round key of round `r` (0 = whitening key, 10 = last).
    ///
    /// # Panics
    ///
    /// Panics if `r > 10`.
    pub fn round_key(&self, r: usize) -> Block {
        assert!(r <= 10, "AES-128 has rounds 0..=10");
        let mut out = [0u8; 16];
        for i in 0..4 {
            out[4 * i..4 * i + 4].copy_from_slice(&self.round_keys[4 * r + i].to_be_bytes());
        }
        out
    }

    /// The last round key — the attack's target.
    pub fn last_round_key(&self) -> Block {
        self.round_key(10)
    }

    /// Encrypts one block with the T-table implementation.
    pub fn encrypt_block(&self, plaintext: Block) -> Block {
        self.encrypt_internal(plaintext, None)
    }

    /// Encrypts one block, also recording every table lookup the T-table
    /// implementation performs — the memory-access trace of one GPU
    /// thread.
    pub fn encrypt_block_traced(&self, plaintext: Block) -> (Block, LookupTrace) {
        let mut trace = LookupTrace {
            rounds: Vec::with_capacity(10),
        };
        let ct = self.encrypt_internal(plaintext, Some(&mut trace));
        (ct, trace)
    }

    fn encrypt_internal(&self, plaintext: Block, trace: Option<&mut LookupTrace>) -> Block {
        encrypt_rounds(&self.round_keys, 10, plaintext, trace)
    }

    /// Decrypts one block (reference inverse cipher; not on the timing
    /// path, used for validation).
    pub fn decrypt_block(&self, ciphertext: Block) -> Block {
        let mut state = ciphertext;
        add_round_key(&mut state, &self.round_key(10));
        inv_shift_rows(&mut state);
        inv_sub_bytes(&mut state);
        for r in (1..10).rev() {
            add_round_key(&mut state, &self.round_key(r));
            inv_mix_columns(&mut state);
            inv_shift_rows(&mut state);
            inv_sub_bytes(&mut state);
        }
        add_round_key(&mut state, &self.round_key(0));
        state
    }
}

fn add_round_key(state: &mut Block, rk: &Block) {
    for (s, k) in state.iter_mut().zip(rk) {
        *s ^= k;
    }
}

fn inv_sub_bytes(state: &mut Block) {
    for s in state.iter_mut() {
        *s = INV_SBOX[*s as usize];
    }
}

/// State byte order is column-major: byte `4c + r` is row `r`, column `c`.
fn inv_shift_rows(state: &mut Block) {
    let old = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * c + r] = old[4 * ((c + 4 - r) % 4) + r];
        }
    }
}

fn inv_mix_columns(state: &mut Block) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] = gf_mul(col[0], 0x0e)
            ^ gf_mul(col[1], 0x0b)
            ^ gf_mul(col[2], 0x0d)
            ^ gf_mul(col[3], 0x09);
        state[4 * c + 1] = gf_mul(col[0], 0x09)
            ^ gf_mul(col[1], 0x0e)
            ^ gf_mul(col[2], 0x0b)
            ^ gf_mul(col[3], 0x0d);
        state[4 * c + 2] = gf_mul(col[0], 0x0d)
            ^ gf_mul(col[1], 0x09)
            ^ gf_mul(col[2], 0x0e)
            ^ gf_mul(col[3], 0x0b);
        state[4 * c + 3] = gf_mul(col[0], 0x0b)
            ^ gf_mul(col[1], 0x0d)
            ^ gf_mul(col[2], 0x09)
            ^ gf_mul(col[3], 0x0e);
    }
}

/// Recovers the last-round table index for ciphertext byte `j` given the
/// ciphertext byte and a (guessed) last-round key byte — Equation 3 of
/// the paper: `t_j = S⁻¹[c_j ⊕ k_j]`.
pub fn last_round_index(cipher_byte: u8, key_byte: u8) -> u8 {
    INV_SBOX[(cipher_byte ^ key_byte) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    fn block(s: &str) -> Block {
        hex(s).try_into().unwrap()
    }

    #[test]
    fn fips197_key_expansion() {
        // FIPS-197 Appendix A.1.
        let aes = Aes128::new(&block("2b7e151628aed2a6abf7158809cf4f3c"));
        assert_eq!(aes.round_keys[4], 0xa0fafe17);
        assert_eq!(aes.round_keys[43], 0xb6630ca6);
        assert_eq!(aes.round_key(10), block("d014f9a8c9ee2589e13f0cc8b6630ca6"));
    }

    #[test]
    fn fips197_appendix_b_vector() {
        let aes = Aes128::new(&block("2b7e151628aed2a6abf7158809cf4f3c"));
        let ct = aes.encrypt_block(block("3243f6a8885a308d313198a2e0370734"));
        assert_eq!(ct, block("3925841d02dc09fbdc118597196a0b32"));
    }

    #[test]
    fn fips197_appendix_c_vector() {
        let aes = Aes128::new(&block("000102030405060708090a0b0c0d0e0f"));
        let ct = aes.encrypt_block(block("00112233445566778899aabbccddeeff"));
        assert_eq!(ct, block("69c4e0d86a7b0430d8cdb78070b4c55a"));
        assert_eq!(
            aes.decrypt_block(ct),
            block("00112233445566778899aabbccddeeff")
        );
    }

    #[test]
    fn decrypt_inverts_encrypt() {
        let aes = Aes128::new(&block("2b7e151628aed2a6abf7158809cf4f3c"));
        for i in 0..32u8 {
            let mut pt = [0u8; 16];
            for (k, b) in pt.iter_mut().enumerate() {
                *b = i.wrapping_mul(31).wrapping_add(k as u8).wrapping_mul(17);
            }
            assert_eq!(aes.decrypt_block(aes.encrypt_block(pt)), pt);
        }
    }

    #[test]
    fn traced_encryption_matches_untraced() {
        let aes = Aes128::new(&block("000102030405060708090a0b0c0d0e0f"));
        let pt = block("00112233445566778899aabbccddeeff");
        let (ct, trace) = aes.encrypt_block_traced(pt);
        assert_eq!(ct, aes.encrypt_block(pt));
        assert_eq!(trace.rounds.len(), 10);
        for r in 0..9 {
            for (pos, l) in trace.rounds[r].iter().enumerate() {
                assert_eq!(l.table as usize, pos % 4);
            }
        }
        assert!(trace.rounds[9].iter().all(|l| l.table == 4));
    }

    #[test]
    fn equation_3_recovers_last_round_indices() {
        // The invariant the whole attack rests on:
        // t_j == INV_SBOX[c_j ^ k_j] for every byte j.
        let aes = Aes128::new(&block("2b7e151628aed2a6abf7158809cf4f3c"));
        let k10 = aes.last_round_key();
        for seed in 0..20u8 {
            let mut pt = [0u8; 16];
            for (i, b) in pt.iter_mut().enumerate() {
                *b = seed.wrapping_mul(13).wrapping_add(i as u8).wrapping_mul(7);
            }
            let (ct, trace) = aes.encrypt_block_traced(pt);
            let t = trace.last_round_indices();
            for j in 0..16 {
                assert_eq!(
                    t[j],
                    last_round_index(ct[j], k10[j]),
                    "byte {j} of seed {seed}"
                );
            }
        }
    }

    #[test]
    fn round_key_bounds() {
        let aes = Aes128::new(&[0u8; 16]);
        let _ = aes.round_key(0);
        let _ = aes.round_key(10);
        assert!(std::panic::catch_unwind(|| aes.round_key(11)).is_err());
    }
}

/// An expanded AES-192 key schedule (12 rounds).
///
/// The paper evaluates AES-128 "without losing generality"; the larger
/// variants share the vulnerable T4 last round, so the same attack and
/// defenses apply. Provided for cipher completeness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Aes192 {
    round_keys: Vec<u32>,
}

impl Aes192 {
    /// Expands a 192-bit key.
    pub fn new(key: &[u8; 24]) -> Self {
        Aes192 {
            round_keys: expand_key(key, 6, 12),
        }
    }

    /// Encrypts one block.
    pub fn encrypt_block(&self, plaintext: Block) -> Block {
        encrypt_rounds(&self.round_keys, 12, plaintext, None)
    }

    /// Encrypts one block, recording every table lookup (12 rounds of 16).
    pub fn encrypt_block_traced(&self, plaintext: Block) -> (Block, LookupTrace) {
        let mut trace = LookupTrace {
            rounds: Vec::with_capacity(12),
        };
        let ct = encrypt_rounds(&self.round_keys, 12, plaintext, Some(&mut trace));
        (ct, trace)
    }

    /// The last (12th) round key — the analogue of the AES-128 attack
    /// target.
    pub fn last_round_key(&self) -> Block {
        round_key_at(&self.round_keys, 12)
    }
}

/// An expanded AES-256 key schedule (14 rounds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Aes256 {
    round_keys: Vec<u32>,
}

impl Aes256 {
    /// Expands a 256-bit key.
    pub fn new(key: &[u8; 32]) -> Self {
        Aes256 {
            round_keys: expand_key(key, 8, 14),
        }
    }

    /// Encrypts one block.
    pub fn encrypt_block(&self, plaintext: Block) -> Block {
        encrypt_rounds(&self.round_keys, 14, plaintext, None)
    }

    /// Encrypts one block, recording every table lookup (14 rounds of 16).
    pub fn encrypt_block_traced(&self, plaintext: Block) -> (Block, LookupTrace) {
        let mut trace = LookupTrace {
            rounds: Vec::with_capacity(14),
        };
        let ct = encrypt_rounds(&self.round_keys, 14, plaintext, Some(&mut trace));
        (ct, trace)
    }

    /// The last (14th) round key.
    pub fn last_round_key(&self) -> Block {
        round_key_at(&self.round_keys, 14)
    }
}

fn round_key_at(w: &[u32], r: usize) -> Block {
    let mut out = [0u8; 16];
    for i in 0..4 {
        out[4 * i..4 * i + 4].copy_from_slice(&w[4 * r + i].to_be_bytes());
    }
    out
}

#[cfg(test)]
mod large_key_tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn fips197_appendix_c2_aes192() {
        let key: [u8; 24] = hex("000102030405060708090a0b0c0d0e0f1011121314151617")
            .try_into()
            .unwrap();
        let pt: Block = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        let aes = Aes192::new(&key);
        assert_eq!(
            aes.encrypt_block(pt).to_vec(),
            hex("dda97ca4864cdfe06eaf70a0ec0d7191")
        );
    }

    #[test]
    fn fips197_appendix_c3_aes256() {
        let key: [u8; 32] = hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
            .try_into()
            .unwrap();
        let pt: Block = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        let aes = Aes256::new(&key);
        assert_eq!(
            aes.encrypt_block(pt).to_vec(),
            hex("8ea2b7ca516745bfeafc49904b496089")
        );
    }

    #[test]
    fn large_variants_trace_their_rounds() {
        let aes192 = Aes192::new(&[7u8; 24]);
        let (ct, trace) = aes192.encrypt_block_traced([3u8; 16]);
        assert_eq!(ct, aes192.encrypt_block([3u8; 16]));
        assert_eq!(trace.rounds.len(), 12);
        assert!(trace.rounds[11].iter().all(|l| l.table == 4));

        let aes256 = Aes256::new(&[9u8; 32]);
        let (_, trace) = aes256.encrypt_block_traced([4u8; 16]);
        assert_eq!(trace.rounds.len(), 14);
    }

    #[test]
    fn equation_3_holds_for_larger_keys_too() {
        // The last-round relation the attack exploits is key-size
        // independent: t_j = S⁻¹[c_j ⊕ k_j].
        let aes = Aes256::new(&[0x42u8; 32]);
        let k_last = aes.last_round_key();
        for seed in 0..8u8 {
            let pt = [seed.wrapping_mul(29); 16];
            let (ct, trace) = aes.encrypt_block_traced(pt);
            let t = trace.last_round_indices();
            for j in 0..16 {
                assert_eq!(t[j], last_round_index(ct[j], k_last[j]));
            }
        }
    }
}

impl Aes128 {
    /// Reconstructs the full key schedule — and thus the original private
    /// key — from the *last* round key alone.
    ///
    /// This is the final step of the correlation timing attack: the
    /// paper targets the last round key "since ... key expansion is
    /// invertible (i.e., it is possible to derive the original private
    /// key from any round key)" (§II-C, citing Neve & Seifert). The
    /// expansion recurrence `w[i] = w[i-4] ⊕ temp(w[i-1])` solves
    /// backwards as `w[i-4] = w[i] ⊕ temp(w[i-1])`.
    pub fn from_last_round_key(k10: &Block) -> Self {
        let mut w = [0u32; 44];
        for i in 0..4 {
            w[40 + i] =
                u32::from_be_bytes([k10[4 * i], k10[4 * i + 1], k10[4 * i + 2], k10[4 * i + 3]]);
        }
        for i in (4..44).rev().map(|i| i - 4) {
            // Recover w[i] from w[i+4] and w[i+3].
            let mut temp = w[i + 3];
            if (i + 4) % 4 == 0 {
                temp = sub_word(temp.rotate_left(8)) ^ RCON[(i + 4) / 4 - 1];
            }
            w[i] = w[i + 4] ^ temp;
        }
        Aes128 { round_keys: w }
    }

    /// The original 128-bit private key (round-0 key).
    pub fn master_key(&self) -> Block {
        self.round_key(0)
    }
}

#[cfg(test)]
mod inversion_tests {
    use super::*;

    #[test]
    fn last_round_key_recovers_the_master_key() {
        let key = *b"top secret key!!";
        let aes = Aes128::new(&key);
        let recovered = Aes128::from_last_round_key(&aes.last_round_key());
        assert_eq!(recovered.master_key(), key);
        assert_eq!(recovered, aes, "entire schedule matches");
    }

    #[test]
    fn inversion_roundtrips_for_many_keys() {
        for seed in 0..50u8 {
            let mut key = [0u8; 16];
            for (i, b) in key.iter_mut().enumerate() {
                *b = seed
                    .wrapping_mul(37)
                    .wrapping_add(i as u8)
                    .wrapping_mul(101);
            }
            let aes = Aes128::new(&key);
            let recovered = Aes128::from_last_round_key(&aes.last_round_key());
            assert_eq!(recovered.master_key(), key, "seed {seed}");
            // And the recovered schedule encrypts identically.
            assert_eq!(
                recovered.encrypt_block([seed; 16]),
                aes.encrypt_block([seed; 16])
            );
        }
    }

    #[test]
    fn wrong_last_round_key_gives_wrong_master_key() {
        let aes = Aes128::new(b"top secret key!!");
        let mut k10 = aes.last_round_key();
        k10[0] ^= 1;
        let recovered = Aes128::from_last_round_key(&k10);
        assert_ne!(recovered.master_key(), *b"top secret key!!");
    }
}
