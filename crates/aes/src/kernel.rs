use crate::cipher::{Aes128, Block, LookupTrace};
use rcoal_gpu_sim::{Kernel, TraceInstr, WarpTrace};

/// Memory layout of the AES kernel's tables and buffers in the simulated
/// global address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableLayout {
    /// Base address of T0; T1–T4 follow at 1 KiB strides.
    pub table_base: u64,
    /// Bytes per table entry (4 for `u32` T-tables).
    pub entry_size: u64,
    /// Base address of the plaintext buffer.
    pub input_base: u64,
    /// Base address of the ciphertext buffer.
    pub output_base: u64,
}

impl Default for TableLayout {
    fn default() -> Self {
        TableLayout {
            // 256-aligned so each 1 KiB table occupies whole interleave
            // chunks, matching how cudaMalloc'd constants land.
            table_base: 0x1_0000,
            entry_size: 4,
            input_base: 0x10_0000,
            output_base: 0x20_0000,
        }
    }
}

impl TableLayout {
    /// Address of entry `index` of table `table` (0–3 = T-tables, 4 = T4).
    pub fn lookup_addr(&self, table: u8, index: u8) -> u64 {
        self.table_base + u64::from(table) * 1024 + u64::from(index) * self.entry_size
    }
}

/// Statistics tag carried by last-round (T4) loads: `ROUND_TAG_BASE + j`
/// tags the load for ciphertext byte `j`; rounds 1–9 use tags 1–9 and the
/// input load uses tag 0.
pub const LAST_ROUND_TAG_BASE: u16 = 16;

/// Tag of the ciphertext store at the very end of the kernel.
pub const OUTPUT_TAG: u16 = 15;

/// Statistics tag of round `r`'s loads (`r ∈ 1..=9`), or of the 16
/// per-byte last-round loads for `r = 10`.
pub fn round_tags(r: u16) -> std::ops::Range<u16> {
    if r == 10 {
        LAST_ROUND_TAG_BASE..LAST_ROUND_TAG_BASE + 16
    } else {
        r..r + 1
    }
}

/// The GPU AES-128 encryption kernel model.
///
/// Mirrors the CUDA implementation the paper attacks (§II-B): the
/// plaintext is split into 16-byte *lines*, one line per thread, 32
/// threads per warp, line-to-thread mapping sequential. All threads of a
/// warp run in lock step, so lookup `j` of round `r` across the warp forms
/// one warp-wide load that the coalescing unit merges.
///
/// ```
/// use rcoal_aes::AesGpuKernel;
/// use rcoal_gpu_sim::Kernel;
///
/// let kernel = AesGpuKernel::new(&[0u8; 16], vec![[0u8; 16]; 64], 32);
/// assert_eq!(kernel.num_warps(), 2);
/// assert_eq!(kernel.ciphertexts().len(), 64);
/// ```
#[derive(Debug, Clone)]
pub struct AesGpuKernel {
    aes: Aes128,
    lines: Vec<Block>,
    ciphertexts: Vec<Block>,
    traces: Vec<LookupTrace>,
    /// Per-warp instruction traces, generated once at construction;
    /// [`Kernel::trace`] hands out borrows so each of the hundreds of
    /// launches per experiment copies nothing.
    warp_traces: Vec<WarpTrace>,
    warp_size: usize,
    layout: TableLayout,
    /// ALU cycles between dependent lookups.
    compute_per_lookup: u32,
    /// ALU cycles of key-XOR / bookkeeping per round.
    round_overhead: u32,
}

impl AesGpuKernel {
    /// Builds the kernel for `lines` of plaintext under `key`, encrypting
    /// each line eagerly so ciphertexts and memory traces are available
    /// up front.
    pub fn new(key: &[u8; 16], lines: Vec<Block>, warp_size: usize) -> Self {
        Self::with_layout(key, lines, warp_size, TableLayout::default())
    }

    /// Like [`AesGpuKernel::new`] with an explicit memory layout.
    pub fn with_layout(
        key: &[u8; 16],
        lines: Vec<Block>,
        warp_size: usize,
        layout: TableLayout,
    ) -> Self {
        let aes = Aes128::new(key);
        let mut ciphertexts = Vec::with_capacity(lines.len());
        let mut traces = Vec::with_capacity(lines.len());
        for &line in &lines {
            let (ct, tr) = aes.encrypt_block_traced(line);
            ciphertexts.push(ct);
            traces.push(tr);
        }
        let mut kernel = AesGpuKernel {
            aes,
            lines,
            ciphertexts,
            traces,
            warp_traces: Vec::new(),
            warp_size: warp_size.max(1),
            layout,
            compute_per_lookup: 2,
            round_overhead: 8,
        };
        kernel.warp_traces = (0..kernel.num_warps())
            .map(|w| kernel.build_trace(w))
            .collect();
        kernel
    }

    /// The expanded key schedule in use.
    pub fn aes(&self) -> &Aes128 {
        &self.aes
    }

    /// Ciphertext of every line, in line order.
    pub fn ciphertexts(&self) -> &[Block] {
        &self.ciphertexts
    }

    /// Plaintext lines.
    pub fn lines(&self) -> &[Block] {
        &self.lines
    }

    /// The memory layout.
    pub fn layout(&self) -> &TableLayout {
        &self.layout
    }

    /// Number of threads per warp.
    pub fn warp_size(&self) -> usize {
        self.warp_size
    }

    /// Last-round T4 indices `t_j` per line: `indices[line][j]`.
    pub fn last_round_indices(&self) -> Vec<[u8; 16]> {
        self.traces
            .iter()
            .map(LookupTrace::last_round_indices)
            .collect()
    }

    /// Global line indices handled by warp `warp_id`.
    pub fn warp_lines(&self, warp_id: usize) -> std::ops::Range<usize> {
        let start = warp_id * self.warp_size;
        start..(start + self.warp_size).min(self.lines.len())
    }

    fn build_trace(&self, warp_id: usize) -> WarpTrace {
        let lines = self.warp_lines(warp_id);
        let width = lines.len();
        let mut trace = WarpTrace::default();

        // Load the plaintext lines (16 B per thread, consecutive lines —
        // coalesces well, like the real kernel's global reads).
        let input: Vec<Option<u64>> = lines
            .clone()
            .map(|l| Some(self.layout.input_base + l as u64 * 16))
            .collect();
        trace.push(TraceInstr::load_tagged(input, 0));
        trace.push(TraceInstr::compute(self.round_overhead));

        for r in 1..=10u16 {
            for j in 0..16usize {
                let addrs: Vec<Option<u64>> = lines
                    .clone()
                    .map(|l| {
                        let lk = self.traces[l].rounds[usize::from(r) - 1][j];
                        Some(self.layout.lookup_addr(lk.table, lk.index))
                    })
                    .collect();
                let tag = if r == 10 {
                    LAST_ROUND_TAG_BASE + j as u16
                } else {
                    r
                };
                trace.push(TraceInstr::load_tagged(addrs, tag));
                trace.push(TraceInstr::compute(self.compute_per_lookup));
            }
            trace.push(TraceInstr::compute(self.round_overhead));
            trace.push(TraceInstr::RoundMark { round: r });
        }

        // Store the ciphertext lines.
        let output: Vec<Option<u64>> = lines
            .clone()
            .map(|l| Some(self.layout.output_base + l as u64 * 16))
            .collect();
        trace.push(TraceInstr::load_tagged(output, OUTPUT_TAG));
        debug_assert_eq!(width, trace.instrs().len().min(width).min(width).max(width));
        trace
    }
}

impl Kernel for AesGpuKernel {
    fn num_warps(&self) -> usize {
        self.lines.len().div_ceil(self.warp_size)
    }

    fn warp_width(&self, warp_id: usize) -> usize {
        self.warp_lines(warp_id).len()
    }

    fn trace(&self, warp_id: usize) -> &WarpTrace {
        &self.warp_traces[warp_id]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcoal_gpu_sim::TraceInstr;

    fn kernel(n_lines: usize) -> AesGpuKernel {
        let lines: Vec<Block> = (0..n_lines)
            .map(|i| {
                let mut b = [0u8; 16];
                for (k, x) in b.iter_mut().enumerate() {
                    *x = (i * 31 + k * 7) as u8;
                }
                b
            })
            .collect();
        AesGpuKernel::new(b"rcoal-test-key!!", lines, 32)
    }

    #[test]
    fn warp_partitioning() {
        let k = kernel(100);
        assert_eq!(k.num_warps(), 4);
        assert_eq!(k.warp_width(0), 32);
        assert_eq!(k.warp_width(3), 4, "partial last warp");
        assert_eq!(k.warp_lines(3), 96..100);
    }

    #[test]
    fn ciphertexts_match_direct_encryption() {
        let k = kernel(8);
        let aes = Aes128::new(b"rcoal-test-key!!");
        for (line, ct) in k.lines().iter().zip(k.ciphertexts()) {
            assert_eq!(aes.encrypt_block(*line), *ct);
        }
    }

    #[test]
    fn trace_has_161_loads_per_warp() {
        let k = kernel(32);
        let t = k.trace(0);
        let loads = t
            .instrs()
            .iter()
            .filter(|i| matches!(i, TraceInstr::Load { .. }))
            .count();
        // 1 input + 160 table lookups + 1 output store.
        assert_eq!(loads, 162);
        let marks = t
            .instrs()
            .iter()
            .filter(|i| matches!(i, TraceInstr::RoundMark { .. }))
            .count();
        assert_eq!(marks, 10);
    }

    #[test]
    fn last_round_loads_hit_t4_with_per_byte_tags() {
        let k = kernel(32);
        let t = k.trace(0);
        let t4_lo = k.layout().lookup_addr(4, 0);
        let t4_hi = k.layout().lookup_addr(4, 255);
        let mut seen_tags = Vec::new();
        for instr in t.instrs() {
            if let TraceInstr::Load { addrs, tag } = instr {
                if *tag >= LAST_ROUND_TAG_BASE {
                    seen_tags.push(*tag);
                    for a in addrs.iter().flatten() {
                        assert!(
                            (t4_lo..=t4_hi).contains(a),
                            "last-round load outside T4: {a:#x}"
                        );
                    }
                }
            }
        }
        let expect: Vec<u16> = (0..16).map(|j| LAST_ROUND_TAG_BASE + j).collect();
        assert_eq!(seen_tags, expect);
    }

    #[test]
    fn last_round_addresses_encode_t_j() {
        let k = kernel(32);
        let t = k.trace(0);
        let indices = k.last_round_indices();
        for instr in t.instrs() {
            if let TraceInstr::Load { addrs, tag } = instr {
                if *tag >= LAST_ROUND_TAG_BASE {
                    let j = usize::from(tag - LAST_ROUND_TAG_BASE);
                    for (lane, a) in addrs.iter().enumerate() {
                        let a = a.unwrap();
                        let idx = ((a - k.layout().lookup_addr(4, 0)) / 4) as u8;
                        assert_eq!(idx, indices[lane][j]);
                    }
                }
            }
        }
    }

    #[test]
    fn round_tags_helper() {
        assert_eq!(round_tags(3), 3..4);
        assert_eq!(round_tags(10), 16..32);
    }

    #[test]
    fn partial_warp_trace_has_partial_lanes() {
        let k = kernel(40);
        let t = k.trace(1);
        if let TraceInstr::Load { addrs, .. } = &t.instrs()[0] {
            assert_eq!(addrs.len(), 8);
        } else {
            panic!("first instruction should be the input load");
        }
    }
}
