//! # rcoal-aes
//!
//! AES-128 and its GPU execution model for the RCoal reproduction.
//!
//! Three layers:
//!
//! * [`tables`] — the S-box, inverse S-box and T-tables, generated at
//!   compile time from the GF(2⁸) field definition.
//! * [`Aes128`] — a T-table AES-128 implementation (FIPS-197-validated)
//!   that can *trace* every table lookup it performs.
//! * [`AesGpuKernel`] — the CUDA-style kernel model the paper attacks:
//!   one plaintext line per thread, 32 threads per warp in lock step, so
//!   each table lookup becomes a warp-wide load for the coalescing unit.
//!
//! The timing channel lives in the last round: lookup `j` uses index
//! `t_j = S⁻¹[c_j ⊕ k_j]` ([`last_round_index`]), so the number of
//! coalesced accesses is a deterministic function of ciphertext byte `j`
//! and last-round key byte `k_j` — which is what `rcoal-attack` exploits
//! and the subwarp mechanisms in `rcoal-core` randomize.

mod cipher;
mod kernel;
pub mod tables;

pub use cipher::{last_round_index, Aes128, Aes192, Aes256, Block, LookupTrace, TableLookup};
pub use kernel::{round_tags, AesGpuKernel, TableLayout, LAST_ROUND_TAG_BASE, OUTPUT_TAG};
