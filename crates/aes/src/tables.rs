//! AES lookup tables, generated at compile time from the GF(2⁸) field
//! definition rather than transcribed, so they are correct by
//! construction (and verified against FIPS-197 vectors in tests).

/// Multiplies two elements of GF(2⁸) modulo the AES polynomial x⁸+x⁴+x³+x+1.
pub const fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    while b != 0 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
    }
    p
}

/// Multiplicative inverse in GF(2⁸), with `gf_inv(0) = 0` by convention.
pub const fn gf_inv(a: u8) -> u8 {
    if a == 0 {
        return 0;
    }
    let mut x = 1u8;
    loop {
        if gf_mul(a, x) == 1 {
            return x;
        }
        x = x.wrapping_add(1);
    }
}

const fn affine(b: u8) -> u8 {
    b ^ b.rotate_left(1) ^ b.rotate_left(2) ^ b.rotate_left(3) ^ b.rotate_left(4) ^ 0x63
}

const fn build_sbox() -> [u8; 256] {
    let mut t = [0u8; 256];
    let mut i = 0usize;
    while i < 256 {
        t[i] = affine(gf_inv(i as u8));
        i += 1;
    }
    t
}

const fn build_inv_sbox(sbox: &[u8; 256]) -> [u8; 256] {
    let mut t = [0u8; 256];
    let mut i = 0usize;
    while i < 256 {
        t[sbox[i] as usize] = i as u8;
        i += 1;
    }
    t
}

const fn build_t0(sbox: &[u8; 256]) -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let s = sbox[i];
        let s2 = gf_mul(s, 2);
        let s3 = gf_mul(s, 3);
        t[i] = ((s2 as u32) << 24) | ((s as u32) << 16) | ((s as u32) << 8) | (s3 as u32);
        i += 1;
    }
    t
}

const fn rotate_table(src: &[u32; 256], bits: u32) -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        t[i] = src[i].rotate_right(bits);
        i += 1;
    }
    t
}

const fn build_t4(sbox: &[u8; 256]) -> [u32; 256] {
    // The last-round table used by GPU AES implementations: S-box output
    // replicated into all four byte lanes so any byte can be masked out.
    let mut t = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let s = sbox[i] as u32;
        t[i] = (s << 24) | (s << 16) | (s << 8) | s;
        i += 1;
    }
    t
}

/// The AES S-box.
pub const SBOX: [u8; 256] = build_sbox();
/// The inverse AES S-box (`INV_SBOX[SBOX[x]] == x`).
pub const INV_SBOX: [u8; 256] = build_inv_sbox(&SBOX);
/// Round-function T-table for byte lane 0: `[2·S, S, S, 3·S]`.
pub const T0: [u32; 256] = build_t0(&SBOX);
/// Round-function T-table for byte lane 1 (T0 rotated right 8 bits).
pub const T1: [u32; 256] = rotate_table(&T0, 8);
/// Round-function T-table for byte lane 2 (T0 rotated right 16 bits).
pub const T2: [u32; 256] = rotate_table(&T0, 16);
/// Round-function T-table for byte lane 3 (T0 rotated right 24 bits).
pub const T3: [u32; 256] = rotate_table(&T0, 24);
/// Last-round table (replicated S-box); the table the timing attack
/// targets. 256 × 4 B = 1 KiB, i.e. 16 blocks of 64 B.
pub const T4: [u32; 256] = build_t4(&SBOX);

/// Number of 64-byte memory blocks the 1 KiB T4 table spans (`R` in the
/// paper's analysis).
pub const T4_BLOCKS: usize = 16;

/// Table elements per 64-byte memory block (the paper's "16 consecutive
/// table elements are mapped sequentially to the same memory block").
pub const ELEMS_PER_BLOCK: usize = 16;

/// Memory block index of a T4 lookup (`index >> 4`).
pub const fn t4_block(index: u8) -> u8 {
    index >> 4
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sbox_known_values() {
        // FIPS-197 Figure 7.
        assert_eq!(SBOX[0x00], 0x63);
        assert_eq!(SBOX[0x01], 0x7c);
        assert_eq!(SBOX[0x53], 0xed);
        assert_eq!(SBOX[0xff], 0x16);
        assert_eq!(SBOX[0x10], 0xca);
        assert_eq!(SBOX[0x9a], 0xb8);
    }

    #[test]
    fn inv_sbox_inverts_sbox() {
        for i in 0..256 {
            assert_eq!(INV_SBOX[SBOX[i] as usize] as usize, i);
            assert_eq!(SBOX[INV_SBOX[i] as usize] as usize, i);
        }
    }

    #[test]
    fn sbox_is_a_permutation() {
        let mut seen = [false; 256];
        for &s in SBOX.iter() {
            assert!(!seen[s as usize]);
            seen[s as usize] = true;
        }
    }

    #[test]
    fn gf_mul_basics() {
        assert_eq!(gf_mul(0x57, 0x83), 0xc1); // FIPS-197 §4.2 example
        assert_eq!(gf_mul(0x57, 0x13), 0xfe);
        assert_eq!(gf_mul(1, 0xab), 0xab);
        assert_eq!(gf_mul(0, 0xab), 0);
    }

    #[test]
    fn gf_inv_is_inverse() {
        for a in 1..=255u8 {
            assert_eq!(gf_mul(a, gf_inv(a)), 1, "inverse of {a:#x}");
        }
        assert_eq!(gf_inv(0), 0);
    }

    #[test]
    fn t_tables_are_rotations_with_correct_lanes() {
        for i in 0..256 {
            let s = SBOX[i] as u32;
            let s2 = gf_mul(SBOX[i], 2) as u32;
            let s3 = gf_mul(SBOX[i], 3) as u32;
            assert_eq!(T0[i], (s2 << 24) | (s << 16) | (s << 8) | s3);
            assert_eq!(T1[i], T0[i].rotate_right(8));
            assert_eq!(T2[i], T0[i].rotate_right(16));
            assert_eq!(T3[i], T0[i].rotate_right(24));
            assert_eq!(T4[i], s * 0x0101_0101);
        }
    }

    #[test]
    fn t4_block_mapping() {
        assert_eq!(t4_block(0x00), 0);
        assert_eq!(t4_block(0x0f), 0);
        assert_eq!(t4_block(0x10), 1);
        assert_eq!(t4_block(0xff), 15);
        assert_eq!(T4_BLOCKS * ELEMS_PER_BLOCK, 256);
    }
}
