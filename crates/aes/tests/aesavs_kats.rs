//! NIST AESAVS-style known-answer tests plus round-trip properties.
//!
//! The expected values come from a reference AES implemented here from
//! first principles: the S-box is *computed* (GF(2^8) inversion by
//! exponentiation plus the affine map) rather than tabulated, rounds use
//! the textbook SubBytes/ShiftRows/MixColumns operations, and key
//! expansion follows FIPS-197 §5.2 directly. The production cipher in
//! `rcoal-aes` is T-table based — the whole point of the paper's attack
//! surface — so agreement between the two across the AESAVS varying-key
//! and varying-text tables is a genuine differential check, anchored to
//! the published AESAVS/FIPS-197 vectors below.

use rcoal_aes::{Aes128, Aes192, Aes256, Block};
use rcoal_rng::{Rng, SeedableRng, StdRng};

// ---------------------------------------------------------------------------
// Reference AES from first principles (no tables shared with the crate).
// ---------------------------------------------------------------------------

/// GF(2^8) multiplication modulo the AES polynomial x^8+x^4+x^3+x+1.
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
    }
    p
}

/// Multiplicative inverse in GF(2^8): a^254 (0 maps to 0).
fn ginv(a: u8) -> u8 {
    // 254 = 0b1111_1110, square-and-multiply.
    let mut result = 1u8;
    let mut base = a;
    let mut exp = 254u32;
    while exp > 0 {
        if exp & 1 != 0 {
            result = gmul(result, base);
        }
        base = gmul(base, base);
        exp >>= 1;
    }
    result
}

/// The AES S-box computed from its definition: affine(x^-1).
fn sbox(x: u8) -> u8 {
    let b = ginv(x);
    b ^ b.rotate_left(1) ^ b.rotate_left(2) ^ b.rotate_left(3) ^ b.rotate_left(4) ^ 0x63
}

fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = sbox(*b);
    }
}

/// State is column-major: byte `r + 4c` is row `r`, column `c`.
fn shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[r + 4 * c] = s[r + 4 * ((c + r) % 4)];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] = gmul(col[0], 2) ^ gmul(col[1], 3) ^ col[2] ^ col[3];
        state[4 * c + 1] = col[0] ^ gmul(col[1], 2) ^ gmul(col[2], 3) ^ col[3];
        state[4 * c + 2] = col[0] ^ col[1] ^ gmul(col[2], 2) ^ gmul(col[3], 3);
        state[4 * c + 3] = gmul(col[0], 3) ^ col[1] ^ col[2] ^ gmul(col[3], 2);
    }
}

fn add_round_key(state: &mut [u8; 16], rk: &[u8]) {
    for (b, k) in state.iter_mut().zip(rk) {
        *b ^= k;
    }
}

/// FIPS-197 §5.2 key expansion for Nk ∈ {4, 6, 8}.
fn expand_key(key: &[u8], nk: usize, nr: usize) -> Vec<u8> {
    let mut w = key.to_vec();
    let mut rcon = 1u8;
    for i in nk..4 * (nr + 1) {
        let mut t = [
            w[4 * (i - 1)],
            w[4 * (i - 1) + 1],
            w[4 * (i - 1) + 2],
            w[4 * (i - 1) + 3],
        ];
        if i % nk == 0 {
            t.rotate_left(1);
            for b in t.iter_mut() {
                *b = sbox(*b);
            }
            t[0] ^= rcon;
            rcon = gmul(rcon, 2);
        } else if nk > 6 && i % nk == 4 {
            for b in t.iter_mut() {
                *b = sbox(*b);
            }
        }
        for j in 0..4 {
            w.push(w[4 * (i - nk) + j] ^ t[j]);
        }
    }
    w
}

/// Textbook AES encryption for any standard key size.
fn reference_encrypt(key: &[u8], plaintext: Block) -> Block {
    let (nk, nr) = match key.len() {
        16 => (4, 10),
        24 => (6, 12),
        32 => (8, 14),
        n => panic!("unsupported key length {n}"),
    };
    let rks = expand_key(key, nk, nr);
    let mut state = plaintext;
    add_round_key(&mut state, &rks[..16]);
    for round in 1..nr {
        sub_bytes(&mut state);
        shift_rows(&mut state);
        mix_columns(&mut state);
        add_round_key(&mut state, &rks[16 * round..16 * round + 16]);
    }
    sub_bytes(&mut state);
    shift_rows(&mut state);
    add_round_key(&mut state, &rks[16 * nr..16 * nr + 16]);
    state
}

fn hex(block: &Block) -> String {
    block.iter().map(|b| format!("{b:02x}")).collect()
}

/// A 128-bit value with the top `bits` bits set — the AESAVS VarTxt /
/// VarKey pattern.
fn leading_ones(bits: usize) -> Block {
    let mut out = [0u8; 16];
    for i in 0..bits {
        out[i / 8] |= 0x80 >> (i % 8);
    }
    out
}

// ---------------------------------------------------------------------------
// Anchors: published vectors pin the reference itself.
// ---------------------------------------------------------------------------

#[test]
fn reference_matches_published_vectors() {
    // FIPS-197 Appendix C.1/C.2/C.3.
    let pt: Block = core::array::from_fn(|i| (i as u8) * 0x11);
    let key128: [u8; 16] = core::array::from_fn(|i| i as u8);
    let key192: [u8; 24] = core::array::from_fn(|i| i as u8);
    let key256: [u8; 32] = core::array::from_fn(|i| i as u8);
    assert_eq!(
        hex(&reference_encrypt(&key128, pt)),
        "69c4e0d86a7b0430d8cdb78070b4c55a"
    );
    assert_eq!(
        hex(&reference_encrypt(&key192, pt)),
        "dda97ca4864cdfe06eaf70a0ec0d7191"
    );
    assert_eq!(
        hex(&reference_encrypt(&key256, pt)),
        "8ea2b7ca516745bfeafc49904b496089"
    );
    // All-zero key and plaintext (ubiquitous smoke vector).
    assert_eq!(
        hex(&reference_encrypt(&[0u8; 16], [0u8; 16])),
        "66e94bd4ef8a2c3b884cfa59ca342b2e"
    );
    // AESAVS VarTxt-128 count 0 and VarKey-128 count 0.
    assert_eq!(
        hex(&reference_encrypt(&[0u8; 16], leading_ones(1))),
        "3ad78e726c1ec02b7ebfe92b23d9ec34"
    );
    let mut key = [0u8; 16];
    key[0] = 0x80;
    assert_eq!(
        hex(&reference_encrypt(&key, [0u8; 16])),
        "0edd33d3c621e546455bd8ba1418bec8"
    );
}

// ---------------------------------------------------------------------------
// AESAVS KAT tables: production T-table cipher vs. the reference.
// ---------------------------------------------------------------------------

#[test]
fn aesavs_varying_text_kat_128() {
    // VarTxt: all-zero key, plaintexts with 1..=128 leading one bits.
    let key = [0u8; 16];
    let aes = Aes128::new(&key);
    for bits in 1..=128 {
        let pt = leading_ones(bits);
        assert_eq!(
            aes.encrypt_block(pt),
            reference_encrypt(&key, pt),
            "VarTxt count {}",
            bits - 1
        );
    }
}

#[test]
fn aesavs_varying_key_kat_128() {
    // VarKey: all-zero plaintext, keys with 1..=128 leading one bits.
    for bits in 1..=128 {
        let key = leading_ones(bits);
        let aes = Aes128::new(&key);
        assert_eq!(
            aes.encrypt_block([0u8; 16]),
            reference_encrypt(&key, [0u8; 16]),
            "VarKey count {}",
            bits - 1
        );
    }
}

#[test]
fn production_cipher_matches_published_vectors() {
    let pt: Block = core::array::from_fn(|i| (i as u8) * 0x11);
    let key128: [u8; 16] = core::array::from_fn(|i| i as u8);
    let key192: [u8; 24] = core::array::from_fn(|i| i as u8);
    let key256: [u8; 32] = core::array::from_fn(|i| i as u8);
    assert_eq!(
        hex(&Aes128::new(&key128).encrypt_block(pt)),
        "69c4e0d86a7b0430d8cdb78070b4c55a"
    );
    assert_eq!(
        hex(&Aes192::new(&key192).encrypt_block(pt)),
        "dda97ca4864cdfe06eaf70a0ec0d7191"
    );
    assert_eq!(
        hex(&Aes256::new(&key256).encrypt_block(pt)),
        "8ea2b7ca516745bfeafc49904b496089"
    );
}

// ---------------------------------------------------------------------------
// Properties over random keys and blocks.
// ---------------------------------------------------------------------------

#[test]
fn encrypt_decrypt_round_trip_random() {
    let mut rng = StdRng::seed_from_u64(0xae5_4e5);
    for _ in 0..200 {
        let mut key = [0u8; 16];
        let mut pt = [0u8; 16];
        rng.fill(&mut key);
        rng.fill(&mut pt);
        let aes = Aes128::new(&key);
        let ct = aes.encrypt_block(pt);
        assert_eq!(
            aes.decrypt_block(ct),
            pt,
            "key {} pt {}",
            hex(&key),
            hex(&pt)
        );
        // And the ciphertext itself is the reference's.
        assert_eq!(ct, reference_encrypt(&key, pt));
    }
}

#[test]
fn larger_key_sizes_match_reference_on_random_inputs() {
    let mut rng = StdRng::seed_from_u64(0x192_256);
    for _ in 0..100 {
        let mut key192 = [0u8; 24];
        let mut key256 = [0u8; 32];
        let mut pt = [0u8; 16];
        rng.fill(&mut key192);
        rng.fill(&mut key256);
        rng.fill(&mut pt);
        assert_eq!(
            Aes192::new(&key192).encrypt_block(pt),
            reference_encrypt(&key192, pt)
        );
        assert_eq!(
            Aes256::new(&key256).encrypt_block(pt),
            reference_encrypt(&key256, pt)
        );
    }
}

#[test]
fn encryption_is_injective_over_plaintext_bits() {
    // Flipping any single plaintext bit changes the ciphertext (a weak
    // but table-independent diffusion property).
    let key: [u8; 16] = core::array::from_fn(|i| (i as u8).wrapping_mul(37));
    let aes = Aes128::new(&key);
    let base = aes.encrypt_block([0u8; 16]);
    for bit in 0..128 {
        let mut pt = [0u8; 16];
        pt[bit / 8] ^= 0x80 >> (bit % 8);
        assert_ne!(aes.encrypt_block(pt), base, "bit {bit}");
    }
}
