//! Typed errors for the attack drivers.

use std::error::Error;
use std::fmt;

/// Errors reported by the attack drivers and estimators.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AttackError {
    /// A recovery was requested over an empty sample set — there is
    /// nothing to correlate against.
    NoSamples,
    /// A key-byte index past the workload's attacked subkey width was
    /// requested.
    ByteIndex {
        /// The offending index.
        j: usize,
    },
    /// A numeric parameter was outside its mathematical domain (e.g. a
    /// negative noise sigma, a correlation of magnitude ≥ 1, a
    /// non-positive signal variance).
    Domain(String),
    /// A streaming [`crate::SampleSource`] failed to produce its next
    /// chunk (e.g. the backing simulator rejected its configuration).
    Source(String),
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::NoSamples => write!(f, "no attack samples were provided"),
            AttackError::ByteIndex { j } => {
                write!(f, "key byte index {j} out of range for the attacked subkey")
            }
            AttackError::Domain(msg) => write!(f, "parameter out of domain: {msg}"),
            AttackError::Source(msg) => write!(f, "sample source failed: {msg}"),
        }
    }
}

impl Error for AttackError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_problem() {
        assert!(AttackError::NoSamples
            .to_string()
            .contains("no attack samples"));
        assert!(AttackError::ByteIndex { j: 16 }.to_string().contains("16"));
        assert!(AttackError::Domain("sigma -1".into())
            .to_string()
            .contains("sigma -1"));
        assert!(AttackError::Source("sim rejected config".into())
            .to_string()
            .contains("sim rejected config"));
    }
}
