//! Full-key rank estimation: how many candidate keys an attacker must
//! try, given the per-byte correlation rankings.
//!
//! A byte-wise attack rarely fails outright; it leaves each byte's
//! correct value at some rank `r_j` among the 256 guesses. An attacker
//! who enumerates candidate keys in descending joint-plausibility order
//! tests about `∏(r_j + 1)` keys before reaching the true one — the
//! standard independent-subkey lower bound used to compare side-channel
//! results beyond plain success/failure.

use crate::recover::KeyRecovery;

/// Log₂ of the estimated number of key candidates to enumerate before
/// reaching `true_key`, assuming independent per-byte rankings:
/// `Σ log₂(rank_j + 1)`. 0 means first try (complete break); 128 means
/// no better than brute force.
pub fn log2_key_rank(recovery: &KeyRecovery, true_key: &[u8; 16]) -> f64 {
    recovery
        .bytes
        .iter()
        .zip(true_key)
        .map(|(b, &k)| ((b.rank_of(k) + 1) as f64).log2())
        .sum()
}

/// Security margin left after the attack, in bits: `128 − log₂(rank)`
/// bits of key material were recovered; the remainder is what brute
/// force still costs.
pub fn remaining_security_bits(recovery: &KeyRecovery, true_key: &[u8; 16]) -> f64 {
    log2_key_rank(recovery, true_key).clamp(0.0, 128.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recover::ByteRecovery;

    fn recovery_with_ranks(ranks: [usize; 16]) -> (KeyRecovery, [u8; 16]) {
        // True key byte is 0; its correlation places it at the requested
        // rank (guesses 1..=rank get higher correlations).
        let bytes = ranks
            .iter()
            .map(|&r| {
                let mut correlations = vec![0.0f64; 256];
                correlations[0] = 0.5;
                for (g, c) in correlations.iter_mut().enumerate().take(r + 1).skip(1) {
                    *c = 0.6 + g as f64 * 1e-3;
                }
                ByteRecovery {
                    best_guess: if r == 0 { 0 } else { r as u8 },
                    correlations,
                }
            })
            .collect();
        (KeyRecovery { bytes }, [0u8; 16])
    }

    #[test]
    fn perfect_recovery_has_rank_zero() {
        let (rec, key) = recovery_with_ranks([0; 16]);
        assert_eq!(log2_key_rank(&rec, &key), 0.0);
        assert_eq!(remaining_security_bits(&rec, &key), 0.0);
    }

    #[test]
    fn uniform_rank_one_costs_one_bit_per_byte() {
        let (rec, key) = recovery_with_ranks([1; 16]);
        assert!((log2_key_rank(&rec, &key) - 16.0).abs() < 1e-12);
    }

    #[test]
    fn worst_case_approaches_brute_force() {
        let (rec, key) = recovery_with_ranks([255; 16]);
        let bits = log2_key_rank(&rec, &key);
        assert!((bits - 128.0).abs() < 0.1, "bits = {bits}");
        assert!(remaining_security_bits(&rec, &key) <= 128.0);
    }

    #[test]
    fn mixed_ranks_accumulate() {
        let mut ranks = [0usize; 16];
        ranks[3] = 3; // log2(4) = 2 bits
        ranks[9] = 15; // log2(16) = 4 bits
        let (rec, key) = recovery_with_ranks(ranks);
        assert!((log2_key_rank(&rec, &key) - 6.0).abs() < 1e-12);
    }
}
