//! # rcoal-attack
//!
//! The correlation timing attacks the RCoal paper defends against and
//! evaluates with.
//!
//! The baseline attack (Jiang et al., HPCA 2016) recovers the AES-128
//! last-round key byte by byte: for each of the 256 guesses `m` of byte
//! `k_j`, the attacker computes the last-round table index of every
//! thread from the observed ciphertexts (`t_j = S⁻¹[c_j ⊕ m]`, Eq. 3),
//! replays the GPU's *deterministic* coalescing logic to predict the
//! number of coalesced accesses per plaintext, and picks the guess whose
//! prediction correlates best with the measured execution time.
//!
//! The paper's generalized attacks (§IV-E) assume the attacker knows the
//! deployed defense and mirrors it: the FSS attack is Algorithm 1; the
//! RSS / RTS attacks simulate the defense's randomness on the attacker's
//! side. That is exactly how [`Attack`] is built here: the attacker's
//! predictor reuses the same [`rcoal_core::CoalescingPolicy`] machinery
//! the defense uses — the strongest "corresponding attack" possible.

// Library code must propagate failures as typed errors, never panic;
// test modules are exempt (the harness is the panic handler there).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod error;
mod key_rank;
mod noise;
mod online;
mod oracle;
mod predict;
mod recover;
mod samples;
mod stats;
mod stream;

pub use error::AttackError;
pub use key_rank::{log2_key_rank, remaining_security_bits};
pub use noise::{attenuated_correlation, GaussianNoise};
pub use online::{even_checkpoints, recovery_curve, OnlineByteRecovery};
pub use oracle::{aes_oracle, AesLastRoundOracle, TableOracle, XorWhiteningOracle};
pub use predict::{predicted_accesses, AccessPredictor};
pub use recover::{Attack, AttackSample, ByteRecovery, KeyRecovery, RecoveryOutcome};
pub use samples::{samples_needed, samples_needed_approx, z_quantile};
pub use stats::{argmax, pearson};
pub use stream::{
    stream_checkpoints, stream_recover_byte, stream_recover_key, EarlyStop, PearsonAccumulator,
    SampleSource, SliceSource, StreamCheckpoint, StreamKeyRecovery, StreamOptions, StreamRecovery,
    StreamingByteRecovery, StreamingKeyRecovery,
};
