//! Measurement-noise modeling for the timing channel.
//!
//! The paper's simulator attacker reads a clean last-round time; a real
//! remote attacker sees that signal buried in network and scheduling
//! noise (which is why Jiang et al. needed ~10⁶ samples on hardware).
//! This module injects controlled Gaussian noise so the library can
//! reproduce that regime and validate the Eq. 4 attenuation prediction:
//! adding noise of variance σ² to a signal of variance v scales every
//! correlation by `√(v / (v + σ²))`.

use crate::error::AttackError;
use crate::recover::AttackSample;
use rcoal_rng::StdRng;
use rcoal_rng::{Rng, SeedableRng};

/// Additive Gaussian measurement noise.
#[derive(Debug, Clone)]
pub struct GaussianNoise {
    sigma: f64,
    rng: StdRng,
}

impl GaussianNoise {
    /// Noise with standard deviation `sigma`, reproducible from `seed`.
    ///
    /// # Errors
    ///
    /// [`AttackError::Domain`] if `sigma` is negative or not finite.
    pub fn new(sigma: f64, seed: u64) -> Result<Self, AttackError> {
        if !(sigma.is_finite() && sigma >= 0.0) {
            return Err(AttackError::Domain(format!(
                "noise sigma must be finite and >= 0, got {sigma}"
            )));
        }
        Ok(GaussianNoise {
            sigma,
            rng: StdRng::seed_from_u64(seed),
        })
    }

    /// The configured standard deviation.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Draws one noise value (Box–Muller over the workspace `rcoal-rng`
    /// uniform API).
    pub fn sample(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        self.sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Adds noise to every sample's timing in place.
    pub fn apply(&mut self, samples: &mut [AttackSample]) {
        for s in samples {
            s.time += self.sample();
        }
    }

    /// Returns a noisy copy of the samples.
    pub fn applied(&mut self, samples: &[AttackSample]) -> Vec<AttackSample> {
        let mut out = samples.to_vec();
        self.apply(&mut out);
        out
    }
}

/// Predicted correlation after adding noise of standard deviation `sigma`
/// to a timing signal whose clean correlation is `rho` and whose variance
/// is `signal_variance`:
///
/// `rho' = rho · √(v / (v + σ²))`
///
/// # Errors
///
/// [`AttackError::Domain`] if `signal_variance` is not positive (or any
/// argument is not finite).
pub fn attenuated_correlation(
    rho: f64,
    signal_variance: f64,
    sigma: f64,
) -> Result<f64, AttackError> {
    if !(signal_variance.is_finite() && signal_variance > 0.0) {
        return Err(AttackError::Domain(format!(
            "signal variance must be finite and positive, got {signal_variance}"
        )));
    }
    if !rho.is_finite() || !sigma.is_finite() {
        return Err(AttackError::Domain(format!(
            "attenuation arguments must be finite (rho {rho}, sigma {sigma})"
        )));
    }
    Ok(rho * (signal_variance / (signal_variance + sigma * sigma)).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::pearson;

    fn variance(xs: &[f64]) -> f64 {
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64
    }

    #[test]
    fn zero_sigma_is_identity() {
        let samples = vec![
            AttackSample {
                ciphertexts: std::sync::Arc::new(vec![]),
                time: 10.0,
            };
            5
        ];
        let mut noise = GaussianNoise::new(0.0, 1).unwrap();
        let noisy = noise.applied(&samples);
        assert_eq!(noisy, samples);
    }

    #[test]
    fn sample_moments_match_configuration() {
        let mut noise = GaussianNoise::new(3.0, 7).unwrap();
        let draws: Vec<f64> = (0..20_000).map(|_| noise.sample()).collect();
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
        let sd = variance(&draws).sqrt();
        assert!((sd - 3.0).abs() < 0.1, "sd {sd}");
    }

    #[test]
    fn noise_is_seed_deterministic() {
        let a: Vec<f64> = {
            let mut n = GaussianNoise::new(1.0, 9).unwrap();
            (0..10).map(|_| n.sample()).collect()
        };
        let b: Vec<f64> = {
            let mut n = GaussianNoise::new(1.0, 9).unwrap();
            (0..10).map(|_| n.sample()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn attenuation_formula_matches_empirical() {
        // Signal x, measurement y = x + noise: corr should attenuate by
        // sqrt(v/(v+sigma^2)).
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|i: u64| ((i * 48271) % 101) as f64).collect();
        let v = variance(&xs);
        let sigma = 40.0;
        let mut noise = GaussianNoise::new(sigma, 3).unwrap();
        let ys: Vec<f64> = xs.iter().map(|x| x + noise.sample()).collect();
        let measured = pearson(&xs, &ys);
        let predicted = attenuated_correlation(1.0, v, sigma).unwrap();
        assert!(
            (measured - predicted).abs() < 0.02,
            "measured {measured} vs predicted {predicted}"
        );
    }

    #[test]
    fn attenuation_degenerates_sensibly() {
        assert_eq!(attenuated_correlation(0.5, 4.0, 0.0).unwrap(), 0.5);
        assert!(attenuated_correlation(0.5, 1.0, 100.0).unwrap() < 0.01);
    }

    #[test]
    fn domain_violations_are_typed_errors() {
        assert!(matches!(
            GaussianNoise::new(-1.0, 0),
            Err(AttackError::Domain(_))
        ));
        assert!(matches!(
            GaussianNoise::new(f64::NAN, 0),
            Err(AttackError::Domain(_))
        ));
        assert!(matches!(
            attenuated_correlation(0.5, 0.0, 1.0),
            Err(AttackError::Domain(_))
        ));
        assert!(matches!(
            attenuated_correlation(f64::NAN, 1.0, 1.0),
            Err(AttackError::Domain(_))
        ));
    }
}
