//! Incremental (streaming) correlation attack: evaluate the recovery
//! state after every prefix of the sample stream without recomputing
//! predictions — each (guess, sample) prediction is made exactly once.
//!
//! This is how a real attacker operates ("collect until the argmax
//! stabilizes") and it makes sample-cost sweeps like the Table II
//! validation linear instead of quadratic.
//!
//! The per-guess correlation state is a [`PearsonAccumulator`] —
//! Welford-style centered moments, shared with the chunked engine in
//! [`crate::stream`] — replacing the raw `Σx, Σx², Σxy` sums this module
//! originally kept, whose final subtraction catastrophically cancels
//! when the means dominate the variances.

use crate::error::AttackError;
use crate::predict::AccessPredictor;
use crate::recover::{Attack, AttackSample, ByteRecovery};
use crate::stream::PearsonAccumulator;

/// Streaming per-byte recovery: maintains, for each of the 256 guesses,
/// a centered-moment Pearson accumulator against the timing stream.
#[derive(Debug, Clone)]
pub struct OnlineByteRecovery {
    predictors: Vec<AccessPredictor>,
    accumulators: Vec<PearsonAccumulator>,
    byte: usize,
    n: usize,
}

impl OnlineByteRecovery {
    /// Starts a streaming recovery of key byte `byte` using `attack`'s
    /// mirrored policy for predictions.
    ///
    /// # Errors
    ///
    /// [`AttackError::ByteIndex`] for `byte >= attack.key_bytes()`.
    pub fn new(attack: &Attack, byte: usize) -> Result<Self, AttackError> {
        if byte >= attack.key_bytes() {
            return Err(AttackError::ByteIndex { j: byte });
        }
        let predictors = (0..=255u8).map(|m| attack.predictor_for_guess(m)).collect();
        Ok(OnlineByteRecovery {
            predictors,
            accumulators: vec![PearsonAccumulator::new(); 256],
            byte,
            n: 0,
        })
    }

    /// Feeds one observed sample.
    pub fn push(&mut self, sample: &AttackSample) {
        self.n += 1;
        for (m, (predictor, acc)) in self
            .predictors
            .iter_mut()
            .zip(&mut self.accumulators)
            .enumerate()
        {
            let x = predictor.predict(&sample.ciphertexts, self.byte, m as u8);
            acc.push(x, sample.time);
        }
    }

    /// Samples consumed so far.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether no samples have been consumed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Current correlation of guess `m` (0.0 while degenerate).
    pub fn correlation_of(&self, m: u8) -> f64 {
        self.accumulators[usize::from(m)].correlation()
    }

    /// Snapshot of the full recovery state.
    pub fn snapshot(&self) -> ByteRecovery {
        let correlations: Vec<f64> = self.accumulators.iter().map(|a| a.correlation()).collect();
        ByteRecovery {
            correlations,
            best_guess: self.best_guess(),
        }
    }

    /// The guess currently leading — an O(1)-space scan over the
    /// accumulators (first maximum wins, matching
    /// [`crate::stats::argmax`]); no snapshot is allocated.
    pub fn best_guess(&self) -> u8 {
        let mut best = 0usize;
        let mut best_r = f64::NEG_INFINITY;
        for (i, acc) in self.accumulators.iter().enumerate() {
            let r = acc.correlation();
            if r > best_r {
                best_r = r;
                best = i;
            }
        }
        best as u8
    }
}

/// Evenly spaced checkpoint sample counts for a stream of `n` samples:
/// `count` targets at `n·i/count`, deduplicated and with zero dropped,
/// always ending exactly at `n` (empty for `n == 0`).
///
/// This is the one place clamped/duplicate checkpoint handling lives;
/// [`recovery_curve`] and the audit layer's trajectory construction both
/// defer to it.
pub fn even_checkpoints(n: usize, count: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(count);
    for i in 1..=count {
        let cp = n * i / count.max(1);
        if cp > 0 && out.last() != Some(&cp) {
            out.push(cp);
        }
    }
    out
}

/// Runs a streaming recovery over `samples`, snapshotting at each of the
/// (ascending) `checkpoints`; checkpoint values beyond the stream length
/// are clamped to the end, and checkpoints that clamp or repeat onto an
/// already-snapshotted prefix are skipped (each returned sample count
/// appears once).
///
/// # Errors
///
/// [`AttackError::ByteIndex`] for `byte >= attack.key_bytes()`.
pub fn recovery_curve(
    attack: &Attack,
    samples: &[AttackSample],
    byte: usize,
    checkpoints: &[usize],
) -> Result<Vec<(usize, ByteRecovery)>, AttackError> {
    let mut online = OnlineByteRecovery::new(attack, byte)?;
    let mut out: Vec<(usize, ByteRecovery)> = Vec::with_capacity(checkpoints.len());
    let mut fed = 0;
    for &cp in checkpoints {
        let target = cp.min(samples.len());
        if out.last().map(|(t, _)| *t) == Some(target) {
            continue;
        }
        while fed < target {
            online.push(&samples[fed]);
            fed += 1;
        }
        out.push((target, online.snapshot()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recover::Attack;
    use rcoal_aes::{last_round_index, Aes128, Block};

    fn samples(n: usize) -> (Vec<AttackSample>, [u8; 16]) {
        let aes = Aes128::new(b"streaming key!!!");
        let k10 = aes.last_round_key();
        let out = (0..n)
            .map(|i| {
                let cts: Vec<Block> = (0..32)
                    .map(|l| {
                        let mut pt = [0u8; 16];
                        for (b, x) in pt.iter_mut().enumerate() {
                            *x = (i * 101 + l * 13 + b * 41) as u8;
                        }
                        aes.encrypt_block(pt)
                    })
                    .collect();
                let mut blocks: Vec<u8> = cts
                    .iter()
                    .map(|ct| last_round_index(ct[2], k10[2]) >> 4)
                    .collect();
                blocks.sort_unstable();
                blocks.dedup();
                AttackSample {
                    ciphertexts: std::sync::Arc::new(cts),
                    time: blocks.len() as f64,
                }
            })
            .collect();
        (out, k10)
    }

    #[test]
    fn streaming_matches_batch_recovery() {
        let (samples, _) = samples(60);
        let attack = Attack::baseline(32);
        let batch = attack.recover_byte(&samples, 2).unwrap();
        let mut online = OnlineByteRecovery::new(&attack, 2).unwrap();
        assert!(online.is_empty());
        for s in &samples {
            online.push(s);
        }
        assert_eq!(online.len(), 60);
        let stream = online.snapshot();
        assert_eq!(stream.best_guess, batch.best_guess);
        assert_eq!(stream.best_guess, online.best_guess());
        for m in 0..256 {
            assert!(
                (stream.correlations[m] - batch.correlations[m]).abs() < 1e-9,
                "guess {m}"
            );
        }
    }

    #[test]
    fn curve_checkpoints_are_monotone_prefixes() {
        let (samples, k10) = samples(80);
        let attack = Attack::baseline(32);
        let curve = recovery_curve(&attack, &samples, 2, &[10, 40, 80, 500]).unwrap();
        // The 500 checkpoint clamps onto the already-snapshotted end of
        // the stream and is skipped.
        assert_eq!(curve.len(), 3);
        assert_eq!(curve[0].0, 10);
        assert_eq!(curve[2].0, 80, "clamped to stream length");
        // With a clean single-byte channel the final checkpoint recovers.
        assert_eq!(curve[2].1.best_guess, k10[2]);
        assert!(curve[2].1.correlation_of(k10[2]) > 0.95);
    }

    #[test]
    fn even_checkpoints_dedupe_and_end_at_n() {
        assert_eq!(even_checkpoints(100, 4), vec![25, 50, 75, 100]);
        assert_eq!(even_checkpoints(3, 6), vec![1, 2, 3], "duplicates dropped");
        assert_eq!(even_checkpoints(1, 4), vec![1]);
        assert_eq!(even_checkpoints(0, 4), Vec::<usize>::new());
        assert_eq!(even_checkpoints(5, 0), Vec::<usize>::new());
        assert_eq!(even_checkpoints(7, 3), vec![2, 4, 7]);
    }

    #[test]
    fn byte_index_is_a_typed_error() {
        let attack = Attack::baseline(32);
        assert_eq!(
            OnlineByteRecovery::new(&attack, 16).unwrap_err(),
            AttackError::ByteIndex { j: 16 }
        );
        assert_eq!(
            recovery_curve(&attack, &[], 99, &[1]).unwrap_err(),
            AttackError::ByteIndex { j: 99 }
        );
    }

    #[test]
    fn degenerate_prefixes_report_zero() {
        let (samples, _) = samples(3);
        let attack = Attack::baseline(32);
        let mut online = OnlineByteRecovery::new(&attack, 2).unwrap();
        assert_eq!(online.correlation_of(0), 0.0);
        online.push(&samples[0]);
        assert_eq!(online.correlation_of(0), 0.0, "one sample is degenerate");
    }
}
