//! Incremental (streaming) correlation attack: evaluate the recovery
//! state after every prefix of the sample stream without recomputing
//! predictions — each (guess, sample) prediction is made exactly once.
//!
//! This is how a real attacker operates ("collect until the argmax
//! stabilizes") and it makes sample-cost sweeps like the Table II
//! validation linear instead of quadratic.

use crate::error::AttackError;
use crate::predict::AccessPredictor;
use crate::recover::{Attack, AttackSample, ByteRecovery};
use crate::stats::argmax;

/// Streaming per-byte recovery: maintains, for each of the 256 guesses,
/// the running sums needed for a Pearson correlation against the timing
/// stream.
#[derive(Debug, Clone)]
pub struct OnlineByteRecovery {
    predictors: Vec<AccessPredictor>,
    byte: usize,
    n: usize,
    sum_y: f64,
    sum_y2: f64,
    sum_x: Vec<f64>,
    sum_x2: Vec<f64>,
    sum_xy: Vec<f64>,
}

impl OnlineByteRecovery {
    /// Starts a streaming recovery of key byte `byte` using `attack`'s
    /// mirrored policy for predictions.
    ///
    /// # Errors
    ///
    /// [`AttackError::ByteIndex`] for `byte >= attack.key_bytes()`.
    pub fn new(attack: &Attack, byte: usize) -> Result<Self, AttackError> {
        if byte >= attack.key_bytes() {
            return Err(AttackError::ByteIndex { j: byte });
        }
        let predictors = (0..=255u8).map(|m| attack.predictor_for_guess(m)).collect();
        Ok(OnlineByteRecovery {
            predictors,
            byte,
            n: 0,
            sum_y: 0.0,
            sum_y2: 0.0,
            sum_x: vec![0.0; 256],
            sum_x2: vec![0.0; 256],
            sum_xy: vec![0.0; 256],
        })
    }

    /// Feeds one observed sample.
    pub fn push(&mut self, sample: &AttackSample) {
        self.n += 1;
        self.sum_y += sample.time;
        self.sum_y2 += sample.time * sample.time;
        for m in 0..256 {
            let x = self.predictors[m].predict(&sample.ciphertexts, self.byte, m as u8);
            self.sum_x[m] += x;
            self.sum_x2[m] += x * x;
            self.sum_xy[m] += x * sample.time;
        }
    }

    /// Samples consumed so far.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether no samples have been consumed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Current correlation of guess `m` (0.0 while degenerate).
    pub fn correlation_of(&self, m: u8) -> f64 {
        let i = usize::from(m);
        let n = self.n as f64;
        if self.n < 2 {
            return 0.0;
        }
        let cov = self.sum_xy[i] - self.sum_x[i] * self.sum_y / n;
        let vx = self.sum_x2[i] - self.sum_x[i] * self.sum_x[i] / n;
        let vy = self.sum_y2 - self.sum_y * self.sum_y / n;
        if vx <= 1e-12 || vy <= 1e-12 {
            return 0.0;
        }
        cov / (vx * vy).sqrt()
    }

    /// Snapshot of the full recovery state.
    pub fn snapshot(&self) -> ByteRecovery {
        let correlations: Vec<f64> = (0..=255u8).map(|m| self.correlation_of(m)).collect();
        let best_guess = argmax(&correlations).unwrap_or(0) as u8;
        ByteRecovery {
            correlations,
            best_guess,
        }
    }

    /// The guess currently leading.
    pub fn best_guess(&self) -> u8 {
        self.snapshot().best_guess
    }
}

/// Runs a streaming recovery over `samples`, snapshotting at each of the
/// (ascending) `checkpoints`; checkpoint values beyond the stream length
/// are clamped to the end.
///
/// # Errors
///
/// [`AttackError::ByteIndex`] for `byte >= attack.key_bytes()`.
pub fn recovery_curve(
    attack: &Attack,
    samples: &[AttackSample],
    byte: usize,
    checkpoints: &[usize],
) -> Result<Vec<(usize, ByteRecovery)>, AttackError> {
    let mut online = OnlineByteRecovery::new(attack, byte)?;
    let mut out = Vec::with_capacity(checkpoints.len());
    let mut fed = 0;
    for &cp in checkpoints {
        let target = cp.min(samples.len());
        while fed < target {
            online.push(&samples[fed]);
            fed += 1;
        }
        out.push((target, online.snapshot()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recover::Attack;
    use rcoal_aes::{last_round_index, Aes128, Block};

    fn samples(n: usize) -> (Vec<AttackSample>, [u8; 16]) {
        let aes = Aes128::new(b"streaming key!!!");
        let k10 = aes.last_round_key();
        let out = (0..n)
            .map(|i| {
                let cts: Vec<Block> = (0..32)
                    .map(|l| {
                        let mut pt = [0u8; 16];
                        for (b, x) in pt.iter_mut().enumerate() {
                            *x = (i * 101 + l * 13 + b * 41) as u8;
                        }
                        aes.encrypt_block(pt)
                    })
                    .collect();
                let mut blocks: Vec<u8> = cts
                    .iter()
                    .map(|ct| last_round_index(ct[2], k10[2]) >> 4)
                    .collect();
                blocks.sort_unstable();
                blocks.dedup();
                AttackSample {
                    ciphertexts: std::sync::Arc::new(cts),
                    time: blocks.len() as f64,
                }
            })
            .collect();
        (out, k10)
    }

    #[test]
    fn streaming_matches_batch_recovery() {
        let (samples, _) = samples(60);
        let attack = Attack::baseline(32);
        let batch = attack.recover_byte(&samples, 2).unwrap();
        let mut online = OnlineByteRecovery::new(&attack, 2).unwrap();
        assert!(online.is_empty());
        for s in &samples {
            online.push(s);
        }
        assert_eq!(online.len(), 60);
        let stream = online.snapshot();
        assert_eq!(stream.best_guess, batch.best_guess);
        for m in 0..256 {
            assert!(
                (stream.correlations[m] - batch.correlations[m]).abs() < 1e-9,
                "guess {m}"
            );
        }
    }

    #[test]
    fn curve_checkpoints_are_monotone_prefixes() {
        let (samples, k10) = samples(80);
        let attack = Attack::baseline(32);
        let curve = recovery_curve(&attack, &samples, 2, &[10, 40, 80, 500]).unwrap();
        assert_eq!(curve.len(), 4);
        assert_eq!(curve[0].0, 10);
        assert_eq!(curve[3].0, 80, "clamped to stream length");
        // With a clean single-byte channel the final checkpoint recovers.
        assert_eq!(curve[3].1.best_guess, k10[2]);
        assert!(curve[3].1.correlation_of(k10[2]) > 0.95);
    }

    #[test]
    fn byte_index_is_a_typed_error() {
        let attack = Attack::baseline(32);
        assert_eq!(
            OnlineByteRecovery::new(&attack, 16).unwrap_err(),
            AttackError::ByteIndex { j: 16 }
        );
        assert_eq!(
            recovery_curve(&attack, &[], 99, &[1]).unwrap_err(),
            AttackError::ByteIndex { j: 99 }
        );
    }

    #[test]
    fn degenerate_prefixes_report_zero() {
        let (samples, _) = samples(3);
        let attack = Attack::baseline(32);
        let mut online = OnlineByteRecovery::new(&attack, 2).unwrap();
        assert_eq!(online.correlation_of(0), 0.0);
        online.push(&samples[0]);
        assert_eq!(online.correlation_of(0), 0.0, "one sample is degenerate");
    }
}
