//! The attacker's table oracle: how an observed byte plus a subkey-byte
//! guess maps to the coalescing-block index of the thread's table
//! lookup.
//!
//! The baseline AES attack computes `t_j = S⁻¹[c_j ⊕ m]` and divides by
//! the 16 `u32` entries per 64-byte block; other table-based kernels
//! (PRESENT, GIFT, RECTANGLE) index their vulnerable round directly
//! with `text_j ⊕ k_j` over tables of different entry sizes. Everything
//! else about the attack — the coalescing replay, the 256-guess sweep,
//! the correlation — is oracle-independent, so the predictor and
//! [`crate::Attack`] carry a `dyn TableOracle` and default to AES.

use rcoal_aes::last_round_index;
use std::fmt::Debug;
use std::sync::Arc;

/// Maps (observed byte, subkey guess) to the index of the 64-byte
/// coalescing block the thread's table lookup touches.
///
/// Implementations must be pure functions of their arguments: the
/// 256-guess sweep memoizes one 256-entry table per guess.
pub trait TableOracle: Send + Sync + Debug {
    /// Number of subkey bytes the attack sweeps (at most 16; the byte
    /// columns are drawn from 16-byte observation lines).
    fn key_bytes(&self) -> usize;

    /// Block index (in `0..R`) for observed byte `b` under guess
    /// `guess`, at the paper's 64-byte coalescing granularity.
    fn block_of(&self, b: u8, guess: u8) -> u64;
}

/// The AES-128 last-round oracle: `InvSbox[c_j ⊕ m]` over the 4-byte
/// T4 entries, 16 entries per 64-byte block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AesLastRoundOracle;

impl TableOracle for AesLastRoundOracle {
    fn key_bytes(&self) -> usize {
        16
    }

    fn block_of(&self, b: u8, guess: u8) -> u64 {
        u64::from(last_round_index(b, guess) >> 4)
    }
}

/// Oracle for ciphers whose vulnerable round indexes its tables with
/// `text_j ⊕ k_j` directly (key whitening before the S-box layer):
/// the block index is the whitened byte shifted by `log2(entries per
/// 64-byte block)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XorWhiteningOracle {
    shift: u32,
    key_bytes: usize,
}

impl XorWhiteningOracle {
    /// `shift` is `log2(64 / entry_bytes)`; `key_bytes` the number of
    /// attacked subkey bytes (clamped to 16, the observation width).
    pub fn new(shift: u32, key_bytes: usize) -> Self {
        XorWhiteningOracle {
            shift: shift.min(8),
            key_bytes: key_bytes.clamp(1, 16),
        }
    }
}

impl TableOracle for XorWhiteningOracle {
    fn key_bytes(&self) -> usize {
        self.key_bytes
    }

    fn block_of(&self, b: u8, guess: u8) -> u64 {
        u64::from(b ^ guess) >> self.shift
    }
}

/// The default oracle: AES-128 last round.
pub fn aes_oracle() -> Arc<dyn TableOracle> {
    Arc::new(AesLastRoundOracle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aes_oracle_matches_the_inline_formula() {
        let o = AesLastRoundOracle;
        assert_eq!(o.key_bytes(), 16);
        for b in [0u8, 1, 0x3c, 255] {
            for g in [0u8, 0x7f, 255] {
                assert_eq!(o.block_of(b, g), u64::from(last_round_index(b, g) >> 4));
            }
        }
    }

    #[test]
    fn xor_oracle_shifts_the_whitened_byte() {
        let o = XorWhiteningOracle::new(3, 8);
        assert_eq!(o.key_bytes(), 8);
        assert_eq!(o.block_of(0xFF, 0x00), 0x1F);
        assert_eq!(o.block_of(0xA5, 0xA5), 0);
        let coarse = XorWhiteningOracle::new(5, 8);
        assert!((0..=255u8).all(|b| coarse.block_of(b, 0) < 8));
    }

    #[test]
    fn xor_oracle_clamps_degenerate_parameters() {
        let o = XorWhiteningOracle::new(40, 0);
        assert_eq!(o.key_bytes(), 1);
        assert_eq!(o.block_of(0xFF, 0), 0);
        assert_eq!(XorWhiteningOracle::new(2, 99).key_bytes(), 16);
    }
}
