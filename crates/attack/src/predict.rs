use crate::oracle::{aes_oracle, TableOracle};
use rcoal_aes::Block;
use rcoal_core::{Coalescer, CoalescingPolicy};
use rcoal_rng::SeedableRng;
use rcoal_rng::StdRng;
use std::sync::Arc;

/// The attacker's model of the victim GPU's coalescing: predicts how many
/// last-round coalesced accesses a plaintext generates for a given key
/// byte position and guess.
///
/// Construction mirrors the paper's "corresponding attacks" (§IV-E): the
/// predictor replays whatever policy the attacker believes the defense
/// uses. With [`CoalescingPolicy::Baseline`] this is the original attack
/// of Jiang et al.; with an FSS policy it is Algorithm 1; with
/// RSS/RTS policies it simulates the defense's own randomness.
#[derive(Debug, Clone)]
pub struct AccessPredictor {
    policy: CoalescingPolicy,
    warp_size: usize,
    coalescer: Coalescer,
    rng: StdRng,
    mc_samples: usize,
    /// Workload table oracle mapping (byte, guess) → block index;
    /// defaults to the AES-128 last round.
    oracle: Arc<dyn TableOracle>,
    /// Memoized per-guess address table: `addr_table[b]` is the
    /// pseudo-address of ciphertext byte `b` under the current guess.
    /// The 256-guess sweep calls the predictor with one guess many
    /// times (once per sample), so the inverse-SBox walk runs 256 times
    /// per guess instead of `samples × lines` times.
    addr_table: Vec<u64>,
    addr_table_guess: Option<u8>,
    /// Per-warp lane-address scratch, reused across every prediction so
    /// the sweep's hot loop allocates nothing.
    addrs_scratch: Vec<Option<u64>>,
    /// Ciphertext byte-column scratch backing [`AccessPredictor::predict`].
    bytes_scratch: Vec<u8>,
}

impl AccessPredictor {
    /// Creates a predictor mirroring `policy` over `warp_size`-thread
    /// warps. `seed` drives the attacker-side randomness of RSS/RTS
    /// replays.
    pub fn new(policy: CoalescingPolicy, warp_size: usize, seed: u64) -> Self {
        AccessPredictor {
            policy,
            warp_size: warp_size.max(1),
            coalescer: Coalescer::new(),
            rng: StdRng::seed_from_u64(seed),
            mc_samples: 1,
            oracle: aes_oracle(),
            addr_table: Vec::new(),
            addr_table_guess: None,
            addrs_scratch: Vec::new(),
            bytes_scratch: Vec::new(),
        }
    }

    /// Averages each prediction over `n ≥ 1` Monte-Carlo replays of the
    /// defense's randomness (only meaningful for randomized policies).
    pub fn with_mc_samples(mut self, n: usize) -> Self {
        self.mc_samples = n.max(1);
        self
    }

    /// Replaces the table oracle (AES-128 last round by default) —
    /// how the predictor maps an observed byte plus a guess onto the
    /// block its table lookup touches.
    pub fn with_oracle(mut self, oracle: Arc<dyn TableOracle>) -> Self {
        self.oracle = oracle;
        self.addr_table_guess = None;
        self
    }

    /// The mirrored policy.
    pub fn policy(&self) -> CoalescingPolicy {
        self.policy
    }

    /// Predicts the number of last-round coalesced accesses for key byte
    /// `j` under guess `m`, for one plaintext whose per-line ciphertexts
    /// are `ciphertexts` (threads are mapped to lines sequentially,
    /// `warp_size` per warp).
    pub fn predict(&mut self, ciphertexts: &[Block], j: usize, guess: u8) -> f64 {
        let mut bytes = std::mem::take(&mut self.bytes_scratch);
        bytes.clear();
        bytes.extend(ciphertexts.iter().map(|ct| ct[j]));
        let total = self.predict_bytes(&bytes, guess);
        self.bytes_scratch = bytes;
        total
    }

    /// Like [`AccessPredictor::predict`], but takes the ciphertext byte
    /// column `ciphertexts[..][j]` directly — the form the 256-guess
    /// sweep uses, so the column is extracted once per byte position
    /// instead of once per (sample, guess) pair. Bit-identical to
    /// `predict` on the same column: the RNG draw order and the
    /// floating-point accumulation order are unchanged.
    pub fn predict_bytes(&mut self, bytes: &[u8], guess: u8) -> f64 {
        if self.addr_table_guess != Some(guess) {
            // Per-lane pseudo-addresses: the block index of the thread's
            // table lookup, scaled to the coalescing granularity. Only
            // block identity matters for the count, and it depends only
            // on (observed byte, guess) — 256 possible values.
            let block_size = self.coalescer.block_size();
            self.addr_table.clear();
            self.addr_table
                .extend((0..=255u8).map(|b| self.oracle.block_of(b, guess) * block_size));
            self.addr_table_guess = Some(guess);
        }
        let mut total = 0.0;
        for warp in bytes.chunks(self.warp_size) {
            let table = &self.addr_table;
            self.addrs_scratch.clear();
            self.addrs_scratch
                .extend(warp.iter().map(|&b| Some(table[usize::from(b)])));
            for _ in 0..self.mc_samples {
                match self.policy.assignment(warp.len(), &mut self.rng) {
                    Ok(assignment) => {
                        total += self
                            .coalescer
                            .count_accesses(&assignment, &self.addrs_scratch)
                            as f64
                            / self.mc_samples as f64;
                    }
                    Err(_) => {
                        // A policy that cannot split this (partial) warp —
                        // e.g. FSS(8) on a 4-line tail — degrades to the
                        // worst case of one access per thread.
                        total += warp.len() as f64 / self.mc_samples as f64;
                    }
                }
            }
        }
        total
    }
}

/// Convenience wrapper: predicted last-round accesses for every plaintext
/// in `samples`, for key byte `j` under guess `m`.
pub fn predicted_accesses(
    predictor: &mut AccessPredictor,
    samples: &[Vec<Block>],
    j: usize,
    guess: u8,
) -> Vec<f64> {
    samples
        .iter()
        .map(|cts| predictor.predict(cts, j, guess))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::XorWhiteningOracle;
    use rcoal_aes::{last_round_index, Aes128};

    fn ciphertexts(n: usize, key: &[u8; 16]) -> (Vec<Block>, [u8; 16]) {
        let aes = Aes128::new(key);
        let cts = (0..n)
            .map(|i| {
                let mut pt = [0u8; 16];
                for (k, b) in pt.iter_mut().enumerate() {
                    *b = (i * 37 + k * 11) as u8;
                }
                aes.encrypt_block(pt)
            })
            .collect();
        (cts, aes.last_round_key())
    }

    #[test]
    fn baseline_prediction_counts_distinct_blocks() {
        let (cts, k10) = ciphertexts(32, b"0123456789abcdef");
        let mut p = AccessPredictor::new(CoalescingPolicy::Baseline, 32, 0);
        let predicted = p.predict(&cts, 0, k10[0]);
        // Recompute independently.
        let mut blocks: Vec<u8> = cts
            .iter()
            .map(|ct| last_round_index(ct[0], k10[0]) >> 4)
            .collect();
        blocks.sort_unstable();
        blocks.dedup();
        assert_eq!(predicted, blocks.len() as f64);
    }

    #[test]
    fn correct_guess_reproduces_true_indices() {
        // With the right key byte, predictions equal the defense's actual
        // baseline coalesced counts; sanity-check bounds here.
        let (cts, k10) = ciphertexts(64, b"another-aes-key!");
        let mut p = AccessPredictor::new(CoalescingPolicy::Baseline, 32, 0);
        for (j, &kj) in k10.iter().enumerate() {
            let a = p.predict(&cts, j, kj);
            assert!((1.0..=32.0).contains(&a));
        }
    }

    #[test]
    fn fss_prediction_sums_per_subwarp_counts() {
        // Algorithm 1 semantics: per in-order group, count distinct
        // blocks, then sum.
        let (cts, k10) = ciphertexts(32, b"0123456789abcdef");
        let policy = CoalescingPolicy::fss(4).unwrap();
        let mut p = AccessPredictor::new(policy, 32, 0);
        let predicted = p.predict(&cts, 3, k10[3]);

        let mut manual = 0usize;
        for group in cts.chunks(8) {
            let mut blocks: Vec<u8> = group
                .iter()
                .map(|ct| last_round_index(ct[3], k10[3]) >> 4)
                .collect();
            blocks.sort_unstable();
            blocks.dedup();
            manual += blocks.len();
        }
        assert_eq!(predicted, manual as f64);
    }

    #[test]
    fn fss_at_32_subwarps_is_constant() {
        let (cts, k10) = ciphertexts(32, b"0123456789abcdef");
        let policy = CoalescingPolicy::fss(32).unwrap();
        let mut p = AccessPredictor::new(policy, 32, 0);
        for m in [0u8, 17, k10[0], 255] {
            assert_eq!(p.predict(&cts, 0, m), 32.0);
        }
    }

    #[test]
    fn multi_warp_plaintexts_sum_over_warps() {
        let (cts, k10) = ciphertexts(96, b"0123456789abcdef");
        let mut p = AccessPredictor::new(CoalescingPolicy::Baseline, 32, 0);
        let total = p.predict(&cts, 0, k10[0]);
        let per_warp: f64 = cts
            .chunks(32)
            .map(|w| AccessPredictor::new(CoalescingPolicy::Baseline, 32, 0).predict(w, 0, k10[0]))
            .sum();
        assert_eq!(total, per_warp);
    }

    #[test]
    fn mc_averaging_reduces_prediction_variance() {
        let (cts, k10) = ciphertexts(32, b"0123456789abcdef");
        let policy = CoalescingPolicy::rss_rts(4).unwrap();
        let spread = |mc: usize, seed_base: u64| {
            let preds: Vec<f64> = (0..40)
                .map(|s| {
                    AccessPredictor::new(policy, 32, seed_base + s)
                        .with_mc_samples(mc)
                        .predict(&cts, 0, k10[0])
                })
                .collect();
            let mean = preds.iter().sum::<f64>() / preds.len() as f64;
            preds.iter().map(|p| (p - mean).powi(2)).sum::<f64>() / preds.len() as f64
        };
        assert!(spread(16, 1) < spread(1, 1000));
    }

    #[test]
    fn predict_bytes_is_bit_identical_to_predict() {
        // The memoized byte-column path must replay the same RNG stream
        // and the same f64 accumulation as the Block-based path, across
        // guess switches (which rebuild the address table).
        let (cts, k10) = ciphertexts(96, b"0123456789abcdef");
        let column: Vec<u8> = cts.iter().map(|ct| ct[5]).collect();
        for policy in [
            CoalescingPolicy::Baseline,
            CoalescingPolicy::fss(4).unwrap(),
            CoalescingPolicy::rss_rts(4).unwrap(),
        ] {
            let mut a = AccessPredictor::new(policy, 32, 7).with_mc_samples(3);
            let mut b = AccessPredictor::new(policy, 32, 7).with_mc_samples(3);
            for guess in [0u8, k10[5], 255, k10[5]] {
                let va = a.predict(&cts, 5, guess);
                let vb = b.predict_bytes(&column, guess);
                assert_eq!(va.to_bits(), vb.to_bits(), "guess {guess} {policy:?}");
            }
        }
    }

    #[test]
    fn xor_oracle_predictor_counts_whitened_blocks() {
        // A whitening-cipher predictor over 8-byte-entry tables (block
        // index = (b ^ g) >> 3): baseline count = distinct block count.
        let texts: Vec<Block> = (0..32u8)
            .map(|l| {
                let mut b = [0u8; 16];
                b.iter_mut()
                    .enumerate()
                    .for_each(|(k, x)| *x = l.wrapping_mul(37) ^ (k as u8) << 3);
                b
            })
            .collect();
        let key_byte = 0x5a;
        let mut p = AccessPredictor::new(CoalescingPolicy::Baseline, 32, 0)
            .with_oracle(Arc::new(XorWhiteningOracle::new(3, 8)));
        let predicted = p.predict(&texts, 0, key_byte);
        let mut blocks: Vec<u8> = texts.iter().map(|t| (t[0] ^ key_byte) >> 3).collect();
        blocks.sort_unstable();
        blocks.dedup();
        assert_eq!(predicted, blocks.len() as f64);
        // Switching oracles invalidates the memoized address table.
        let aes_pred = p.with_oracle(aes_oracle()).predict(&texts, 0, key_byte);
        let mut aes_blocks: Vec<u8> = texts
            .iter()
            .map(|t| last_round_index(t[0], key_byte) >> 4)
            .collect();
        aes_blocks.sort_unstable();
        aes_blocks.dedup();
        assert_eq!(aes_pred, aes_blocks.len() as f64);
    }

    #[test]
    fn predicted_accesses_maps_all_samples() {
        let (cts, k10) = ciphertexts(32, b"0123456789abcdef");
        let samples = vec![cts.clone(), cts];
        let mut p = AccessPredictor::new(CoalescingPolicy::Baseline, 32, 0);
        let v = predicted_accesses(&mut p, &samples, 0, k10[0]);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0], v[1]);
    }
}
