use crate::error::AttackError;
use crate::oracle::{aes_oracle, TableOracle};
use crate::predict::AccessPredictor;
use crate::stats::{argmax, pearson};
use rcoal_aes::Block;
use rcoal_core::CoalescingPolicy;
use rcoal_parallel::{parallel_map, resolve_threads};
use rcoal_telemetry::MetricsRegistry;
use std::sync::Arc;

/// One observation the attacker collected from the encryption server:
/// the ciphertext lines of one plaintext and its (last-round) execution
/// time.
///
/// The ciphertext lines are shared via [`Arc`]: one launch's ciphertexts
/// are referenced by the timing sample, the functional sample, and every
/// noise-perturbed copy, so cloning a sample never deep-copies blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackSample {
    /// Ciphertext lines in line order.
    pub ciphertexts: Arc<Vec<Block>>,
    /// The timing measurement the attacker correlates against (the paper
    /// grants the attacker the clean last-round time; see §II-C).
    pub time: f64,
}

/// Result of attacking one key byte: the correlation of every guess.
#[derive(Debug, Clone, PartialEq)]
pub struct ByteRecovery {
    /// `correlations[m]` is the Pearson correlation of guess `m`.
    pub correlations: Vec<f64>,
    /// The winning guess (argmax of the correlations).
    pub best_guess: u8,
}

impl ByteRecovery {
    /// Correlation achieved by guess `m`.
    pub fn correlation_of(&self, m: u8) -> f64 {
        self.correlations[usize::from(m)]
    }

    /// Rank of guess `m` among all 256 (0 = highest correlation). The
    /// paper's scatter plots are exactly this data; a defense is working
    /// when the correct byte's rank is large.
    pub fn rank_of(&self, m: u8) -> usize {
        let mine = self.correlations[usize::from(m)];
        self.correlations.iter().filter(|&&c| c > mine).count()
    }
}

/// Result of attacking every subkey byte the workload exposes (16 for
/// the AES last round; 8 for the whitening ciphers).
#[derive(Debug, Clone, PartialEq)]
pub struct KeyRecovery {
    /// Per-byte recovery detail, indexed by byte position `j`.
    pub bytes: Vec<ByteRecovery>,
}

impl KeyRecovery {
    /// The attacker's best guess for the attacked subkey, zero-padded
    /// past the workload's byte count.
    pub fn recovered_key(&self) -> [u8; 16] {
        let mut k = [0u8; 16];
        for (j, b) in self.bytes.iter().enumerate().take(16) {
            k[j] = b.best_guess;
        }
        k
    }

    /// Scores the recovery against the true subkey (only the attacked
    /// prefix of `true_key` is consulted).
    pub fn outcome(&self, true_key: &[u8; 16]) -> RecoveryOutcome {
        let n = self.bytes.len().max(1) as f64;
        let num_correct = self
            .bytes
            .iter()
            .zip(true_key)
            .filter(|(b, &k)| b.best_guess == k)
            .count();
        let avg_correct_correlation = self
            .bytes
            .iter()
            .zip(true_key)
            .map(|(b, &k)| b.correlation_of(k))
            .sum::<f64>()
            / n;
        let avg_rank = self
            .bytes
            .iter()
            .zip(true_key)
            .map(|(b, &k)| b.rank_of(k))
            .sum::<usize>() as f64
            / n;
        RecoveryOutcome {
            bytes_attacked: self.bytes.len(),
            num_correct,
            avg_correct_correlation,
            avg_rank_of_correct: avg_rank,
        }
    }
}

/// Summary of a key-recovery attempt relative to the true key.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryOutcome {
    /// Subkey bytes the attack swept (16 for AES).
    pub bytes_attacked: usize,
    /// Key bytes whose argmax-correlation guess was the true byte
    /// (`bytes_attacked` = complete break).
    pub num_correct: usize,
    /// Mean over the attacked byte positions of the *correct* guess's
    /// correlation — the paper's Figures 7b, 15 and 18a metric.
    pub avg_correct_correlation: f64,
    /// Mean rank of the correct guess among the 256 (0 = always wins).
    pub avg_rank_of_correct: f64,
}

impl RecoveryOutcome {
    /// Whether every attacked byte was recovered.
    pub fn complete(&self) -> bool {
        self.num_correct == self.bytes_attacked
    }
}

/// A correlation timing attack parameterized by the attacker's model of
/// the victim's coalescing policy.
///
/// The attack holds no sample state; call [`Attack::recover_key`] (or the
/// per-byte variants) with the collected [`AttackSample`]s.
#[derive(Debug, Clone)]
pub struct Attack {
    policy: CoalescingPolicy,
    warp_size: usize,
    seed: u64,
    mc_samples: usize,
    threads: Option<usize>,
    metrics: Option<MetricsRegistry>,
    oracle: Arc<dyn TableOracle>,
}

impl Attack {
    /// The baseline attack of Jiang et al.: the attacker assumes stock
    /// coalescing (one subwarp per warp).
    pub fn baseline(warp_size: usize) -> Self {
        Self::against(CoalescingPolicy::Baseline, warp_size)
    }

    /// The corresponding attack against a known defense (§IV-E): the
    /// attacker mirrors `policy` when predicting access counts.
    pub fn against(policy: CoalescingPolicy, warp_size: usize) -> Self {
        Attack {
            policy,
            warp_size,
            seed: 0x5eed,
            mc_samples: 1,
            threads: None,
            metrics: None,
            oracle: aes_oracle(),
        }
    }

    /// Replaces the table oracle (AES-128 last round by default); the
    /// oracle also bounds the attacked byte range.
    pub fn with_oracle(mut self, oracle: Arc<dyn TableOracle>) -> Self {
        self.oracle = oracle;
        self
    }

    /// Number of subkey bytes this attack sweeps.
    pub fn key_bytes(&self) -> usize {
        self.oracle.key_bytes()
    }

    /// Sets the attacker-side randomness seed (RSS/RTS replays).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Averages predictions over `n` Monte-Carlo replays of the defense's
    /// randomness.
    pub fn with_mc_samples(mut self, n: usize) -> Self {
        self.mc_samples = n.max(1);
        self
    }

    /// Sets the worker-thread count for the 256-guess correlation sweep
    /// (`None` defers to `RCOAL_THREADS` / the machine's parallelism).
    /// Every guess has an independent predictor seed, so the result is
    /// bit-identical at any thread count.
    pub fn with_threads(mut self, threads: Option<usize>) -> Self {
        self.threads = threads;
        self
    }

    /// Attaches a host-domain metrics sink. Byte sweeps then record
    /// `span.attack.byte.*` wall-clock spans, an `attack.guesses`
    /// progress counter (one tick per guess correlated, live from any
    /// worker thread), `attack.samples_correlated`, and an
    /// `attack.correlations_per_sec` throughput gauge. Metrics never
    /// influence the recovery itself — results stay bit-identical with
    /// and without a sink.
    pub fn with_metrics(mut self, registry: &MetricsRegistry) -> Self {
        self.metrics = Some(registry.clone());
        self
    }

    /// The mirrored policy.
    pub fn policy(&self) -> CoalescingPolicy {
        self.policy
    }

    /// The configured worker-thread override (for the streaming engine,
    /// which parallelizes per guess exactly like the materialized sweep).
    pub(crate) fn threads_option(&self) -> Option<usize> {
        self.threads
    }

    /// The attached metrics sink, if any.
    pub(crate) fn metrics_ref(&self) -> Option<&MetricsRegistry> {
        self.metrics.as_ref()
    }

    /// The predictor this attack uses for guess `m` (each guess gets an
    /// independent replay seed so randomized-policy replays do not share
    /// a stream across guesses).
    pub fn predictor_for_guess(&self, m: u8) -> AccessPredictor {
        AccessPredictor::new(self.policy, self.warp_size, self.seed ^ u64::from(m))
            .with_mc_samples(self.mc_samples)
            .with_oracle(Arc::clone(&self.oracle))
    }

    /// Computes the correlation of every guess for key byte `j`.
    ///
    /// # Errors
    ///
    /// [`AttackError::ByteIndex`] for `j >= 16` and
    /// [`AttackError::NoSamples`] for an empty sample set.
    pub fn correlations_for_byte(
        &self,
        samples: &[AttackSample],
        j: usize,
    ) -> Result<Vec<f64>, AttackError> {
        if j >= self.oracle.key_bytes() {
            return Err(AttackError::ByteIndex { j });
        }
        if samples.is_empty() {
            return Err(AttackError::NoSamples);
        }
        let times: Vec<f64> = samples.iter().map(|s| s.time).collect();
        let span = self.metrics.as_ref().map(|m| m.span("attack.byte"));
        // Resolve the progress counter once; its clone-free atomic handle
        // is safe to tick from every worker thread.
        let guess_counter = self.metrics.as_ref().map(|m| m.counter("attack.guesses"));
        // Hoist the byte-`j` ciphertext columns out of the sweep: every
        // guess reads the same column, so extracting them per guess
        // would redo `256 × samples × lines` block indexing. Together
        // with the predictor's per-guess address table this memoizes
        // everything about a plaintext that the 256 guesses share.
        let columns: Vec<Vec<u8>> = samples
            .iter()
            .map(|s| s.ciphertexts.iter().map(|ct| ct[j]).collect())
            .collect();
        // Each guess derives its predictor seed from the guess value, so
        // the 256 correlation computations are independent and sweep in
        // parallel with bit-identical results.
        let guesses: Vec<u8> = (0..=255u8).collect();
        let correlations = parallel_map(resolve_threads(self.threads), &guesses, |_, &m| {
            let mut predictor = self.predictor_for_guess(m);
            let predicted: Vec<f64> = columns
                .iter()
                .map(|col| predictor.predict_bytes(col, m))
                .collect();
            let r = pearson(&predicted, &times);
            if let Some(c) = &guess_counter {
                c.inc();
            }
            r
        });
        if let (Some(span), Some(metrics)) = (span, &self.metrics) {
            let elapsed = span.finish();
            metrics
                .counter("attack.samples_correlated")
                .add(guesses.len() as u64 * samples.len() as u64);
            let secs = elapsed.as_secs_f64();
            if secs > 0.0 {
                metrics
                    .gauge("attack.correlations_per_sec")
                    .set((guesses.len() as f64 / secs) as u64);
            }
        }
        Ok(correlations)
    }

    /// Attacks key byte `j`.
    ///
    /// # Errors
    ///
    /// Same as [`Attack::correlations_for_byte`].
    pub fn recover_byte(
        &self,
        samples: &[AttackSample],
        j: usize,
    ) -> Result<ByteRecovery, AttackError> {
        let correlations = self.correlations_for_byte(samples, j)?;
        let best_guess = argmax(&correlations).unwrap_or(0) as u8;
        Ok(ByteRecovery {
            correlations,
            best_guess,
        })
    }

    /// Attacks every subkey byte the oracle exposes (16 for AES).
    ///
    /// # Errors
    ///
    /// [`AttackError::NoSamples`] for an empty sample set.
    pub fn recover_key(&self, samples: &[AttackSample]) -> Result<KeyRecovery, AttackError> {
        let span = self.metrics.as_ref().map(|m| m.span("attack.recover_key"));
        let bytes = (0..self.oracle.key_bytes())
            .map(|j| self.recover_byte(samples, j))
            .collect::<Result<Vec<_>, _>>()?;
        if let Some(span) = span {
            span.finish();
        }
        Ok(KeyRecovery { bytes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcoal_aes::{last_round_index, Aes128};

    /// Builds noise-free samples whose "time" is the true baseline
    /// coalesced-access count summed over the byte positions in `bytes` —
    /// all 16 models the last-round time; a single byte isolates that
    /// byte's channel for fast deterministic tests.
    fn synthetic_samples_for(
        n: usize,
        key: &[u8; 16],
        bytes: &[usize],
    ) -> (Vec<AttackSample>, [u8; 16]) {
        let aes = Aes128::new(key);
        let k10 = aes.last_round_key();
        let samples = (0..n)
            .map(|i| {
                let cts: Vec<Block> = (0..32)
                    .map(|line| {
                        let mut pt = [0u8; 16];
                        for (b, x) in pt.iter_mut().enumerate() {
                            *x = (i * 131 + line * 17 + b * 29) as u8
                                ^ (i as u8)
                                ^ (line as u8).rotate_left(3);
                        }
                        aes.encrypt_block(pt)
                    })
                    .collect();
                // True number of baseline last-round accesses over the
                // requested byte positions.
                let mut time = 0.0;
                for &j in bytes {
                    let mut blocks: Vec<u8> = cts
                        .iter()
                        .map(|ct| last_round_index(ct[j], k10[j]) >> 4)
                        .collect();
                    blocks.sort_unstable();
                    blocks.dedup();
                    time += blocks.len() as f64;
                }
                AttackSample {
                    ciphertexts: Arc::new(cts),
                    time,
                }
            })
            .collect();
        (samples, k10)
    }

    #[test]
    fn baseline_attack_recovers_byte_zero_from_its_clean_channel() {
        // Time carries only byte 0's access count: the correlation of the
        // correct guess is near 1 and recovery is immediate.
        let (samples, k10) = synthetic_samples_for(80, b"attack test key!", &[0]);
        let attack = Attack::baseline(32);
        let rec = attack.recover_byte(&samples, 0).unwrap();
        assert_eq!(rec.best_guess, k10[0]);
        assert_eq!(rec.rank_of(k10[0]), 0);
        assert!(rec.correlation_of(k10[0]) > 0.95);
    }

    #[test]
    fn baseline_attack_ranks_correct_byte_highly_under_full_time() {
        // With all 16 bytes contributing, each byte's share of the time
        // variance is ~1/16, so at small N the correct guess may not be
        // the absolute argmax (the paper needs its low-noise simulator for
        // that) — but it must already rank far above the median guess.
        let (samples, k10) =
            synthetic_samples_for(200, b"attack test key!", &(0..16).collect::<Vec<_>>());
        let attack = Attack::baseline(32);
        let rec = attack.recover_byte(&samples, 0).unwrap();
        assert!(
            rec.rank_of(k10[0]) < 16,
            "correct byte ranked {} of 256",
            rec.rank_of(k10[0])
        );
        assert!(rec.correlation_of(k10[0]) > 0.1);
    }

    #[test]
    fn baseline_attack_recovers_two_target_bytes() {
        let (samples, k10) = synthetic_samples_for(80, b"attack test key!", &[3, 7]);
        let attack = Attack::baseline(32);
        for j in [3usize, 7] {
            let rec = attack.recover_byte(&samples, j).unwrap();
            assert_eq!(rec.best_guess, k10[j], "byte {j}");
        }
        // An untargeted byte's channel is absent: its correct guess holds
        // no special rank.
        let rec = attack.recover_byte(&samples, 11).unwrap();
        assert!(rec.correlation_of(k10[11]).abs() < 0.4);
    }

    #[test]
    fn constant_time_defeats_the_attack() {
        let (mut samples, k10) = synthetic_samples_for(100, b"attack test key!", &[0]);
        for s in &mut samples {
            s.time = 512.0; // e.g. coalescing disabled: always 32 × 16
        }
        let attack = Attack::baseline(32);
        let rec = attack.recover_byte(&samples, 0).unwrap();
        assert_eq!(rec.correlation_of(k10[0]), 0.0);
        assert!(rec.correlations.iter().all(|&c| c == 0.0));
    }

    #[test]
    fn rank_counts_strictly_better_guesses() {
        let br = ByteRecovery {
            correlations: vec![0.1, 0.9, 0.5, 0.9],
            best_guess: 1,
        };
        assert_eq!(br.rank_of(1), 0);
        assert_eq!(br.rank_of(3), 0, "ties don't worsen rank");
        assert_eq!(br.rank_of(2), 2);
        assert_eq!(br.rank_of(0), 3);
    }

    #[test]
    fn outcome_aggregates() {
        let (samples, k10) = synthetic_samples_for(60, b"attack test key!", &[0, 1]);
        let rec = Attack::baseline(32).recover_key(&samples).unwrap();
        let o = rec.outcome(&k10);
        assert!(o.num_correct >= 2, "bytes 0 and 1 carry clean channels");
        assert_eq!(rec.bytes[0].rank_of(k10[0]), 0);
        assert_eq!(rec.bytes[1].rank_of(k10[1]), 0);
        assert!(o.avg_correct_correlation > 0.0);
        // 14 untargeted bytes rank randomly (mean 127.5), two rank 0.
        assert!(o.avg_rank_of_correct < 220.0);
        assert!(!o.complete() || o.num_correct == 16);
        assert_eq!(rec.recovered_key()[0], rec.bytes[0].best_guess);
    }

    #[test]
    fn metrics_track_progress_without_changing_results() {
        let (samples, _) = synthetic_samples_for(20, b"attack test key!", &[0]);
        let plain = Attack::baseline(32).recover_byte(&samples, 0).unwrap();
        let registry = MetricsRegistry::new();
        let metered = Attack::baseline(32)
            .with_metrics(&registry)
            .recover_byte(&samples, 0)
            .unwrap();
        assert_eq!(metered, plain, "metrics must not perturb the recovery");
        let snap = registry.snapshot();
        assert_eq!(snap.counters["attack.guesses"], 256);
        assert_eq!(snap.counters["attack.samples_correlated"], 256 * 20);
        assert_eq!(snap.counters["span.attack.byte.calls"], 1);
    }

    #[test]
    fn recover_key_records_its_span() {
        let (samples, _) = synthetic_samples_for(10, b"attack test key!", &[0]);
        let registry = MetricsRegistry::new();
        Attack::baseline(32)
            .with_metrics(&registry)
            .recover_key(&samples)
            .unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counters["span.attack.recover_key.calls"], 1);
        assert_eq!(snap.counters["span.attack.byte.calls"], 16);
        assert_eq!(snap.counters["attack.guesses"], 16 * 256);
    }

    #[test]
    fn byte_index_and_empty_samples_are_typed_errors() {
        let attack = Attack::baseline(32);
        assert_eq!(
            attack.correlations_for_byte(&[], 16).unwrap_err(),
            crate::AttackError::ByteIndex { j: 16 }
        );
        assert_eq!(
            attack.recover_byte(&[], 0).unwrap_err(),
            crate::AttackError::NoSamples
        );
        assert_eq!(
            attack.recover_key(&[]).unwrap_err(),
            crate::AttackError::NoSamples
        );
    }
}
