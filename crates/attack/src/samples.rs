//! Sample-count estimation for a successful correlation attack
//! (paper Eq. 4, following Mangard's and Tiri et al.'s derivations).

use crate::error::AttackError;

/// Quantile function (inverse CDF) of the standard normal distribution,
/// using the Beasley-Springer-Moro / Acklam rational approximation
/// (absolute error below 1.2e-9 over (0, 1)).
///
/// # Errors
///
/// [`AttackError::Domain`] unless `0 < p < 1`.
pub fn z_quantile(p: f64) -> Result<f64, AttackError> {
    if !(p > 0.0 && p < 1.0) {
        return Err(AttackError::Domain(format!(
            "quantile requires 0 < p < 1, got {p}"
        )));
    }
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    let p_low = 0.02425;
    let z = if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -z_quantile(1.0 - p)?
    };
    Ok(z)
}

/// Expected number of timing samples for a successful correlation attack
/// at success rate `alpha`, given the attack's correlation `rho`
/// (paper Eq. 4):
///
/// `S = 3 + 8 · (Z_α / ln((1+ρ)/(1−ρ)))²`
///
/// Returns `f64::INFINITY` when `rho` is (numerically) zero and the
/// channel leaks nothing.
///
/// # Errors
///
/// [`AttackError::Domain`] unless `0 < alpha < 1` and `|rho| < 1`.
pub fn samples_needed(rho: f64, alpha: f64) -> Result<f64, AttackError> {
    if !(rho.is_finite() && rho.abs() < 1.0) {
        return Err(AttackError::Domain(format!(
            "correlation must satisfy |rho| < 1, got {rho}"
        )));
    }
    if rho.abs() < 1e-12 {
        return Ok(f64::INFINITY);
    }
    let z = z_quantile(alpha)?;
    let fisher = ((1.0 + rho) / (1.0 - rho)).ln();
    Ok(3.0 + 8.0 * (z / fisher).powi(2))
}

/// The paper's small-`rho` approximation of Eq. 4: `S ≈ 2·Z_α² / ρ²`
/// (≈ 11/ρ² at α = 0.99).
///
/// # Errors
///
/// [`AttackError::Domain`] unless `0 < alpha < 1` and `|rho| < 1`.
pub fn samples_needed_approx(rho: f64, alpha: f64) -> Result<f64, AttackError> {
    if !(rho.is_finite() && rho.abs() < 1.0) {
        return Err(AttackError::Domain(format!(
            "correlation must satisfy |rho| < 1, got {rho}"
        )));
    }
    if rho.abs() < 1e-12 {
        return Ok(f64::INFINITY);
    }
    let z = z_quantile(alpha)?;
    Ok(2.0 * z * z / (rho * rho))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zq(p: f64) -> f64 {
        z_quantile(p).unwrap()
    }

    #[test]
    fn quantile_known_values() {
        assert!(zq(0.5).abs() < 1e-9);
        assert!((zq(0.975) - 1.959964).abs() < 1e-4);
        assert!((zq(0.99) - 2.326348).abs() < 1e-4);
        assert!((zq(0.01) + 2.326348).abs() < 1e-4);
        assert!((zq(0.0001) + 3.719016).abs() < 1e-3);
    }

    #[test]
    fn quantile_is_monotone() {
        let mut prev = f64::NEG_INFINITY;
        for i in 1..100 {
            let z = zq(f64::from(i) / 100.0);
            assert!(z > prev);
            prev = z;
        }
    }

    #[test]
    fn paper_constant_two_z_squared_is_about_11() {
        // "With α = 0.99, 2 × Z_α² is approximately 11."
        let z = zq(0.99);
        assert!((2.0 * z * z - 10.82).abs() < 0.05);
    }

    #[test]
    fn more_correlation_needs_fewer_samples() {
        let s_strong = samples_needed(0.9, 0.99).unwrap();
        let s_weak = samples_needed(0.05, 0.99).unwrap();
        assert!(s_strong < s_weak);
        assert!(s_weak > 1000.0);
        assert_eq!(samples_needed(0.0, 0.99).unwrap(), f64::INFINITY);
    }

    #[test]
    fn approximation_matches_exact_for_small_rho() {
        for rho in [0.01, 0.03, 0.05] {
            let exact = samples_needed(rho, 0.99).unwrap();
            let approx = samples_needed_approx(rho, 0.99).unwrap();
            let rel = (exact - approx).abs() / exact;
            assert!(rel < 0.05, "rho={rho}: exact={exact}, approx={approx}");
        }
    }

    #[test]
    fn normalized_ratio_matches_table_2_intuition() {
        // Table II: FSS+RTS at M=16 has ρ = 0.03 vs ρ = 1-ish baseline;
        // S scales as 1/ρ², so 0.03 → ~1000× more samples than ρ = 1 — the
        // paper's "961×" figure comes from this scaling.
        let s =
            samples_needed_approx(0.03, 0.99).unwrap() / samples_needed_approx(0.93, 0.99).unwrap();
        assert!((500.0..1500.0).contains(&s));
    }

    #[test]
    fn domain_violations_are_typed_errors() {
        assert!(matches!(z_quantile(1.0), Err(AttackError::Domain(_))));
        assert!(matches!(z_quantile(0.0), Err(AttackError::Domain(_))));
        assert!(matches!(z_quantile(f64::NAN), Err(AttackError::Domain(_))));
        assert!(matches!(
            samples_needed(1.0, 0.99),
            Err(AttackError::Domain(_))
        ));
        assert!(matches!(
            samples_needed_approx(-1.0, 0.99),
            Err(AttackError::Domain(_))
        ));
    }
}
