/// Pearson correlation coefficient of two equal-length samples.
///
/// Returns 0.0 for every degenerate input — mismatched lengths, fewer
/// than two elements, a constant (zero-variance) series, or non-finite
/// values anywhere in either series. The attacker learns nothing from a
/// flat or corrupt series, which is exactly the situation a perfect
/// defense (or an injected fault) produces, so degeneracy never needs to
/// abort a sweep. Finite results are clamped to `[-1, 1]` against
/// floating-point drift.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len(), "pearson requires equal-length samples");
    let n = x.len();
    if n != y.len() || n < 2 {
        return 0.0;
    }
    let nf = n as f64;
    let mx = x.iter().sum::<f64>() / nf;
    let my = y.iter().sum::<f64>() / nf;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for i in 0..n {
        let dx = x[i] - mx;
        let dy = y[i] - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if !(vx > 0.0 && vy > 0.0 && vx.is_finite() && vy.is_finite()) {
        return 0.0;
    }
    let r = cov / (vx.sqrt() * vy.sqrt());
    if r.is_finite() {
        r.clamp(-1.0, 1.0)
    } else {
        0.0
    }
}

/// Index of the maximum element (first in case of ties); `None` for an
/// empty slice.
pub fn argmax(values: &[f64]) -> Option<usize> {
    values
        .iter()
        .enumerate()
        .fold(None, |best: Option<(usize, f64)>, (i, &v)| match best {
            Some((_, bv)) if bv >= v => best,
            _ => Some((i, v)),
        })
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive_and_negative_correlation() {
        let x: Vec<f64> = (0..10).map(f64::from).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 1.0).collect();
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let z: Vec<f64> = x.iter().map(|v| -2.0 * v).collect();
        assert!((pearson(&x, &z) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_series_yield_zero() {
        let x = vec![5.0; 8];
        let y: Vec<f64> = (0..8).map(f64::from).collect();
        assert_eq!(pearson(&x, &y), 0.0);
        assert_eq!(pearson(&y, &x), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn independent_noise_is_weakly_correlated() {
        // Deterministic pseudo-noise.
        let x: Vec<f64> = (0..2000).map(|i| f64::from((i * 48271) % 1013)).collect();
        let y: Vec<f64> = (0..2000)
            .map(|i| f64::from((i * 16807 + 7) % 997))
            .collect();
        assert!(pearson(&x, &y).abs() < 0.1);
    }

    #[test]
    fn pearson_is_symmetric_and_scale_invariant() {
        let x = [1.0, 4.0, 2.0, 8.0, 5.0];
        let y = [2.0, 3.0, 1.0, 9.0, 4.0];
        let r1 = pearson(&x, &y);
        assert!((r1 - pearson(&y, &x)).abs() < 1e-12);
        let y_scaled: Vec<f64> = y.iter().map(|v| 100.0 * v - 40.0).collect();
        assert!((r1 - pearson(&x, &y_scaled)).abs() < 1e-12);
    }

    #[test]
    fn non_finite_inputs_yield_zero_not_nan() {
        let x = [1.0, f64::NAN, 3.0, 4.0];
        let y = [2.0, 1.0, 5.0, 3.0];
        assert_eq!(pearson(&x, &y), 0.0);
        assert_eq!(pearson(&y, &x), 0.0);
        let inf = [1.0, f64::INFINITY, 3.0, 4.0];
        assert_eq!(pearson(&inf, &y), 0.0);
    }

    #[test]
    fn result_is_clamped_to_unit_interval() {
        let x: Vec<f64> = (0..50).map(|i| f64::from(i) * 1e-9 + 1e9).collect();
        let y: Vec<f64> = x.iter().map(|v| v * 2.0).collect();
        let r = pearson(&x, &y);
        assert!((-1.0..=1.0).contains(&r), "r = {r}");
    }

    #[test]
    fn argmax_picks_first_maximum() {
        assert_eq!(argmax(&[1.0, 5.0, 5.0, 2.0]), Some(1));
        assert_eq!(argmax(&[-3.0, -1.0, -2.0]), Some(1));
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[42.0]), Some(0));
    }
}
