//! Single-pass streaming attack engine.
//!
//! The materialized drivers in [`crate::recover`] hold every
//! [`AttackSample`] and every per-guess prediction column in memory
//! before correlating — fine at the paper's 10²–10⁴ budgets, hopeless at
//! the 10⁵–10⁷ budgets Eq. 4 (S ≈ 11/ρ²) demands for the high-security
//! RCoal configurations. This module replaces that with a chunked
//! pipeline whose resident state is *independent of the sample count*:
//!
//! * [`PearsonAccumulator`] — a bivariate Welford accumulator (centered
//!   incremental moments) replacing the cancellation-prone raw sums the
//!   old online path used. Its final correlation agrees with the
//!   two-pass [`crate::stats::pearson`] to ~1e-9 on any stream either
//!   can handle, and it stays accurate where raw sums catastrophically
//!   cancel (large means, tiny variances).
//! * [`SampleSource`] — a pull-based chunk producer. Replay sources
//!   wrap collected samples; `rcoal-experiments` provides a
//!   simulator-backed source that *generates* launches chunk by chunk.
//! * [`StreamingByteRecovery`] / [`StreamingKeyRecovery`] — the
//!   256-guess sweep over a chunk, parallelized per guess. Each guess
//!   owns its predictor (seeded `attack.seed ^ guess`, exactly like the
//!   materialized sweep) and its accumulator, and consumes samples in
//!   stream order — so the accumulator state is **bit-identical at any
//!   thread count and any chunk size**.
//! * [`EarlyStop`] — terminate once the leader's separation is
//!   statistically stable: the same guess leads for `stable_checkpoints`
//!   consecutive checkpoints with a margin above `margin_k / √n` (the
//!   scale of a Pearson estimate's sampling error). A secure stream's
//!   256 near-zero correlations keep the top-two gap well below that
//!   band and the leader unstable, so it never confidently terminates.

use crate::error::AttackError;
use crate::online::even_checkpoints;
use crate::predict::AccessPredictor;
use crate::recover::{Attack, AttackSample, ByteRecovery, KeyRecovery};
use rcoal_parallel::{parallel_map, resolve_threads};

/// Incremental Pearson correlation over a stream of `(x, y)` pairs,
/// using bivariate Welford updates (centered moments) instead of raw
/// `Σx, Σx², Σxy` sums.
///
/// The raw-sum correlation `(Σxy − ΣxΣy/n) / …` subtracts two nearly
/// equal large numbers when the means dominate the variances, losing all
/// significant digits; the centered recurrence never forms those large
/// intermediates. Degenerate streams report `0.0` with the exact
/// semantics of [`crate::stats::pearson`]: fewer than two samples, a
/// zero-variance axis, or any non-finite contamination.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PearsonAccumulator {
    n: u64,
    mean_x: f64,
    mean_y: f64,
    m2_x: f64,
    m2_y: f64,
    cxy: f64,
}

impl PearsonAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        PearsonAccumulator::default()
    }

    /// Feeds one `(x, y)` observation.
    pub fn push(&mut self, x: f64, y: f64) {
        self.n += 1;
        let nf = self.n as f64;
        let dx = x - self.mean_x;
        let dy = y - self.mean_y;
        self.mean_x += dx / nf;
        self.mean_y += dy / nf;
        // `dy2` uses the *updated* mean — the standard bivariate Welford
        // co-moment recurrence.
        let dy2 = y - self.mean_y;
        self.m2_x += dx * (x - self.mean_x);
        self.m2_y += dy * dy2;
        self.cxy += dx * dy2;
    }

    /// Observations consumed.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Whether no observations have been consumed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Mean of the `x` stream (0.0 while empty).
    pub fn mean_x(&self) -> f64 {
        self.mean_x
    }

    /// Mean of the `y` stream (0.0 while empty).
    pub fn mean_y(&self) -> f64 {
        self.mean_y
    }

    /// Current Pearson correlation; `0.0` for degenerate streams, with
    /// the same semantics as [`crate::stats::pearson`] (and the same
    /// `[-1, 1]` clamp).
    pub fn correlation(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let (vx, vy) = (self.m2_x, self.m2_y);
        if !(vx > 0.0 && vy > 0.0 && vx.is_finite() && vy.is_finite()) {
            return 0.0;
        }
        let r = self.cxy / (vx.sqrt() * vy.sqrt());
        if r.is_finite() {
            r.clamp(-1.0, 1.0)
        } else {
            0.0
        }
    }

    /// The raw bit patterns of the full accumulator state
    /// `(n, mean_x, mean_y, m2_x, m2_y, cxy)` — the object of the
    /// bit-identity contract: two runs that processed the same per-guess
    /// sample sequence produce equal `state_bits` regardless of thread
    /// count or chunk size.
    pub fn state_bits(&self) -> [u64; 6] {
        [
            self.n,
            self.mean_x.to_bits(),
            self.mean_y.to_bits(),
            self.m2_x.to_bits(),
            self.m2_y.to_bits(),
            self.cxy.to_bits(),
        ]
    }
}

/// A pull-based producer of [`AttackSample`] chunks.
///
/// Implementations must be deterministic for a fixed construction (the
/// concatenation of all chunks is one well-defined stream, whatever
/// chunk sizes the consumer asks for) — that is what makes streaming
/// results reproducible and chunk-size invariant.
pub trait SampleSource {
    /// Appends up to `max` samples to `out` and returns how many were
    /// produced. Returning `0` means the stream is exhausted.
    ///
    /// # Errors
    ///
    /// Source-specific failures surface as [`AttackError::Source`].
    fn next_chunk(&mut self, max: usize, out: &mut Vec<AttackSample>)
        -> Result<usize, AttackError>;

    /// Samples remaining, when the source knows (replay sources do;
    /// generative sources may not).
    fn remaining_hint(&self) -> Option<usize> {
        None
    }
}

/// Replay-backed [`SampleSource`] over already-collected samples.
/// Chunks share the underlying ciphertext blocks via `Arc`, so replay
/// costs no block copies.
#[derive(Debug, Clone)]
pub struct SliceSource<'a> {
    samples: &'a [AttackSample],
    pos: usize,
}

impl<'a> SliceSource<'a> {
    /// Streams `samples` from the beginning.
    pub fn new(samples: &'a [AttackSample]) -> Self {
        SliceSource { samples, pos: 0 }
    }
}

impl SampleSource for SliceSource<'_> {
    fn next_chunk(
        &mut self,
        max: usize,
        out: &mut Vec<AttackSample>,
    ) -> Result<usize, AttackError> {
        let take = max.min(self.samples.len() - self.pos);
        out.extend_from_slice(&self.samples[self.pos..self.pos + take]);
        self.pos += take;
        Ok(take)
    }

    fn remaining_hint(&self) -> Option<usize> {
        Some(self.samples.len() - self.pos)
    }
}

/// One guess's streaming state: its independently seeded predictor plus
/// its correlation accumulator.
#[derive(Debug, Clone)]
struct GuessLane {
    guess: u8,
    predictor: AccessPredictor,
    acc: PearsonAccumulator,
}

/// Streaming recovery of one key byte: 256 [`GuessLane`]s fed chunk by
/// chunk, parallelized per guess.
///
/// Resident state is ~256 predictors + accumulators — independent of how
/// many samples flow through. Determinism contract: lane `m` consumes
/// the stream in order whatever the chunking, and lanes are independent,
/// so the accumulator state (and therefore every correlation, argmax,
/// and rank) is bit-identical at any thread count and chunk size.
#[derive(Debug, Clone)]
pub struct StreamingByteRecovery {
    lanes: Vec<GuessLane>,
    byte: usize,
    threads: Option<usize>,
    n: usize,
}

impl StreamingByteRecovery {
    /// Starts a streaming recovery of key byte `byte`, mirroring
    /// `attack`'s policy, oracle, per-guess seeds, and thread count.
    ///
    /// # Errors
    ///
    /// [`AttackError::ByteIndex`] for `byte >= attack.key_bytes()`.
    pub fn new(attack: &Attack, byte: usize) -> Result<Self, AttackError> {
        if byte >= attack.key_bytes() {
            return Err(AttackError::ByteIndex { j: byte });
        }
        let lanes = (0..=255u8)
            .map(|m| GuessLane {
                guess: m,
                predictor: attack.predictor_for_guess(m),
                acc: PearsonAccumulator::new(),
            })
            .collect();
        Ok(StreamingByteRecovery {
            lanes,
            byte,
            threads: attack.threads_option(),
            n: 0,
        })
    }

    /// The key byte position this engine recovers.
    pub fn byte(&self) -> usize {
        self.byte
    }

    /// Samples consumed so far.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether no samples have been consumed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Feeds one chunk of samples to all 256 guesses.
    ///
    /// The byte column is extracted once per sample (not once per
    /// guess), then each lane processes the chunk sequentially into its
    /// own accumulator on a worker thread.
    pub fn push_chunk(&mut self, chunk: &[AttackSample]) {
        if chunk.is_empty() {
            return;
        }
        let byte = self.byte;
        let columns: Vec<Vec<u8>> = chunk
            .iter()
            .map(|s| s.ciphertexts.iter().map(|ct| ct[byte]).collect())
            .collect();
        let times: Vec<f64> = chunk.iter().map(|s| s.time).collect();
        let threads = resolve_threads(self.threads);
        let lanes = std::mem::take(&mut self.lanes);
        self.lanes = parallel_map(threads, &lanes, |_, lane| {
            let mut lane = lane.clone();
            for (col, &t) in columns.iter().zip(&times) {
                let x = lane.predictor.predict_bytes(col, lane.guess);
                lane.acc.push(x, t);
            }
            lane
        });
        self.n += chunk.len();
    }

    /// Current correlation of guess `m` (0.0 while degenerate).
    pub fn correlation_of(&self, m: u8) -> f64 {
        self.lanes[usize::from(m)].acc.correlation()
    }

    /// Accumulator of guess `m` (for state inspection / bit-identity
    /// checks).
    pub fn accumulator(&self, m: u8) -> &PearsonAccumulator {
        &self.lanes[usize::from(m)].acc
    }

    /// The guess currently leading — an allocation-free scan over the
    /// accumulators (first maximum wins, matching
    /// [`crate::stats::argmax`]).
    pub fn best_guess(&self) -> u8 {
        self.leader().0
    }

    /// `(leader, leader_corr, runner_up_corr)` in one scan.
    pub fn leader(&self) -> (u8, f64, f64) {
        let mut best = 0usize;
        let mut best_r = f64::NEG_INFINITY;
        let mut second_r = f64::NEG_INFINITY;
        for (i, lane) in self.lanes.iter().enumerate() {
            let r = lane.acc.correlation();
            if r > best_r {
                second_r = best_r;
                best_r = r;
                best = i;
            } else if r > second_r {
                second_r = r;
            }
        }
        (best as u8, best_r, second_r)
    }

    /// Snapshot of the full recovery state (the materialized-engine
    /// result type).
    pub fn snapshot(&self) -> ByteRecovery {
        let correlations: Vec<f64> = self.lanes.iter().map(|l| l.acc.correlation()).collect();
        ByteRecovery {
            best_guess: self.best_guess(),
            correlations,
        }
    }
}

/// Streaming recovery of every subkey byte the oracle exposes:
/// `key_bytes × 256` lanes fed from one pass over the stream.
#[derive(Debug, Clone)]
pub struct StreamingKeyRecovery {
    bytes: Vec<StreamingByteRecovery>,
}

impl StreamingKeyRecovery {
    /// Starts a streaming recovery of all `attack.key_bytes()` subkey
    /// bytes.
    ///
    /// # Errors
    ///
    /// Never fails for a well-formed oracle; propagates
    /// [`AttackError::ByteIndex`] defensively.
    pub fn new(attack: &Attack) -> Result<Self, AttackError> {
        let bytes = (0..attack.key_bytes())
            .map(|j| StreamingByteRecovery::new(attack, j))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(StreamingKeyRecovery { bytes })
    }

    /// Samples consumed so far.
    pub fn len(&self) -> usize {
        self.bytes.first().map_or(0, StreamingByteRecovery::len)
    }

    /// Whether no samples have been consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-byte streaming engines, indexed by byte position.
    pub fn byte_engines(&self) -> &[StreamingByteRecovery] {
        &self.bytes
    }

    /// Feeds one chunk of samples to every byte engine.
    pub fn push_chunk(&mut self, chunk: &[AttackSample]) {
        for engine in &mut self.bytes {
            engine.push_chunk(chunk);
        }
    }

    /// Snapshot of the full key recovery.
    pub fn snapshot(&self) -> KeyRecovery {
        KeyRecovery {
            bytes: self
                .bytes
                .iter()
                .map(StreamingByteRecovery::snapshot)
                .collect(),
        }
    }
}

/// The early-termination rule: stop once the same guess has led for
/// `stable_checkpoints` consecutive checkpoints, each time with a
/// top-two correlation margin above `margin_k / √n`.
///
/// `1/√n` is the scale of a Pearson estimate's sampling error, so the
/// margin test asks "is the leader's separation larger than estimation
/// noise?". On a secure stream all 256 correlations are O(1/√n) noise
/// and the top-two *gap* is far smaller still, so neither the margin nor
/// the stability condition holds and the stream runs to its budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EarlyStop {
    /// Consecutive qualifying checkpoints required (≥ 1).
    pub stable_checkpoints: usize,
    /// Margin threshold scale: the top-two gap must exceed
    /// `margin_k / √n`.
    pub margin_k: f64,
}

impl Default for EarlyStop {
    fn default() -> Self {
        EarlyStop {
            stable_checkpoints: 3,
            margin_k: 5.0,
        }
    }
}

impl EarlyStop {
    /// Whether `margin` at sample count `n` clears the `margin_k / √n`
    /// band.
    pub fn margin_ok(&self, margin: f64, n: usize) -> bool {
        n > 0 && margin > self.margin_k / (n as f64).sqrt()
    }
}

/// Tracks leader stability across checkpoints for one byte position.
#[derive(Debug, Clone, Copy, Default)]
struct StopTracker {
    prev_leader: Option<u8>,
    streak: usize,
}

impl StopTracker {
    /// Observes one checkpoint; returns the current qualifying streak.
    fn observe(&mut self, rule: &EarlyStop, leader: u8, margin: f64, n: usize) -> usize {
        let qualifies = rule.margin_ok(margin, n);
        self.streak = if qualifies && self.prev_leader == Some(leader) {
            self.streak + 1
        } else {
            usize::from(qualifies)
        };
        self.prev_leader = Some(leader);
        self.streak
    }

    fn stable(&self, rule: &EarlyStop) -> bool {
        self.streak >= rule.stable_checkpoints.max(1)
    }
}

/// Options for the streaming drivers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamOptions {
    /// Sample budget: the stream stops here even without early
    /// termination.
    pub max_samples: usize,
    /// Samples pulled from the source per chunk (each chunk is one
    /// parallel 256-guess sweep). `0` is treated as 1.
    pub chunk: usize,
    /// Samples between early-stop/trajectory checkpoints; `0` derives
    /// `max(1, max_samples / 16)`. Checkpoints land on exact sample
    /// counts regardless of the chunk size (chunks are split
    /// internally), so trajectories and termination points are
    /// chunk-size invariant too.
    pub checkpoint_every: usize,
    /// Early-termination rule; `None` always runs to the budget.
    pub early_stop: Option<EarlyStop>,
}

impl StreamOptions {
    /// Streams up to `max_samples` with a 4096-sample chunk, derived
    /// checkpoints, and no early termination.
    pub fn new(max_samples: usize) -> Self {
        StreamOptions {
            max_samples,
            chunk: 4096,
            checkpoint_every: 0,
            early_stop: None,
        }
    }

    /// Sets the chunk size.
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        self.chunk = chunk;
        self
    }

    /// Sets the checkpoint spacing.
    pub fn with_checkpoint_every(mut self, every: usize) -> Self {
        self.checkpoint_every = every;
        self
    }

    /// Arms early termination.
    pub fn with_early_stop(mut self, rule: EarlyStop) -> Self {
        self.early_stop = Some(rule);
        self
    }

    fn resolved_checkpoint_every(&self) -> usize {
        if self.checkpoint_every > 0 {
            self.checkpoint_every
        } else {
            (self.max_samples / 16).max(1)
        }
    }
}

/// One point of the online attacker's trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamCheckpoint {
    /// Samples consumed at this checkpoint.
    pub samples: usize,
    /// The guess leading at this checkpoint.
    pub leader: u8,
    /// The leader's correlation.
    pub leader_corr: f64,
    /// The runner-up's correlation.
    pub runner_up_corr: f64,
    /// `leader_corr - runner_up_corr`.
    pub margin: f64,
    /// Consecutive qualifying checkpoints so far (under the armed
    /// [`EarlyStop`] rule; 0 when none is armed).
    pub stable_for: usize,
}

/// Result of a streaming single-byte recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamRecovery {
    /// Byte position recovered.
    pub byte: usize,
    /// Final recovery state (materialized-engine result type).
    pub recovery: ByteRecovery,
    /// Samples actually consumed.
    pub samples: usize,
    /// Whether the early-stop rule fired before the budget/stream end.
    pub terminated_early: bool,
    /// The checkpoint trajectory.
    pub checkpoints: Vec<StreamCheckpoint>,
}

/// Result of a streaming full-key recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamKeyRecovery {
    /// Final recovery state (materialized-engine result type).
    pub recovery: KeyRecovery,
    /// Samples actually consumed.
    pub samples: usize,
    /// Whether every byte's early-stop rule fired before the budget.
    pub terminated_early: bool,
    /// Checkpoints evaluated.
    pub checkpoints: usize,
}

/// Evenly spaced checkpoint counts for a stream of `budget` samples —
/// re-exported convenience over [`even_checkpoints`].
pub fn stream_checkpoints(budget: usize, count: usize) -> Vec<usize> {
    even_checkpoints(budget, count)
}

/// Streams up to `opts.max_samples` from `source` and recovers key byte
/// `byte` in a single pass. Peak resident state is the 256 guess lanes
/// plus one chunk — independent of the sample count.
///
/// With `opts.early_stop` armed, the stream terminates at the first
/// checkpoint where the leader has been stable (see [`EarlyStop`]).
///
/// When `attack` carries a metrics sink, each checkpoint updates the
/// online-attacker channel: `attack.stream.samples`,
/// `attack.stream.leader`, `attack.stream.margin_ppm`, and
/// `attack.stream.stable` gauges plus an `attack.stream.checkpoints`
/// counter; early termination ticks `attack.stream.terminated`. Metrics
/// never influence the recovery.
///
/// # Errors
///
/// [`AttackError::ByteIndex`] for an out-of-range byte,
/// [`AttackError::NoSamples`] when the source yields nothing, and any
/// [`AttackError::Source`] the source reports.
pub fn stream_recover_byte(
    attack: &Attack,
    source: &mut dyn SampleSource,
    byte: usize,
    opts: &StreamOptions,
) -> Result<StreamRecovery, AttackError> {
    let span = attack.metrics_ref().map(|m| m.span("attack.stream_byte"));
    let mut engine = StreamingByteRecovery::new(attack, byte)?;
    let rule = opts.early_stop;
    let mut tracker = StopTracker::default();
    let mut checkpoints = Vec::new();
    let mut terminated = false;

    drive_stream(
        source,
        opts,
        &mut engine,
        StreamingByteRecovery::push_chunk,
        |engine, n| {
            let cp = evaluate_checkpoint(attack, engine, rule.as_ref(), &mut tracker, n);
            checkpoints.push(cp);
            let stop = rule.is_some_and(|r| tracker.stable(&r));
            terminated = terminated || stop;
            stop
        },
    )?;

    if engine.is_empty() {
        return Err(AttackError::NoSamples);
    }
    // Close the trajectory at the actual end of the stream (budget or
    // source exhaustion between checkpoints).
    if checkpoints.last().map(|c| c.samples) != Some(engine.len()) {
        let cp = evaluate_checkpoint(attack, &engine, rule.as_ref(), &mut tracker, engine.len());
        checkpoints.push(cp);
    }
    finish_stream_metrics(attack, engine.len(), terminated);
    if let Some(span) = span {
        span.finish();
    }
    Ok(StreamRecovery {
        byte,
        recovery: engine.snapshot(),
        samples: engine.len(),
        terminated_early: terminated,
        checkpoints,
    })
}

/// Streams up to `opts.max_samples` from `source` and recovers every
/// subkey byte in a single pass. With `opts.early_stop` armed, the
/// stream terminates once **every** byte's leader is stable.
///
/// # Errors
///
/// [`AttackError::NoSamples`] when the source yields nothing, and any
/// [`AttackError::Source`] the source reports.
pub fn stream_recover_key(
    attack: &Attack,
    source: &mut dyn SampleSource,
    opts: &StreamOptions,
) -> Result<StreamKeyRecovery, AttackError> {
    let span = attack.metrics_ref().map(|m| m.span("attack.stream_key"));
    let mut engine = StreamingKeyRecovery::new(attack)?;
    let rule = opts.early_stop;
    let mut trackers = vec![StopTracker::default(); engine.byte_engines().len()];
    let mut evaluated = 0usize;
    let mut terminated = false;

    drive_stream(
        source,
        opts,
        &mut engine,
        StreamingKeyRecovery::push_chunk,
        |engine, n| {
            evaluated += 1;
            let mut all_stable = rule.is_some();
            for (byte_engine, tracker) in engine.byte_engines().iter().zip(&mut trackers) {
                let (leader, r1, r2) = byte_engine.leader();
                if let Some(r) = &rule {
                    tracker.observe(r, leader, r1 - r2, n);
                    all_stable = all_stable && tracker.stable(r);
                }
            }
            if let Some(metrics) = attack.metrics_ref() {
                metrics.counter("attack.stream.checkpoints").inc();
                metrics.gauge("attack.stream.samples").set(n as u64);
            }
            terminated = terminated || all_stable;
            all_stable
        },
    )?;

    if engine.is_empty() {
        return Err(AttackError::NoSamples);
    }
    finish_stream_metrics(attack, engine.len(), terminated);
    if let Some(span) = span {
        span.finish();
    }
    Ok(StreamKeyRecovery {
        recovery: engine.snapshot(),
        samples: engine.len(),
        terminated_early: terminated,
        checkpoints: evaluated,
    })
}

/// The shared chunk loop: pulls chunks from `source` up to the budget,
/// feeds them to `engine` split exactly at checkpoint boundaries
/// (so checkpoints land on the same sample counts whatever the chunk
/// size), and calls `checkpoint(engine, n)` at each boundary; a `true`
/// return stops the stream.
fn drive_stream<E>(
    source: &mut dyn SampleSource,
    opts: &StreamOptions,
    engine: &mut E,
    push: impl Fn(&mut E, &[AttackSample]),
    mut checkpoint: impl FnMut(&mut E, usize) -> bool,
) -> Result<(), AttackError> {
    let chunk = opts.chunk.max(1);
    let cp_every = opts.resolved_checkpoint_every();
    let mut consumed = 0usize;
    let mut buf: Vec<AttackSample> = Vec::with_capacity(chunk.min(opts.max_samples));
    'stream: while consumed < opts.max_samples {
        let want = chunk.min(opts.max_samples - consumed);
        buf.clear();
        let got = source.next_chunk(want, &mut buf)?;
        if got == 0 {
            break;
        }
        let mut off = 0;
        while off < got {
            let to_boundary = cp_every - (consumed % cp_every);
            let take = to_boundary.min(got - off);
            push(engine, &buf[off..off + take]);
            consumed += take;
            off += take;
            if consumed.is_multiple_of(cp_every) && checkpoint(engine, consumed) {
                break 'stream;
            }
        }
    }
    Ok(())
}

fn evaluate_checkpoint(
    attack: &Attack,
    engine: &StreamingByteRecovery,
    rule: Option<&EarlyStop>,
    tracker: &mut StopTracker,
    n: usize,
) -> StreamCheckpoint {
    let (leader, r1, r2) = engine.leader();
    let margin = r1 - r2;
    let stable_for = match rule {
        Some(r) => tracker.observe(r, leader, margin, n),
        None => 0,
    };
    if let Some(metrics) = attack.metrics_ref() {
        metrics.counter("attack.stream.checkpoints").inc();
        metrics.gauge("attack.stream.samples").set(n as u64);
        metrics.gauge("attack.stream.leader").set(u64::from(leader));
        metrics
            .gauge("attack.stream.margin_ppm")
            .set((margin.max(0.0) * 1e6) as u64);
        metrics.gauge("attack.stream.stable").set(stable_for as u64);
    }
    StreamCheckpoint {
        samples: n,
        leader,
        leader_corr: r1,
        runner_up_corr: r2,
        margin,
        stable_for,
    }
}

fn finish_stream_metrics(attack: &Attack, samples: usize, terminated: bool) {
    if let Some(metrics) = attack.metrics_ref() {
        metrics
            .counter("attack.samples_correlated")
            .add(256 * samples as u64);
        if terminated {
            metrics.counter("attack.stream.terminated").inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::pearson;
    use rcoal_aes::{last_round_index, Aes128, Block};
    use rcoal_core::CoalescingPolicy;
    use rcoal_rng::{Rng, SeedableRng, StdRng};
    use std::sync::Arc;

    // ---- PearsonAccumulator property tests (satellite 1) ----

    /// The old raw-sum correlation, exactly as `OnlineByteRecovery`
    /// computed it before this module existed — kept here as the
    /// cancellation strawman.
    fn raw_sum_pearson(xs: &[f64], ys: &[f64]) -> f64 {
        let n = xs.len() as f64;
        if xs.len() < 2 {
            return 0.0;
        }
        let (mut sx, mut sx2, mut sy, mut sy2, mut sxy) = (0.0, 0.0, 0.0, 0.0, 0.0);
        for (&x, &y) in xs.iter().zip(ys) {
            sx += x;
            sx2 += x * x;
            sy += y;
            sy2 += y * y;
            sxy += x * y;
        }
        let cov = sxy - sx * sy / n;
        let vx = sx2 - sx * sx / n;
        let vy = sy2 - sy * sy / n;
        if vx <= 1e-12 || vy <= 1e-12 {
            return 0.0;
        }
        cov / (vx * vy).sqrt()
    }

    fn accumulate(xs: &[f64], ys: &[f64]) -> PearsonAccumulator {
        let mut acc = PearsonAccumulator::new();
        for (&x, &y) in xs.iter().zip(ys) {
            acc.push(x, y);
        }
        acc
    }

    #[test]
    fn streaming_pearson_matches_two_pass_on_seeded_corpora() {
        let mut rng = StdRng::seed_from_u64(0x57_3a41);
        for case in 0..50 {
            let n = 2 + (case * 37) % 400;
            let scale = 10f64.powi((case % 7) - 3);
            let xs: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0) * scale).collect();
            let ys: Vec<f64> = xs
                .iter()
                .map(|x| 0.4 * x + rng.gen_range(0.0..1.0) * scale)
                .collect();
            let acc = accumulate(&xs, &ys);
            let two_pass = pearson(&xs, &ys);
            assert!(
                (acc.correlation() - two_pass).abs() < 1e-9,
                "case {case}: streaming {} vs two-pass {two_pass}",
                acc.correlation()
            );
        }
    }

    #[test]
    fn degenerate_streams_report_zero_like_pearson() {
        // n < 2.
        assert_eq!(PearsonAccumulator::new().correlation(), 0.0);
        assert_eq!(accumulate(&[1.0], &[2.0]).correlation(), 0.0);
        // Constant x.
        let ys: Vec<f64> = (0..20).map(f64::from).collect();
        let xs = vec![5.0; 20];
        assert_eq!(accumulate(&xs, &ys).correlation(), 0.0);
        assert_eq!(pearson(&xs, &ys), 0.0);
        // Constant y.
        assert_eq!(accumulate(&ys, &xs).correlation(), 0.0);
        // Non-finite contamination.
        let bad = [1.0, f64::NAN, 3.0];
        let good = [1.0, 2.0, 3.0];
        assert_eq!(accumulate(&bad, &good).correlation(), 0.0);
        assert_eq!(accumulate(&good, &bad).correlation(), 0.0);
        let inf = [1.0, f64::INFINITY, 3.0];
        assert_eq!(accumulate(&inf, &good).correlation(), 0.0);
        // Clamped to [-1, 1].
        let x: Vec<f64> = (0..50).map(|i| f64::from(i) * 1e-9 + 1e9).collect();
        let y: Vec<f64> = x.iter().map(|v| v * 2.0).collect();
        let r = accumulate(&x, &y).correlation();
        assert!((-1.0..=1.0).contains(&r), "r = {r}");
    }

    #[test]
    fn adversarial_magnitudes_break_raw_sums_but_not_welford() {
        let mut rng = StdRng::seed_from_u64(0xbad_cafe);
        let n = 4000;
        let small: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        let ys: Vec<f64> = small
            .iter()
            .map(|s| 0.8 * s + 0.2 * rng.gen_range(0.0..1.0))
            .collect();

        // (a) Large mean: x = 1e4 + s. Σx² ≈ n·1e8 quantizes away the
        // O(1) variance bits, so the raw-sum subtraction loses orders of
        // magnitude of precision; the centered recurrences never form
        // the large intermediates.
        let xs: Vec<f64> = small.iter().map(|s| 1e4 + s).collect();
        let two_pass = pearson(&xs, &ys);
        assert!(two_pass > 0.9, "the channel is strongly correlated");
        let welford_dev = (accumulate(&xs, &ys).correlation() - two_pass).abs();
        let raw_dev = (raw_sum_pearson(&xs, &ys) - two_pass).abs();
        assert!(welford_dev < 1e-9, "welford deviates {welford_dev}");
        assert!(
            raw_dev > 1e-9 && raw_dev > 100.0 * welford_dev.max(1e-16),
            "raw sums must lose precision here: raw_dev {raw_dev}, welford_dev {welford_dev}"
        );

        // (b) Tiny variance under a dominating mean: the same correlated
        // channel attenuated to amplitude 1e-8 on a 1e-3 pedestal. The
        // true correlation is unchanged, but the raw path's absolute
        // 1e-12 variance guard zeroes the channel entirely.
        let xs: Vec<f64> = small.iter().map(|s| 1e-3 + s * 1e-8).collect();
        let two_pass = pearson(&xs, &ys);
        assert!(
            two_pass > 0.9,
            "attenuation does not change the correlation"
        );
        let welford = accumulate(&xs, &ys).correlation();
        assert!(
            (welford - two_pass).abs() < 1e-9,
            "welford {welford} vs two-pass {two_pass}"
        );
        assert_eq!(
            raw_sum_pearson(&xs, &ys),
            0.0,
            "the raw path's absolute variance guard swallows the channel"
        );
    }

    #[test]
    fn accumulator_state_is_chunking_invariant_by_construction() {
        let xs: Vec<f64> = (0..100).map(|i| f64::from(i * 7 % 13)).collect();
        let ys: Vec<f64> = (0..100).map(|i| f64::from(i * 3 % 11)).collect();
        let whole = accumulate(&xs, &ys);
        // Same stream pushed in two halves is the same accumulator: the
        // recurrence has no chunk notion at all.
        let mut halves = PearsonAccumulator::new();
        for (&x, &y) in xs.iter().zip(&ys) {
            halves.push(x, y);
        }
        assert_eq!(whole.state_bits(), halves.state_bits());
        assert_eq!(whole.len(), 100);
        assert!(!whole.is_empty());
        assert!((whole.mean_x() - xs.iter().sum::<f64>() / 100.0).abs() < 1e-12);
        assert!((whole.mean_y() - ys.iter().sum::<f64>() / 100.0).abs() < 1e-12);
    }

    // ---- Streaming engine tests ----

    /// Noise-free samples whose time is byte `target`'s true baseline
    /// access count — the clean single-byte channel.
    fn leaky_samples(n: usize, target: usize) -> (Vec<AttackSample>, [u8; 16]) {
        let aes = Aes128::new(b"streaming key!!!");
        let k10 = aes.last_round_key();
        let out = (0..n)
            .map(|i| {
                let cts: Vec<Block> = (0..32)
                    .map(|l| {
                        let mut pt = [0u8; 16];
                        for (b, x) in pt.iter_mut().enumerate() {
                            *x = (i * 101 + l * 13 + b * 41) as u8 ^ (i >> 8) as u8;
                        }
                        aes.encrypt_block(pt)
                    })
                    .collect();
                let mut blocks: Vec<u8> = cts
                    .iter()
                    .map(|ct| last_round_index(ct[target], k10[target]) >> 4)
                    .collect();
                blocks.sort_unstable();
                blocks.dedup();
                AttackSample {
                    ciphertexts: Arc::new(cts),
                    time: blocks.len() as f64,
                }
            })
            .collect();
        (out, k10)
    }

    /// Samples whose time is pure key-independent noise — the
    /// FSS-equivalent secure stream.
    fn secure_samples(n: usize) -> Vec<AttackSample> {
        let (mut samples, _) = leaky_samples(n, 2);
        let mut rng = StdRng::seed_from_u64(0x5ec);
        for s in &mut samples {
            s.time = rng.gen_range(0.0..1.0) * 100.0;
        }
        samples
    }

    #[test]
    fn streaming_matches_materialized_recovery() {
        let (samples, k10) = leaky_samples(70, 2);
        let attack = Attack::baseline(32);
        let batch = attack.recover_byte(&samples, 2).unwrap();
        let mut source = SliceSource::new(&samples);
        let out = stream_recover_byte(
            &attack,
            &mut source,
            2,
            &StreamOptions::new(samples.len()).with_chunk(16),
        )
        .unwrap();
        assert_eq!(out.samples, 70);
        assert!(!out.terminated_early);
        assert_eq!(out.recovery.best_guess, batch.best_guess);
        assert_eq!(out.recovery.best_guess, k10[2]);
        for m in 0..256 {
            assert!(
                (out.recovery.correlations[m] - batch.correlations[m]).abs() < 1e-9,
                "guess {m}"
            );
        }
        assert_eq!(out.recovery.rank_of(k10[2]), batch.rank_of(k10[2]));
        assert_eq!(out.checkpoints.last().map(|c| c.samples), Some(70));
    }

    #[test]
    fn accumulator_state_is_bit_identical_across_chunks_and_threads() {
        let (samples, _) = leaky_samples(48, 1);
        let attack = Attack::against(CoalescingPolicy::rss_rts(8).unwrap(), 32);
        let mut reference: Option<Vec<[u64; 6]>> = None;
        for (chunk, threads) in [(1, 1), (7, 1), (7, 4), (48, 3), (13, 2)] {
            let attack = attack.clone().with_threads(Some(threads));
            let mut engine = StreamingByteRecovery::new(&attack, 1).unwrap();
            for c in samples.chunks(chunk) {
                engine.push_chunk(c);
            }
            let state: Vec<[u64; 6]> = (0..=255u8)
                .map(|m| engine.accumulator(m).state_bits())
                .collect();
            match &reference {
                None => reference = Some(state),
                Some(want) => assert_eq!(
                    want, &state,
                    "chunk {chunk} x threads {threads} must be bit-identical"
                ),
            }
        }
    }

    #[test]
    fn streaming_key_recovery_matches_materialized() {
        // Whitening oracle: 8 subkey bytes, cheap; time carries byte 0's
        // distinct-block count. (Under this oracle a guess XOR only
        // relabels blocks and the distinct count is relabel-invariant,
        // so every guess ties at r ≈ 1 on byte 0 — the interesting
        // claims here are streaming/materialized equivalence and the
        // true byte's rank, not a unique argmax.)
        let attack = Attack::baseline(32)
            .with_oracle(Arc::new(crate::oracle::XorWhiteningOracle::new(4, 8)));
        let mut rng = StdRng::seed_from_u64(77);
        let key_byte = 0xa7u8;
        let samples: Vec<AttackSample> = (0..60)
            .map(|_| {
                let cts: Vec<Block> = (0..32)
                    .map(|_| {
                        let mut b = [0u8; 16];
                        rng.fill(&mut b);
                        b
                    })
                    .collect();
                let mut blocks: Vec<u8> = cts.iter().map(|ct| (ct[0] ^ key_byte) >> 4).collect();
                blocks.sort_unstable();
                blocks.dedup();
                AttackSample {
                    ciphertexts: Arc::new(cts),
                    time: blocks.len() as f64,
                }
            })
            .collect();
        let batch = attack.recover_key(&samples).unwrap();
        let mut source = SliceSource::new(&samples);
        let out = stream_recover_key(
            &attack,
            &mut source,
            &StreamOptions::new(samples.len()).with_chunk(11),
        )
        .unwrap();
        assert_eq!(out.recovery.bytes.len(), 8);
        assert_eq!(out.samples, 60);
        for (j, (s, b)) in out.recovery.bytes.iter().zip(&batch.bytes).enumerate() {
            assert_eq!(s.best_guess, b.best_guess, "byte {j}");
            for m in 0..256 {
                assert!((s.correlations[m] - b.correlations[m]).abs() < 1e-9);
            }
        }
        // Byte 0 carries the channel: the true byte correlates ~1 and
        // shares the top rank (rank counts strictly better guesses).
        assert!(out.recovery.bytes[0].correlation_of(key_byte) > 0.99);
        assert_eq!(out.recovery.bytes[0].rank_of(key_byte), 0);
        // Byte 1 carries nothing: no guess reaches a confident lead.
        assert!(out.recovery.bytes[1]
            .correlations
            .iter()
            .all(|c| c.abs() < 0.9));
    }

    // ---- Early termination (satellite 3: falsifiability) ----

    #[test]
    fn leaky_stream_terminates_early_and_matches_full_stream() {
        let (samples, k10) = leaky_samples(400, 2);
        let attack = Attack::baseline(32);
        let full = attack.recover_byte(&samples, 2).unwrap();
        let mut source = SliceSource::new(&samples);
        let opts = StreamOptions::new(samples.len())
            .with_chunk(32)
            .with_checkpoint_every(20)
            .with_early_stop(EarlyStop::default());
        let out = stream_recover_byte(&attack, &mut source, 2, &opts).unwrap();
        assert!(out.terminated_early, "clean channel must stabilize");
        assert!(
            out.samples < samples.len(),
            "termination must save samples ({} used)",
            out.samples
        );
        assert_eq!(
            out.recovery.best_guess, full.best_guess,
            "terminated recovery must agree with the full stream"
        );
        assert_eq!(out.recovery.best_guess, k10[2]);
        let last = out.checkpoints.last().unwrap();
        assert!(last.stable_for >= EarlyStop::default().stable_checkpoints);
        assert!(last.margin > 0.0);
    }

    #[test]
    fn secure_stream_never_terminates_early() {
        let samples = secure_samples(400);
        let attack = Attack::baseline(32);
        let mut source = SliceSource::new(&samples);
        let opts = StreamOptions::new(samples.len())
            .with_chunk(32)
            .with_checkpoint_every(20)
            .with_early_stop(EarlyStop::default());
        let out = stream_recover_byte(&attack, &mut source, 2, &opts).unwrap();
        assert!(
            !out.terminated_early,
            "key-independent noise must run to the budget"
        );
        assert_eq!(out.samples, 400);
        // And a fortiori for a *constant* channel (every correlation 0).
        let mut flat = secure_samples(200);
        for s in &mut flat {
            s.time = 512.0;
        }
        let mut source = SliceSource::new(&flat);
        let out = stream_recover_byte(&attack, &mut source, 2, &opts).unwrap();
        assert!(!out.terminated_early);
        assert!(out.checkpoints.iter().all(|c| c.margin == 0.0));
    }

    #[test]
    fn inverted_termination_rule_fails_on_secure_streams() {
        // The margin band is load-bearing: a naive "stop as soon as any
        // leader exists" rule (margin_k = 0, one checkpoint) terminates
        // immediately on pure noise with an unjustified key — exactly
        // the false confidence the k/sqrt(n) band exists to prevent.
        let samples = secure_samples(400);
        let attack = Attack::baseline(32);
        let naive = EarlyStop {
            stable_checkpoints: 1,
            margin_k: 0.0,
        };
        let mut source = SliceSource::new(&samples);
        let opts = StreamOptions::new(samples.len())
            .with_chunk(32)
            .with_checkpoint_every(20)
            .with_early_stop(naive);
        let out = stream_recover_byte(&attack, &mut source, 2, &opts).unwrap();
        assert!(
            out.terminated_early && out.samples == 20,
            "the strawman rule stops at the first checkpoint on noise"
        );
    }

    #[test]
    fn early_stop_margin_band_scales_with_n() {
        let rule = EarlyStop::default();
        assert!(!rule.margin_ok(0.4, 100), "0.4 < 5/sqrt(100)");
        assert!(rule.margin_ok(0.6, 100), "0.6 > 5/sqrt(100)");
        assert!(rule.margin_ok(0.06, 10_000), "band tightens with n");
        assert!(!rule.margin_ok(0.5, 0));
    }

    // ---- Sources and errors ----

    #[test]
    fn slice_source_chunks_and_hints() {
        let (samples, _) = leaky_samples(10, 0);
        let mut source = SliceSource::new(&samples);
        assert_eq!(source.remaining_hint(), Some(10));
        let mut buf = Vec::new();
        assert_eq!(source.next_chunk(4, &mut buf).unwrap(), 4);
        assert_eq!(source.next_chunk(100, &mut buf).unwrap(), 6);
        assert_eq!(source.next_chunk(1, &mut buf).unwrap(), 0);
        assert_eq!(buf.len(), 10);
        assert_eq!(source.remaining_hint(), Some(0));
        assert_eq!(buf, samples);
    }

    #[test]
    fn empty_source_and_bad_byte_are_typed_errors() {
        let attack = Attack::baseline(32);
        let mut source = SliceSource::new(&[]);
        assert_eq!(
            stream_recover_byte(&attack, &mut source, 0, &StreamOptions::new(100)).unwrap_err(),
            AttackError::NoSamples
        );
        let (samples, _) = leaky_samples(4, 0);
        let mut source = SliceSource::new(&samples);
        assert_eq!(
            stream_recover_byte(&attack, &mut source, 16, &StreamOptions::new(100)).unwrap_err(),
            AttackError::ByteIndex { j: 16 }
        );
        let mut source = SliceSource::new(&samples);
        assert_eq!(
            stream_recover_key(&attack, &mut source, &StreamOptions::new(0)).unwrap_err(),
            AttackError::NoSamples
        );
    }

    #[test]
    fn budget_caps_the_stream_and_checkpoints_align() {
        let (samples, _) = leaky_samples(100, 0);
        let attack = Attack::baseline(32);
        let mut source = SliceSource::new(&samples);
        let opts = StreamOptions::new(50)
            .with_chunk(7)
            .with_checkpoint_every(20);
        let out = stream_recover_byte(&attack, &mut source, 0, &opts).unwrap();
        assert_eq!(out.samples, 50);
        let counts: Vec<usize> = out.checkpoints.iter().map(|c| c.samples).collect();
        assert_eq!(
            counts,
            vec![20, 40, 50],
            "boundaries independent of chunk 7"
        );
        assert_eq!(source.remaining_hint(), Some(50), "unconsumed tail stays");
    }

    #[test]
    fn stream_metrics_record_the_online_attacker_channel() {
        let (samples, _) = leaky_samples(60, 2);
        let registry = rcoal_telemetry::MetricsRegistry::new();
        let attack = Attack::baseline(32).with_metrics(&registry);
        let plain = Attack::baseline(32);
        let mut source = SliceSource::new(&samples);
        let opts = StreamOptions::new(60)
            .with_chunk(16)
            .with_checkpoint_every(20);
        let metered = stream_recover_byte(&attack, &mut source, 2, &opts).unwrap();
        let mut source = SliceSource::new(&samples);
        let unmetered = stream_recover_byte(&plain, &mut source, 2, &opts).unwrap();
        assert_eq!(metered, unmetered, "metrics must not perturb the recovery");
        let snap = registry.snapshot();
        assert_eq!(snap.counters["attack.stream.checkpoints"], 3);
        assert_eq!(snap.counters["attack.samples_correlated"], 256 * 60);
        assert_eq!(snap.counters["span.attack.stream_byte.calls"], 1);
        assert_eq!(snap.gauges["attack.stream.samples"], 60);
    }
}
