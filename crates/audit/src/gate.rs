//! CI gate semantics: turn a [`LeakageReport`] plus an expectation
//! into a pass/fail with human-readable reasons.
//!
//! The gate is falsifiable in both directions — a configuration
//! claimed secure fails if it leaks, and the known-vulnerable baseline
//! fails if the instruments *don't* register the leak (which would mean
//! the audit itself has gone blind, the more dangerous failure).

use crate::report::LeakageReport;
use std::fmt;
use std::str::FromStr;

/// What the caller claims about the audited configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expectation {
    /// The configuration is expected to leak (e.g. the FSS baseline);
    /// the gate fails if the audit does NOT flag it.
    Leaky,
    /// The configuration is claimed secure; the gate fails if any
    /// instrument flags it or the measurement disagrees with theory.
    Secure,
}

impl Expectation {
    /// Stable CLI spelling.
    pub fn name(&self) -> &'static str {
        match self {
            Expectation::Leaky => "leaky",
            Expectation::Secure => "secure",
        }
    }
}

impl fmt::Display for Expectation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Expectation {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "leaky" => Ok(Expectation::Leaky),
            "secure" => Ok(Expectation::Secure),
            other => Err(format!(
                "unknown gate expectation '{other}' (expected leaky or secure)"
            )),
        }
    }
}

/// Result of gating a report against an expectation.
#[derive(Debug, Clone, PartialEq)]
pub struct GateOutcome {
    /// Whether the report meets the expectation.
    pub pass: bool,
    /// One line per violated condition (empty on pass).
    pub failures: Vec<String>,
}

/// Evaluates the gate.
///
/// `Leaky` requires the full verdict — `|t|` at/above threshold AND
/// corrected MI above the floor — so a detector that has silently lost
/// either instrument fails loudly. `Secure` is stricter than "not
/// leaky": EITHER instrument firing fails it (a one-instrument signal
/// is still a signal). In both directions the theory cross-check, when
/// the channel supports one, must agree — a "secure" run whose
/// measured ρ̂ sits outside the predicted band is reporting numbers the
/// model can't vouch for, and a "leaky" baseline that disagrees with
/// ρ = 1 means the attack harness itself is broken.
pub fn evaluate_gate(report: &LeakageReport, expectation: Expectation) -> GateOutcome {
    let mut failures = Vec::new();
    let t = report.timing.welch.t;
    let t_thr = report.spec.t_threshold;
    let mi = report.timing.mi.corrected_bits;
    let mi_floor = report.spec.mi_floor_bits;
    match expectation {
        Expectation::Leaky => {
            if !report.timing.welch.exceeds(t_thr) {
                failures.push(format!(
                    "expected leaky, but TVLA |t| = {:.2} is below the threshold {t_thr}",
                    t.abs()
                ));
            }
            if mi <= mi_floor {
                failures.push(format!(
                    "expected leaky, but corrected MI = {mi:.4} bits is at or below the floor {mi_floor}"
                ));
            }
        }
        Expectation::Secure => {
            if report.timing.welch.exceeds(t_thr) {
                failures.push(format!(
                    "claimed secure, but TVLA |t| = {:.2} is at or above the threshold {t_thr}",
                    t.abs()
                ));
            }
            if mi > mi_floor {
                failures.push(format!(
                    "claimed secure, but corrected MI = {mi:.4} bits exceeds the floor {mi_floor}"
                ));
            }
        }
    }
    if let Some(theory) = &report.theory {
        if !theory.ok {
            failures.push(format!(
                "measured rho = {:.4} disagrees with {}(m={}) prediction rho = {:.4} \
                 (tolerance {}/sqrt(n))",
                report.empirical_rho.abs(),
                theory.mechanism,
                theory.m,
                theory.predicted_rho,
                theory.tolerance
            ));
        }
    }
    GateOutcome {
        pass: failures.is_empty(),
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::audit_samples;
    use crate::spec::AuditSpec;
    use rcoal_attack::{Attack, AttackSample};
    use rcoal_core::CoalescingPolicy;
    use std::sync::Arc;

    fn leaky_report() -> LeakageReport {
        let true_byte = 0x3c;
        let attack =
            Attack::against(CoalescingPolicy::Baseline, 32).with_seed(AuditSpec::new().attack_seed);
        let mut predictor = attack.predictor_for_guess(true_byte);
        let samples: Vec<AttackSample> = (0..128usize)
            .map(|i| {
                let ct: Vec<[u8; 16]> = (0..32usize)
                    .map(|lane| {
                        let mut b = [0u8; 16];
                        b.iter_mut()
                            .enumerate()
                            .for_each(|(k, x)| *x = (i * 31 + lane * 7 + k * 13) as u8);
                        b
                    })
                    .collect();
                let time = predictor.predict(&ct, 0, true_byte);
                AttackSample {
                    ciphertexts: Arc::new(ct),
                    time,
                }
            })
            .collect();
        audit_samples(
            CoalescingPolicy::Baseline,
            32,
            &samples,
            true_byte,
            &AuditSpec::new(),
        )
        .unwrap()
    }

    #[test]
    fn expectation_spelling_round_trips() {
        assert_eq!("leaky".parse::<Expectation>().unwrap(), Expectation::Leaky);
        assert_eq!(
            "secure".parse::<Expectation>().unwrap(),
            Expectation::Secure
        );
        assert_eq!(Expectation::Secure.to_string(), "secure");
        assert!("maybe".parse::<Expectation>().is_err());
    }

    #[test]
    fn gate_is_falsifiable_in_both_directions() {
        let report = leaky_report();
        assert!(report.leaky);
        let as_leaky = evaluate_gate(&report, Expectation::Leaky);
        assert!(as_leaky.pass, "failures: {:?}", as_leaky.failures);
        let as_secure = evaluate_gate(&report, Expectation::Secure);
        assert!(!as_secure.pass, "a leaky report must fail a secure claim");
        assert!(!as_secure.failures.is_empty());
        assert!(
            as_secure.failures.iter().any(|f| f.contains("TVLA")),
            "{:?}",
            as_secure.failures
        );
    }

    #[test]
    fn silent_channel_fails_the_leaky_expectation() {
        let mut report = leaky_report();
        // Flatten the verdict as if the instruments saw nothing.
        report.timing.welch.t = 0.0;
        report.timing.mi.corrected_bits = 0.0;
        report.timing.leaky = false;
        report.leaky = false;
        report.empirical_rho = 1.0; // keep theory agreeing
        let out = evaluate_gate(&report, Expectation::Leaky);
        assert!(!out.pass, "blind instruments must fail the baseline gate");
        assert_eq!(out.failures.len(), 2, "both instruments reported silent");
        let out = evaluate_gate(&report, Expectation::Secure);
        assert!(out.pass);
    }

    #[test]
    fn theory_disagreement_fails_either_expectation() {
        let mut report = leaky_report();
        report.empirical_rho = 0.2;
        if let Some(t) = report.theory.as_mut() {
            t.ok = false;
        }
        assert!(!evaluate_gate(&report, Expectation::Leaky).pass);
        let out = evaluate_gate(&report, Expectation::Secure);
        assert!(!out.pass);
        assert!(
            out.failures.iter().any(|f| f.contains("disagrees")),
            "{:?}",
            out.failures
        );
    }
}
