//! # rcoal-audit — leakage observability for randomized coalescing
//!
//! RCoal's security argument is quantitative: a defense is only as good
//! as the number of timing samples it forces the attacker to collect
//! (Eq. 4, Table II). This crate turns that argument into an
//! instrument. Given the attack-sample stream a simulated run already
//! produces — and optionally per-launch stage telemetry — it computes:
//!
//! * a TVLA-style **Welch t-test** between the samples the attacker's
//!   own model predicts slow and those it predicts fast (the
//!   "specific" TVLA partition, keyed by the true key byte),
//! * a binned **mutual-information** estimate I(prediction; channel)
//!   with Miller–Madow bias correction,
//! * the **empirical normalized sample count** Ŝ = 1/ρ̂² read off the
//!   streaming attack's correlation trajectory, and
//! * a **cross-check** of ρ̂ against `rcoal-theory`'s closed form, with
//!   per-mechanism tolerances.
//!
//! The result is a typed [`LeakageReport`] with a stable
//! `rcoal-audit/v1` JSON encoding, and a [`evaluate_gate`] CI gate
//! that is falsifiable in both directions: a config claimed secure
//! fails when it leaks, and the known-leaky baseline fails when the
//! instruments go blind.
//!
//! Everything here is deterministic — fixed seeds, no iteration-order
//! dependence — so reports inherit the workspace's bit-identical-
//! across-thread-counts contract from their inputs.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod gate;
mod report;
mod spec;
mod stats;
mod stream;

pub use gate::{evaluate_gate, Expectation, GateOutcome};
pub use report::{
    audit_samples, audit_target_with_stages, audit_with_stages, mechanism_of, tolerance_for,
    AuditError, AuditTarget, ChannelQuantiles, ChannelTest, LeakageReport, StageChannel,
    TheoryCheck, TrajectoryPoint, AUDIT_SCHEMA,
};
pub use spec::{defaults, AuditChannel, AuditSpec};
pub use stats::{binned_mi, welch_t_test, MiEstimate, WelchT, T_CLAMP};
pub use stream::{StreamingAudit, StreamingChannelTest};
