//! The audit itself: partition, test, estimate, cross-check — and the
//! typed [`LeakageReport`] with its stable `rcoal-audit/v1` encoding.

use crate::spec::{AuditChannel, AuditSpec};
use crate::stats::{binned_mi, welch_t_test, MiEstimate, WelchT};
use rcoal_attack::{
    aes_oracle, even_checkpoints, recovery_curve, Attack, AttackError, AttackSample, TableOracle,
};
use rcoal_core::CoalescingPolicy;
use rcoal_scenario::json::{ObjBuilder, Value};
use rcoal_telemetry::Hist64;
use rcoal_theory::{Mechanism, SecurityModel};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Schema tag for serialized leakage reports.
pub const AUDIT_SCHEMA: &str = "rcoal-audit/v1";

/// Errors reported by the audit layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AuditError {
    /// The [`AuditSpec`] failed validation.
    Spec(String),
    /// The attack driver rejected its input (no samples, byte index).
    Attack(AttackError),
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::Spec(msg) => write!(f, "invalid audit spec: {msg}"),
            AuditError::Attack(e) => write!(f, "audit attack driver failed: {e}"),
        }
    }
}

impl Error for AuditError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AuditError::Attack(e) => Some(e),
            AuditError::Spec(_) => None,
        }
    }
}

impl From<AttackError> for AuditError {
    fn from(e: AttackError) -> Self {
        AuditError::Attack(e)
    }
}

/// A named side-channel observable sampled once per attack sample —
/// e.g. a per-launch stage scalar (mean memory latency, DRAM row-hit
/// rate) pulled from telemetry. Values must be index-aligned with the
/// audited [`AttackSample`] stream.
#[derive(Debug, Clone, PartialEq)]
pub struct StageChannel {
    /// Stable channel name (appears in the report JSON).
    pub name: String,
    /// One observation per attack sample.
    pub values: Vec<f64>,
}

/// One channel's TVLA-style verdict: the two-class Welch t-test plus
/// the binned mutual-information estimate against the same partition.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelTest {
    /// Channel name ("timing" for the primary channel).
    pub name: String,
    /// Welch's t-test between the low- and high-prediction classes.
    pub welch: WelchT,
    /// Mutual information between the true-key prediction and the
    /// channel value.
    pub mi: MiEstimate,
    /// Whether this channel flags: `|t|` at/above threshold AND
    /// corrected MI above the floor.
    pub leaky: bool,
}

/// One point on the streaming attack's correlation trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryPoint {
    /// Samples consumed at this checkpoint.
    pub samples: usize,
    /// Pearson correlation of the *true* key-byte guess.
    pub corr_true: f64,
    /// Rank of the true guess among all 256 (0 = recovered).
    pub rank: usize,
}

/// Cross-check of the measured correlation against `rcoal-theory`'s
/// closed-form prediction for the audited mechanism.
///
/// Agreement is judged on the ρ scale, where the sampling error of a
/// Pearson estimate is ≈ 1/√n: `ok` iff
/// `| |ρ̂| − ρ_pred | ≤ tolerance / √n`. The induced bound on S is
/// reported alongside (`s_low`/`s_high`); comparing S ratios directly
/// would blow up exactly where the defense works (ρ → 0 makes S = 1/ρ²
/// wildly dispersed), while the ρ-scale bound stays uniformly tight.
#[derive(Debug, Clone, PartialEq)]
pub struct TheoryCheck {
    /// Mechanism name as `rcoal-theory` spells it.
    pub mechanism: String,
    /// Number of subwarps.
    pub m: usize,
    /// Closed-form ρ from [`SecurityModel::rho`].
    pub predicted_rho: f64,
    /// Closed-form S = 1/ρ² (∞ when ρ = 0).
    pub predicted_s: f64,
    /// Per-mechanism tolerance `k` in the `k/√n` agreement bound.
    pub tolerance: f64,
    /// Acceptance interval for S induced by the ρ-scale bound.
    pub s_low: f64,
    /// Upper end of the S acceptance interval (∞ when the lower ρ
    /// bound reaches 0).
    pub s_high: f64,
    /// Whether the measured correlation agrees with the prediction.
    pub ok: bool,
}

/// Quantile summary of the audited channel's distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelQuantiles {
    /// Observations summarized.
    pub count: u64,
    /// Mean channel value.
    pub mean: f64,
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
}

/// The full leakage verdict for one policy configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct LeakageReport {
    /// Policy under audit.
    pub policy: CoalescingPolicy,
    /// Warp size the audit modeled.
    pub warp_size: usize,
    /// Key byte audited.
    pub byte: usize,
    /// Channel audited.
    pub channel: AuditChannel,
    /// Attack samples consumed.
    pub samples: usize,
    /// Thresholds the verdict used (copied from the spec).
    pub spec: AuditSpec,
    /// Primary channel test (the audited timing channel).
    pub timing: ChannelTest,
    /// Per-stage channel tests (empty without telemetry).
    pub stages: Vec<ChannelTest>,
    /// Correlation trajectory of the streaming attack.
    pub trajectory: Vec<TrajectoryPoint>,
    /// Final-checkpoint correlation of the true guess (signed).
    pub empirical_rho: f64,
    /// Empirical normalized sample count `1/ρ̂²` (∞ when ρ̂ = 0).
    pub empirical_s: f64,
    /// Theory cross-check; `None` off the per-byte access channel, for
    /// mechanisms the closed form does not cover (standalone RSS), or
    /// when `m` does not divide the warp size.
    pub theory: Option<TheoryCheck>,
    /// Quantile summary of the audited channel.
    pub quantiles: ChannelQuantiles,
    /// The headline verdict: the primary channel flags both tests.
    pub leaky: bool,
}

/// Per-mechanism tolerance `k` for the `k/√n` ρ-agreement bound.
///
/// FSS is deterministic (the attacker's predictor reproduces the count
/// exactly, ρ = 1 identically), so only float noise needs absorbing;
/// the randomized mechanisms carry genuine sampling dispersion in ρ̂
/// on top of the 1/√n Pearson error, hence the wider band.
pub fn tolerance_for(mechanism: Mechanism) -> f64 {
    match mechanism {
        Mechanism::Fss => 1.0,
        Mechanism::FssRts | Mechanism::RssRts => 4.0,
    }
}

/// Maps a coalescing policy onto the closed-form mechanism `rcoal-theory`
/// models, with its subwarp count. `None` for standalone RSS (the paper
/// evaluates it only empirically).
///
/// `Baseline` is FSS with one subwarp (ρ = 1); `Disabled` is FSS with
/// one thread per subwarp (constant access count, channel closed).
pub fn mechanism_of(policy: CoalescingPolicy, warp_size: usize) -> Option<(Mechanism, usize)> {
    let m = policy.num_subwarps(warp_size);
    match policy {
        CoalescingPolicy::Baseline | CoalescingPolicy::Disabled | CoalescingPolicy::Fss { .. } => {
            Some((Mechanism::Fss, m))
        }
        CoalescingPolicy::FssRts { .. } => Some((Mechanism::FssRts, m)),
        CoalescingPolicy::RssRts { .. } => Some((Mechanism::RssRts, m)),
        CoalescingPolicy::Rss { .. } => None,
    }
}

/// What the audit runs against: the deployed policy plus the workload's
/// attack model (its table oracle and, when comparable, its table size
/// `R` for the closed-form cross-check).
///
/// [`AuditTarget::aes`] is the paper's configuration; other workloads
/// build one from their registry entry.
#[derive(Debug, Clone)]
pub struct AuditTarget {
    /// Policy under audit.
    pub policy: CoalescingPolicy,
    /// Simulated warp width (the attacker models the same geometry).
    pub warp_size: usize,
    /// The true attacked-subkey byte at the spec's byte position.
    pub true_key_byte: u8,
    /// The workload's (observed byte, guess) → block-index oracle.
    pub oracle: Arc<dyn TableOracle>,
    /// Table size `R` for the theory cross-check; `None` disables it
    /// (workloads the closed-form `(N, R)` analysis does not cover,
    /// e.g. the key-free control).
    pub theory_r: Option<usize>,
}

impl AuditTarget {
    /// The paper's AES-128 target: last-round oracle, `R = 16`.
    pub fn aes(policy: CoalescingPolicy, warp_size: usize, true_key_byte: u8) -> Self {
        AuditTarget {
            policy,
            warp_size,
            true_key_byte,
            oracle: aes_oracle(),
            theory_r: Some(16),
        }
    }
}

/// Audits a sample stream with no auxiliary stage channels (the
/// paper's AES target).
///
/// # Errors
///
/// [`AuditError::Spec`] for an invalid spec; [`AuditError::Attack`]
/// when the stream is empty or the byte index is out of range.
pub fn audit_samples(
    policy: CoalescingPolicy,
    warp_size: usize,
    samples: &[AttackSample],
    true_key_byte: u8,
    spec: &AuditSpec,
) -> Result<LeakageReport, AuditError> {
    audit_with_stages(policy, warp_size, samples, true_key_byte, &[], spec)
}

/// Audits a sample stream plus index-aligned stage channels.
///
/// The partition for every t-test is the TVLA "specific" variant: each
/// sample is classed by the attacker's own access-count prediction for
/// the *true* key byte (above/below the median prediction), so the test
/// asks exactly "do samples the attacker expects to be slow actually
/// run slow?". Randomized policies decorrelate the prediction from the
/// realized count, collapsing the class separation — which is the
/// defense working, and the gate's passing condition.
///
/// # Errors
///
/// [`AuditError::Spec`] for an invalid spec; [`AuditError::Attack`]
/// when the stream is empty or the byte index is out of range.
pub fn audit_with_stages(
    policy: CoalescingPolicy,
    warp_size: usize,
    samples: &[AttackSample],
    true_key_byte: u8,
    stages: &[StageChannel],
    spec: &AuditSpec,
) -> Result<LeakageReport, AuditError> {
    audit_target_with_stages(
        &AuditTarget::aes(policy, warp_size, true_key_byte),
        samples,
        stages,
        spec,
    )
}

/// Audits a sample stream for an arbitrary workload target (see
/// [`AuditTarget`]), plus index-aligned stage channels. The AES entry
/// points above are thin wrappers over this.
///
/// # Errors
///
/// [`AuditError::Spec`] for an invalid spec; [`AuditError::Attack`]
/// when the stream is empty or the byte index is out of range for the
/// target's oracle.
pub fn audit_target_with_stages(
    target: &AuditTarget,
    samples: &[AttackSample],
    stages: &[StageChannel],
    spec: &AuditSpec,
) -> Result<LeakageReport, AuditError> {
    let AuditTarget {
        policy,
        warp_size,
        true_key_byte,
        ..
    } = *target;
    spec.validate().map_err(AuditError::Spec)?;
    if samples.is_empty() {
        return Err(AuditError::Attack(AttackError::NoSamples));
    }
    for stage in stages {
        if stage.values.len() != samples.len() {
            return Err(AuditError::Spec(format!(
                "stage channel '{}' has {} values for {} samples",
                stage.name,
                stage.values.len(),
                samples.len()
            )));
        }
    }

    let attack = Attack::against(policy, warp_size)
        .with_seed(spec.attack_seed)
        .with_oracle(Arc::clone(&target.oracle));

    // Attacker-side predictions for the true key byte, one per sample.
    let mut predictor = attack.predictor_for_guess(true_key_byte);
    let predictions: Vec<f64> = samples
        .iter()
        .map(|s| predictor.predict(&s.ciphertexts, spec.byte, true_key_byte))
        .collect();
    let times: Vec<f64> = samples.iter().map(|s| s.time).collect();

    // Median split over predictions: low class <= median < high class.
    // Saturated geometries (few table blocks under many threads, e.g.
    // RECTANGLE's R = 8 under N = 32) can pin the median at the maximum
    // prediction, emptying the high class and silencing the t-test on a
    // channel that still leaks; ties then go high instead, so the split
    // separates the saturated mass from the rare low outliers.
    let median = median_of(&predictions);
    let strict: Vec<bool> = predictions.iter().map(|&p| p > median).collect();
    let high: Vec<bool> = if strict.iter().filter(|&&h| h).count() >= 2 {
        strict
    } else {
        predictions.iter().map(|&p| p >= median).collect()
    };

    let timing = channel_test("timing", &predictions, &times, &high, spec);
    let stage_tests: Vec<ChannelTest> = stages
        .iter()
        .map(|s| channel_test(&s.name, &predictions, &s.values, &high, spec))
        .collect();

    // Correlation trajectory of the streaming attack at evenly spaced
    // checkpoints (always including the full stream) — the same
    // schedule the attack crate uses everywhere.
    let n = samples.len();
    let mut checkpoints = even_checkpoints(n, spec.checkpoints);
    if checkpoints.is_empty() {
        checkpoints.push(n);
    }
    let curve = recovery_curve(&attack, samples, spec.byte, &checkpoints)?;
    let trajectory: Vec<TrajectoryPoint> = curve
        .iter()
        .map(|(samples, rec)| TrajectoryPoint {
            samples: *samples,
            corr_true: rec.correlation_of(true_key_byte),
            rank: rec.rank_of(true_key_byte),
        })
        .collect();
    let empirical_rho = trajectory.last().map_or(0.0, |p| p.corr_true);
    let empirical_s = normalized_s(empirical_rho);

    let theory = theory_check(policy, warp_size, spec, empirical_rho, n, target.theory_r);

    let mut hist = Hist64::new();
    for &t in &times {
        hist.record(t.max(0.0).round() as u64);
    }
    let quantiles = ChannelQuantiles {
        count: hist.count(),
        mean: hist.mean(),
        p50: hist.p50().unwrap_or(0),
        p95: hist.p95().unwrap_or(0),
        p99: hist.p99().unwrap_or(0),
    };

    let leaky = timing.leaky;
    Ok(LeakageReport {
        policy,
        warp_size,
        byte: spec.byte,
        channel: spec.channel,
        samples: n,
        spec: spec.clone(),
        timing,
        stages: stage_tests,
        trajectory,
        empirical_rho,
        empirical_s,
        theory,
        quantiles,
        leaky,
    })
}

fn channel_test(
    name: &str,
    predictions: &[f64],
    values: &[f64],
    high: &[bool],
    spec: &AuditSpec,
) -> ChannelTest {
    let low_class: Vec<f64> = values
        .iter()
        .zip(high)
        .filter(|(_, &h)| !h)
        .map(|(&v, _)| v)
        .collect();
    let high_class: Vec<f64> = values
        .iter()
        .zip(high)
        .filter(|(_, &h)| h)
        .map(|(&v, _)| v)
        .collect();
    let welch = welch_t_test(&low_class, &high_class);
    let mi = binned_mi(predictions, values, spec.mi_bins);
    let leaky = welch.exceeds(spec.t_threshold) && mi.corrected_bits > spec.mi_floor_bits;
    ChannelTest {
        name: name.to_string(),
        welch,
        mi,
        leaky,
    }
}

fn median_of(xs: &[f64]) -> f64 {
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    sorted[(sorted.len() - 1) / 2]
}

pub(crate) fn normalized_s(rho: f64) -> f64 {
    if rho == 0.0 {
        f64::INFINITY
    } else {
        1.0 / (rho * rho)
    }
}

pub(crate) fn theory_check(
    policy: CoalescingPolicy,
    warp_size: usize,
    spec: &AuditSpec,
    empirical_rho: f64,
    n: usize,
    table_size_r: Option<usize>,
) -> Option<TheoryCheck> {
    if !spec.channel.theory_comparable() || warp_size == 0 {
        return None;
    }
    // A workload the (N, R) analysis does not cover opts out entirely.
    let r = table_size_r.filter(|&r| r >= 1)?;
    let (mechanism, m) = mechanism_of(policy, warp_size)?;
    // SecurityModel::rho asserts m | n; never feed it a panic.
    if m == 0 || !warp_size.is_multiple_of(m) {
        return None;
    }
    let model = SecurityModel::new(warp_size, r);
    let predicted_rho = model.rho(mechanism, m);
    let predicted_s = model.normalized_samples(mechanism, m);
    let tolerance = tolerance_for(mechanism);
    let band = tolerance / (n as f64).sqrt();
    let rho_low = (predicted_rho - band).max(0.0);
    let rho_high = (predicted_rho + band).min(1.0);
    let ok = (empirical_rho.abs() - predicted_rho).abs() <= band;
    Some(TheoryCheck {
        mechanism: mechanism.to_string(),
        m,
        predicted_rho,
        predicted_s,
        tolerance,
        s_low: normalized_s(rho_high),
        s_high: normalized_s(rho_low),
        ok,
    })
}

impl ChannelTest {
    fn to_value(&self) -> Value {
        ObjBuilder::new()
            .field("name", Value::str(&self.name))
            .field("t", Value::f64(self.welch.t))
            .field("dof", Value::f64(self.welch.dof))
            .field("n_low", Value::usize(self.welch.n_low))
            .field("n_high", Value::usize(self.welch.n_high))
            .field("mean_low", Value::f64(self.welch.mean_low))
            .field("mean_high", Value::f64(self.welch.mean_high))
            .field("mi_bits", Value::f64(self.mi.bits))
            .field("mi_bias_bits", Value::f64(self.mi.bias_bits))
            .field("mi_corrected_bits", Value::f64(self.mi.corrected_bits))
            .field("leaky", Value::Bool(self.leaky))
            .build()
    }
}

impl LeakageReport {
    /// Encodes as a `rcoal-audit/v1` JSON value. Non-finite floats
    /// (an unbounded S) encode as `null`, per the shared JSON model.
    pub fn to_value(&self) -> Value {
        let theory = match &self.theory {
            None => Value::Null,
            Some(t) => ObjBuilder::new()
                .field("mechanism", Value::str(&t.mechanism))
                .field("m", Value::usize(t.m))
                .field("predicted_rho", Value::f64(t.predicted_rho))
                .field("predicted_s", Value::f64(t.predicted_s))
                .field("tolerance", Value::f64(t.tolerance))
                .field("s_low", Value::f64(t.s_low))
                .field("s_high", Value::f64(t.s_high))
                .field("ok", Value::Bool(t.ok))
                .build(),
        };
        ObjBuilder::new()
            .field("schema", Value::str(AUDIT_SCHEMA))
            .field("policy", Value::str(self.policy.to_string()))
            .field("warp_size", Value::usize(self.warp_size))
            .field("byte", Value::usize(self.byte))
            .field("channel", Value::str(self.channel.name()))
            .field("samples", Value::usize(self.samples))
            .field(
                "thresholds",
                ObjBuilder::new()
                    .field("t", Value::f64(self.spec.t_threshold))
                    .field("mi_floor_bits", Value::f64(self.spec.mi_floor_bits))
                    .field("mi_bins", Value::usize(self.spec.mi_bins))
                    .build(),
            )
            .field("timing", self.timing.to_value())
            .field(
                "stages",
                Value::Arr(self.stages.iter().map(ChannelTest::to_value).collect()),
            )
            .field(
                "trajectory",
                Value::Arr(
                    self.trajectory
                        .iter()
                        .map(|p| {
                            ObjBuilder::new()
                                .field("samples", Value::usize(p.samples))
                                .field("corr", Value::f64(p.corr_true))
                                .field("rank", Value::usize(p.rank))
                                .build()
                        })
                        .collect(),
                ),
            )
            .field(
                "empirical",
                ObjBuilder::new()
                    .field("rho", Value::f64(self.empirical_rho))
                    .field("s", Value::f64(self.empirical_s))
                    .build(),
            )
            .field("theory", theory)
            .field(
                "quantiles",
                ObjBuilder::new()
                    .field("count", Value::u64(self.quantiles.count))
                    .field("mean", Value::f64(self.quantiles.mean))
                    .field("p50", Value::u64(self.quantiles.p50))
                    .field("p95", Value::u64(self.quantiles.p95))
                    .field("p99", Value::u64(self.quantiles.p99))
                    .build(),
            )
            .field("leaky", Value::Bool(self.leaky))
            .build()
    }

    /// Compact `rcoal-audit/v1` JSON text.
    pub fn to_json(&self) -> String {
        self.to_value().to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// Synthetic sample stream where the channel value IS the access
    /// count the baseline predictor computes for the true byte: the
    /// attacker's model matches reality exactly, so ρ̂ = 1.
    fn perfect_leak_samples(n: usize) -> (Vec<AttackSample>, u8) {
        let true_byte = 0x3c;
        let attack =
            Attack::against(CoalescingPolicy::Baseline, 32).with_seed(AuditSpec::new().attack_seed);
        let mut predictor = attack.predictor_for_guess(true_byte);
        let samples = (0..n)
            .map(|i| {
                let ct: Vec<[u8; 16]> = (0..32usize)
                    .map(|lane| {
                        let mut b = [0u8; 16];
                        b.iter_mut().enumerate().for_each(|(k, x)| {
                            *x = (i * 31 + lane * 7 + k * 13) as u8;
                        });
                        b
                    })
                    .collect();
                let time = predictor.predict(&ct, 0, true_byte);
                AttackSample {
                    ciphertexts: Arc::new(ct),
                    time,
                }
            })
            .collect();
        (samples, true_byte)
    }

    #[test]
    fn perfectly_leaky_stream_is_flagged() {
        let (samples, true_byte) = perfect_leak_samples(256);
        let report = audit_samples(
            CoalescingPolicy::Baseline,
            32,
            &samples,
            true_byte,
            &AuditSpec::new(),
        )
        .unwrap();
        assert!(report.leaky, "timing t = {}", report.timing.welch.t);
        assert!(report.timing.welch.exceeds(4.5));
        assert!(report.timing.mi.corrected_bits > 0.05);
        assert!(
            (report.empirical_rho - 1.0).abs() < 1e-9,
            "rho = {}",
            report.empirical_rho
        );
        let theory = report.theory.expect("baseline has a closed form");
        assert_eq!(theory.mechanism, "FSS");
        assert_eq!(theory.m, 1);
        assert!((theory.predicted_s - 1.0).abs() < 1e-12);
        assert!(theory.ok, "rho-hat 1.0 vs predicted 1.0");
    }

    #[test]
    fn constant_channel_is_not_flagged() {
        let (mut samples, true_byte) = perfect_leak_samples(128);
        for s in &mut samples {
            s.time = 42.0;
        }
        let report = audit_samples(
            CoalescingPolicy::Baseline,
            32,
            &samples,
            true_byte,
            &AuditSpec::new(),
        )
        .unwrap();
        assert!(!report.leaky);
        assert_eq!(report.timing.welch.t, 0.0);
        assert_eq!(report.timing.mi.corrected_bits, 0.0);
        assert_eq!(report.empirical_rho, 0.0, "constant channel, no signal");
        assert!(report.empirical_s.is_infinite());
        assert_eq!(report.quantiles.p50, 42);
        assert_eq!(report.quantiles.p99, 42);
    }

    #[test]
    fn empty_stream_and_bad_spec_error() {
        let err =
            audit_samples(CoalescingPolicy::Baseline, 32, &[], 0, &AuditSpec::new()).unwrap_err();
        assert!(matches!(err, AuditError::Attack(AttackError::NoSamples)));
        let (samples, tb) = perfect_leak_samples(8);
        let err = audit_samples(
            CoalescingPolicy::Baseline,
            32,
            &samples,
            tb,
            &AuditSpec::new().with_byte(16),
        )
        .unwrap_err();
        assert!(matches!(err, AuditError::Spec(_)), "{err}");
        let stage = StageChannel {
            name: "short".into(),
            values: vec![1.0; 3],
        };
        let err = audit_with_stages(
            CoalescingPolicy::Baseline,
            32,
            &samples,
            tb,
            &[stage],
            &AuditSpec::new(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("short"), "{err}");
    }

    #[test]
    fn stage_channels_are_tested_alongside_timing() {
        let (samples, true_byte) = perfect_leak_samples(128);
        // One stage mirrors the leak, one is constant.
        let leak = StageChannel {
            name: "mirror".into(),
            values: samples.iter().map(|s| s.time * 3.0 + 1.0).collect(),
        };
        let flat = StageChannel {
            name: "flat".into(),
            values: vec![7.0; samples.len()],
        };
        let report = audit_with_stages(
            CoalescingPolicy::Baseline,
            32,
            &samples,
            true_byte,
            &[leak, flat],
            &AuditSpec::new(),
        )
        .unwrap();
        assert_eq!(report.stages.len(), 2);
        assert!(report.stages[0].leaky, "mirrored stage flags");
        assert!(!report.stages[1].leaky, "constant stage is silent");
    }

    #[test]
    fn mechanism_mapping_covers_every_policy() {
        use CoalescingPolicy as P;
        assert_eq!(mechanism_of(P::Baseline, 32), Some((Mechanism::Fss, 1)));
        assert_eq!(mechanism_of(P::Disabled, 32), Some((Mechanism::Fss, 32)));
        let fss = P::fss(4).unwrap();
        assert_eq!(mechanism_of(fss, 32), Some((Mechanism::Fss, 4)));
        let fss_rts = P::fss_rts(8).unwrap();
        assert_eq!(mechanism_of(fss_rts, 32), Some((Mechanism::FssRts, 8)));
        let rss_rts = P::rss_rts(8).unwrap();
        assert_eq!(mechanism_of(rss_rts, 32), Some((Mechanism::RssRts, 8)));
        let rss = P::rss(8).unwrap();
        assert_eq!(mechanism_of(rss, 32), None, "no closed form for RSS");
    }

    #[test]
    fn report_json_has_the_v1_shape() {
        let (samples, true_byte) = perfect_leak_samples(64);
        let report = audit_samples(
            CoalescingPolicy::Baseline,
            32,
            &samples,
            true_byte,
            &AuditSpec::new(),
        )
        .unwrap();
        let json = report.to_json();
        let v = Value::parse(&json).expect("report JSON parses");
        assert_eq!(v.get("schema").and_then(Value::as_str), Some(AUDIT_SCHEMA));
        assert_eq!(v.get("samples").and_then(Value::as_usize), Some(64));
        assert_eq!(
            v.get("channel").and_then(Value::as_str),
            Some("byte-accesses")
        );
        assert_eq!(v.get("leaky").and_then(Value::as_bool), Some(true));
        let timing = v.get("timing").expect("timing object");
        assert!(timing.get("t").and_then(Value::as_f64).is_some());
        assert!(timing.get("mi_corrected_bits").is_some());
        let theory = v.get("theory").expect("theory object");
        assert_eq!(theory.get("ok").and_then(Value::as_bool), Some(true));
        let q = v.get("quantiles").expect("quantiles");
        assert!(q.get("p99").and_then(Value::as_u64).is_some());
        let traj = v.get("trajectory").and_then(Value::as_arr).unwrap();
        assert!(!traj.is_empty());
        // Infinite empirical S encodes as null, not a bare `inf` token.
        let (mut flat, tb) = perfect_leak_samples(16);
        for s in &mut flat {
            s.time = 1.0;
        }
        let r =
            audit_samples(CoalescingPolicy::Baseline, 32, &flat, tb, &AuditSpec::new()).unwrap();
        let v = Value::parse(&r.to_json()).unwrap();
        assert_eq!(
            v.get("empirical").and_then(|e| e.get("s")),
            Some(&Value::Null)
        );
    }
}
