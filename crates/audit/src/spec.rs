//! What to audit and how strictly: [`AuditSpec`] and [`AuditChannel`].

use std::fmt;
use std::str::FromStr;

/// Which observable the audit treats as the attacker-visible channel.
///
/// The channel determines both the timing value attached to each
/// attack sample and how directly the report can be compared against
/// `rcoal-theory`: the closed-form model predicts the correlation of
/// the *per-byte coalesced access count*, so only
/// [`AuditChannel::ByteAccesses`] carries a theory cross-check; the
/// aggregated and cycle-level channels dilute the per-byte signal with
/// the other fifteen bytes and with pipeline noise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AuditChannel {
    /// Coalesced accesses for the audited key byte's last-round load —
    /// the clean channel Eq. 4 and Table II model.
    ByteAccesses,
    /// Total last-round coalesced accesses (all 16 bytes summed).
    LastRoundAccesses,
    /// Simulated cycles spent in the last AES round (needs a
    /// cycle-accurate run, not `functional_only`).
    LastRoundCycles,
    /// Total simulated kernel cycles (needs a cycle-accurate run).
    TotalCycles,
}

impl AuditChannel {
    /// Stable identifier used in `rcoal-audit/v1` JSON and on the CLI.
    pub fn name(&self) -> &'static str {
        match self {
            AuditChannel::ByteAccesses => "byte-accesses",
            AuditChannel::LastRoundAccesses => "last-round-accesses",
            AuditChannel::LastRoundCycles => "last-round-cycles",
            AuditChannel::TotalCycles => "total-cycles",
        }
    }

    /// Whether this channel needs cycle timing (a non-functional run).
    pub fn needs_cycles(&self) -> bool {
        matches!(
            self,
            AuditChannel::LastRoundCycles | AuditChannel::TotalCycles
        )
    }

    /// Whether `rcoal-theory`'s normalized-S prediction applies to this
    /// channel directly.
    pub fn theory_comparable(&self) -> bool {
        matches!(self, AuditChannel::ByteAccesses)
    }
}

impl fmt::Display for AuditChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for AuditChannel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "byte-accesses" => Ok(AuditChannel::ByteAccesses),
            "last-round-accesses" => Ok(AuditChannel::LastRoundAccesses),
            "last-round-cycles" => Ok(AuditChannel::LastRoundCycles),
            "total-cycles" => Ok(AuditChannel::TotalCycles),
            other => Err(format!(
                "unknown audit channel '{other}' (expected byte-accesses, \
                 last-round-accesses, last-round-cycles, or total-cycles)"
            )),
        }
    }
}

/// Defaults live here so the CLI, CI gate, and docs quote one source.
pub mod defaults {
    /// TVLA decision threshold on `|t|`. The conventional 4.5 from the
    /// TVLA methodology: under H0 the chance of |t| ≥ 4.5 is < 1e-5,
    /// so a pass is overwhelmingly unlikely to be a fluke.
    pub const T_THRESHOLD: f64 = 4.5;
    /// Bins per axis for the mutual-information estimate.
    pub const MI_BINS: usize = 16;
    /// Corrected-MI floor (bits) above which a channel counts as
    /// carrying key information. Calibrated to the gate's default
    /// budget (512 samples, 16 bins): the residual bias the
    /// Miller–Madow correction cannot remove from a few-hundred-cell
    /// joint histogram measures ≤ 0.14 bits across the paper's secure
    /// (RSS+RTS) configurations, while the vulnerable baseline channel
    /// carries > 2 bits — 0.25 splits that gap with 2x headroom on the
    /// quiet side. Audits at much larger sample counts can (and
    /// should) lower the floor: bias shrinks as 1/n.
    pub const MI_FLOOR_BITS: f64 = 0.25;
    /// Checkpoints along the correlation trajectory.
    pub const CHECKPOINTS: usize = 8;
    /// Attacker seed (decorrelated from the simulator's default seeds).
    pub const ATTACK_SEED: u64 = 0xa0d17;
}

/// Configuration for one leakage audit.
///
/// Construct with [`AuditSpec::new`] and refine with the builders; the
/// defaults (from [`defaults`]) are the ones the CI gate runs with,
/// calibrated for a 512-sample budget — see DESIGN.md §13 for why the
/// thresholds and the budget move together.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditSpec {
    /// Key byte under audit (0..16).
    pub byte: usize,
    /// Channel the attacker is assumed to observe.
    pub channel: AuditChannel,
    /// Seed for the audit's access predictors (independent of the
    /// simulation seed — the auditor models an external attacker).
    pub attack_seed: u64,
    /// `|t|` at or above this flags the TVLA test.
    pub t_threshold: f64,
    /// Bins per axis for the MI estimate.
    pub mi_bins: usize,
    /// Corrected MI (bits) above this flags the MI test.
    pub mi_floor_bits: f64,
    /// Number of evenly spaced correlation-trajectory checkpoints.
    pub checkpoints: usize,
}

impl Default for AuditSpec {
    fn default() -> Self {
        AuditSpec {
            byte: 0,
            channel: AuditChannel::ByteAccesses,
            attack_seed: defaults::ATTACK_SEED,
            t_threshold: defaults::T_THRESHOLD,
            mi_bins: defaults::MI_BINS,
            mi_floor_bits: defaults::MI_FLOOR_BITS,
            checkpoints: defaults::CHECKPOINTS,
        }
    }
}

impl AuditSpec {
    /// The default audit: byte 0 over the per-byte access channel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Audits a different key byte.
    pub fn with_byte(mut self, byte: usize) -> Self {
        self.byte = byte;
        self
    }

    /// Audits a different channel.
    pub fn with_channel(mut self, channel: AuditChannel) -> Self {
        self.channel = channel;
        self
    }

    /// Reseeds the audit's attacker-side predictors.
    pub fn with_attack_seed(mut self, seed: u64) -> Self {
        self.attack_seed = seed;
        self
    }

    /// Overrides the TVLA `|t|` threshold.
    pub fn with_t_threshold(mut self, t: f64) -> Self {
        self.t_threshold = t;
        self
    }

    /// Overrides the MI bin count.
    pub fn with_mi_bins(mut self, bins: usize) -> Self {
        self.mi_bins = bins;
        self
    }

    /// Overrides the corrected-MI floor.
    pub fn with_mi_floor_bits(mut self, bits: f64) -> Self {
        self.mi_floor_bits = bits;
        self
    }

    /// Overrides the trajectory checkpoint count.
    pub fn with_checkpoints(mut self, n: usize) -> Self {
        self.checkpoints = n;
        self
    }

    /// Validates field ranges; audits call this before any work.
    pub fn validate(&self) -> Result<(), String> {
        if self.byte >= 16 {
            return Err(format!("byte index {} out of range 0..16", self.byte));
        }
        // `<=` would misread NaN as in-range: a NaN threshold must fail.
        if self.t_threshold.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(format!("t-threshold {} must be positive", self.t_threshold));
        }
        if self.mi_bins < 2 {
            return Err(format!("mi bins {} must be at least 2", self.mi_bins));
        }
        if !matches!(
            self.mi_floor_bits.partial_cmp(&0.0),
            Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
        ) {
            return Err(format!(
                "mi floor {} must be non-negative",
                self.mi_floor_bits
            ));
        }
        if self.checkpoints == 0 {
            return Err("checkpoint count must be at least 1".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_names_round_trip() {
        for c in [
            AuditChannel::ByteAccesses,
            AuditChannel::LastRoundAccesses,
            AuditChannel::LastRoundCycles,
            AuditChannel::TotalCycles,
        ] {
            assert_eq!(c.name().parse::<AuditChannel>().unwrap(), c);
            assert_eq!(c.to_string(), c.name());
        }
        assert!("warp-vibes".parse::<AuditChannel>().is_err());
    }

    #[test]
    fn channel_capabilities() {
        assert!(AuditChannel::ByteAccesses.theory_comparable());
        assert!(!AuditChannel::TotalCycles.theory_comparable());
        assert!(!AuditChannel::ByteAccesses.needs_cycles());
        assert!(AuditChannel::LastRoundCycles.needs_cycles());
    }

    #[test]
    fn spec_builders_and_validation() {
        let spec = AuditSpec::new()
            .with_byte(5)
            .with_channel(AuditChannel::TotalCycles)
            .with_attack_seed(9)
            .with_t_threshold(3.0)
            .with_mi_bins(8)
            .with_mi_floor_bits(0.1)
            .with_checkpoints(4);
        assert!(spec.validate().is_ok());
        assert_eq!(spec.byte, 5);
        assert_eq!(spec.mi_bins, 8);
        assert!(AuditSpec::new().with_byte(16).validate().is_err());
        assert!(AuditSpec::new().with_t_threshold(0.0).validate().is_err());
        assert!(AuditSpec::new().with_mi_bins(1).validate().is_err());
        assert!(AuditSpec::new()
            .with_mi_floor_bits(-1.0)
            .validate()
            .is_err());
        assert!(AuditSpec::new().with_checkpoints(0).validate().is_err());
    }
}
