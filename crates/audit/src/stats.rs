//! The two leakage estimators: Welch's t-test and binned mutual
//! information with Miller–Madow bias correction.
//!
//! Both are deliberately plain: single-pass moment accumulation and
//! fixed equal-width binning, no randomness, no iteration-order
//! dependence — so a [`crate::LeakageReport`] built from
//! thread-count-invariant inputs is itself bit-identical across thread
//! counts.

/// Cap applied to the t-statistic when the pooled standard error
/// underflows (two internally-constant classes with different means).
/// Keeps the report JSON finite while still reading as "off the chart".
pub const T_CLAMP: f64 = 1e6;

/// Result of Welch's unequal-variance t-test between two classes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WelchT {
    /// The t-statistic, `mean_high - mean_low` over the pooled standard
    /// error. `0.0` when either class has fewer than two observations.
    pub t: f64,
    /// Welch–Satterthwaite degrees of freedom (0.0 when degenerate).
    pub dof: f64,
    /// Observations in the low class.
    pub n_low: usize,
    /// Observations in the high class.
    pub n_high: usize,
    /// Mean of the low class.
    pub mean_low: f64,
    /// Mean of the high class.
    pub mean_high: f64,
}

impl WelchT {
    /// Whether `|t|` meets the TVLA-style decision threshold.
    pub fn exceeds(&self, threshold: f64) -> bool {
        self.t.abs() >= threshold
    }
}

/// Mean and unbiased sample variance in one pass.
fn moments(xs: &[f64]) -> (f64, f64) {
    let n = xs.len();
    if n == 0 {
        return (0.0, 0.0);
    }
    let mean = xs.iter().sum::<f64>() / n as f64;
    if n < 2 {
        return (mean, 0.0);
    }
    let ss = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>();
    (mean, ss / (n - 1) as f64)
}

/// Welch's two-sample t-test (unequal variances, unequal sizes).
///
/// Degenerate inputs degrade gracefully rather than erroring: a class
/// with fewer than two observations yields `t = 0` (no evidence either
/// way), and two zero-variance classes with distinct means clamp to
/// [`T_CLAMP`] (unbounded evidence).
pub fn welch_t_test(low: &[f64], high: &[f64]) -> WelchT {
    let (mean_low, var_low) = moments(low);
    let (mean_high, var_high) = moments(high);
    welch_from_moments(
        low.len(),
        mean_low,
        var_low,
        high.len(),
        mean_high,
        var_high,
    )
}

/// The Welch decision applied to precomputed class moments — shared
/// between the slice path above and the streamed count-weighted path
/// ([`crate::StreamingChannelTest`]), so degenerate handling, the
/// clamp, and the dof formula cannot drift apart.
pub(crate) fn welch_from_moments(
    n_low: usize,
    mean_low: f64,
    var_low: f64,
    n_high: usize,
    mean_high: f64,
    var_high: f64,
) -> WelchT {
    let mut out = WelchT {
        t: 0.0,
        dof: 0.0,
        n_low,
        n_high,
        mean_low,
        mean_high,
    };
    if n_low < 2 || n_high < 2 {
        return out;
    }
    let se_low = var_low / n_low as f64;
    let se_high = var_high / n_high as f64;
    let se2 = se_low + se_high;
    let diff = mean_high - mean_low;
    if se2 <= 0.0 {
        out.t = if diff == 0.0 {
            0.0
        } else {
            T_CLAMP * diff.signum()
        };
        return out;
    }
    out.t = (diff / se2.sqrt()).clamp(-T_CLAMP, T_CLAMP);
    let denom = se_low * se_low / (n_low - 1) as f64 + se_high * se_high / (n_high - 1) as f64;
    out.dof = if denom > 0.0 { se2 * se2 / denom } else { 0.0 };
    out
}

/// A binned mutual-information estimate I(X; Y).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MiEstimate {
    /// Plug-in (maximum-likelihood) estimate, in bits. Biased upward
    /// for finite samples.
    pub bits: f64,
    /// Miller–Madow first-order bias of the plug-in estimate, in bits.
    pub bias_bits: f64,
    /// Bias-corrected estimate, clamped at zero:
    /// `max(0, bits - bias_bits)`.
    pub corrected_bits: f64,
    /// Occupied bins along X.
    pub x_bins: usize,
    /// Occupied bins along Y.
    pub y_bins: usize,
    /// Number of paired observations.
    pub n: usize,
}

/// Equal-width bin index of `x` in `[min, max]` split into `bins` bins.
pub(crate) fn bin_of(x: f64, min: f64, max: f64, bins: usize) -> usize {
    if max <= min || bins <= 1 {
        return 0;
    }
    let f = (x - min) / (max - min);
    ((f * bins as f64) as usize).min(bins - 1)
}

/// Binned mutual information between two paired streams, in bits, with
/// Miller–Madow bias correction.
///
/// Both axes are split into at most `max_bins` equal-width bins over
/// their observed ranges (an axis with a single value collapses to one
/// bin, making the estimate exactly zero). The plug-in estimate
/// overstates dependence by roughly
/// `(occupied_joint - occupied_x - occupied_y + 1) / (2 n ln 2)` bits
/// (Miller–Madow); `corrected_bits` subtracts that and clamps at zero,
/// so independent streams report ≈ 0 instead of a spurious positive
/// floor.
pub fn binned_mi(xs: &[f64], ys: &[f64], max_bins: usize) -> MiEstimate {
    let n = xs.len().min(ys.len());
    let bins = max_bins.max(1);
    let zero = MiEstimate {
        bits: 0.0,
        bias_bits: 0.0,
        corrected_bits: 0.0,
        x_bins: 0,
        y_bins: 0,
        n,
    };
    if n == 0 {
        return zero;
    }
    let (x_min, x_max) = min_max(&xs[..n]);
    let (y_min, y_max) = min_max(&ys[..n]);
    let x_bins = if x_max > x_min { bins } else { 1 };
    let y_bins = if y_max > y_min { bins } else { 1 };
    let mut joint = vec![0u64; x_bins * y_bins];
    let mut mx = vec![0u64; x_bins];
    let mut my = vec![0u64; y_bins];
    for (&x, &y) in xs[..n].iter().zip(&ys[..n]) {
        let bx = bin_of(x, x_min, x_max, x_bins);
        let by = bin_of(y, y_min, y_max, y_bins);
        joint[bx * y_bins + by] += 1;
        mx[bx] += 1;
        my[by] += 1;
    }
    mi_from_histograms(&joint, &mx, &my, n)
}

/// The MI fold over already-binned histograms — shared between the
/// slice path above and the streamed count-ledger path
/// ([`crate::StreamingChannelTest`]). Equal histograms produce
/// bit-identical estimates: the fold visits `(bx, by)` cells in the
/// same order either way.
pub(crate) fn mi_from_histograms(joint: &[u64], mx: &[u64], my: &[u64], n: usize) -> MiEstimate {
    let (x_bins, y_bins) = (mx.len(), my.len());
    let nf = n as f64;
    let mut bits = 0.0;
    let mut occupied_joint = 0usize;
    for bx in 0..x_bins {
        for by in 0..y_bins {
            let c = joint[bx * y_bins + by];
            if c == 0 {
                continue;
            }
            occupied_joint += 1;
            let p_xy = c as f64 / nf;
            let p_x = mx[bx] as f64 / nf;
            let p_y = my[by] as f64 / nf;
            bits += p_xy * (p_xy / (p_x * p_y)).log2();
        }
    }
    let occ_x = mx.iter().filter(|&&c| c > 0).count();
    let occ_y = my.iter().filter(|&&c| c > 0).count();
    // Miller–Madow: bias(I) = bias(Hx) + bias(Hy) - bias(Hxy), each
    // bias(H) ≈ (occupied - 1) / (2 n ln 2).
    let bias_bits = ((occupied_joint as f64 - occ_x as f64 - occ_y as f64 + 1.0)
        / (2.0 * nf * std::f64::consts::LN_2))
        .max(0.0);
    MiEstimate {
        bits: bits.max(0.0),
        bias_bits,
        corrected_bits: (bits - bias_bits).max(0.0),
        x_bins: occ_x,
        y_bins: occ_y,
        n,
    }
}

pub(crate) fn min_max(xs: &[f64]) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &x in xs {
        min = min.min(x);
        max = max.max(x);
    }
    (min, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_classes_score_zero_t() {
        let a: Vec<f64> = (0..200).map(|i| f64::from(i % 17)).collect();
        let w = welch_t_test(&a, &a);
        assert_eq!(w.t, 0.0);
        assert!(!w.exceeds(4.5));
        assert_eq!(w.n_low, 200);
        assert_eq!(w.n_high, 200);
    }

    #[test]
    fn shifted_classes_are_detected() {
        // Same shape, mean shifted by one within-class standard
        // deviation: t ≈ shift / (sd * sqrt(2/n)) ≈ 10 at n = 200.
        let a: Vec<f64> = (0..200).map(|i| f64::from(i % 17)).collect();
        let b: Vec<f64> = a.iter().map(|x| x + 5.0).collect();
        let w = welch_t_test(&a, &b);
        assert!(w.exceeds(4.5), "t = {}", w.t);
        assert!(w.t > 0.0, "high class has the larger mean");
        assert!(w.dof > 100.0, "equal shapes keep dof near n_a + n_b - 2");
        let flipped = welch_t_test(&b, &a);
        assert!((flipped.t + w.t).abs() < 1e-12, "antisymmetric in classes");
    }

    #[test]
    fn degenerate_classes_clamp_instead_of_nan() {
        let w = welch_t_test(&[1.0], &[2.0, 3.0]);
        assert_eq!(w.t, 0.0, "singleton class carries no evidence");
        let w = welch_t_test(&[1.0, 1.0], &[1.0, 1.0]);
        assert_eq!(w.t, 0.0);
        let w = welch_t_test(&[1.0, 1.0], &[2.0, 2.0]);
        assert_eq!(w.t, T_CLAMP, "distinct constants clamp");
        assert!(w.t.is_finite());
    }

    #[test]
    fn mi_of_identical_streams_is_entropy() {
        // X uniform over {0,1,2,3}, Y = X: I(X;Y) = H(X) = 2 bits.
        let xs: Vec<f64> = (0..400).map(|i| f64::from(i % 4)).collect();
        let mi = binned_mi(&xs, &xs, 4);
        assert!((mi.bits - 2.0).abs() < 1e-9, "plug-in = {}", mi.bits);
        assert!(
            (mi.corrected_bits - 2.0).abs() < 0.05,
            "corrected = {}",
            mi.corrected_bits
        );
        assert_eq!(mi.x_bins, 4);
        assert_eq!(mi.y_bins, 4);
    }

    #[test]
    fn mi_of_independent_streams_is_near_zero_after_correction() {
        // Coprime periods (7, 5) make the joint distribution uniform
        // over a full 35-cycle: exactly independent in the limit, and
        // 2100 samples is an integer number of cycles so the plug-in
        // MI is exactly zero up to float error.
        let xs: Vec<f64> = (0..2100).map(|i| f64::from(i % 7)).collect();
        let ys: Vec<f64> = (0..2100).map(|i| f64::from((i * 3) % 5)).collect();
        let mi = binned_mi(&xs, &ys, 16);
        assert!(mi.bits < 0.01, "plug-in = {}", mi.bits);
        assert!(
            mi.corrected_bits < 0.01,
            "corrected = {}",
            mi.corrected_bits
        );
    }

    #[test]
    fn mi_bias_correction_beats_plug_in_on_sparse_noise() {
        // A short independent sample: the plug-in estimate is visibly
        // positive purely from binning noise; Miller–Madow pulls the
        // corrected estimate at least halfway back toward zero.
        let xs: Vec<f64> = (0..64).map(|i| f64::from((i * 7) % 13)).collect();
        let ys: Vec<f64> = (0..64).map(|i| f64::from((i * 11) % 9)).collect();
        let mi = binned_mi(&xs, &ys, 16);
        assert!(mi.bits > 0.1, "sparse plug-in is biased up: {}", mi.bits);
        assert!(
            mi.bias_bits > 0.1,
            "bias term is material: {}",
            mi.bias_bits
        );
        assert!(
            mi.corrected_bits < mi.bits - 0.1,
            "correction removes a chunk of the bias: {} vs {}",
            mi.corrected_bits,
            mi.bits
        );
    }

    #[test]
    fn mi_degenerate_inputs() {
        assert_eq!(binned_mi(&[], &[], 8).corrected_bits, 0.0);
        // Constant X carries no information regardless of Y.
        let xs = vec![3.0; 100];
        let ys: Vec<f64> = (0..100).map(f64::from).collect();
        let mi = binned_mi(&xs, &ys, 8);
        assert_eq!(mi.bits, 0.0);
        assert_eq!(mi.x_bins, 1);
    }
}
