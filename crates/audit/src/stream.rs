//! Streamed leakage instruments: the TVLA/MI estimators and the full
//! audit accepting chunked observation streams.
//!
//! The batch entry points ([`crate::audit_samples`] and friends) hold
//! every observation in memory; at million-sample budgets that is
//! exactly the materialization the streaming attack engine exists to
//! avoid. This module keeps the *verdict* identical while storing only
//! sufficient statistics:
//!
//! * [`StreamingChannelTest`] groups `(prediction, value)` pairs by
//!   exact value into a count ledger. The simulated channels are
//!   discrete (coalesced-access and cycle counts), so the ledger's
//!   size is the number of *distinct* pairs — independent of how many
//!   samples stream through it. From the ledger it reproduces the
//!   batch mutual-information estimate **bit-for-bit** (identical
//!   histograms fed to the same fold) and the Welch t-test up to
//!   count-weighted summation order.
//! * [`StreamingAudit`] wires the ledger, a
//!   [`StreamingByteRecovery`] trajectory, and the channel histogram
//!   into a full [`LeakageReport`] matching the batch report on the
//!   same stream: trajectory, ρ̂, MI, and quantiles bitwise, the
//!   t-statistic within float-summation error.

use crate::report::{
    normalized_s, theory_check, AuditError, AuditTarget, ChannelQuantiles, ChannelTest,
    LeakageReport, TrajectoryPoint,
};
use crate::spec::AuditSpec;
use crate::stats::{bin_of, mi_from_histograms, min_max, welch_from_moments, MiEstimate};
use rcoal_attack::{
    even_checkpoints, AccessPredictor, Attack, AttackError, AttackSample, StreamingByteRecovery,
};
use rcoal_telemetry::Hist64;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A streamed counterpart of one channel's TVLA verdict: feed
/// `(prediction, value)` pairs in, get the same [`ChannelTest`] a batch
/// audit computes over the concatenated stream.
///
/// Observations are grouped by exact `(f64::to_bits)` pair, so memory
/// is proportional to the number of *distinct* pairs rather than the
/// stream length — constant for the simulator's integer-valued
/// channels no matter how many samples stream through.
#[derive(Debug, Clone)]
pub struct StreamingChannelTest {
    name: String,
    /// (prediction bits, value bits) → multiplicity.
    pairs: BTreeMap<(u64, u64), u64>,
    n: usize,
}

impl StreamingChannelTest {
    /// An empty ledger for the channel called `name`.
    pub fn new(name: &str) -> Self {
        StreamingChannelTest {
            name: name.to_string(),
            pairs: BTreeMap::new(),
            n: 0,
        }
    }

    /// Records one observation: the attacker-model prediction and the
    /// observed channel value.
    pub fn push(&mut self, prediction: f64, value: f64) {
        *self
            .pairs
            .entry((prediction.to_bits(), value.to_bits()))
            .or_insert(0) += 1;
        self.n += 1;
    }

    /// Observations recorded so far.
    pub fn observations(&self) -> usize {
        self.n
    }

    /// Whether no observation has been recorded.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Distinct `(prediction, value)` pairs held — the ledger's actual
    /// memory footprint, which stays flat on discrete channels.
    pub fn distinct_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Distinct prediction values with their total multiplicities,
    /// sorted ascending by `f64::total_cmp` — the grouped image of the
    /// batch path's sorted prediction vector.
    fn grouped_predictions(&self) -> Vec<(f64, u64)> {
        let mut by_pred: BTreeMap<u64, u64> = BTreeMap::new();
        for (&(p, _), &c) in &self.pairs {
            *by_pred.entry(p).or_insert(0) += c;
        }
        let mut out: Vec<(f64, u64)> = by_pred
            .into_iter()
            .map(|(bits, c)| (f64::from_bits(bits), c))
            .collect();
        out.sort_by(|a, b| a.0.total_cmp(&b.0));
        out
    }

    /// The median the batch partition uses: element `(n - 1) / 2` of
    /// the predictions sorted by `total_cmp`.
    fn median_prediction(&self, grouped: &[(f64, u64)]) -> f64 {
        let target = (self.n as u64 - 1) / 2;
        let mut cumulative = 0u64;
        for &(p, c) in grouped {
            cumulative += c;
            if cumulative > target {
                return p;
            }
        }
        grouped.last().map_or(0.0, |&(p, _)| p)
    }

    /// Computes the channel verdict against `spec`'s thresholds — the
    /// streamed equivalent of the batch audit's per-channel test.
    ///
    /// The partition mirrors the batch rule exactly: class by
    /// prediction strictly above the median, falling back to `>=` when
    /// the strict high class would have fewer than two members
    /// (saturated geometries).
    pub fn finish(&self, spec: &AuditSpec) -> ChannelTest {
        let welch = self.welch();
        let mi = self.mi(spec.mi_bins);
        let leaky = welch.exceeds(spec.t_threshold) && mi.corrected_bits > spec.mi_floor_bits;
        ChannelTest {
            name: self.name.clone(),
            welch,
            mi,
            leaky,
        }
    }

    fn welch(&self) -> crate::WelchT {
        if self.n == 0 {
            return welch_from_moments(0, 0.0, 0.0, 0, 0.0, 0.0);
        }
        let grouped = self.grouped_predictions();
        let median = self.median_prediction(&grouped);
        let strict_high: u64 = grouped
            .iter()
            .filter(|&&(p, _)| p > median)
            .map(|&(_, c)| c)
            .sum();
        let is_high: &dyn Fn(f64) -> bool = if strict_high >= 2 {
            &|p| p > median
        } else {
            &|p| p >= median
        };
        // Count-weighted two-pass moments per class (mean, then
        // unbiased variance), visiting pairs in ledger order.
        let mut acc = [(0u64, 0.0f64); 2]; // (count, sum) per class
        for (&(p, v), &c) in &self.pairs {
            let slot = &mut acc[usize::from(is_high(f64::from_bits(p)))];
            slot.0 += c;
            slot.1 += c as f64 * f64::from_bits(v);
        }
        let mean = |(count, sum): (u64, f64)| if count == 0 { 0.0 } else { sum / count as f64 };
        let (mean_low, mean_high) = (mean(acc[0]), mean(acc[1]));
        let mut ss = [0.0f64; 2];
        for (&(p, v), &c) in &self.pairs {
            let high = usize::from(is_high(f64::from_bits(p)));
            let d = f64::from_bits(v) - if high == 1 { mean_high } else { mean_low };
            ss[high] += c as f64 * d * d;
        }
        let var = |count: u64, ss: f64| {
            if count < 2 {
                0.0
            } else {
                ss / (count - 1) as f64
            }
        };
        welch_from_moments(
            acc[0].0 as usize,
            mean_low,
            var(acc[0].0, ss[0]),
            acc[1].0 as usize,
            mean_high,
            var(acc[1].0, ss[1]),
        )
    }

    fn mi(&self, max_bins: usize) -> MiEstimate {
        let n = self.n;
        if n == 0 {
            return MiEstimate {
                bits: 0.0,
                bias_bits: 0.0,
                corrected_bits: 0.0,
                x_bins: 0,
                y_bins: 0,
                n,
            };
        }
        let bins = max_bins.max(1);
        let xs: Vec<f64> = {
            let mut seen: Vec<u64> = self.pairs.keys().map(|&(p, _)| p).collect();
            seen.dedup();
            seen.into_iter().map(f64::from_bits).collect()
        };
        let ys: Vec<f64> = {
            let mut seen: Vec<u64> = self.pairs.keys().map(|&(_, v)| v).collect();
            seen.sort_unstable();
            seen.dedup();
            seen.into_iter().map(f64::from_bits).collect()
        };
        // min/max over the distinct values equal min/max over the full
        // stream, so the bin edges — and therefore every per-value bin
        // index — match the batch estimator exactly.
        let (x_min, x_max) = min_max(&xs);
        let (y_min, y_max) = min_max(&ys);
        let x_bins = if x_max > x_min { bins } else { 1 };
        let y_bins = if y_max > y_min { bins } else { 1 };
        let mut joint = vec![0u64; x_bins * y_bins];
        let mut mx = vec![0u64; x_bins];
        let mut my = vec![0u64; y_bins];
        for (&(p, v), &c) in &self.pairs {
            let bx = bin_of(f64::from_bits(p), x_min, x_max, x_bins);
            let by = bin_of(f64::from_bits(v), y_min, y_max, y_bins);
            joint[bx * y_bins + by] += c;
            mx[bx] += c;
            my[by] += c;
        }
        mi_from_histograms(&joint, &mx, &my, n)
    }
}

/// A full leakage audit over a chunked sample stream: the streamed
/// equivalent of [`crate::audit_samples`], with peak heap independent
/// of how many samples flow through.
///
/// Create with a total `budget`, feed chunks of any size with
/// [`StreamingAudit::push_chunk`], and call [`StreamingAudit::finish`].
/// When exactly `budget` samples are pushed, the resulting
/// [`LeakageReport`] matches the batch report over the concatenated
/// stream: the trajectory checkpoints land on the same
/// [`even_checkpoints`] schedule regardless of chunk boundaries, the
/// per-guess correlations are bit-identical (shared accumulator), and
/// the MI estimate and channel quantiles are exact. Stage channels are
/// a batch-only feature (they require collected telemetry, which
/// streamed generation rejects).
#[derive(Debug)]
pub struct StreamingAudit {
    target: AuditTarget,
    spec: AuditSpec,
    predictor: AccessPredictor,
    timing: StreamingChannelTest,
    recovery: StreamingByteRecovery,
    hist: Hist64,
    planned: Vec<usize>,
    next_checkpoint: usize,
    trajectory: Vec<TrajectoryPoint>,
}

impl StreamingAudit {
    /// Prepares an audit expecting up to `budget` samples.
    ///
    /// # Errors
    ///
    /// [`AuditError::Spec`] for an invalid spec or a zero budget;
    /// [`AuditError::Attack`] when the byte index is out of range for
    /// the target's oracle.
    pub fn new(target: AuditTarget, spec: AuditSpec, budget: usize) -> Result<Self, AuditError> {
        spec.validate().map_err(AuditError::Spec)?;
        if budget == 0 {
            return Err(AuditError::Spec(
                "streamed audit budget must be positive".to_string(),
            ));
        }
        let attack = Attack::against(target.policy, target.warp_size)
            .with_seed(spec.attack_seed)
            .with_oracle(Arc::clone(&target.oracle));
        let predictor = attack.predictor_for_guess(target.true_key_byte);
        let recovery = StreamingByteRecovery::new(&attack, spec.byte)?;
        let planned = even_checkpoints(budget, spec.checkpoints);
        Ok(StreamingAudit {
            target,
            spec,
            predictor,
            timing: StreamingChannelTest::new("timing"),
            recovery,
            hist: Hist64::new(),
            planned,
            next_checkpoint: 0,
            trajectory: Vec::new(),
        })
    }

    /// Samples audited so far.
    pub fn len(&self) -> usize {
        self.recovery.len()
    }

    /// Whether no sample has been audited yet.
    pub fn is_empty(&self) -> bool {
        self.recovery.is_empty()
    }

    /// Feeds the next chunk of the stream, splitting internally at
    /// checkpoint boundaries so the recorded trajectory is independent
    /// of how the stream is chunked.
    pub fn push_chunk(&mut self, samples: &[AttackSample]) {
        let mut pos = 0;
        while pos < samples.len() {
            let consumed = self.recovery.len();
            let remaining = samples.len() - pos;
            let take = match self.planned.get(self.next_checkpoint) {
                Some(&boundary) if boundary > consumed => remaining.min(boundary - consumed),
                _ => remaining,
            };
            let sub = &samples[pos..pos + take];
            for s in sub {
                let prediction = self.predictor.predict(
                    &s.ciphertexts,
                    self.spec.byte,
                    self.target.true_key_byte,
                );
                self.timing.push(prediction, s.time);
                self.hist.record(s.time.max(0.0).round() as u64);
            }
            self.recovery.push_chunk(sub);
            pos += take;
            if self.planned.get(self.next_checkpoint) == Some(&self.recovery.len()) {
                self.record_checkpoint();
                self.next_checkpoint += 1;
            }
        }
    }

    fn record_checkpoint(&mut self) {
        let true_byte = self.target.true_key_byte;
        self.trajectory.push(TrajectoryPoint {
            samples: self.recovery.len(),
            corr_true: self.recovery.correlation_of(true_byte),
            rank: self.recovery.snapshot().rank_of(true_byte),
        });
    }

    /// Closes the stream and produces the leakage verdict.
    ///
    /// # Errors
    ///
    /// [`AuditError::Attack`] ([`AttackError::NoSamples`]) when nothing
    /// was pushed.
    pub fn finish(mut self) -> Result<LeakageReport, AuditError> {
        let n = self.recovery.len();
        if n == 0 {
            return Err(AuditError::Attack(AttackError::NoSamples));
        }
        // Streams that fall short of the budget still close their
        // trajectory with the full-stream point.
        if self.trajectory.last().map(|p| p.samples) != Some(n) {
            self.record_checkpoint();
        }
        let timing = self.timing.finish(&self.spec);
        let empirical_rho = self.trajectory.last().map_or(0.0, |p| p.corr_true);
        let empirical_s = normalized_s(empirical_rho);
        let theory = theory_check(
            self.target.policy,
            self.target.warp_size,
            &self.spec,
            empirical_rho,
            n,
            self.target.theory_r,
        );
        let quantiles = ChannelQuantiles {
            count: self.hist.count(),
            mean: self.hist.mean(),
            p50: self.hist.p50().unwrap_or(0),
            p95: self.hist.p95().unwrap_or(0),
            p99: self.hist.p99().unwrap_or(0),
        };
        let leaky = timing.leaky;
        Ok(LeakageReport {
            policy: self.target.policy,
            warp_size: self.target.warp_size,
            byte: self.spec.byte,
            channel: self.spec.channel,
            samples: n,
            spec: self.spec,
            timing,
            stages: Vec::new(),
            trajectory: self.trajectory,
            empirical_rho,
            empirical_s,
            theory,
            quantiles,
            leaky,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::audit_samples;
    use crate::stats::{binned_mi, welch_t_test};
    use rcoal_core::CoalescingPolicy;

    /// Synthetic stream where the channel value IS the baseline
    /// predictor's access count for the true byte (ρ̂ = 1); mirrors the
    /// batch report tests.
    fn perfect_leak_samples(n: usize) -> (Vec<AttackSample>, u8) {
        let true_byte = 0x3c;
        let attack =
            Attack::against(CoalescingPolicy::Baseline, 32).with_seed(AuditSpec::new().attack_seed);
        let mut predictor = attack.predictor_for_guess(true_byte);
        let samples = (0..n)
            .map(|i| {
                let ct: Vec<[u8; 16]> = (0..32usize)
                    .map(|lane| {
                        let mut b = [0u8; 16];
                        b.iter_mut().enumerate().for_each(|(k, x)| {
                            *x = (i * 31 + lane * 7 + k * 13) as u8;
                        });
                        b
                    })
                    .collect();
                let time = predictor.predict(&ct, 0, true_byte);
                AttackSample {
                    ciphertexts: Arc::new(ct),
                    time,
                }
            })
            .collect();
        (samples, true_byte)
    }

    #[test]
    fn ledger_mi_is_bit_identical_to_batch() {
        // Discrete values including negatives and repeats.
        let preds: Vec<f64> = (0..500).map(|i| f64::from(i % 7) - 3.0).collect();
        let vals: Vec<f64> = (0..500).map(|i| f64::from((i * i) % 11) * 0.5).collect();
        let mut ledger = StreamingChannelTest::new("synthetic");
        for (&p, &v) in preds.iter().zip(&vals) {
            ledger.push(p, v);
        }
        for bins in [2, 8, 16] {
            let streamed = ledger.mi(bins);
            let batch = binned_mi(&preds, &vals, bins);
            assert_eq!(streamed, batch, "bins {bins}");
        }
    }

    #[test]
    fn ledger_welch_matches_batch_partition() {
        let preds: Vec<f64> = (0..300).map(|i| f64::from(i % 9)).collect();
        let vals: Vec<f64> = (0..300)
            .map(|i| f64::from(i % 9) * 2.0 + f64::from(i % 5))
            .collect();
        let mut ledger = StreamingChannelTest::new("synthetic");
        for (&p, &v) in preds.iter().zip(&vals) {
            ledger.push(p, v);
        }
        // Replicate the batch partition by hand.
        let mut sorted = preds.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[(sorted.len() - 1) / 2];
        let (mut low, mut high) = (Vec::new(), Vec::new());
        for (&p, &v) in preds.iter().zip(&vals) {
            if p > median {
                high.push(v);
            } else {
                low.push(v);
            }
        }
        let batch = welch_t_test(&low, &high);
        let streamed = ledger.welch();
        assert_eq!(streamed.n_low, batch.n_low);
        assert_eq!(streamed.n_high, batch.n_high);
        assert!(
            (streamed.t - batch.t).abs() < 1e-9,
            "streamed {} vs batch {}",
            streamed.t,
            batch.t
        );
        assert!((streamed.mean_low - batch.mean_low).abs() < 1e-12);
        assert!((streamed.mean_high - batch.mean_high).abs() < 1e-12);
        assert!((streamed.dof - batch.dof).abs() < 1e-6);
    }

    #[test]
    fn ledger_memory_tracks_distinct_pairs_not_stream_length() {
        let mut ledger = StreamingChannelTest::new("discrete");
        for i in 0..10_000usize {
            ledger.push(f64::from(i as u32 % 8), f64::from(i as u32 % 5));
        }
        assert_eq!(ledger.observations(), 10_000);
        assert!(
            ledger.distinct_pairs() <= 40,
            "8 x 5 value grid, got {}",
            ledger.distinct_pairs()
        );
    }

    #[test]
    fn streamed_audit_matches_batch_report() {
        let (samples, true_byte) = perfect_leak_samples(200);
        let spec = AuditSpec::new();
        let batch =
            audit_samples(CoalescingPolicy::Baseline, 32, &samples, true_byte, &spec).unwrap();
        for chunk in [7usize, 64, 200] {
            let mut audit = StreamingAudit::new(
                AuditTarget::aes(CoalescingPolicy::Baseline, 32, true_byte),
                spec.clone(),
                samples.len(),
            )
            .unwrap();
            for c in samples.chunks(chunk) {
                audit.push_chunk(c);
            }
            let streamed = audit.finish().unwrap();
            assert_eq!(streamed.samples, batch.samples);
            assert_eq!(streamed.trajectory, batch.trajectory, "chunk {chunk}");
            assert_eq!(streamed.empirical_rho, batch.empirical_rho);
            assert_eq!(streamed.timing.mi, batch.timing.mi);
            assert_eq!(streamed.timing.leaky, batch.timing.leaky);
            assert_eq!(streamed.leaky, batch.leaky);
            assert_eq!(streamed.quantiles, batch.quantiles);
            assert_eq!(streamed.theory, batch.theory);
            assert_eq!(streamed.timing.welch.n_low, batch.timing.welch.n_low);
            assert_eq!(streamed.timing.welch.n_high, batch.timing.welch.n_high);
            assert!(
                (streamed.timing.welch.t - batch.timing.welch.t).abs() < 1e-9,
                "t streamed {} vs batch {}",
                streamed.timing.welch.t,
                batch.timing.welch.t
            );
        }
    }

    #[test]
    fn short_stream_closes_its_trajectory() {
        let (samples, true_byte) = perfect_leak_samples(30);
        let mut audit = StreamingAudit::new(
            AuditTarget::aes(CoalescingPolicy::Baseline, 32, true_byte),
            AuditSpec::new(),
            1000,
        )
        .unwrap();
        audit.push_chunk(&samples);
        let report = audit.finish().unwrap();
        assert_eq!(report.samples, 30);
        assert_eq!(report.trajectory.last().unwrap().samples, 30);
        assert!(report.leaky, "the perfect leak still flags at n = 30");
    }

    #[test]
    fn empty_and_invalid_streamed_audits_are_typed_errors() {
        let target = AuditTarget::aes(CoalescingPolicy::Baseline, 32, 1);
        let err = StreamingAudit::new(target.clone(), AuditSpec::new(), 0).unwrap_err();
        assert!(matches!(err, AuditError::Spec(_)), "{err}");
        let err =
            StreamingAudit::new(target.clone(), AuditSpec::new().with_byte(16), 10).unwrap_err();
        assert!(matches!(err, AuditError::Spec(_)), "{err}");
        let audit = StreamingAudit::new(target, AuditSpec::new(), 10).unwrap();
        assert!(audit.is_empty());
        let err = audit.finish().unwrap_err();
        assert!(matches!(err, AuditError::Attack(AttackError::NoSamples)));
    }
}
