//! Extension ablation: an L1 that caches global loads *transforms* the
//! leak rather than closing it. The 1 KiB T4 table becomes resident, so
//! the coalescing channel disappears — but a cache-miss channel appears
//! in its place (with the opposite sign: concentrated compulsory misses
//! overlap better than spread-out ones). The argmax attacker fails, an
//! |corr| attacker would not — randomization is needed at every level of
//! the hierarchy, exactly the paper's §VII conclusion.

use rcoal_aes::AesGpuKernel;
use rcoal_bench::BENCH_SEED;
use rcoal_bench::{criterion_group, criterion_main, Criterion};
use rcoal_core::CoalescingPolicy;
use rcoal_experiments::figures::ablation_l1;
use rcoal_experiments::random_plaintexts;
use rcoal_gpu_sim::{GpuConfig, GpuSimulator};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let rows = ablation_l1(400, BENCH_SEED).expect("simulation");
    println!("\nL1-cache interaction with the baseline attack (400 plaintexts):");
    println!(
        "{:<26} | {:>13} {:>5} | {:>9} {:>12}",
        "configuration", "corr(correct)", "rank", "L1 hits", "exec cycles"
    );
    for r in &rows {
        println!(
            "{:<26} | {:>13.3} {:>5} | {:>9.0} {:>12.0}",
            r.config, r.corr_correct, r.rank, r.l1_hits_per_plaintext, r.mean_total_cycles
        );
    }
    println!("(expected: with L1 on, the argmax attack fails (rank ~255) but the");
    println!(" correlation is strongly NEGATIVE — the leak moved into the cache-miss");
    println!(" overlap pattern instead of disappearing; cf. paper §VII)\n");

    let lines = random_plaintexts(1, 32, BENCH_SEED).remove(0);
    let sim = GpuSimulator::new(GpuConfig {
        l1_sets: 16,
        ..GpuConfig::paper()
    });
    let mut g = c.benchmark_group("ablation_l1");
    g.bench_function("simulate_with_l1", |b| {
        b.iter(|| {
            let kernel = AesGpuKernel::new(b"bench key 16 by!", lines.clone(), 32);
            black_box(
                sim.run(&kernel, CoalescingPolicy::Baseline, 1)
                    .expect("run"),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
