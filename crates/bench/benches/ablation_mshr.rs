//! Extension ablation: why the paper disables MSHRs. With coalescing off,
//! MSHR merging rebuilds per-block request merging — and with it, the
//! timing channel — making "just disable coalescing" unsafe on a machine
//! with miss-status holding registers.

use rcoal_aes::AesGpuKernel;
use rcoal_bench::BENCH_SEED;
use rcoal_bench::{criterion_group, criterion_main, Criterion};
use rcoal_core::CoalescingPolicy;
use rcoal_experiments::figures::ablation_mshr;
use rcoal_experiments::random_plaintexts;
use rcoal_gpu_sim::{GpuConfig, GpuSimulator};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let rows = ablation_mshr(400, BENCH_SEED).expect("simulation");
    println!("\nMSHR interaction with disabled coalescing (400 plaintexts, baseline attack):");
    println!(
        "{:<34} | {:>13} {:>5} {:>12}",
        "configuration", "corr(correct)", "rank", "exec cycles"
    );
    for r in &rows {
        println!(
            "{:<34} | {:>13.3} {:>5} {:>12.0}",
            r.config, r.corr_correct, r.rank, r.mean_total_cycles
        );
    }
    println!("(expected: MSHRs restore the baseline's timing behavior — and its leak —");
    println!(" even with coalescing disabled; cf. paper §VII)\n");

    let lines = random_plaintexts(1, 32, BENCH_SEED).remove(0);
    let sim = GpuSimulator::new(GpuConfig {
        mshr_entries: 64,
        ..GpuConfig::paper()
    });
    let mut g = c.benchmark_group("ablation_mshr");
    g.bench_function("simulate_disabled_with_mshr", |b| {
        b.iter(|| {
            let kernel = AesGpuKernel::new(b"bench key 16 by!", lines.clone(), 32);
            black_box(
                sim.run(&kernel, CoalescingPolicy::Disabled, 1)
                    .expect("run"),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
