//! Extension ablation: measurement noise vs attack strength — validates
//! the attenuation law underlying Eq. 4 and explains the gap between the
//! paper's clean-simulator sample counts (~10^2) and real-hardware
//! attacks (~10^6, Jiang et al.).

use rcoal_attack::GaussianNoise;
use rcoal_bench::BENCH_SEED;
use rcoal_bench::{criterion_group, criterion_main, Criterion};
use rcoal_core::CoalescingPolicy;
use rcoal_experiments::figures::ablation_noise;
use rcoal_experiments::{ExperimentConfig, TimingSource};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let sigmas = [0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0];
    let rows = ablation_noise(800, &sigmas, BENCH_SEED).expect("simulation");
    println!("\nNoise sensitivity of the baseline attack (byte-0 channel, 800 samples):");
    println!(
        "{:>14} | {:>13} {:>14} | {:>16}",
        "sigma/signal", "measured corr", "predicted corr", "Eq.4 samples"
    );
    for r in &rows {
        println!(
            "{:>14.1} | {:>13.3} {:>14.3} | {:>16.0}",
            r.sigma_over_signal, r.measured_corr, r.predicted_corr, r.samples_needed
        );
    }
    println!("(expected: measured tracks predicted; sample cost grows ~(sigma/signal)^2)\n");

    let samples = ExperimentConfig::new(CoalescingPolicy::Baseline, 200, 32)
        .with_seed(BENCH_SEED)
        .functional_only()
        .run()
        .expect("run")
        .attack_samples(TimingSource::ByteAccesses(0))
        .expect("timing source");
    let mut g = c.benchmark_group("ablation_noise");
    g.bench_function("apply_noise_200_samples", |b| {
        let mut noise = GaussianNoise::new(2.0, BENCH_SEED).expect("valid sigma");
        b.iter(|| black_box(noise.applied(black_box(&samples))))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
