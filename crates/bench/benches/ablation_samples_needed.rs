//! Extension ablation: empirical samples-to-recovery per mechanism —
//! the measured counterpart of Table II's normalized S and Eq. 4.

use rcoal_attack::{samples_needed, Attack};
use rcoal_bench::BENCH_SEED;
use rcoal_bench::{criterion_group, criterion_main, Criterion};
use rcoal_core::CoalescingPolicy;
use rcoal_experiments::figures::ablation_samples_needed;
use rcoal_experiments::{ExperimentConfig, TimingSource};
use rcoal_theory::{Mechanism, SecurityModel};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let policies = vec![
        ("baseline".to_string(), CoalescingPolicy::Baseline),
        ("FSS".to_string(), CoalescingPolicy::fss(4).expect("valid")),
        (
            "FSS+RTS".to_string(),
            CoalescingPolicy::fss_rts(2).expect("valid"),
        ),
        (
            "FSS+RTS".to_string(),
            CoalescingPolicy::fss_rts(4).expect("valid"),
        ),
        (
            "RSS+RTS".to_string(),
            CoalescingPolicy::rss_rts(2).expect("valid"),
        ),
        (
            "RSS+RTS".to_string(),
            CoalescingPolicy::rss_rts(4).expect("valid"),
        ),
    ];
    let rows = ablation_samples_needed(&policies, 4000, BENCH_SEED).expect("simulation");
    let model = SecurityModel::default();
    println!("\nEmpirical samples-to-recovery (byte-0 channel, budget 4000):");
    println!(
        "{:>9} {:>3} | {:>10} | {:>12} | {:>17}",
        "mech", "M", "measured N", "corr@budget", "Eq.4 at analytic rho"
    );
    for r in &rows {
        let analytic = match (r.mechanism.as_str(), r.m) {
            ("FSS+RTS", m) => Some(model.rho(Mechanism::FssRts, m)),
            ("RSS+RTS", m) => Some(model.rho(Mechanism::RssRts, m)),
            ("FSS", m) => Some(model.rho(Mechanism::Fss, m)),
            _ => Some(1.0),
        };
        let eq4 = analytic
            .map(|rho| {
                if rho >= 1.0 {
                    "~25 (corr 1)".to_string()
                } else if rho <= 0.0 {
                    "inf".to_string()
                } else {
                    format!("{:.0}", samples_needed(rho, 0.99).expect("valid rho"))
                }
            })
            .expect("analytic rho known");
        println!(
            "{:>9} {:>3} | {:>10} | {:>12.3} | {:>17}",
            r.mechanism,
            r.m,
            r.samples_to_recover
                .map(|n| n.to_string())
                .unwrap_or_else(|| ">budget".to_string()),
            r.corr_at_budget,
            eq4
        );
    }
    println!("(expected: measured N grows with the analytic 1/rho^2 ordering)\n");

    let samples = ExperimentConfig::new(CoalescingPolicy::fss_rts(4).expect("valid"), 200, 32)
        .with_seed(BENCH_SEED)
        .functional_only()
        .run()
        .expect("run")
        .attack_samples(TimingSource::ByteAccesses(0))
        .expect("timing source");
    let attack = Attack::against(CoalescingPolicy::fss_rts(4).expect("valid"), 32);
    let mut g = c.benchmark_group("ablation_samples");
    g.sample_size(10);
    g.bench_function("recover_byte_200_samples_fss_rts", |b| {
        b.iter(|| {
            black_box(
                attack
                    .recover_byte(black_box(&samples), 0)
                    .expect("samples"),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
