//! Extension ablation: warp-scheduler policy (GTO vs loose round-robin).
//! The timing channel and the defense mechanisms are scheduler-agnostic;
//! this quantifies how much the absolute timing shifts.

use rcoal_aes::AesGpuKernel;
use rcoal_bench::BENCH_SEED;
use rcoal_bench::{criterion_group, criterion_main, Criterion};
use rcoal_core::CoalescingPolicy;
use rcoal_experiments::{random_plaintexts, ExperimentConfig};
use rcoal_gpu_sim::{GpuConfig, GpuSimulator, SchedulerPolicy};
use std::hint::black_box;

fn run(scheduler: SchedulerPolicy, policy: CoalescingPolicy, lines: usize) -> (f64, f64) {
    let gpu = GpuConfig {
        scheduler,
        ..GpuConfig::paper()
    };
    let data = ExperimentConfig::new(policy, 5, lines)
        .with_seed(BENCH_SEED)
        .with_gpu(gpu)
        .run()
        .expect("simulation");
    (
        data.mean_total_cycles().expect("timing run"),
        data.mean_total_accesses(),
    )
}

fn bench(c: &mut Criterion) {
    println!("\nScheduler ablation (5 plaintexts each):");
    println!(
        "{:>24} | {:>12} {:>12} | {:>14}",
        "config", "GTO cycles", "LRR cycles", "accesses (both)"
    );
    for (name, policy, lines) in [
        ("baseline, 32 lines", CoalescingPolicy::Baseline, 32),
        (
            "RSS+RTS(8), 32 lines",
            CoalescingPolicy::rss_rts(8).expect("valid"),
            32,
        ),
        ("baseline, 1024 lines", CoalescingPolicy::Baseline, 1024),
    ] {
        let (gto_cycles, gto_accesses) = run(SchedulerPolicy::Gto, policy, lines);
        let (lrr_cycles, lrr_accesses) = run(SchedulerPolicy::Lrr, policy, lines);
        assert_eq!(
            gto_accesses, lrr_accesses,
            "access counts are scheduler-independent"
        );
        println!(
            "{:>24} | {:>12.0} {:>12.0} | {:>14.0}",
            name, gto_cycles, lrr_cycles, gto_accesses
        );
    }
    println!("(expected: accesses identical; cycle differences only where many warps\n contend, i.e. the 1024-line row)\n");

    let lines = random_plaintexts(1, 1024, BENCH_SEED).remove(0);
    let mut g = c.benchmark_group("ablation_scheduler");
    g.sample_size(10);
    for (name, sched) in [("gto", SchedulerPolicy::Gto), ("lrr", SchedulerPolicy::Lrr)] {
        let sim = GpuSimulator::new(GpuConfig {
            scheduler: sched,
            ..GpuConfig::paper()
        });
        g.bench_function(format!("simulate_1024_lines_{name}"), |b| {
            b.iter(|| {
                let kernel = AesGpuKernel::new(b"bench key 16 by!", lines.clone(), 32);
                black_box(
                    sim.run(&kernel, CoalescingPolicy::Baseline, 1)
                        .expect("run"),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
