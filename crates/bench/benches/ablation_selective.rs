//! Extension ablation (paper §VII future work): selective randomization
//! protects only the vulnerable last-round loads. Security of the last
//! round matches the uniform defense; the performance cost collapses.

use rcoal_bench::BENCH_SEED;
use rcoal_bench::{criterion_group, criterion_main, Criterion};
use rcoal_core::CoalescingPolicy;
use rcoal_experiments::figures::ablation_selective;
use rcoal_experiments::ExperimentConfig;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let rows = ablation_selective(200, 30, 8, BENCH_SEED).expect("simulation");
    println!("\nSelective randomization ablation (M = 8, RSS+RTS):");
    println!(
        "{:<44} | {:>9} {:>10} {:>14}",
        "configuration", "avg corr", "norm time", "mem accesses"
    );
    for r in &rows {
        println!(
            "{:<44} | {:>9.3} {:>10.3} {:>14.0}",
            r.config, r.avg_correct_corr, r.normalized_time, r.mean_total_accesses
        );
    }
    println!("(expected: selective keeps the uniform defense's low correlation at a");
    println!(" fraction of its slowdown, because rounds 1-9 coalesce at baseline)\n");

    let mut g = c.benchmark_group("ablation_selective");
    g.sample_size(20);
    g.bench_function("selective_functional_run", |b| {
        b.iter(|| {
            black_box(
                ExperimentConfig::selective(CoalescingPolicy::rss_rts(8).expect("valid"), 1, 32)
                    .with_seed(BENCH_SEED)
                    .functional_only()
                    .run()
                    .expect("run"),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
