//! Extension ablation: RCoal's performance cost on non-crypto workloads
//! with different locality profiles (streaming, strided, random gather,
//! broadcast) — the first question a deployment would ask.

use rcoal_bench::BENCH_SEED;
use rcoal_bench::{criterion_group, criterion_main, Criterion};
use rcoal_core::CoalescingPolicy;
use rcoal_gpu_sim::{AccessPattern, GpuConfig, GpuSimulator, SyntheticKernel};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let sim = GpuSimulator::new(GpuConfig::paper());
    let patterns = [
        AccessPattern::Streaming,
        AccessPattern::Broadcast,
        AccessPattern::Random { range: 4096 },
        AccessPattern::Strided { stride: 128 },
    ];
    let policies = [
        ("baseline", CoalescingPolicy::Baseline),
        ("FSS(8)", CoalescingPolicy::fss(8).expect("valid")),
        ("RSS+RTS(8)", CoalescingPolicy::rss_rts(8).expect("valid")),
        ("disabled", CoalescingPolicy::Disabled),
    ];
    println!(
        "\nRCoal cost on synthetic workloads (30 warps x 32 loads, cycles normalized to baseline):"
    );
    print!("{:>16}", "pattern");
    for (name, _) in &policies {
        print!(" {name:>12}");
    }
    println!();
    for pattern in patterns {
        let kernel = SyntheticKernel::new(pattern, 30, 32, 32).with_seed(BENCH_SEED);
        let base = sim
            .run(&kernel, CoalescingPolicy::Baseline, 1)
            .expect("simulation")
            .total_cycles as f64;
        print!("{:>16}", pattern.to_string());
        for (_, policy) in &policies {
            let cycles = sim
                .run(&kernel, *policy, 1)
                .expect("simulation")
                .total_cycles as f64;
            print!(" {:>12.3}", cycles / base);
        }
        println!();
    }
    println!("(expected: streaming/broadcast pay the most under subwarping; wide strides");
    println!(" pay nothing — RCoal's cost is locality-dependent, not a flat tax)\n");

    let kernel = SyntheticKernel::new(AccessPattern::Random { range: 4096 }, 30, 32, 32);
    let mut g = c.benchmark_group("ablation_workloads");
    g.sample_size(20);
    g.bench_function("synthetic_random_rss_rts8", |b| {
        b.iter(|| {
            black_box(
                sim.run(&kernel, CoalescingPolicy::rss_rts(8).expect("valid"), 1)
                    .expect("simulation"),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
