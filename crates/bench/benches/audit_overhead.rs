//! Cost of the leakage audit relative to the simulation it audits.
//!
//! The audit's design point is that it consumes what a sweep already
//! produced: auditing a cached row must cost statistics only, never a
//! re-simulation. This bench measures both legs at the CI gate's
//! operating point — a cold `audit_one` (simulate + audit) against
//! repeated audits of the now-cached row — verifies the reports are
//! bit-identical across reps, and records the ratio to
//! `BENCH_audit.json` at the repository root.

use rcoal_audit::AuditSpec;
use rcoal_bench::BENCH_SEED;
use rcoal_core::CoalescingPolicy;
use rcoal_experiments::SweepRunner;
use rcoal_scenario::Scenario;
use std::time::Instant;

/// The CI gate's sample budget (the audit thresholds are calibrated
/// for it; see DESIGN.md §13).
const SAMPLES: usize = 512;
/// Repetitions of the cached-audit leg; the minimum is recorded.
const REPS: usize = 5;

fn main() {
    if let Err(msg) = run() {
        eprintln!("audit_overhead bench failed: {msg}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    println!("audit_overhead: RSS+RTS(8) x {SAMPLES} samples, cached-audit best of {REPS}");

    let policy = CoalescingPolicy::rss_rts(8).map_err(|e| e.to_string())?;
    let scenario = Scenario::new(policy, SAMPLES, 32)
        .with_seed(BENCH_SEED)
        .functional_only();
    let spec = AuditSpec::new();
    let runner = SweepRunner::new().with_threads(1);

    let start = Instant::now();
    let (_, cold_report) = runner
        .audit_one(&scenario, &spec)
        .map_err(|e| e.to_string())?;
    let cold_secs = start.elapsed().as_secs_f64();
    if runner.report().launched != 1 {
        return Err("cold leg must simulate exactly once".into());
    }

    let cold_json = cold_report.to_json();
    let mut cached_secs = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        let (_, report) = runner
            .audit_one(&scenario, &spec)
            .map_err(|e| e.to_string())?;
        cached_secs = cached_secs.min(start.elapsed().as_secs_f64());
        if report.to_json() != cold_json {
            return Err("cached audit disagrees with the cold run (nondeterminism!)".into());
        }
    }
    if runner.report().launched != 1 {
        return Err("cached legs must not re-simulate".into());
    }

    let audit_fraction = cached_secs / cold_secs;
    let theory_ok = cold_report.theory.as_ref().is_some_and(|t| t.ok);
    println!("  cold (simulate + audit) : {cold_secs:.4} s");
    println!(
        "  cached audit            : {cached_secs:.4} s ({:.1}% of cold)",
        audit_fraction * 100.0
    );
    println!(
        "  verdict                 : leaky={}, theory_ok={theory_ok}",
        cold_report.leaky
    );

    let json = format!(
        "{{\n  \"schema\": \"rcoal-bench/v1\",\n  \"bench\": \"audit_overhead\",\n  \"workload\": \"RSS+RTS(8) functional x {SAMPLES} samples, threads=1, cached best of {REPS}\",\n  \"cold_seconds\": {cold_secs:.6},\n  \"cached_audit_seconds\": {cached_secs:.6},\n  \"audit_fraction_of_cold\": {audit_fraction:.4},\n  \"samples\": {SAMPLES},\n  \"leaky\": {},\n  \"theory_ok\": {theory_ok},\n  \"reports_identical\": true\n}}\n",
        cold_report.leaky
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_audit.json");
    std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
    println!("  recorded to BENCH_audit.json");
    Ok(())
}
