//! Figure 5: relationship between last-round and total execution time on
//! the baseline GPU.

use rcoal_aes::AesGpuKernel;
use rcoal_bench::BENCH_SEED;
use rcoal_bench::{criterion_group, criterion_main, Criterion};
use rcoal_core::CoalescingPolicy;
use rcoal_experiments::figures::fig05_last_vs_total;
use rcoal_experiments::random_plaintexts;
use rcoal_gpu_sim::{GpuConfig, GpuSimulator};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let data = fig05_last_vs_total(100, BENCH_SEED).expect("simulation");
    println!("\nFigure 5: last-round vs total execution time (100 plaintexts)");
    println!(
        "corr(last_round_cycles, total_cycles) = {:.3}",
        data.correlation
    );
    for (last, total) in data.points.iter().take(10) {
        println!("  last {last:>6} cycles | total {total:>6} cycles");
    }
    println!(
        "  ... ({} points total; positive correlation expected)\n",
        data.points.len()
    );

    // Time one baseline simulated launch (32 lines = 1 warp).
    let lines = random_plaintexts(1, 32, BENCH_SEED).remove(0);
    let sim = GpuSimulator::new(GpuConfig::paper());
    let mut g = c.benchmark_group("fig05");
    g.bench_function("simulate_one_plaintext_baseline", |b| {
        b.iter(|| {
            let kernel = AesGpuKernel::new(b"bench key 16 by!", lines.clone(), 32);
            black_box(
                sim.run(&kernel, CoalescingPolicy::Baseline, 1)
                    .expect("run"),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
