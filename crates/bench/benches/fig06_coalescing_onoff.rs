//! Figure 6: key-byte recovery with coalescing enabled vs disabled.

use rcoal_attack::Attack;
use rcoal_bench::BENCH_SEED;
use rcoal_bench::{criterion_group, criterion_main, Criterion};
use rcoal_core::CoalescingPolicy;
use rcoal_experiments::figures::fig06_coalescing_onoff;
use rcoal_experiments::{ExperimentConfig, TimingSource};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let n = 300;
    let data = fig06_coalescing_onoff(n, BENCH_SEED).expect("simulation");
    let correct = data.correct_byte as usize;
    println!("\nFigure 6: baseline attack on key byte 0 ({n} plaintexts)");
    println!(
        "(a) coalescing ENABLED : corr(correct)={:+.3}, rank={} -> {}",
        data.enabled[correct],
        data.rank_enabled,
        if data.rank_enabled == 0 {
            "RECOVERED"
        } else {
            "not recovered"
        }
    );
    println!(
        "(b) coalescing DISABLED: corr(correct)={:+.3}, rank={} -> {}",
        data.disabled[correct],
        data.rank_disabled,
        if data.rank_disabled == 0 {
            "RECOVERED"
        } else {
            "not recovered (channel closed)"
        }
    );
    let max_off = data.disabled.iter().cloned().fold(f64::MIN, f64::max);
    println!("    max |corr| over all guesses with coalescing off: {max_off:.3}\n");

    // Time the attack side: one byte recovery over 100 samples.
    let samples = ExperimentConfig::new(CoalescingPolicy::Baseline, 100, 32)
        .with_seed(BENCH_SEED)
        .run()
        .expect("simulation")
        .attack_samples(TimingSource::LastRoundCycles)
        .expect("timing source");
    let attack = Attack::baseline(32);
    let mut g = c.benchmark_group("fig06");
    g.sample_size(10);
    g.bench_function("recover_byte_100_samples", |b| {
        b.iter(|| {
            black_box(
                attack
                    .recover_byte(black_box(&samples), 0)
                    .expect("samples"),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
