//! Figure 7: FSS performance and naive-attack correlation vs the number
//! of subwarps.

use rcoal_aes::AesGpuKernel;
use rcoal_bench::BENCH_SEED;
use rcoal_bench::{criterion_group, criterion_main, Criterion};
use rcoal_core::CoalescingPolicy;
use rcoal_experiments::figures::fig07_fss_performance;
use rcoal_experiments::random_plaintexts;
use rcoal_gpu_sim::{GpuConfig, GpuSimulator};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let rows = fig07_fss_performance(100, BENCH_SEED).expect("simulation");
    println!("\nFigure 7: FSS with increasing num-subwarp (100 plaintexts)");
    println!(
        "{:>3} | {:>12} {:>14} | {:>22}",
        "M", "exec cycles", "mem accesses", "naive-attack avg corr"
    );
    for r in &rows {
        println!(
            "{:>3} | {:>12.0} {:>14.0} | {:>22.3}",
            r.m, r.mean_total_cycles, r.mean_total_accesses, r.avg_corr_naive_attack
        );
    }
    println!("(paper: time and accesses rise with M; the naive correlation falls)\n");

    let lines = random_plaintexts(1, 32, BENCH_SEED).remove(0);
    let sim = GpuSimulator::new(GpuConfig::paper());
    let policy = CoalescingPolicy::fss(8).expect("8 divides 32");
    let mut g = c.benchmark_group("fig07");
    g.bench_function("simulate_one_plaintext_fss8", |b| {
        b.iter(|| {
            let kernel = AesGpuKernel::new(b"bench key 16 by!", lines.clone(), 32);
            black_box(sim.run(&kernel, policy, 1).expect("run"))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
