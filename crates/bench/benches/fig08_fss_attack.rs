//! Figure 8: FSS-enabled GPU under the FSS attack (Algorithm 1) — the
//! attack re-establishes the correlation, so FSS alone is not enough.

use rcoal_attack::AccessPredictor;
use rcoal_bench::{criterion_group, criterion_main, Criterion};
use rcoal_bench::{describe_scatter, BENCH_SEED};
use rcoal_core::CoalescingPolicy;
use rcoal_experiments::figures::fig08_fss_attack;
use rcoal_experiments::{ExperimentConfig, TimingSource};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let panels = fig08_fss_attack(100, BENCH_SEED).expect("simulation");
    println!();
    describe_scatter("Figure 8 (FSS vs FSS attack)", &panels);
    println!("(paper: the FSS attack keeps recovering the byte for M < 32)\n");

    let samples = ExperimentConfig::new(CoalescingPolicy::fss(8).expect("valid"), 50, 32)
        .with_seed(BENCH_SEED)
        .run()
        .expect("simulation")
        .attack_samples(TimingSource::LastRoundCycles)
        .expect("timing source");
    let mut g = c.benchmark_group("fig08");
    g.bench_function("fss_attack_predict_50_samples", |b| {
        b.iter(|| {
            let mut p =
                AccessPredictor::new(CoalescingPolicy::fss(8).expect("valid"), 32, BENCH_SEED);
            let total: f64 = samples
                .iter()
                .map(|s| p.predict(black_box(&s.ciphertexts), 0, 0x42))
                .sum();
            black_box(total)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
