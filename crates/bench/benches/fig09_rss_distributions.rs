//! Figure 9: subwarp-size distribution of RSS (normal vs skewed),
//! num-subwarp = 4, 1000 draws.

use rcoal_bench::BENCH_SEED;
use rcoal_bench::{criterion_group, criterion_main, Criterion};
use rcoal_core::CoalescingPolicy;
use rcoal_experiments::figures::fig09_rss_distributions;
use rcoal_rng::SeedableRng;
use rcoal_rng::StdRng;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let d = fig09_rss_distributions(1000, 4, BENCH_SEED).expect("valid M");
    println!("\nFigure 9: RSS subwarp-size histograms (M = 4, 1000 draws)");
    println!("{:>4} | {:>8} {:>8}", "size", "normal", "skewed");
    for s in 1..=29 {
        if d.normal[s] == 0 && d.skewed[s] == 0 {
            continue;
        }
        println!("{:>4} | {:>8} {:>8}", s, d.normal[s], d.skewed[s]);
    }
    println!("(paper: normal clusters at 32/M = 8; skewed covers the whole 1..=29 range)\n");

    let policy = CoalescingPolicy::rss(4).expect("valid");
    let mut g = c.benchmark_group("fig09");
    g.bench_function("skewed_assignment_draw", |b| {
        let mut rng = StdRng::seed_from_u64(BENCH_SEED);
        b.iter(|| black_box(policy.assignment(32, &mut rng).expect("valid")))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
