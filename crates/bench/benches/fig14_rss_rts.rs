//! Figure 14 (RSS+RTS vs RSS+RTS attack): the randomized defense under its corresponding attack.

use rcoal_attack::AccessPredictor;
use rcoal_bench::{criterion_group, criterion_main, Criterion};
use rcoal_bench::{describe_scatter, BENCH_SEED};
use rcoal_core::CoalescingPolicy;
use rcoal_experiments::figures::fig14_rss_rts;
use rcoal_experiments::{ExperimentConfig, TimingSource};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let panels = fig14_rss_rts(100, BENCH_SEED).expect("simulation");
    println!();
    describe_scatter("Figure 14 (RSS+RTS vs RSS+RTS attack)", &panels);
    println!("(paper: recovery difficult for num-subwarp > 2)\n");

    let policy = CoalescingPolicy::rss_rts(8).expect("valid");
    let samples = ExperimentConfig::new(policy, 50, 32)
        .with_seed(BENCH_SEED)
        .run()
        .expect("simulation")
        .attack_samples(TimingSource::LastRoundCycles)
        .expect("timing source");
    let mut g = c.benchmark_group("fig14_rss_rts");
    g.bench_function("corresponding_attack_predict_50_samples", |b| {
        b.iter(|| {
            let mut p = AccessPredictor::new(policy, 32, BENCH_SEED);
            let total: f64 = samples
                .iter()
                .map(|s| p.predict(black_box(&s.ciphertexts), 0, 0x42))
                .sum();
            black_box(total)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
