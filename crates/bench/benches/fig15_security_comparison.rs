//! Figure 15: security comparison across FSS, FSS+RTS, RSS, RSS+RTS —
//! average correlation of the correct guesses under each mechanism's
//! corresponding attack.

use rcoal_attack::Attack;
use rcoal_bench::BENCH_SEED;
use rcoal_bench::{criterion_group, criterion_main, Criterion};
use rcoal_core::CoalescingPolicy;
use rcoal_experiments::figures::{avg_correct_correlation, fig15_16_comparison};
use rcoal_experiments::{ExperimentConfig, TimingSource};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let data = fig15_16_comparison(150, BENCH_SEED).expect("simulation");
    println!("\nFigure 15: avg correlation of correct guesses (150 plaintexts)");
    println!(
        "{:>8} | {:>6} {:>6} {:>6} {:>6}",
        "mech", "M=2", "M=4", "M=8", "M=16"
    );
    for mech in ["FSS", "FSS+RTS", "RSS", "RSS+RTS"] {
        let row: Vec<f64> = [2usize, 4, 8, 16]
            .iter()
            .map(|&m| {
                data.security
                    .iter()
                    .find(|s| s.mechanism == mech && s.m == m)
                    .expect("row")
                    .avg_correct_corr
            })
            .collect();
        println!(
            "{:>8} | {:>6.3} {:>6.3} {:>6.3} {:>6.3}",
            mech, row[0], row[1], row[2], row[3]
        );
    }
    println!("(paper: FSS stays high; the randomized mechanisms collapse toward 0)\n");

    let policy = CoalescingPolicy::rss_rts(4).expect("valid");
    let exp = ExperimentConfig::new(policy, 50, 32)
        .with_seed(BENCH_SEED)
        .run()
        .expect("simulation");
    let mut g = c.benchmark_group("fig15");
    g.sample_size(20);
    g.bench_function("avg_correct_correlation_50_samples", |b| {
        b.iter(|| {
            black_box(avg_correct_correlation(
                &exp,
                Attack::against(policy, 32),
                TimingSource::LastRoundCycles,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
