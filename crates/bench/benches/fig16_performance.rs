//! Figure 16: performance and data movement of each defense mechanism vs
//! the number of subwarps.

use rcoal_aes::AesGpuKernel;
use rcoal_bench::BENCH_SEED;
use rcoal_bench::{criterion_group, criterion_main, Criterion};
use rcoal_core::CoalescingPolicy;
use rcoal_experiments::figures::fig15_16_comparison;
use rcoal_experiments::random_plaintexts;
use rcoal_gpu_sim::{GpuConfig, GpuSimulator};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let data = fig15_16_comparison(100, BENCH_SEED).expect("simulation");
    println!("\nFigure 16: performance and data movement (100 plaintexts)");
    println!(
        "{:>9} {:>3} | {:>14} | {:>12} {:>10}",
        "mech", "M", "mem accesses", "exec cycles", "norm time"
    );
    for p in &data.performance {
        println!(
            "{:>9} {:>3} | {:>14.0} | {:>12.0} {:>10.3}",
            p.mechanism, p.m, p.mean_total_accesses, p.mean_total_cycles, p.normalized_time
        );
    }
    println!("(paper: both rise with M; RSS-based < FSS-based; RTS is ~free)\n");

    let lines = random_plaintexts(1, 32, BENCH_SEED).remove(0);
    let sim = GpuSimulator::new(GpuConfig::paper());
    let mut g = c.benchmark_group("fig16");
    for (name, policy) in [
        ("baseline", CoalescingPolicy::Baseline),
        ("rss_rts_8", CoalescingPolicy::rss_rts(8).expect("valid")),
        ("disabled", CoalescingPolicy::Disabled),
    ] {
        g.bench_function(format!("simulate_{name}"), |b| {
            b.iter(|| {
                let kernel = AesGpuKernel::new(b"bench key 16 by!", lines.clone(), 32);
                black_box(sim.run(&kernel, policy, 1).expect("run"))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
