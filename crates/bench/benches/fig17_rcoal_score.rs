//! Figure 17: RCoal_Score trade-off for security-oriented (a = b = 1)
//! and performance-oriented (a = 1, b = 20) systems.

use rcoal_bench::BENCH_SEED;
use rcoal_bench::{criterion_group, criterion_main, Criterion};
use rcoal_experiments::figures::{fig15_16_comparison, fig17_rcoal_score};
use rcoal_theory::RCoalScore;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let comparison = fig15_16_comparison(150, BENCH_SEED).expect("simulation");
    let scores = fig17_rcoal_score(&comparison).expect("aligned rows");
    println!("\nFigure 17: RCoal_Score (150 plaintexts)");
    println!(
        "{:>9} {:>3} | {:>16} {:>18}",
        "mech", "M", "security (a=b=1)", "performance (b=20)"
    );
    for s in &scores {
        println!(
            "{:>9} {:>3} | {:>16.1} {:>18.4}",
            s.mechanism, s.m, s.security_oriented, s.performance_oriented
        );
    }
    let best_sec = scores
        .iter()
        .max_by(|a, b| a.security_oriented.total_cmp(&b.security_oriented))
        .expect("rows");
    let best_perf = scores
        .iter()
        .max_by(|a, b| a.performance_oriented.total_cmp(&b.performance_oriented))
        .expect("rows");
    println!(
        "security-oriented winner   : {} M={}",
        best_sec.mechanism, best_sec.m
    );
    println!(
        "performance-oriented winner: {} M={}",
        best_perf.mechanism, best_perf.m
    );
    println!(
        "(paper: FSS+RTS at M=8/16 wins security-oriented; RSS+RTS wins performance-oriented)\n"
    );

    let mut g = c.benchmark_group("fig17");
    let cfg = RCoalScore::performance_oriented();
    g.bench_function("score_eval", |b| {
        b.iter(|| black_box(cfg.score(black_box(0.05), black_box(1.25))))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
