//! Figure 18: 1024-line case study — security (correlating the attack's
//! access estimates with the observed accesses, cancelling scheduler
//! noise) and normalized execution time.

use rcoal_bench::BENCH_SEED;
use rcoal_bench::{criterion_group, criterion_main, Criterion};
use rcoal_core::CoalescingPolicy;
use rcoal_experiments::figures::fig18_scalability;
use rcoal_experiments::ExperimentConfig;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let rows = fig18_scalability(60, 4, BENCH_SEED).expect("simulation");
    println!("\nFigure 18: 1024-line plaintexts (32 warps)");
    println!(
        "{:>9} {:>3} | {:>9} {:>10}",
        "mech", "M", "avg corr", "norm time"
    );
    for r in &rows {
        println!(
            "{:>9} {:>3} | {:>9.3} {:>10.3}",
            r.mechanism, r.m, r.avg_correct_corr, r.normalized_time
        );
    }
    println!("(paper: correlations fall for the randomized mechanisms; RSS-based run faster)\n");

    let mut g = c.benchmark_group("fig18");
    g.sample_size(10);
    g.bench_function("functional_run_1024_lines", |b| {
        b.iter(|| {
            black_box(
                ExperimentConfig::new(CoalescingPolicy::rss_rts(4).expect("valid"), 1, 1024)
                    .with_seed(BENCH_SEED)
                    .functional_only()
                    .run()
                    .expect("run"),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
