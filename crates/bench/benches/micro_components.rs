//! Microbenchmarks of the core components: the coalescer under each
//! policy, AES tracing, DRAM service, and the attack predictor.

use rcoal_aes::Aes128;
use rcoal_bench::BENCH_SEED;
use rcoal_bench::{criterion_group, criterion_main, Criterion};
use rcoal_core::{Coalescer, CoalescingPolicy};
use rcoal_rng::StdRng;
use rcoal_rng::{Rng, SeedableRng};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(BENCH_SEED);
    let coalescer = Coalescer::new();
    let addrs: Vec<Option<u64>> = (0..32).map(|_| Some(rng.gen_range(0u64..1024))).collect();

    let mut g = c.benchmark_group("coalescer");
    for (name, policy) in [
        ("baseline", CoalescingPolicy::Baseline),
        ("fss8", CoalescingPolicy::fss(8).expect("valid")),
        ("rss_rts8", CoalescingPolicy::rss_rts(8).expect("valid")),
    ] {
        let assignment = policy.assignment(32, &mut rng).expect("valid");
        g.bench_function(format!("coalesce_warp_{name}"), |b| {
            b.iter(|| black_box(coalescer.coalesce(black_box(&assignment), black_box(&addrs))))
        });
        g.bench_function(format!("count_accesses_{name}"), |b| {
            b.iter(|| {
                black_box(coalescer.count_accesses(black_box(&assignment), black_box(&addrs)))
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("aes");
    let aes = Aes128::new(b"bench key 16 by!");
    let block = *b"sixteen byte msg";
    g.bench_function("encrypt_block", |b| {
        b.iter(|| black_box(aes.encrypt_block(black_box(block))))
    });
    g.bench_function("encrypt_block_traced", |b| {
        b.iter(|| black_box(aes.encrypt_block_traced(black_box(block))))
    });
    g.finish();

    let mut g = c.benchmark_group("policy");
    for (name, policy) in [
        ("fss_rts8", CoalescingPolicy::fss_rts(8).expect("valid")),
        ("rss8", CoalescingPolicy::rss(8).expect("valid")),
    ] {
        g.bench_function(format!("assignment_{name}"), |b| {
            b.iter(|| black_box(policy.assignment(32, &mut rng).expect("valid")))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
