//! §III motivation: the cost of disabling coalescing outright
//! (paper: up to 178% slowdown and 2.7x data movement at 1024 lines).

use rcoal_aes::AesGpuKernel;
use rcoal_bench::BENCH_SEED;
use rcoal_bench::{criterion_group, criterion_main, Criterion};
use rcoal_core::CoalescingPolicy;
use rcoal_experiments::figures::motivation_disable_coalescing;
use rcoal_experiments::random_plaintexts;
use rcoal_gpu_sim::{GpuConfig, GpuSimulator};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let data = motivation_disable_coalescing(3, 1024, BENCH_SEED).expect("simulation");
    println!("\nMotivation (1024-line plaintext): disabling coalescing costs");
    println!(
        "  slowdown      : {:.0}% (paper: up to 178%)",
        data.slowdown_pct
    );
    println!(
        "  data movement : {:.2}x accesses (paper: 2.7x)\n",
        data.access_factor
    );

    let lines = random_plaintexts(1, 1024, BENCH_SEED).remove(0);
    let sim = GpuSimulator::new(GpuConfig::paper());
    let mut g = c.benchmark_group("motivation");
    g.sample_size(10);
    g.bench_function("simulate_1024_lines_no_coalescing", |b| {
        b.iter(|| {
            let kernel = AesGpuKernel::new(b"bench key 16 by!", lines.clone(), 32);
            black_box(
                sim.run(&kernel, CoalescingPolicy::Disabled, 1)
                    .expect("run"),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
