//! Sequential-vs-parallel throughput of the experiment engine.
//!
//! Runs the same `reproduce_all`-style workload (timing experiments for
//! Baseline and RSS+RTS(8) plus a full 16-byte key recovery) once with
//! `threads = 1` and once with `threads = 8` (override with
//! `RCOAL_THREADS`), verifies the outputs are bit-identical, and records
//! the wall-clock numbers to `BENCH_parallel.json` at the repository
//! root so the perf trajectory is tracked across PRs.
//!
//! Beyond end-to-end wall clock, the artifact breaks each leg into its
//! pipeline stages — trace generation, simulation sweeps, attack — and
//! records the peak live-heap transient of each leg (measured by a
//! counting allocator) plus a per-concurrent-run share, so "it got
//! faster" can't silently mean "it allocates 10x more".
//!
//! The speedup this records is bounded by the machine: on a box pinned
//! to one core the parallel run cannot beat the sequential one, which is
//! why the artifact also records `available_parallelism`.

use rcoal_aes::AesGpuKernel;
use rcoal_attack::Attack;
use rcoal_bench::{PeakAlloc, BENCH_SEED};
use rcoal_core::CoalescingPolicy;
use rcoal_experiments::{ExperimentConfig, ExperimentData, TimingSource};
use rcoal_gpu_sim::GpuConfig;
use rcoal_rng::{Rng, SeedableRng, StdRng};
use std::time::Instant;

#[global_allocator]
static ALLOC: PeakAlloc = PeakAlloc;

/// Plaintexts per experiment; enough launches for the fan-out to
/// amortize thread startup while keeping the bench under a minute.
const PLAINTEXTS: usize = 48;
/// Threads for the parallel leg (the acceptance point of the scaling
/// study); `RCOAL_THREADS` overrides.
const PARALLEL_THREADS: usize = 8;

struct WorkloadResult {
    data: Vec<ExperimentData>,
    key_bytes: Vec<u8>,
    ranks: Vec<usize>,
    seconds: f64,
    experiments_seconds: f64,
    attack_seconds: f64,
    /// Peak live-heap growth over the leg (bytes above the heap level at
    /// entry), and that transient divided by the number of concurrent
    /// runs — an estimate of what one in-flight launch costs.
    peak_heap_bytes: usize,
    per_run_heap_bytes: usize,
}

/// One multi-figure-style workload at a fixed thread count: two timing
/// experiment sweeps plus the 16 x 256-guess correlation attack.
fn run_workload(threads: usize) -> Result<WorkloadResult, String> {
    let policies = [
        CoalescingPolicy::Baseline,
        CoalescingPolicy::rss_rts(8).map_err(|e| e.to_string())?,
    ];
    let heap_floor = PeakAlloc::current_bytes();
    PeakAlloc::reset_peak();
    let start = Instant::now();
    let mut data = Vec::new();
    for policy in policies {
        data.push(
            ExperimentConfig::new(policy, PLAINTEXTS, 32)
                .with_seed(BENCH_SEED)
                .with_threads(threads)
                .run()
                .map_err(|e| e.to_string())?,
        );
    }
    let experiments_seconds = start.elapsed().as_secs_f64();
    let baseline = &data[0];
    let attack_start = Instant::now();
    let samples = baseline
        .attack_samples(TimingSource::LastRoundCycles)
        .map_err(|e| e.to_string())?;
    let attack = Attack::baseline(32).with_threads(Some(threads));
    let recovered = attack.recover_key(&samples).map_err(|e| e.to_string())?;
    let attack_seconds = attack_start.elapsed().as_secs_f64();
    let seconds = start.elapsed().as_secs_f64();
    let peak_heap_bytes = PeakAlloc::peak_bytes().saturating_sub(heap_floor);

    let k10 = baseline.true_last_round_key();
    let key_bytes = recovered.bytes.iter().map(|b| b.best_guess).collect();
    let ranks = (0..16)
        .map(|j| recovered.bytes[j].rank_of(k10[j]))
        .collect();
    Ok(WorkloadResult {
        data,
        key_bytes,
        ranks,
        seconds,
        experiments_seconds,
        attack_seconds,
        peak_heap_bytes,
        per_run_heap_bytes: peak_heap_bytes / threads.max(1),
    })
}

/// Times a representative trace-generation pass: the same number of AES
/// kernels (precomputed per-warp traces included) the experiment sweeps
/// build internally per policy.
fn time_trace_gen() -> f64 {
    let gpu = GpuConfig::paper();
    let mut rng = StdRng::seed_from_u64(BENCH_SEED);
    let key = *b"parallel-bench-k";
    let start = Instant::now();
    for _ in 0..PLAINTEXTS {
        let lines = (0..32)
            .map(|_| {
                let mut pt = [0u8; 16];
                rng.fill(&mut pt);
                pt
            })
            .collect();
        std::hint::black_box(AesGpuKernel::new(&key, lines, gpu.warp_size));
    }
    start.elapsed().as_secs_f64()
}

fn main() {
    if let Err(msg) = run() {
        eprintln!("parallel_scaling bench failed: {msg}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let parallel_threads = std::env::var(rcoal_parallel::THREADS_ENV)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(PARALLEL_THREADS);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "parallel_scaling: {PLAINTEXTS}-plaintext workload, 1 vs {parallel_threads} threads \
         ({cores} cores available)"
    );

    let trace_gen_seconds = time_trace_gen();
    println!("  trace-gen : {trace_gen_seconds:.3} s ({PLAINTEXTS} kernels, single thread)");
    let seq = run_workload(1)?;
    println!(
        "  threads=1 : {:.3} s (experiments {:.3} s + attack {:.3} s, peak heap {:.1} MiB)",
        seq.seconds,
        seq.experiments_seconds,
        seq.attack_seconds,
        seq.peak_heap_bytes as f64 / (1024.0 * 1024.0)
    );
    let par = run_workload(parallel_threads)?;
    println!(
        "  threads={parallel_threads} : {:.3} s (experiments {:.3} s + attack {:.3} s, \
         peak heap {:.1} MiB, ~{:.1} MiB/run)",
        par.seconds,
        par.experiments_seconds,
        par.attack_seconds,
        par.peak_heap_bytes as f64 / (1024.0 * 1024.0),
        par.per_run_heap_bytes as f64 / (1024.0 * 1024.0)
    );

    // The whole point of the deterministic layer: the thread count must
    // be unobservable in the numbers.
    if seq.data != par.data {
        return Err("experiment data differs between thread counts".into());
    }
    if seq.key_bytes != par.key_bytes || seq.ranks != par.ranks {
        return Err("recovered key or ranks differ between thread counts".into());
    }
    // A speedup measured on a single-core box is noise, not signal: the
    // parallel leg cannot beat the sequential one there, so the artifact
    // records null rather than a misleading ~1.0.
    let speedup_meaningful = cores > 1;
    let speedup_field = if speedup_meaningful {
        let speedup = seq.seconds / par.seconds;
        println!("  speedup   : {speedup:.2}x (outputs bit-identical)");
        format!("{speedup:.4}")
    } else {
        println!("  speedup   : n/a (1 core available; outputs bit-identical)");
        "null".to_string()
    };

    let json = format!(
        "{{\n  \"schema\": \"rcoal-bench/v1\",\n  \"bench\": \"parallel_scaling\",\n  \"workload\": \"2 timing experiments x {PLAINTEXTS} plaintexts + 16-byte key recovery\",\n  \"available_parallelism\": {cores},\n  \"threads_sequential\": 1,\n  \"threads_parallel\": {parallel_threads},\n  \"trace_gen_seconds\": {trace_gen_seconds:.6},\n  \"sequential_seconds\": {:.6},\n  \"sequential_experiments_seconds\": {:.6},\n  \"sequential_attack_seconds\": {:.6},\n  \"sequential_peak_heap_bytes\": {},\n  \"parallel_seconds\": {:.6},\n  \"parallel_experiments_seconds\": {:.6},\n  \"parallel_attack_seconds\": {:.6},\n  \"parallel_peak_heap_bytes\": {},\n  \"parallel_per_run_heap_bytes\": {},\n  \"speedup\": {speedup_field},\n  \"speedup_meaningful\": {speedup_meaningful},\n  \"outputs_identical\": true\n}}\n",
        seq.seconds,
        seq.experiments_seconds,
        seq.attack_seconds,
        seq.peak_heap_bytes,
        par.seconds,
        par.experiments_seconds,
        par.attack_seconds,
        par.peak_heap_bytes,
        par.per_run_heap_bytes
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
    println!("  recorded to BENCH_parallel.json");
    Ok(())
}
