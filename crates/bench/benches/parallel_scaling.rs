//! Sequential-vs-parallel throughput of the experiment engine.
//!
//! Runs the same `reproduce_all`-style workload (timing experiments for
//! Baseline and RSS+RTS(8) plus a full 16-byte key recovery) once with
//! `threads = 1` and once with `threads = 8` (override with
//! `RCOAL_THREADS`), verifies the outputs are bit-identical, and records
//! the wall-clock numbers to `BENCH_parallel.json` at the repository
//! root so the perf trajectory is tracked across PRs.
//!
//! The speedup this records is bounded by the machine: on a box pinned
//! to one core the parallel run cannot beat the sequential one, which is
//! why the artifact also records `available_parallelism`.

use rcoal_attack::Attack;
use rcoal_bench::BENCH_SEED;
use rcoal_core::CoalescingPolicy;
use rcoal_experiments::{ExperimentConfig, ExperimentData, TimingSource};
use std::time::Instant;

/// Plaintexts per experiment; enough launches for the fan-out to
/// amortize thread startup while keeping the bench under a minute.
const PLAINTEXTS: usize = 48;
/// Threads for the parallel leg (the acceptance point of the scaling
/// study); `RCOAL_THREADS` overrides.
const PARALLEL_THREADS: usize = 8;

struct WorkloadResult {
    data: Vec<ExperimentData>,
    key_bytes: Vec<u8>,
    ranks: Vec<usize>,
    seconds: f64,
}

/// One multi-figure-style workload at a fixed thread count: two timing
/// experiment sweeps plus the 16 x 256-guess correlation attack.
fn run_workload(threads: usize) -> Result<WorkloadResult, String> {
    let policies = [
        CoalescingPolicy::Baseline,
        CoalescingPolicy::rss_rts(8).map_err(|e| e.to_string())?,
    ];
    let start = Instant::now();
    let mut data = Vec::new();
    for policy in policies {
        data.push(
            ExperimentConfig::new(policy, PLAINTEXTS, 32)
                .with_seed(BENCH_SEED)
                .with_threads(threads)
                .run()
                .map_err(|e| e.to_string())?,
        );
    }
    let baseline = &data[0];
    let samples = baseline
        .attack_samples(TimingSource::LastRoundCycles)
        .map_err(|e| e.to_string())?;
    let attack = Attack::baseline(32).with_threads(Some(threads));
    let recovered = attack.recover_key(&samples).map_err(|e| e.to_string())?;
    let seconds = start.elapsed().as_secs_f64();

    let k10 = baseline.true_last_round_key();
    let key_bytes = recovered.bytes.iter().map(|b| b.best_guess).collect();
    let ranks = (0..16)
        .map(|j| recovered.bytes[j].rank_of(k10[j]))
        .collect();
    Ok(WorkloadResult {
        data,
        key_bytes,
        ranks,
        seconds,
    })
}

fn main() {
    if let Err(msg) = run() {
        eprintln!("parallel_scaling bench failed: {msg}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let parallel_threads = std::env::var(rcoal_parallel::THREADS_ENV)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(PARALLEL_THREADS);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "parallel_scaling: {PLAINTEXTS}-plaintext workload, 1 vs {parallel_threads} threads \
         ({cores} cores available)"
    );

    let seq = run_workload(1)?;
    println!("  threads=1 : {:.3} s", seq.seconds);
    let par = run_workload(parallel_threads)?;
    println!("  threads={parallel_threads} : {:.3} s", par.seconds);

    // The whole point of the deterministic layer: the thread count must
    // be unobservable in the numbers.
    if seq.data != par.data {
        return Err("experiment data differs between thread counts".into());
    }
    if seq.key_bytes != par.key_bytes || seq.ranks != par.ranks {
        return Err("recovered key or ranks differ between thread counts".into());
    }
    // A speedup measured on a single-core box is noise, not signal: the
    // parallel leg cannot beat the sequential one there, so the artifact
    // records null rather than a misleading ~1.0.
    let speedup_meaningful = cores > 1;
    let speedup_field = if speedup_meaningful {
        let speedup = seq.seconds / par.seconds;
        println!("  speedup   : {speedup:.2}x (outputs bit-identical)");
        format!("{speedup:.4}")
    } else {
        println!("  speedup   : n/a (1 core available; outputs bit-identical)");
        "null".to_string()
    };

    let json = format!(
        "{{\n  \"schema\": \"rcoal-bench/v1\",\n  \"bench\": \"parallel_scaling\",\n  \"workload\": \"2 timing experiments x {PLAINTEXTS} plaintexts + 16-byte key recovery\",\n  \"available_parallelism\": {cores},\n  \"threads_sequential\": 1,\n  \"threads_parallel\": {parallel_threads},\n  \"sequential_seconds\": {:.6},\n  \"parallel_seconds\": {:.6},\n  \"speedup\": {speedup_field},\n  \"speedup_meaningful\": {speedup_meaningful},\n  \"outputs_identical\": true\n}}\n",
        seq.seconds, par.seconds
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
    println!("  recorded to BENCH_parallel.json");
    Ok(())
}
