//! Peak-heap scaling of the streaming attack engine with sample count.
//!
//! The streaming engine's contract is that a correlation attack over
//! N samples needs O(1) memory: a chunk buffer plus 256 six-word
//! Pearson accumulators, never the N-sample set itself. This bench
//! makes that claim falsifiable with a counting allocator:
//!
//! 1. Stream a single-byte recovery over the paper AES config
//!    (functional simulator, exact per-byte access channel — the same
//!    channel the Fig. 17 sample-cost sweep attacks) at N samples,
//!    recording wall clock and peak live-heap transient.
//! 2. Repeat at 10N samples. The peak heap must grow by < 1.1x
//!    (plus a 1 MiB absolute slack for allocator jitter) — the CI
//!    floor. A rewrite that quietly materializes the stream fails here
//!    by ~100x, not by a rounding error.
//! 3. Cross-check: materialize the identical 10N-sample set (the
//!    simulator source is bit-deterministic, chunked or not) and run
//!    the two-pass engine; argmax and the true byte's rank must match
//!    the streamed verdict.
//!
//! `RCOAL_SAMPLES` overrides the large-leg budget (default 1,000,000;
//! CI uses a small value — the heap *ratio* is scale-free). Results
//! land in `BENCH_attack.json` at the repo root.

use rcoal_attack::{
    stream_recover_byte, Attack, AttackSample, EarlyStop, SampleSource, StreamOptions,
};
use rcoal_bench::{PeakAlloc, BENCH_SEED};
use rcoal_core::CoalescingPolicy;
use rcoal_experiments::{ExperimentConfig, SimulatorSource, TimingSource};
use std::time::Instant;

#[global_allocator]
static ALLOC: PeakAlloc = PeakAlloc;

/// Large-leg sample budget when `RCOAL_SAMPLES` is unset. The
/// acceptance point: one million samples, single byte, paper config.
const DEFAULT_SAMPLES: usize = 1_000_000;
/// Attacked key byte (the channel is its exact access count).
const BYTE: usize = 0;
/// Streaming chunk ceiling. Peak heap is O(chunk) — the in-flight
/// plaintexts, launch results, and sample buffer — so both legs must
/// stream in identical chunks for the ratio to isolate the
/// sample-count dependence; the actual chunk is capped at the small
/// leg's budget.
const CHUNK_CEILING: usize = 512;
/// Peak-heap growth allowed between the two legs (CI floor).
const HEAP_RATIO_FLOOR: f64 = 1.1;
/// Absolute slack for allocator jitter on tiny CI budgets.
const HEAP_SLACK_BYTES: usize = 1 << 20;

struct StreamLeg {
    samples: usize,
    seconds: f64,
    peak_heap_bytes: usize,
    best_guess: u8,
    rank_of_true: usize,
    checkpoints: usize,
    terminated_early: bool,
}

fn source_for(budget: usize) -> Result<(SimulatorSource, [u8; 16]), String> {
    let cfg = ExperimentConfig::new(CoalescingPolicy::Baseline, budget, 32)
        .with_seed(BENCH_SEED)
        .with_threads(1)
        .functional_only();
    let source = SimulatorSource::new(cfg, TimingSource::ByteAccesses(BYTE as u8))
        .map_err(|e| e.to_string())?;
    let subkey = source.attacked_subkey();
    Ok((source, subkey))
}

/// One streamed recovery leg, heap-profiled end to end (simulator
/// source included — the claim covers the whole pipeline).
fn stream_leg(
    budget: usize,
    chunk: usize,
    early_stop: Option<EarlyStop>,
) -> Result<StreamLeg, String> {
    let (mut source, subkey) = source_for(budget)?;
    let attack = Attack::baseline(32).with_seed(BENCH_SEED ^ 0x5eed);
    let mut opts = StreamOptions::new(budget).with_chunk(chunk);
    if let Some(rule) = early_stop {
        opts = opts.with_early_stop(rule);
    }

    let heap_floor = PeakAlloc::current_bytes();
    PeakAlloc::reset_peak();
    let start = Instant::now();
    let rec = stream_recover_byte(&attack, &mut source, BYTE, &opts).map_err(|e| e.to_string())?;
    let seconds = start.elapsed().as_secs_f64();
    let peak_heap_bytes = PeakAlloc::peak_bytes().saturating_sub(heap_floor);

    Ok(StreamLeg {
        samples: rec.samples,
        seconds,
        peak_heap_bytes,
        best_guess: rec.recovery.best_guess,
        rank_of_true: rec.recovery.rank_of(subkey[BYTE]),
        checkpoints: rec.checkpoints.len(),
        terminated_early: rec.terminated_early,
    })
}

/// Materializes the identical sample set the streaming legs consumed
/// and runs the two-pass engine over it.
fn materialized_verdict(budget: usize) -> Result<(u8, usize, f64), String> {
    let (mut source, subkey) = source_for(budget)?;
    // The simulator source is endless by design (the budget lives in
    // `StreamOptions`), so drain exactly `budget` samples.
    let mut samples: Vec<AttackSample> = Vec::with_capacity(budget);
    let mut chunk = Vec::new();
    while samples.len() < budget {
        let want = (budget - samples.len()).min(8192);
        let got = source
            .next_chunk(want, &mut chunk)
            .map_err(|e| e.to_string())?;
        if got == 0 {
            break;
        }
        samples.append(&mut chunk);
    }
    let attack = Attack::baseline(32).with_seed(BENCH_SEED ^ 0x5eed);
    let start = Instant::now();
    let rec = attack
        .recover_byte(&samples, BYTE)
        .map_err(|e| e.to_string())?;
    let seconds = start.elapsed().as_secs_f64();
    Ok((rec.best_guess, rec.rank_of(subkey[BYTE]), seconds))
}

fn mib(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

fn main() {
    if let Err(msg) = run() {
        eprintln!("sample_scaling bench failed: {msg}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let large = std::env::var("RCOAL_SAMPLES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 100)
        .unwrap_or(DEFAULT_SAMPLES);
    let small = large / 10;
    println!("sample_scaling: streamed byte-{BYTE} recovery, {small} vs {large} samples");

    let chunk = CHUNK_CEILING.min(small).max(1);
    let lo = stream_leg(small, chunk, None)?;
    println!(
        "  n={:<8}: {:.3} s, peak heap {:.2} MiB, best {:#04x} (rank {})",
        lo.samples,
        lo.seconds,
        mib(lo.peak_heap_bytes),
        lo.best_guess,
        lo.rank_of_true
    );
    let hi = stream_leg(large, chunk, None)?;
    println!(
        "  n={:<8}: {:.3} s, peak heap {:.2} MiB, best {:#04x} (rank {})",
        hi.samples,
        hi.seconds,
        mib(hi.peak_heap_bytes),
        hi.best_guess,
        hi.rank_of_true
    );

    // The CI floor: 10x the samples, < 1.1x the memory.
    let heap_ratio = hi.peak_heap_bytes as f64 / lo.peak_heap_bytes.max(1) as f64;
    let heap_independent = hi.peak_heap_bytes
        <= (lo.peak_heap_bytes as f64 * HEAP_RATIO_FLOOR) as usize + HEAP_SLACK_BYTES;
    println!(
        "  heap ratio: {heap_ratio:.3}x for 10x samples (floor {HEAP_RATIO_FLOOR}x) -> {}",
        if heap_independent { "ok" } else { "FAIL" }
    );

    // Differential cross-check against the materialized engine.
    let (mat_guess, mat_rank, mat_seconds) = materialized_verdict(large)?;
    let verdicts_match = mat_guess == hi.best_guess && mat_rank == hi.rank_of_true;
    println!(
        "  materialized: best {mat_guess:#04x} (rank {mat_rank}), attack {mat_seconds:.3} s -> {}",
        if verdicts_match { "match" } else { "MISMATCH" }
    );

    // Early termination at the large budget, for the record.
    let stop = stream_leg(large, chunk, Some(EarlyStop::default()))?;
    println!(
        "  early stop: {} of {large} samples, {} checkpoint(s), terminated={}",
        stop.samples, stop.checkpoints, stop.terminated_early
    );

    let json = format!(
        "{{\n  \"schema\": \"rcoal-bench/v1\",\n  \"bench\": \"sample_scaling\",\n  \"workload\": \"streamed single-byte recovery, paper AES config, exact access channel\",\n  \"byte\": {BYTE},\n  \"chunk\": {chunk},\n  \"samples_small\": {},\n  \"samples_large\": {},\n  \"small_seconds\": {:.6},\n  \"small_peak_heap_bytes\": {},\n  \"large_seconds\": {:.6},\n  \"large_peak_heap_bytes\": {},\n  \"heap_ratio\": {heap_ratio:.6},\n  \"heap_ratio_floor\": {HEAP_RATIO_FLOOR},\n  \"heap_independent\": {heap_independent},\n  \"samples_per_second\": {:.1},\n  \"best_guess\": {},\n  \"rank_of_true\": {},\n  \"materialized_best_guess\": {mat_guess},\n  \"materialized_rank_of_true\": {mat_rank},\n  \"materialized_attack_seconds\": {mat_seconds:.6},\n  \"verdicts_match\": {verdicts_match},\n  \"early_stop_samples\": {},\n  \"early_stop_checkpoints\": {},\n  \"early_stop_terminated\": {}\n}}\n",
        lo.samples,
        hi.samples,
        lo.seconds,
        lo.peak_heap_bytes,
        hi.seconds,
        hi.peak_heap_bytes,
        hi.samples as f64 / hi.seconds.max(1e-9),
        hi.best_guess,
        hi.rank_of_true,
        stop.samples,
        stop.checkpoints,
        stop.terminated_early,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_attack.json");
    std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
    println!("  recorded to BENCH_attack.json");

    if !heap_independent {
        return Err(format!(
            "peak heap grew {heap_ratio:.2}x for 10x samples — the streaming engine is \
             materializing"
        ));
    }
    if !verdicts_match {
        return Err("streamed and materialized verdicts diverged".into());
    }
    Ok(())
}
