//! Single-thread throughput of the event-driven simulator core.
//!
//! Two legs, each run through both simulator cores — the event-driven
//! skip-ahead loop behind `run_instrumented` and the retained
//! cycle-accurate reference behind `run_instrumented_reference` — with
//! a bit-identity check on the `SimStats`:
//!
//! * **paper-config AES** (32-line plaintexts on the Table I machine):
//!   the attack workload. Dense — the interconnect serializes ~13
//!   packets per load at injection rate 1, so most cycles carry a
//!   genuine event and the skip-ahead win is bounded by event density,
//!   not by loop overhead.
//! * **idle-heavy trace** (long compute bursts between strided loads):
//!   the regime skip-ahead is built for — the event core jumps each
//!   compute gap in one step while the reference walks it cycle by
//!   cycle.
//!
//! Results (simulated-cycles/sec, kernels/sec, speedup per leg) are
//! recorded to `BENCH_sim.json` at the repository root so the speedup
//! is a tracked artifact.
//!
//! With `RCOAL_MIN_CYCLES_PER_SEC` set (the CI throughput smoke), the
//! bench fails if the event core's simulated-cycles/sec on the AES leg
//! drops below that floor.

use rcoal_aes::AesGpuKernel;
use rcoal_bench::BENCH_SEED;
use rcoal_core::CoalescingPolicy;
use rcoal_gpu_sim::{
    FaultPlan, GpuConfig, GpuSimulator, Kernel, LaunchPolicy, SimStats, SimTelemetry, TraceInstr,
    TraceKernel, WarpTrace,
};
use rcoal_rng::{Rng, SeedableRng, StdRng};
use std::time::Instant;

/// Plaintexts per leg: enough kernels for stable wall-clock numbers on
/// the slow reference leg while keeping the bench under a minute.
const PLAINTEXTS: usize = 8;
/// Lines per plaintext — one full warp, the paper's attack workload.
const LINES: usize = 32;
/// Timed repetitions (after one warmup rep).
const REPS: usize = 3;
/// Idle-heavy leg: core cycles of ALU work between successive loads.
/// Long enough that the reference's O(cycles) walk dominates its cost
/// while the event core's O(events) cost stays flat.
const IDLE_BURST: u32 = 20_000;
/// Idle-heavy leg: loads per warp.
const IDLE_LOADS: usize = 12;

struct Leg {
    stats: Vec<SimStats>,
    simulated_cycles: u64,
    kernels: usize,
    seconds: f64,
}

/// Runs every (kernel, policy) pair `REPS` times through one core and
/// returns the last rep's stats plus aggregate throughput numbers.
fn run_leg<K: Kernel>(
    sim: &GpuSimulator,
    kernels: &[K],
    policies: &[CoalescingPolicy],
    reference: bool,
) -> Result<Leg, String> {
    let run_one = |kernel: &K, policy: CoalescingPolicy, seed: u64| {
        let launch = LaunchPolicy::Uniform(policy);
        let mut tel = SimTelemetry::off();
        if reference {
            sim.run_instrumented_reference(kernel, launch, seed, &FaultPlan::none(), &mut tel)
        } else {
            sim.run_instrumented(kernel, launch, seed, &FaultPlan::none(), &mut tel)
        }
    };
    // Warmup rep (untimed), also collects the stats used for the
    // bit-identity check — every rep of a (kernel, policy, seed) triple
    // produces the same result, so which rep is recorded is arbitrary.
    let mut stats = Vec::new();
    for (i, kernel) in kernels.iter().enumerate() {
        for (p, &policy) in policies.iter().enumerate() {
            let seed = BENCH_SEED.wrapping_add((i * policies.len() + p) as u64);
            stats.push(run_one(kernel, policy, seed).map_err(|e| e.to_string())?);
        }
    }
    let simulated_cycles: u64 = stats.iter().map(|s| s.total_cycles * REPS as u64).sum();
    let start = Instant::now();
    for _ in 0..REPS {
        for (i, kernel) in kernels.iter().enumerate() {
            for (p, &policy) in policies.iter().enumerate() {
                let seed = BENCH_SEED.wrapping_add((i * policies.len() + p) as u64);
                run_one(kernel, policy, seed).map_err(|e| e.to_string())?;
            }
        }
    }
    let seconds = start.elapsed().as_secs_f64();
    Ok(Leg {
        stats,
        simulated_cycles,
        kernels: kernels.len() * policies.len() * REPS,
        seconds,
    })
}

/// Times one workload through both cores, checks bit-identity, and
/// returns `(event, reference, speedup)`.
fn both_cores<K: Kernel>(
    sim: &GpuSimulator,
    kernels: &[K],
    policies: &[CoalescingPolicy],
    label: &str,
) -> Result<(Leg, Leg, f64), String> {
    let event = run_leg(sim, kernels, policies, false)?;
    let event_cps = event.simulated_cycles as f64 / event.seconds;
    let event_kps = event.kernels as f64 / event.seconds;
    println!(
        "  {label} event core : {:.3} s  ({:.3e} simulated cycles/sec, {:.1} kernels/sec)",
        event.seconds, event_cps, event_kps
    );
    let reference = run_leg(sim, kernels, policies, true)?;
    let ref_cps = reference.simulated_cycles as f64 / reference.seconds;
    let ref_kps = reference.kernels as f64 / reference.seconds;
    println!(
        "  {label} reference  : {:.3} s  ({:.3e} simulated cycles/sec, {:.1} kernels/sec)",
        reference.seconds, ref_cps, ref_kps
    );
    if event.stats != reference.stats {
        return Err(format!(
            "{label}: SimStats differ between the event core and the reference loop"
        ));
    }
    let speedup = reference.seconds / event.seconds;
    println!("  {label} speedup    : {speedup:.1}x (stats bit-identical)");
    Ok((event, reference, speedup))
}

/// Builds the idle-heavy trace kernels: one warp per SM, each
/// alternating a strided 32-lane load with a long compute burst.
fn idle_kernels(gpu: &GpuConfig, count: usize) -> Vec<TraceKernel> {
    (0..count)
        .map(|k| {
            let traces = (0..gpu.num_sms)
                .map(|w| {
                    let mut instrs = Vec::new();
                    for l in 0..IDLE_LOADS {
                        let base = ((k * gpu.num_sms + w) * IDLE_LOADS + l) as u64 * 0x1_0000;
                        let addrs = (0..gpu.warp_size)
                            .map(|lane| Some(base + lane as u64 * 128))
                            .collect();
                        instrs.push(TraceInstr::Load { addrs, tag: 0 });
                        instrs.push(TraceInstr::Compute { cycles: IDLE_BURST });
                    }
                    WarpTrace::from_instrs(instrs)
                })
                .collect();
            TraceKernel::new(traces, gpu.warp_size)
        })
        .collect()
}

fn main() {
    if let Err(msg) = run() {
        eprintln!("sim_throughput bench failed: {msg}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let gpu = GpuConfig::paper();
    let sim = GpuSimulator::new(gpu.clone());
    let policies = [
        CoalescingPolicy::Baseline,
        CoalescingPolicy::rss_rts(8).map_err(|e| e.to_string())?,
    ];
    let mut rng = StdRng::seed_from_u64(BENCH_SEED);
    let key = *b"sim-throughput-k";
    let kernels: Vec<AesGpuKernel> = (0..PLAINTEXTS)
        .map(|_| {
            let lines = (0..LINES)
                .map(|_| {
                    let mut pt = [0u8; 16];
                    rng.fill(&mut pt);
                    pt
                })
                .collect();
            AesGpuKernel::new(&key, lines, gpu.warp_size)
        })
        .collect();
    println!(
        "sim_throughput: paper-config AES, {PLAINTEXTS} plaintexts x {} policies x {REPS} reps, \
         event core vs cycle-accurate reference",
        policies.len()
    );
    let (event, reference, speedup) = both_cores(&sim, &kernels, &policies, "aes ")?;
    let event_cps = event.simulated_cycles as f64 / event.seconds;
    let event_kps = event.kernels as f64 / event.seconds;
    let ref_cps = reference.simulated_cycles as f64 / reference.seconds;
    let ref_kps = reference.kernels as f64 / reference.seconds;

    println!(
        "sim_throughput: idle-heavy trace, {} kernels x {} warps, {IDLE_LOADS} loads with \
         {IDLE_BURST}-cycle compute bursts",
        2, gpu.num_sms
    );
    let idle = idle_kernels(&gpu, 2);
    let (idle_event, idle_ref, idle_speedup) = both_cores(&sim, &idle, &policies, "idle")?;

    if let Ok(floor) = std::env::var("RCOAL_MIN_CYCLES_PER_SEC") {
        let floor: f64 = floor
            .parse()
            .map_err(|e| format!("RCOAL_MIN_CYCLES_PER_SEC: {e}"))?;
        if event_cps < floor {
            return Err(format!(
                "event core at {event_cps:.3e} simulated cycles/sec, below the floor {floor:.3e}"
            ));
        }
        println!("  floor      : {floor:.3e} cycles/sec ok");
    }

    let json = format!(
        "{{\n  \"schema\": \"rcoal-bench/v1\",\n  \"bench\": \"sim_throughput\",\n  \"workload\": \"paper-config AES, {PLAINTEXTS} plaintexts x {} policies x {REPS} reps, single thread\",\n  \"event_seconds\": {:.6},\n  \"event_cycles_per_sec\": {event_cps:.1},\n  \"event_kernels_per_sec\": {event_kps:.3},\n  \"reference_seconds\": {:.6},\n  \"reference_cycles_per_sec\": {ref_cps:.1},\n  \"reference_kernels_per_sec\": {ref_kps:.3},\n  \"simulated_cycles\": {},\n  \"speedup\": {speedup:.4},\n  \"idle_workload\": \"idle-heavy trace, 2 kernels x {} warps, {IDLE_LOADS} loads with {IDLE_BURST}-cycle compute bursts\",\n  \"idle_event_seconds\": {:.6},\n  \"idle_event_cycles_per_sec\": {:.1},\n  \"idle_reference_seconds\": {:.6},\n  \"idle_reference_cycles_per_sec\": {:.1},\n  \"idle_speedup\": {idle_speedup:.4},\n  \"stats_identical\": true\n}}\n",
        policies.len(),
        event.seconds,
        reference.seconds,
        event.simulated_cycles,
        gpu.num_sms,
        idle_event.seconds,
        idle_event.simulated_cycles as f64 / idle_event.seconds,
        idle_ref.seconds,
        idle_ref.simulated_cycles as f64 / idle_ref.seconds,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
    std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
    println!("  recorded to BENCH_sim.json");
    Ok(())
}
