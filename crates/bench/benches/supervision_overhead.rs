//! Cost of worker supervision on the sweep hot path.
//!
//! Runs the same scenario grid through the strict path
//! (`run_scenarios`) and the supervised path
//! (`run_scenarios_supervised`: catch_unwind isolation, retry
//! bookkeeping, typed outcomes) on uncached runners, so every scenario
//! simulates in both legs. Legs are interleaved and the per-leg minimum
//! over several reps is compared, which filters scheduler noise out of
//! the overhead estimate. The supervised rows must be bit-identical to
//! the strict rows (supervision decides *whether* a result exists,
//! never *which* result wins) and the overhead must stay under 2% —
//! the robustness machinery is free when nothing goes wrong. Numbers
//! land in `BENCH_robustness.json` at the repository root.

use rcoal_bench::BENCH_SEED;
use rcoal_core::CoalescingPolicy;
use rcoal_experiments::{encode_run, SweepRunner};
use rcoal_scenario::Scenario;
use std::time::Instant;

/// Interleaved reps per leg; the minimum is reported.
const REPS: usize = 5;
/// Wall-clock overhead bar from the acceptance criteria.
const MAX_OVERHEAD_PCT: f64 = 2.0;

fn grid() -> Result<Vec<Scenario>, String> {
    let mut scenarios = Vec::new();
    for policy in [
        CoalescingPolicy::Baseline,
        CoalescingPolicy::fss(8).map_err(|e| e.to_string())?,
        CoalescingPolicy::rss(4).map_err(|e| e.to_string())?,
        CoalescingPolicy::rss_rts(4).map_err(|e| e.to_string())?,
    ] {
        for seed in 0..3u64 {
            scenarios.push(Scenario::new(policy, 4, 24).with_seed(BENCH_SEED + seed));
        }
    }
    Ok(scenarios)
}

/// One strict leg: every scenario simulated, rows returned encoded.
fn strict_leg(scenarios: &[Scenario]) -> Result<(f64, Vec<String>), String> {
    let runner = SweepRunner::uncached().with_threads(1);
    let start = Instant::now();
    let rows = runner.run_scenarios(scenarios).map_err(|e| e.to_string())?;
    let seconds = start.elapsed().as_secs_f64();
    let encoded = rows
        .iter()
        .map(|r| encode_run(r).ok_or_else(|| "row failed to encode".to_string()))
        .collect::<Result<Vec<_>, _>>()?;
    Ok((seconds, encoded))
}

/// One supervised leg on the same grid, also uncached.
fn supervised_leg(scenarios: &[Scenario]) -> Result<(f64, Vec<String>), String> {
    let runner = SweepRunner::uncached().with_threads(1);
    let start = Instant::now();
    let outcome = runner.run_scenarios_supervised(scenarios);
    let seconds = start.elapsed().as_secs_f64();
    if !outcome.is_complete() {
        return Err(format!(
            "supervised leg quarantined {} scenario(s) with no chaos armed",
            outcome.quarantined.len()
        ));
    }
    let encoded = outcome
        .rows
        .iter()
        .map(|r| {
            r.as_ref()
                .and_then(encode_run)
                .ok_or_else(|| "row failed to encode".to_string())
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok((seconds, encoded))
}

fn main() {
    if let Err(msg) = run() {
        eprintln!("supervision_overhead bench failed: {msg}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let scenarios = grid()?;
    println!(
        "supervision_overhead: {} scenarios x {REPS} interleaved reps, strict vs supervised",
        scenarios.len()
    );

    // Warm-up rep of each leg (page-in, allocator steady state).
    let (_, strict_rows) = strict_leg(&scenarios)?;
    let (_, supervised_rows) = supervised_leg(&scenarios)?;
    if strict_rows != supervised_rows {
        return Err("supervised rows differ from strict rows".into());
    }

    let mut strict_best = f64::INFINITY;
    let mut supervised_best = f64::INFINITY;
    for rep in 0..REPS {
        let (strict_s, rows_a) = strict_leg(&scenarios)?;
        let (supervised_s, rows_b) = supervised_leg(&scenarios)?;
        if rows_a != strict_rows || rows_b != strict_rows {
            return Err(format!("rep {rep}: rows drifted between reps"));
        }
        strict_best = strict_best.min(strict_s);
        supervised_best = supervised_best.min(supervised_s);
        println!("  rep {rep}: strict {strict_s:.3} s, supervised {supervised_s:.3} s");
    }

    let overhead_pct = 100.0 * (supervised_best - strict_best) / strict_best;
    println!(
        "  best      : strict {strict_best:.3} s, supervised {supervised_best:.3} s \
         ({overhead_pct:+.2}% overhead, rows bit-identical)"
    );
    if !overhead_pct.is_finite() || overhead_pct >= MAX_OVERHEAD_PCT {
        return Err(format!(
            "supervised overhead {overhead_pct:.2}% breaches the {MAX_OVERHEAD_PCT}% bar"
        ));
    }

    let json = format!(
        "{{\n  \"schema\": \"rcoal-bench/v1\",\n  \"bench\": \"supervision_overhead\",\n  \"workload\": \"{} scenarios (baseline/FSS/RSS/RSS+RTS x 3 seeds), min of {REPS} interleaved reps, 1 thread\",\n  \"strict_seconds\": {strict_best:.6},\n  \"supervised_seconds\": {supervised_best:.6},\n  \"overhead_pct\": {overhead_pct:.3},\n  \"overhead_bar_pct\": {MAX_OVERHEAD_PCT:.1},\n  \"rows_identical\": true\n}}\n",
        scenarios.len()
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_robustness.json");
    std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
    println!("  recorded to BENCH_robustness.json");
    Ok(())
}
