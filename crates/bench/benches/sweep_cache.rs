//! Effect of the content-addressed run cache on the figure suite.
//!
//! Runs a representative slice of the figure generators twice — once
//! with caching disabled (`SweepRunner::uncached()`, every scenario
//! simulated) and once through a shared `SweepRunner::new()` — verifies
//! the figure rows are bit-identical, and records the wall-clock
//! numbers plus the cache accounting to `BENCH_scenario.json` at the
//! repository root.
//!
//! The suite is chosen so configurations genuinely repeat across
//! generators: fig06's baseline timing run is the same scenario as the
//! paper-default rows of the MSHR and L1 ablations, so the cached leg
//! must report hits > 0 or the content-addressing is broken.

use rcoal_bench::BENCH_SEED;
use rcoal_experiments::figures::{
    ablation_l1_with, ablation_mshr_with, fig05_last_vs_total_with, fig06_coalescing_onoff_with,
    Fig5Data, Fig6Data, L1Row, MshrRow,
};
use rcoal_experiments::SweepRunner;
use std::time::Instant;

/// Plaintexts per generator; shared by every figure in the slice so
/// the baseline scenario is literally the same run in all of them.
const PLAINTEXTS: usize = 24;

struct SuiteResult {
    fig05: Fig5Data,
    fig06: Fig6Data,
    mshr: Vec<MshrRow>,
    l1: Vec<L1Row>,
    seconds: f64,
    served: u64,
    launched: u64,
}

/// The figure slice, end to end, on one runner.
fn run_suite(runner: &SweepRunner) -> Result<SuiteResult, String> {
    let start = Instant::now();
    let fig05 =
        fig05_last_vs_total_with(runner, PLAINTEXTS, BENCH_SEED).map_err(|e| e.to_string())?;
    let fig06 =
        fig06_coalescing_onoff_with(runner, PLAINTEXTS, BENCH_SEED).map_err(|e| e.to_string())?;
    let mshr = ablation_mshr_with(runner, PLAINTEXTS, BENCH_SEED).map_err(|e| e.to_string())?;
    let l1 = ablation_l1_with(runner, PLAINTEXTS, BENCH_SEED).map_err(|e| e.to_string())?;
    let seconds = start.elapsed().as_secs_f64();
    let report = runner.report();
    Ok(SuiteResult {
        fig05,
        fig06,
        mshr,
        l1,
        seconds,
        served: report.served,
        launched: report.launched,
    })
}

fn main() {
    if let Err(msg) = run() {
        eprintln!("sweep_cache bench failed: {msg}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    println!(
        "sweep_cache: fig05 + fig06 + MSHR/L1 ablations at {PLAINTEXTS} plaintexts, \
         cache off vs on"
    );

    let cold = run_suite(&SweepRunner::uncached())?;
    println!(
        "  cache off : {:.3} s ({} runs served, {} simulated)",
        cold.seconds, cold.served, cold.launched
    );
    let warm = run_suite(&SweepRunner::new())?;
    let hits = warm.served - warm.launched;
    println!(
        "  cache on  : {:.3} s ({} runs served, {} simulated, {} hits)",
        warm.seconds, warm.served, warm.launched, hits
    );

    // The cache must be invisible in the science and visible in the
    // accounting.
    if cold.fig05 != warm.fig05
        || cold.fig06 != warm.fig06
        || cold.mshr != warm.mshr
        || cold.l1 != warm.l1
    {
        return Err("figure rows differ between cached and uncached legs".into());
    }
    if cold.served != cold.launched {
        return Err("uncached runner reported cache hits".into());
    }
    if hits == 0 {
        return Err("cached leg saw no hits; shared scenarios were re-simulated".into());
    }
    let runs_saved_pct = 100.0 * hits as f64 / warm.served as f64;
    println!("  saved     : {runs_saved_pct:.0}% of scenario runs (rows bit-identical)");

    let json = format!(
        "{{\n  \"schema\": \"rcoal-bench/v1\",\n  \"bench\": \"sweep_cache\",\n  \"workload\": \"fig05 + fig06 + MSHR/L1 ablations x {PLAINTEXTS} plaintexts, shared runner\",\n  \"uncached_seconds\": {:.6},\n  \"uncached_runs\": {},\n  \"cached_seconds\": {:.6},\n  \"cached_runs_served\": {},\n  \"cached_runs_simulated\": {},\n  \"cache_hits\": {hits},\n  \"runs_saved_pct\": {runs_saved_pct:.1},\n  \"rows_identical\": true\n}}\n",
        cold.seconds, cold.served, warm.seconds, warm.served, warm.launched
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scenario.json");
    std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
    println!("  recorded to BENCH_scenario.json");
    Ok(())
}
