//! Effect of the content-addressed run cache on the figure suite.
//!
//! Runs a representative slice of the figure generators twice — once
//! with caching disabled (`SweepRunner::uncached()`, every scenario
//! simulated) and once through a shared `SweepRunner::new()` — verifies
//! the figure rows are bit-identical, and records the wall-clock
//! numbers plus the cache accounting to `BENCH_scenario.json` at the
//! repository root.
//!
//! The suite is chosen so configurations genuinely repeat across
//! generators: fig06's baseline timing run is the same scenario as the
//! paper-default rows of the MSHR and L1 ablations, so the cached leg
//! must report hits > 0 or the content-addressing is broken.
//!
//! A counting allocator also records each leg's peak live-heap
//! transient and its per-simulated-run share, so cache and runner
//! changes that trade speed for memory show up in the artifact.

use rcoal_bench::{PeakAlloc, BENCH_SEED};
use rcoal_experiments::figures::{
    ablation_l1_with, ablation_mshr_with, fig05_last_vs_total_with, fig06_coalescing_onoff_with,
    Fig5Data, Fig6Data, L1Row, MshrRow,
};
use rcoal_experiments::SweepRunner;
use std::time::Instant;

#[global_allocator]
static ALLOC: PeakAlloc = PeakAlloc;

/// Plaintexts per generator; shared by every figure in the slice so
/// the baseline scenario is literally the same run in all of them.
const PLAINTEXTS: usize = 24;

struct SuiteResult {
    fig05: Fig5Data,
    fig06: Fig6Data,
    mshr: Vec<MshrRow>,
    l1: Vec<L1Row>,
    seconds: f64,
    served: u64,
    launched: u64,
    /// Peak live-heap growth over the suite (bytes above the heap level
    /// at entry).
    peak_heap_bytes: usize,
}

/// The figure slice, end to end, on one runner.
fn run_suite(runner: &SweepRunner) -> Result<SuiteResult, String> {
    let heap_floor = PeakAlloc::current_bytes();
    PeakAlloc::reset_peak();
    let start = Instant::now();
    let fig05 =
        fig05_last_vs_total_with(runner, PLAINTEXTS, BENCH_SEED).map_err(|e| e.to_string())?;
    let fig06 =
        fig06_coalescing_onoff_with(runner, PLAINTEXTS, BENCH_SEED).map_err(|e| e.to_string())?;
    let mshr = ablation_mshr_with(runner, PLAINTEXTS, BENCH_SEED).map_err(|e| e.to_string())?;
    let l1 = ablation_l1_with(runner, PLAINTEXTS, BENCH_SEED).map_err(|e| e.to_string())?;
    let seconds = start.elapsed().as_secs_f64();
    let peak_heap_bytes = PeakAlloc::peak_bytes().saturating_sub(heap_floor);
    let report = runner.report();
    Ok(SuiteResult {
        fig05,
        fig06,
        mshr,
        l1,
        seconds,
        served: report.served,
        launched: report.launched,
        peak_heap_bytes,
    })
}

fn main() {
    if let Err(msg) = run() {
        eprintln!("sweep_cache bench failed: {msg}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    println!(
        "sweep_cache: fig05 + fig06 + MSHR/L1 ablations at {PLAINTEXTS} plaintexts, \
         cache off vs on"
    );

    let cold = run_suite(&SweepRunner::uncached())?;
    println!(
        "  cache off : {:.3} s ({} runs served, {} simulated, peak heap {:.1} MiB)",
        cold.seconds,
        cold.served,
        cold.launched,
        cold.peak_heap_bytes as f64 / (1024.0 * 1024.0)
    );
    let warm = run_suite(&SweepRunner::new())?;
    let hits = warm.served - warm.launched;
    let per_run_heap = warm.peak_heap_bytes / warm.launched.max(1) as usize;
    println!(
        "  cache on  : {:.3} s ({} runs served, {} simulated, {} hits, \
         peak heap {:.1} MiB, ~{:.2} MiB/run)",
        warm.seconds,
        warm.served,
        warm.launched,
        hits,
        warm.peak_heap_bytes as f64 / (1024.0 * 1024.0),
        per_run_heap as f64 / (1024.0 * 1024.0)
    );

    // The cache must be invisible in the science and visible in the
    // accounting.
    if cold.fig05 != warm.fig05
        || cold.fig06 != warm.fig06
        || cold.mshr != warm.mshr
        || cold.l1 != warm.l1
    {
        return Err("figure rows differ between cached and uncached legs".into());
    }
    if cold.served != cold.launched {
        return Err("uncached runner reported cache hits".into());
    }
    if hits == 0 {
        return Err("cached leg saw no hits; shared scenarios were re-simulated".into());
    }
    let runs_saved_pct = 100.0 * hits as f64 / warm.served as f64;
    println!("  saved     : {runs_saved_pct:.0}% of scenario runs (rows bit-identical)");

    let json = format!(
        "{{\n  \"schema\": \"rcoal-bench/v1\",\n  \"bench\": \"sweep_cache\",\n  \"workload\": \"fig05 + fig06 + MSHR/L1 ablations x {PLAINTEXTS} plaintexts, shared runner\",\n  \"uncached_seconds\": {:.6},\n  \"uncached_runs\": {},\n  \"cached_seconds\": {:.6},\n  \"cached_runs_served\": {},\n  \"cached_runs_simulated\": {},\n  \"cache_hits\": {hits},\n  \"runs_saved_pct\": {runs_saved_pct:.1},\n  \"uncached_peak_heap_bytes\": {},\n  \"cached_peak_heap_bytes\": {},\n  \"cached_per_run_heap_bytes\": {per_run_heap},\n  \"rows_identical\": true\n}}\n",
        cold.seconds,
        cold.served,
        warm.seconds,
        warm.served,
        warm.launched,
        cold.peak_heap_bytes,
        warm.peak_heap_bytes
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scenario.json");
    std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
    println!("  recorded to BENCH_scenario.json");
    Ok(())
}
