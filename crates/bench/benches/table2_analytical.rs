//! Table II: analytical correlation and normalized sample counts for
//! FSS, FSS+RTS and RSS+RTS across subwarp counts.

use rcoal_bench::{criterion_group, criterion_main, Criterion};
use rcoal_theory::{table2, Mechanism, SecurityModel};
use std::hint::black_box;

fn print_table() {
    println!("\nTable II (N = 32 threads, R = 16 memory blocks)");
    println!(
        "{:>3} | {:>7} {:>8} {:>8} | {:>9} {:>10} {:>10}",
        "M", "rho FSS", "FSS+RTS", "RSS+RTS", "S FSS", "S FSS+RTS", "S RSS+RTS"
    );
    for r in table2() {
        println!(
            "{:>3} | {:>7.2} {:>8.2} {:>8.2} | {:>9.0} {:>10.0} {:>10.0}",
            r.m, r.rho_fss, r.rho_fss_rts, r.rho_rss_rts, r.s_fss, r.s_fss_rts, r.s_rss_rts
        );
    }
    println!("(paper: rho FSS+RTS = 1.00/0.41/0.20/0.09/0.03/0; S = 1/6/24/115/961/inf)");
    println!("(paper: rho RSS+RTS = 1.00/0.20/0.15/0.11/0.05/0; S = 1/25/42/78/349/inf)\n");
}

fn bench(c: &mut Criterion) {
    print_table();
    let model = SecurityModel::default();
    let mut g = c.benchmark_group("table2");
    g.bench_function("rho_fss_rts_m16", |b| {
        b.iter(|| black_box(model.rho(Mechanism::FssRts, black_box(16))))
    });
    g.bench_function("rho_rss_rts_m16", |b| {
        b.iter(|| black_box(model.rho(Mechanism::RssRts, black_box(16))))
    });
    g.bench_function("full_table", |b| b.iter(|| black_box(table2())));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
