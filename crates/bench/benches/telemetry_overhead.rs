//! Cost of the telemetry layer on the experiment hot path.
//!
//! Runs the same timing workload three ways — uninstrumented (twice, to
//! establish the machine's noise floor), profile-only telemetry, and
//! full event tracing — verifies the scientific observations are
//! bit-identical in all legs, and records the wall-clock ratios to
//! `BENCH_telemetry.json` at the repository root.
//!
//! The acceptance bar for the *disabled* path is that instrumentation is
//! invisible: `GpuSimulator::run_launch_faulted` now routes through the
//! instrumented loop with a no-op sink, so the `off` legs ARE the
//! disabled-hook cost, and their spread is the noise floor the enabled
//! overheads should be read against.

use rcoal_bench::BENCH_SEED;
use rcoal_core::CoalescingPolicy;
use rcoal_experiments::{ExperimentConfig, ExperimentData, TelemetrySpec};
use std::time::Instant;

/// Plaintexts per leg: enough simulated launches for stable timings
/// while keeping the whole bench under a minute.
const PLAINTEXTS: usize = 24;
/// Repetitions per leg; the minimum is recorded (standard practice for
/// wall-clock microbenchmarks — the minimum is the least-noise sample).
const REPS: usize = 3;

fn run_leg(telemetry: Option<TelemetrySpec>) -> Result<(f64, ExperimentData), String> {
    let mut best = f64::INFINITY;
    let mut data = None;
    for _ in 0..REPS {
        let mut cfg = ExperimentConfig::new(
            CoalescingPolicy::rss_rts(8).map_err(|e| e.to_string())?,
            PLAINTEXTS,
            32,
        )
        .with_seed(BENCH_SEED)
        .with_threads(1);
        if let Some(spec) = telemetry {
            cfg = cfg.with_telemetry(spec);
        }
        let start = Instant::now();
        let d = cfg.run().map_err(|e| e.to_string())?;
        best = best.min(start.elapsed().as_secs_f64());
        data = Some(d);
    }
    data.map(|d| (best, d)).ok_or_else(|| "no reps ran".into())
}

/// Strips the telemetry payload so legs compare on observations only.
fn observations(mut data: ExperimentData) -> ExperimentData {
    data.telemetry = None;
    data
}

fn main() {
    if let Err(msg) = run() {
        eprintln!("telemetry_overhead bench failed: {msg}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    println!(
        "telemetry_overhead: {PLAINTEXTS}-plaintext RSS+RTS(8) timing workload, best of {REPS}"
    );

    let (off_a, data_off) = run_leg(None)?;
    let (off_b, data_off_repeat) = run_leg(None)?;
    let (profile_secs, data_profile) = run_leg(Some(TelemetrySpec::profile_only()))?;
    let (full_secs, data_full) = run_leg(Some(TelemetrySpec::full()))?;

    let data_off = observations(data_off);
    if data_off != observations(data_off_repeat) {
        return Err("repeated uninstrumented runs disagree (nondeterminism!)".into());
    }
    if data_off != observations(data_profile.clone()) || data_off != observations(data_full.clone())
    {
        return Err("telemetry changed the scientific observations".into());
    }
    let events = data_full
        .telemetry
        .as_ref()
        .map_or(0, rcoal_experiments::ExperimentTelemetry::num_events);

    let noise_floor = (off_a - off_b).abs() / off_a.max(off_b);
    let profile_overhead = profile_secs / off_a.min(off_b) - 1.0;
    let full_overhead = full_secs / off_a.min(off_b) - 1.0;
    println!(
        "  off        : {off_a:.4} s / {off_b:.4} s (noise {:.1}%)",
        noise_floor * 100.0
    );
    println!(
        "  profile    : {profile_secs:.4} s ({:+.1}%)",
        profile_overhead * 100.0
    );
    println!(
        "  full trace : {full_secs:.4} s ({:+.1}%, {events} events)",
        full_overhead * 100.0
    );

    let json = format!(
        "{{\n  \"schema\": \"rcoal-bench/v1\",\n  \"bench\": \"telemetry_overhead\",\n  \"workload\": \"RSS+RTS(8) timing experiment x {PLAINTEXTS} plaintexts, threads=1, best of {REPS}\",\n  \"off_seconds\": {off_a:.6},\n  \"off_repeat_seconds\": {off_b:.6},\n  \"noise_floor\": {noise_floor:.4},\n  \"profile_only_seconds\": {profile_secs:.6},\n  \"profile_only_overhead\": {profile_overhead:.4},\n  \"full_trace_seconds\": {full_secs:.6},\n  \"full_trace_overhead\": {full_overhead:.4},\n  \"events_collected\": {events},\n  \"observations_identical\": true\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_telemetry.json");
    std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
    println!("  recorded to BENCH_telemetry.json");
    Ok(())
}
