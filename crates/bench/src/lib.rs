//! Shared helpers for the figure-regenerating benches.
//!
//! Every bench target under `benches/` regenerates one table or figure of
//! the RCoal paper (printing the series the paper plots) and then times a
//! representative core operation with Criterion. Sample counts mirror the
//! paper's §VI scale (100 plaintexts of 32 lines) unless noted.

use rcoal_experiments::figures::ScatterData;

/// Canonical seed used by the benches so printed numbers are reproducible
/// run to run.
pub const BENCH_SEED: u64 = 0xbe_c4;

/// Renders a guess-correlation scatter panel (Figures 8, 12–14) as text:
/// correlation of the correct guess, the range of wrong guesses, and the
/// recovery verdict.
pub fn describe_scatter(figure: &str, panels: &[ScatterData]) {
    println!("{figure}: correlation of 256 guesses for key byte 0");
    println!(
        "  {:>3} | {:>13} | {:>23} | {:>4} | verdict",
        "M", "corr(correct)", "wrong guesses (min..max)", "rank"
    );
    for p in panels {
        let correct = p.correlations[p.correct_byte as usize];
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for (m, &c) in p.correlations.iter().enumerate() {
            if m != p.correct_byte as usize {
                lo = lo.min(c);
                hi = hi.max(c);
            }
        }
        let verdict = if p.rank_of_correct == 0 {
            "KEY BYTE RECOVERED"
        } else {
            "recovery defeated"
        };
        println!(
            "  {:>3} | {:>13.3} | {:>10.3} .. {:>8.3} | {:>4} | {verdict}",
            p.m, correct, lo, hi, p.rank_of_correct
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describe_scatter_handles_a_panel() {
        let mut correlations = vec![0.0; 256];
        correlations[7] = 0.9;
        describe_scatter(
            "test",
            &[ScatterData {
                m: 2,
                correlations,
                correct_byte: 7,
                rank_of_correct: 0,
            }],
        );
    }
}
