//! Shared helpers for the figure-regenerating benches.
//!
//! Every bench target under `benches/` regenerates one table or figure of
//! the RCoal paper (printing the series the paper plots) and then times a
//! representative core operation with Criterion. Sample counts mirror the
//! paper's §VI scale (100 plaintexts of 32 lines) unless noted.

use rcoal_experiments::figures::ScatterData;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Canonical seed used by the benches so printed numbers are reproducible
/// run to run.
pub const BENCH_SEED: u64 = 0xbe_c4;

/// A counting wrapper around the system allocator for benches that
/// report peak heap usage alongside wall-clock numbers.
///
/// Opt-in per bench binary (so perf-only benches pay nothing):
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: rcoal_bench::PeakAlloc = rcoal_bench::PeakAlloc;
/// ```
///
/// Tracking is two relaxed atomics per (de)allocation — negligible next
/// to simulation work, but it *is* a measurement probe: record heap
/// numbers and timings from the same run only when that overhead is
/// acceptable.
pub struct PeakAlloc;

static HEAP_CURRENT: AtomicUsize = AtomicUsize::new(0);
static HEAP_PEAK: AtomicUsize = AtomicUsize::new(0);

// SAFETY: delegates every allocation verbatim to `System`; the atomics
// only observe sizes and never affect pointer validity.
unsafe impl std::alloc::GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        let p = unsafe { std::alloc::System.alloc(layout) };
        if !p.is_null() {
            let c = HEAP_CURRENT.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            HEAP_PEAK.fetch_max(c, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        unsafe { std::alloc::System.dealloc(ptr, layout) };
        HEAP_CURRENT.fetch_sub(layout.size(), Ordering::Relaxed);
    }
}

impl PeakAlloc {
    /// Restarts the peak-tracking window at the current live heap size.
    pub fn reset_peak() {
        HEAP_PEAK.store(HEAP_CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Peak live heap bytes since the last [`PeakAlloc::reset_peak`].
    pub fn peak_bytes() -> usize {
        HEAP_PEAK.load(Ordering::Relaxed)
    }

    /// Live heap bytes right now.
    pub fn current_bytes() -> usize {
        HEAP_CURRENT.load(Ordering::Relaxed)
    }
}

/// Minimal Criterion-compatible benchmark driver.
///
/// The crates-io `criterion` crate is unavailable in the offline build,
/// so the bench targets link against this drop-in subset instead: the
/// same `criterion_group!`/`criterion_main!` macros, `Criterion`,
/// benchmark groups with `sample_size`, and `Bencher::iter`. Timings are
/// median-of-samples over batched iterations — enough to spot order-of-
/// magnitude regressions while keeping every figure bench runnable with
/// `cargo bench`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
        }
    }
}

/// A named collection of benchmarks sharing sampling configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timing samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Times the closure-driven routine and prints a summary line.
    /// Accepts anything string-like (`&str`, `String`, `format!` output),
    /// matching the real Criterion's flexible benchmark IDs.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        let id = id.as_ref();
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples.get(samples.len() / 2).copied().unwrap_or(0.0);
        println!(
            "  {id}: median {:.3} ms/iter ({} samples)",
            median * 1e3,
            samples.len()
        );
        self
    }

    /// Ends the group (kept for Criterion API compatibility).
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark body; runs and times the hot closure.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `routine` repeatedly, accumulating wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up call outside the timed region.
        std::hint::black_box(routine());
        let start = Instant::now();
        std::hint::black_box(routine());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

/// Renders a guess-correlation scatter panel (Figures 8, 12–14) as text:
/// correlation of the correct guess, the range of wrong guesses, and the
/// recovery verdict.
pub fn describe_scatter(figure: &str, panels: &[ScatterData]) {
    println!("{figure}: correlation of 256 guesses for key byte 0");
    println!(
        "  {:>3} | {:>13} | {:>23} | {:>4} | verdict",
        "M", "corr(correct)", "wrong guesses (min..max)", "rank"
    );
    for p in panels {
        let correct = p.correlations[p.correct_byte as usize];
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for (m, &c) in p.correlations.iter().enumerate() {
            if m != p.correct_byte as usize {
                lo = lo.min(c);
                hi = hi.max(c);
            }
        }
        let verdict = if p.rank_of_correct == 0 {
            "KEY BYTE RECOVERED"
        } else {
            "recovery defeated"
        };
        println!(
            "  {:>3} | {:>13.3} | {:>10.3} .. {:>8.3} | {:>4} | {verdict}",
            p.m, correct, lo, hi, p.rank_of_correct
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describe_scatter_handles_a_panel() {
        let mut correlations = vec![0.0; 256];
        correlations[7] = 0.9;
        describe_scatter(
            "test",
            &[ScatterData {
                m: 2,
                correlations,
                correct_byte: 7,
                rank_of_correct: 0,
            }],
        );
    }
}
