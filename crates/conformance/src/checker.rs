//! Cross-crate invariant checking over the telemetry stream.
//!
//! [`SimChecker`] runs a scenario through the instrumented simulator and
//! asserts structural invariants that must hold for *every* policy and
//! machine shape — properties the differential oracles do not pin down:
//!
//! * **conservation** — every coalesced access is serviced exactly once:
//!   `mem.reply` event count, per-controller `serviced` counters, and
//!   the row-hit/row-miss ledger all reconcile with `SimStats`;
//! * **cycle monotonicity** — the event stream never goes backwards in
//!   time and never past the reported total;
//! * **partition well-formedness** — under every policy, replayed
//!   subwarp assignments partition the warp: sizes sum to the warp
//!   width, every subwarp is non-empty, and the count matches the
//!   policy's declared subwarp count;
//! * **RNG-stream isolation** — deterministic policies draw zero words
//!   from the security RNG ([`CountingRng`] proves it), and telemetry
//!   instrumentation never perturbs results (an uninstrumented run is
//!   bit-identical).

use crate::report::SectionReport;
use crate::strategies::{policy_pool, sim_corpus, SimScenario};
use crate::ConformanceError;
use rcoal_core::CoalescingPolicy;
use rcoal_gpu_sim::{FaultPlan, GpuSimulator, LaunchPolicy, SimStats, SimTelemetry};
use rcoal_rng::{RngCore, SeedableRng, StdRng};

/// An `RngCore` wrapper that counts how many words the wrapped generator
/// produced — the proof obligation for RNG-stream isolation ("this code
/// path consumed exactly N draws").
#[derive(Debug, Clone)]
pub struct CountingRng<R> {
    inner: R,
    draws: u64,
}

impl<R: RngCore> CountingRng<R> {
    /// Wraps `inner` with a zeroed draw counter.
    pub fn new(inner: R) -> Self {
        CountingRng { inner, draws: 0 }
    }

    /// Words drawn since construction.
    pub fn draws(&self) -> u64 {
        self.draws
    }
}

impl<R: RngCore> RngCore for CountingRng<R> {
    fn next_u64(&mut self) -> u64 {
        self.draws += 1;
        self.inner.next_u64()
    }
}

/// Outcome of one checked launch: the stats plus every violation found.
#[derive(Debug, Clone)]
pub struct CheckedRun {
    /// Statistics of the instrumented run.
    pub stats: SimStats,
    /// Invariant violations (empty = clean).
    pub violations: Vec<String>,
}

impl CheckedRun {
    /// Whether every invariant held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs scenarios through the instrumented simulator and validates the
/// invariants listed in the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimChecker;

impl SimChecker {
    /// Checks one scenario end to end.
    ///
    /// # Errors
    ///
    /// Returns [`ConformanceError`] only when the simulator itself
    /// refuses to run (invalid configuration); invariant violations are
    /// collected in the returned [`CheckedRun`].
    pub fn check(s: &SimScenario) -> Result<CheckedRun, ConformanceError> {
        let mut v = Vec::new();
        let kernel = s.kernel();
        let sim = GpuSimulator::new(s.gpu.clone());
        let instrs: usize = s.traces.iter().map(|t| t.instrs().len()).sum();
        let mut tel = SimTelemetry::with_event_capacity(instrs * 40 + 256);
        let stats = sim
            .run_instrumented(
                &kernel,
                LaunchPolicy::Uniform(s.policy),
                s.seed,
                &FaultPlan::none(),
                &mut tel,
            )
            .map_err(|e| ConformanceError::new(format!("scenario {}: {e}", s.id)))?;

        Self::check_event_stream(&tel, &stats, &mut v);
        Self::check_conservation(&tel, &stats, &mut v);
        Self::check_partitions(s, &tel, &mut v);
        Self::check_isolation(s, &sim, &kernel, &stats, &mut v);
        Ok(CheckedRun {
            stats,
            violations: v,
        })
    }

    fn check_event_stream(tel: &SimTelemetry, stats: &SimStats, v: &mut Vec<String>) {
        if tel.events.dropped() > 0 {
            v.push(format!(
                "event ring dropped {} event(s); checker capacity too small",
                tel.events.dropped()
            ));
            return;
        }
        let mut prev = 0u64;
        for e in tel.events.events() {
            if e.cycle < prev {
                v.push(format!(
                    "event stream goes backwards: {}.{} at cycle {} after cycle {prev}",
                    e.component, e.code, e.cycle
                ));
            }
            prev = prev.max(e.cycle);
            if e.cycle > stats.total_cycles {
                v.push(format!(
                    "event {}.{} stamped at cycle {} past total_cycles {}",
                    e.component, e.code, e.cycle, stats.total_cycles
                ));
            }
        }
        for (w, &finish) in stats.warp_finish_cycle.iter().enumerate() {
            if finish > stats.total_cycles {
                v.push(format!(
                    "warp {w} finished at {finish} past total_cycles {}",
                    stats.total_cycles
                ));
            }
        }
        for (r, &cycle) in stats.round_complete_cycle.iter().enumerate() {
            if cycle > stats.total_cycles {
                v.push(format!(
                    "round {r} completed at {cycle} past total_cycles {}",
                    stats.total_cycles
                ));
            }
        }
    }

    fn check_conservation(tel: &SimTelemetry, stats: &SimStats, v: &mut Vec<String>) {
        // With no fault plan, every access issued to memory comes back
        // exactly once; MSHR merges and L1 hits never reach DRAM.
        let expected_serviced =
            stats.total_accesses - stats.mshr_merged - stats.l1_hits + stats.fault_retries;
        let replies = tel
            .events
            .events()
            .filter(|e| e.component == "mem" && e.code == "reply")
            .count() as u64;
        if replies != expected_serviced {
            v.push(format!(
                "conservation: {replies} reply event(s) but {expected_serviced} expected \
                 (accesses {} - merged {} - l1 {} + retries {})",
                stats.total_accesses, stats.mshr_merged, stats.l1_hits, stats.fault_retries
            ));
        }
        let serviced: u64 = tel.profile.mcs.iter().map(|m| m.serviced).sum();
        if serviced != expected_serviced {
            v.push(format!(
                "conservation: controllers serviced {serviced} but {expected_serviced} issued"
            ));
        }
        for (i, mc) in tel.profile.mcs.iter().enumerate() {
            if mc.row_hits + mc.row_misses != mc.serviced {
                v.push(format!(
                    "mc {i}: row ledger {} + {} != serviced {}",
                    mc.row_hits, mc.row_misses, mc.serviced
                ));
            }
        }
        let by_tag: u64 = stats.accesses_by_tag.iter().sum();
        if by_tag != stats.total_accesses {
            v.push(format!(
                "accesses_by_tag sums to {by_tag}, not total_accesses {}",
                stats.total_accesses
            ));
        }
        if stats.dropped_replies != 0 || stats.replies_lost != 0 {
            v.push(format!(
                "fault-free run dropped {} / lost {} replies",
                stats.dropped_replies, stats.replies_lost
            ));
        }
    }

    fn check_partitions(s: &SimScenario, tel: &SimTelemetry, v: &mut Vec<String>) {
        // Replay the launch's assignment draws (§IV-D: one per warp, in
        // warp order) and assert partition well-formedness.
        let mut rng = StdRng::seed_from_u64(s.seed);
        let width = s.gpu.warp_size;
        let declared = s.policy.num_subwarps(width);
        for w in 0..s.traces.len() {
            let assignment = match s.policy.assignment(width, &mut rng) {
                Ok(a) => a,
                Err(e) => {
                    v.push(format!("warp {w}: assignment replay failed: {e}"));
                    return;
                }
            };
            let sizes = assignment.sizes();
            if sizes.iter().sum::<usize>() != width {
                v.push(format!(
                    "warp {w}: subwarp sizes {sizes:?} do not sum to {width}"
                ));
            }
            if sizes.contains(&0) {
                v.push(format!("warp {w}: empty subwarp in {sizes:?}"));
            }
            if assignment.num_subwarps() != declared {
                v.push(format!(
                    "warp {w}: {} subwarp(s) but policy {} declares {declared}",
                    assignment.num_subwarps(),
                    s.policy
                ));
            }
            let mut seen = vec![false; width];
            for (lane, sid) in assignment.iter() {
                if lane >= width || usize::from(sid) >= assignment.num_subwarps() {
                    v.push(format!(
                        "warp {w}: lane {lane} -> subwarp {sid} out of range"
                    ));
                } else if seen[lane] {
                    v.push(format!("warp {w}: lane {lane} assigned twice"));
                } else {
                    seen[lane] = true;
                }
            }
            if !seen.iter().all(|&b| b) {
                v.push(format!("warp {w}: assignment does not cover every lane"));
            }
        }
        // Every executed load must report the declared subwarp count.
        for e in tel.events.events() {
            if e.component == "coalescer" && e.code == "load" && e.a != declared as u64 {
                v.push(format!(
                    "load event reports {} subwarp(s); policy {} declares {declared}",
                    e.a, s.policy
                ));
            }
        }
    }

    fn check_isolation(
        s: &SimScenario,
        sim: &GpuSimulator,
        kernel: &rcoal_gpu_sim::TraceKernel,
        stats: &SimStats,
        v: &mut Vec<String>,
    ) {
        // Telemetry must be a pure observer: the uninstrumented run is
        // bit-identical.
        match sim.run(kernel, s.policy, s.seed) {
            Ok(plain) => {
                if &plain != stats {
                    v.push("telemetry instrumentation changed the simulation result".into());
                }
            }
            Err(e) => v.push(format!("uninstrumented rerun failed: {e}")),
        }
    }
}

/// Whether a policy is allowed to consume security-RNG words when
/// drawing an assignment.
fn is_deterministic(policy: &CoalescingPolicy) -> bool {
    matches!(
        policy,
        CoalescingPolicy::Baseline | CoalescingPolicy::Disabled | CoalescingPolicy::Fss { .. }
    )
}

/// RNG-stream isolation over the policy pool: deterministic policies
/// must draw zero words; all policies must replay bit-identically from
/// the same seed.
fn rng_isolation_failures() -> Vec<String> {
    let mut failures = Vec::new();
    for policy in policy_pool() {
        let mut rng = CountingRng::new(StdRng::seed_from_u64(0x150));
        let first = policy.assignment(32, &mut rng);
        let draws = rng.draws();
        if is_deterministic(&policy) && draws != 0 {
            failures.push(format!(
                "{policy} drew {draws} RNG word(s); deterministic policies must draw none"
            ));
        }
        let mut replay = CountingRng::new(StdRng::seed_from_u64(0x150));
        let second = policy.assignment(32, &mut replay);
        match (&first, &second) {
            (Ok(a), Ok(b)) => {
                if a.sizes() != b.sizes() || a.iter().ne(b.iter()) {
                    failures.push(format!("{policy} is not a pure function of the RNG stream"));
                }
                if replay.draws() != draws {
                    failures.push(format!(
                        "{policy} drew {draws} then {} word(s) from identical streams",
                        replay.draws()
                    ));
                }
            }
            _ => failures.push(format!("{policy} failed to draw an assignment for warp 32")),
        }
    }
    failures
}

/// Invariant-checker section: RNG isolation over the policy pool plus
/// `cases` fully checked simulator runs from the shared corpus.
///
/// # Errors
///
/// Returns [`ConformanceError`] when a scenario cannot run at all.
pub fn section(seed: u64, cases: usize) -> Result<SectionReport, ConformanceError> {
    let mut section = SectionReport::new("sim invariants");
    section.cases += 1;
    section.failures.extend(rng_isolation_failures());
    for s in sim_corpus(seed ^ 0xc4ec, cases) {
        section.cases += 1;
        let run = SimChecker::check(&s)?;
        for f in run.violations {
            section
                .failures
                .push(format!("scenario {} ({}): {f}", s.id, s.policy));
        }
    }
    Ok(section)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcoal_rng::Rng;

    #[test]
    fn counting_rng_counts_and_passes_through() {
        let mut plain = StdRng::seed_from_u64(7);
        let mut counted = CountingRng::new(StdRng::seed_from_u64(7));
        for _ in 0..10 {
            assert_eq!(plain.next_u64(), counted.next_u64());
        }
        assert_eq!(counted.draws(), 10);
        let _: u64 = counted.gen_range(0..100u64);
        assert!(counted.draws() >= 11);
    }

    #[test]
    fn deterministic_policies_draw_nothing() {
        assert!(rng_isolation_failures().is_empty());
    }

    #[test]
    fn randomized_policies_do_draw() {
        let policy = CoalescingPolicy::rss_rts(8).unwrap();
        let mut rng = CountingRng::new(StdRng::seed_from_u64(1));
        policy.assignment(32, &mut rng).unwrap();
        assert!(rng.draws() > 0, "RSS+RTS must consume the security RNG");
    }

    #[test]
    fn checker_section_is_clean() {
        let s = section(3, 12).expect("scenarios must run");
        assert!(s.cases >= 13);
        assert!(s.passed(), "{:?}", s.failures);
    }
}
