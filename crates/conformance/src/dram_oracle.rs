//! The DRAM service-time differential oracle.
//!
//! [`reference_dram_service`] recomputes FR-FCFS scheduling from first
//! principles: a flat array of requests with served-flags, scanned once
//! per memory cycle, with every timing constraint (`tRP`, `tRC`, `tRAS`,
//! `tRCD`, `tRRD`, `tCL`, `tCCD`, burst serialization) applied as an
//! explicit max over command frontiers. It shares no code or data
//! structures with `rcoal_gpu_sim::MemoryController` (which keeps a
//! `VecDeque` queue and a completion heap) — agreement on both the
//! completion schedule and the row-hit ledger therefore cross-checks the
//! timing model itself, not its plumbing.

use crate::report::SectionReport;
use rcoal_gpu_sim::{AddressMapper, GpuConfig, MemoryController, PhysLoc};
use rcoal_rng::{Rng, SeedableRng, StdRng};

/// What the reference scheduler computed for one request stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DramOracleResult {
    /// `(request id, finish mem-cycle)` sorted by `(finish, id)`.
    pub completions: Vec<(u64, u64)>,
    /// Requests served from an already-open row.
    pub row_hits: u64,
    /// Requests that paid a precharge and/or activate.
    pub row_misses: u64,
}

impl DramOracleResult {
    /// Finish time of the last request, or 0 for an empty stream — the
    /// quantity the timing side-channel leaks.
    pub fn total_service_cycles(&self) -> u64 {
        self.completions.iter().map(|&(_, t)| t).max().unwrap_or(0)
    }
}

#[derive(Clone, Copy, Default)]
struct RefBank {
    open_row: Option<u64>,
    ready_at: u64,
    last_activate: Option<u64>,
}

/// First-principles FR-FCFS service-time computation.
///
/// `reqs` is the controller's queue in arrival order: `(id, loc,
/// arrival)` with non-decreasing arrivals, exactly as the simulator
/// delivers them. One transaction may issue per memory cycle; the
/// oldest *ready* row hit wins, else the oldest arrived request.
pub fn reference_dram_service(cfg: &GpuConfig, reqs: &[(u64, PhysLoc, u64)]) -> DramOracleResult {
    let t = cfg.dram_timing;
    let (t_cl, t_rp, t_rc, t_ras, t_ccd, t_rcd, t_rrd) = (
        u64::from(t.t_cl),
        u64::from(t.t_rp),
        u64::from(t.t_rc),
        u64::from(t.t_ras),
        u64::from(t.t_ccd),
        u64::from(t.t_rcd),
        u64::from(t.t_rrd),
    );
    let burst = u64::from(cfg.burst_cycles);

    let mut banks = vec![RefBank::default(); cfg.banks_per_mc];
    let mut served = vec![false; reqs.len()];
    let mut completions: Vec<(u64, u64)> = Vec::with_capacity(reqs.len());
    let mut bus_free_at = 0u64;
    let mut ctrl_last_activate: Option<u64> = None;
    let mut row_hits = 0u64;
    let mut remaining = reqs.len();
    let mut now = 0u64;

    while remaining > 0 {
        // Candidate selection, in queue (arrival) order over the
        // not-yet-served requests.
        let mut first_arrived: Option<usize> = None;
        let mut ready_hit: Option<usize> = None;
        for (i, &(_, loc, arrival)) in reqs.iter().enumerate() {
            if served[i] || arrival > now {
                continue;
            }
            if first_arrived.is_none() {
                first_arrived = Some(i);
            }
            let bank = &banks[loc.bank];
            if ready_hit.is_none() && bank.open_row == Some(loc.row) && bank.ready_at <= now + t_ccd
            {
                ready_hit = Some(i);
            }
        }
        let Some(idx) = ready_hit.or(first_arrived) else {
            // Nothing has arrived yet: jump straight to the next arrival.
            now = reqs
                .iter()
                .enumerate()
                .filter(|&(i, _)| !served[i])
                .map(|(_, &(_, _, a))| a)
                .min()
                .unwrap_or(now + 1);
            continue;
        };

        let (id, loc, _) = reqs[idx];
        let bank = banks[loc.bank];
        let is_hit = bank.open_row == Some(loc.row);
        let read_cmd = if is_hit {
            bank.ready_at.max(now)
        } else {
            let mut start = bank.ready_at.max(now);
            if bank.open_row.is_some() {
                if let Some(last) = bank.last_activate {
                    start = start.max(last + t_ras);
                }
                start += t_rp;
            }
            let activate = start
                .max(bank.last_activate.map_or(0, |last| last + t_rc))
                .max(ctrl_last_activate.map_or(0, |last| last + t_rrd));
            activate + t_rcd
        };
        let data_start = (read_cmd + t_cl).max(bus_free_at);
        let done = data_start + burst;

        served[idx] = true;
        remaining -= 1;
        bus_free_at = data_start + t_ccd.max(burst);
        let bank = &mut banks[loc.bank];
        if is_hit {
            row_hits += 1;
        } else {
            let activate = read_cmd - t_rcd;
            bank.last_activate = Some(activate);
            ctrl_last_activate = Some(activate);
            bank.open_row = Some(loc.row);
        }
        bank.ready_at = read_cmd + t_ccd;
        completions.push((id, done));
        now += 1;
    }

    completions.sort_unstable_by_key(|&(id, done)| (done, id));
    DramOracleResult {
        completions,
        row_hits,
        row_misses: reqs.len() as u64 - row_hits,
    }
}

/// Drives a real [`MemoryController`] over `reqs` via the conformance
/// hooks and diffs it against [`reference_dram_service`]. Returns
/// human-readable mismatches (empty = exact agreement).
pub fn check_dram_case(cfg: &GpuConfig, reqs: &[(u64, PhysLoc, u64)]) -> Vec<String> {
    let mut failures = Vec::new();
    let expected = reference_dram_service(cfg, reqs);

    let mut mc = MemoryController::new(cfg);
    for &(id, loc, arrival) in reqs {
        mc.inject(id, loc, arrival);
    }
    let mut got: Vec<(u64, u64)> = Vec::with_capacity(reqs.len());
    let mut now = 0u64;
    // Generous stall bound: every request is served within its own
    // worst-case conflict window once it has arrived.
    let horizon =
        reqs.iter().map(|&(_, _, a)| a).max().unwrap_or(0) + 200 * (reqs.len() as u64 + 1) + 100;
    while mc.pending() > 0 {
        mc.advance(now, &mut got);
        now += 1;
        if now > horizon {
            failures.push(format!(
                "controller stalled: {} request(s) still pending at cycle {now}",
                mc.pending()
            ));
            return failures;
        }
    }
    got.sort_unstable_by_key(|&(id, done)| (done, id));

    if got != expected.completions {
        let diverge = got
            .iter()
            .zip(&expected.completions)
            .position(|(a, b)| a != b)
            .unwrap_or(got.len().min(expected.completions.len()));
        failures.push(format!(
            "completion schedule diverges at position {diverge}: sim {:?} vs oracle {:?}",
            got.get(diverge),
            expected.completions.get(diverge)
        ));
    }
    if mc.serviced() != reqs.len() as u64 {
        failures.push(format!(
            "controller serviced {} of {} request(s)",
            mc.serviced(),
            reqs.len()
        ));
    }
    if mc.row_hits() != expected.row_hits {
        failures.push(format!(
            "row hits: sim {} vs oracle {}",
            mc.row_hits(),
            expected.row_hits
        ));
    }
    if mc.row_misses() != expected.row_misses {
        failures.push(format!(
            "row misses: sim {} vs oracle {}",
            mc.row_misses(),
            expected.row_misses
        ));
    }
    failures
}

/// Random request stream: `k` requests with locations decoded from
/// random physical addresses and sorted, staggered arrivals.
fn arb_stream(rng: &mut StdRng, cfg: &GpuConfig, k: usize) -> Vec<(u64, PhysLoc, u64)> {
    let mapper = AddressMapper::new(cfg);
    let mut arrivals: Vec<u64> = (0..k).map(|_| rng.gen_range(0u64..60)).collect();
    arrivals.sort_unstable();
    arrivals
        .into_iter()
        .enumerate()
        .map(|(i, arrival)| {
            // Bias toward a few hot rows so row hits, conflicts, and bank
            // parallelism all occur in the same stream.
            let addr = if rng.gen_bool(0.5) {
                rng.gen_range(0u64..1 << 13)
            } else {
                rng.gen_range(0u64..1 << 22)
            };
            let mut loc = mapper.decode(addr);
            loc.mc = 0;
            (i as u64, loc, arrival)
        })
        .collect()
}

/// DRAM differential section: one closed-form streaming anchor plus `n`
/// random request streams on both the paper and tiny machine models.
pub fn section(seed: u64, n: usize) -> SectionReport {
    let mut section = SectionReport::new("dram oracle");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xd4a1);

    // Closed-form anchor, independent of both implementations: with the
    // GDDR5 defaults, 10 same-row requests arriving at 0 finish at
    // tRCD + tCL + burst = 26 and then stream one per tCCD = 2.
    section.cases += 1;
    let cfg = GpuConfig::default();
    let stream: Vec<(u64, PhysLoc, u64)> = (0..10)
        .map(|i| {
            (
                i,
                PhysLoc {
                    mc: 0,
                    bank: 0,
                    bank_group: 0,
                    row: 5,
                    col: 0,
                },
                0,
            )
        })
        .collect();
    let anchored = reference_dram_service(&cfg, &stream);
    let expected: Vec<(u64, u64)> = (0..10).map(|k| (k, 26 + 2 * k)).collect();
    if anchored.completions != expected {
        section.failures.push(format!(
            "oracle violates the closed-form streaming schedule: {:?}",
            anchored.completions
        ));
    }
    if anchored.row_hits != 9 || anchored.row_misses != 1 {
        section.failures.push(format!(
            "oracle row ledger wrong on the anchor: {} hit(s), {} miss(es)",
            anchored.row_hits, anchored.row_misses
        ));
    }
    for f in check_dram_case(&cfg, &stream) {
        section.failures.push(format!("anchor: {f}"));
    }

    for case in 0..n {
        section.cases += 1;
        let cfg = if case % 2 == 0 {
            GpuConfig::paper()
        } else {
            GpuConfig::tiny()
        };
        let k = rng.gen_range(1usize..40);
        let stream = arb_stream(&mut rng, &cfg, k);
        for f in check_dram_case(&cfg, &stream) {
            section.failures.push(format!("case {case} (k={k}): {f}"));
        }
    }
    section
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc(bank: usize, row: u64) -> PhysLoc {
        PhysLoc {
            mc: 0,
            bank,
            bank_group: bank % 4,
            row,
            col: 0,
        }
    }

    #[test]
    fn oracle_single_cold_access_is_26_cycles() {
        let cfg = GpuConfig::default();
        let r = reference_dram_service(&cfg, &[(0, loc(0, 5), 0)]);
        assert_eq!(r.completions, vec![(0, 26)]);
        assert_eq!(r.row_hits, 0);
        assert_eq!(r.row_misses, 1);
        assert_eq!(r.total_service_cycles(), 26);
    }

    #[test]
    fn oracle_prefers_ready_row_hits() {
        // Mirror of the controller's own FR-FCFS ordering test, decided
        // by the oracle alone.
        let cfg = GpuConfig::default();
        let r = reference_dram_service(
            &cfg,
            &[(0, loc(0, 5), 0), (1, loc(0, 9), 20), (2, loc(0, 5), 20)],
        );
        let pos = |id| r.completions.iter().position(|&(i, _)| i == id);
        assert!(pos(2) < pos(1), "{:?}", r.completions);
    }

    #[test]
    fn oracle_respects_arrival_times() {
        let cfg = GpuConfig::default();
        let r = reference_dram_service(&cfg, &[(0, loc(0, 5), 100)]);
        assert_eq!(r.completions, vec![(0, 126)]);
    }

    #[test]
    fn random_streams_agree_with_the_controller() {
        let mut rng = StdRng::seed_from_u64(0xbeef);
        let cfg = GpuConfig::paper();
        for _ in 0..25 {
            let stream = arb_stream(&mut rng, &cfg, 24);
            let failures = check_dram_case(&cfg, &stream);
            assert!(failures.is_empty(), "{failures:?}");
        }
    }

    #[test]
    fn section_passes() {
        let s = section(1, 16);
        assert_eq!(s.cases, 17);
        assert!(s.passed(), "{:?}", s.failures);
    }
}
