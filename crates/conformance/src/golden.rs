//! Golden-master fixtures: content-hashed result snapshots for
//! paper-default configurations, committed under `tests/goldens/`.
//!
//! Each fixture is a JSON document `{schema, name, hash, payload}` where
//! `hash` is the FNV-1a 64 of the payload's canonical JSON — so a
//! hand-edited or truncated fixture is detected independently of any
//! drift in the simulator. Drift is reported as a field-level diff, and
//! `RCOAL_UPDATE_GOLDENS=1` (or `--update-goldens` on the CLI) rewrites
//! the fixtures after an intentional behaviour change.

use crate::report::SectionReport;
use crate::ConformanceError;
use rcoal_aes::AesGpuKernel;
use rcoal_core::CoalescingPolicy;
use rcoal_experiments::{run_to_value, ExperimentConfig, DEMO_KEY};
use rcoal_gpu_sim::{GpuConfig, GpuSimulator, SimStats};
use rcoal_scenario::fnv1a_64;
use rcoal_scenario::json::{ObjBuilder, Value};
use rcoal_theory::table2;
use std::path::{Path, PathBuf};

/// Schema tag carried by every golden fixture.
pub const GOLDEN_SCHEMA: &str = "rcoal-golden/v1";

/// Seed for every golden workload (arbitrary but frozen: changing it
/// invalidates all fixtures).
const GOLDEN_SEED: u64 = 0x901d_5eed;

/// How one fixture check resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GoldenOutcome {
    /// Fixture exists and the payload matches bit-for-bit.
    Matched,
    /// Fixture exists but the payload differs (diff accompanies this).
    Drifted,
    /// Fixture was missing and has been written (update mode).
    Created,
    /// Fixture differed and has been rewritten (update mode).
    Updated,
}

/// The committed goldens directory: `tests/goldens/` at the workspace
/// root, resolved relative to this crate so it works from any cwd.
pub fn default_goldens_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/goldens")
}

/// Whether the environment requests fixture regeneration
/// (`RCOAL_UPDATE_GOLDENS=1`).
pub fn update_requested() -> bool {
    std::env::var("RCOAL_UPDATE_GOLDENS").as_deref() == Ok("1")
}

fn fixture_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.json"))
}

fn write_fixture(dir: &Path, name: &str, payload: &Value) -> Result<(), ConformanceError> {
    std::fs::create_dir_all(dir)
        .map_err(|e| ConformanceError::new(format!("creating {}: {e}", dir.display())))?;
    let doc = ObjBuilder::new()
        .field("schema", Value::str(GOLDEN_SCHEMA))
        .field("name", Value::str(name))
        .field(
            "hash",
            Value::str(format!("{:016x}", fnv1a_64(payload.to_json().as_bytes()))),
        )
        .field("payload", payload.clone())
        .build();
    let path = fixture_path(dir, name);
    std::fs::write(&path, doc.to_json() + "\n")
        .map_err(|e| ConformanceError::new(format!("writing {}: {e}", path.display())))
}

/// Recursive field-level diff; paths like `rows[3].rho_fss`.
fn diff_values(path: &str, expected: &Value, got: &Value, out: &mut Vec<String>) {
    match (expected, got) {
        (Value::Obj(a), Value::Obj(b)) => {
            for (k, va) in a {
                match b.iter().find(|(kb, _)| kb == k) {
                    Some((_, vb)) => diff_values(&format!("{path}.{k}"), va, vb, out),
                    None => out.push(format!("{path}.{k}: missing in current output")),
                }
            }
            for (k, _) in b {
                if !a.iter().any(|(ka, _)| ka == k) {
                    out.push(format!("{path}.{k}: not present in golden"));
                }
            }
        }
        (Value::Arr(a), Value::Arr(b)) => {
            if a.len() != b.len() {
                out.push(format!("{path}: length {} -> {}", a.len(), b.len()));
            }
            for (i, (va, vb)) in a.iter().zip(b).enumerate() {
                diff_values(&format!("{path}[{i}]"), va, vb, out);
            }
        }
        _ => {
            if expected != got {
                out.push(format!(
                    "{path}: golden {} -> current {}",
                    expected.to_json(),
                    got.to_json()
                ));
            }
        }
    }
}

/// Checks `payload` against the committed fixture `dir/name.json`.
///
/// Returns the outcome plus drift diffs (non-empty only for
/// [`GoldenOutcome::Drifted`]). In update mode, drift and missing
/// fixtures are resolved by rewriting.
///
/// # Errors
///
/// Returns [`ConformanceError`] on I/O failure or a corrupt fixture
/// (bad JSON, wrong schema, or a stored hash that does not match the
/// stored payload).
pub fn check_value(
    dir: &Path,
    name: &str,
    payload: &Value,
    update: bool,
) -> Result<(GoldenOutcome, Vec<String>), ConformanceError> {
    let path = fixture_path(dir, name);
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            if update {
                write_fixture(dir, name, payload)?;
                return Ok((GoldenOutcome::Created, Vec::new()));
            }
            return Err(ConformanceError::new(format!(
                "golden {} is missing; regenerate with RCOAL_UPDATE_GOLDENS=1",
                path.display()
            )));
        }
        Err(e) => {
            return Err(ConformanceError::new(format!(
                "reading {}: {e}",
                path.display()
            )))
        }
    };
    let doc = Value::parse(&text)
        .map_err(|e| ConformanceError::new(format!("{}: {e}", path.display())))?;
    if doc.get("schema").and_then(Value::as_str) != Some(GOLDEN_SCHEMA) {
        return Err(ConformanceError::new(format!(
            "{}: not a {GOLDEN_SCHEMA} document",
            path.display()
        )));
    }
    let stored = doc
        .get("payload")
        .ok_or_else(|| ConformanceError::new(format!("{}: no payload", path.display())))?;
    let stored_hash = doc.get("hash").and_then(Value::as_str).unwrap_or("");
    if stored_hash != format!("{:016x}", fnv1a_64(stored.to_json().as_bytes())) {
        return Err(ConformanceError::new(format!(
            "{}: stored hash does not match stored payload (corrupt or hand-edited fixture)",
            path.display()
        )));
    }
    if stored == payload {
        return Ok((GoldenOutcome::Matched, Vec::new()));
    }
    if update {
        write_fixture(dir, name, payload)?;
        return Ok((GoldenOutcome::Updated, Vec::new()));
    }
    let mut diffs = Vec::new();
    diff_values(name, stored, payload, &mut diffs);
    if diffs.is_empty() {
        // Same tree, different key order — canonical emitters never do this.
        diffs.push(format!("{name}: payload differs structurally"));
    }
    Ok((GoldenOutcome::Drifted, diffs))
}

fn stats_to_value(stats: &SimStats) -> Value {
    ObjBuilder::new()
        .field("total_cycles", Value::u64(stats.total_cycles))
        .field("total_accesses", Value::u64(stats.total_accesses))
        .field("total_requests", Value::u64(stats.total_requests))
        .field(
            "accesses_by_tag",
            Value::Arr(
                stats
                    .accesses_by_tag
                    .iter()
                    .map(|&n| Value::u64(n))
                    .collect(),
            ),
        )
        .field(
            "round_complete_cycle",
            Value::Arr(
                stats
                    .round_complete_cycle
                    .iter()
                    .map(|&n| Value::u64(n))
                    .collect(),
            ),
        )
        .field("num_warps", Value::usize(stats.num_warps))
        .field("row_hit_rate", Value::f64(stats.row_hit_rate))
        .field("mem_latency_sum", Value::u64(stats.mem_latency_sum))
        .field("mshr_merged", Value::u64(stats.mshr_merged))
        .field("l1_hits", Value::u64(stats.l1_hits))
        .field(
            "warp_finish_cycle",
            Value::Arr(
                stats
                    .warp_finish_cycle
                    .iter()
                    .map(|&n| Value::u64(n))
                    .collect(),
            ),
        )
        .build()
}

/// The golden policy set: the paper's headline configurations.
fn golden_policies() -> Result<Vec<(&'static str, CoalescingPolicy)>, ConformanceError> {
    let err = |e| ConformanceError::new(format!("golden policy: {e}"));
    Ok(vec![
        ("baseline", CoalescingPolicy::Baseline),
        ("disabled", CoalescingPolicy::Disabled),
        ("fss_m4", CoalescingPolicy::fss(4).map_err(err)?),
        ("fss_rts_m8", CoalescingPolicy::fss_rts(8).map_err(err)?),
        ("rss_m4", CoalescingPolicy::rss(4).map_err(err)?),
        ("rss_rts_m8", CoalescingPolicy::rss_rts(8).map_err(err)?),
    ])
}

/// Computes every built-in golden payload from the current code.
///
/// Three layers of the result pipeline are pinned: the analytic Table II
/// (`rcoal-theory`), raw `SimStats` of AES launches on the paper machine
/// (`rcoal-gpu-sim`), and full experiment run documents
/// (`rcoal-experiments`, the `rcoal-run/v1` encoding).
///
/// # Errors
///
/// Returns [`ConformanceError`] when a golden workload fails to run.
pub fn builtin_goldens() -> Result<Vec<(String, Value)>, ConformanceError> {
    let mut goldens = Vec::new();

    // 1. Table II from the analytic model.
    let rows: Vec<Value> = table2()
        .iter()
        .map(|r| {
            ObjBuilder::new()
                .field("m", Value::usize(r.m))
                .field("rho_fss", Value::f64(r.rho_fss))
                .field("rho_fss_rts", Value::f64(r.rho_fss_rts))
                .field("rho_rss_rts", Value::f64(r.rho_rss_rts))
                .field("s_fss", Value::f64(r.s_fss))
                .field("s_fss_rts", Value::f64(r.s_fss_rts))
                .field("s_rss_rts", Value::f64(r.s_rss_rts))
                .build()
        })
        .collect();
    goldens.push((
        "theory_table2".to_string(),
        ObjBuilder::new().field("rows", Value::Arr(rows)).build(),
    ));

    // 2. Cycle-level SimStats for AES launches on the paper machine.
    let lines = rcoal_experiments::random_plaintexts(1, 128, GOLDEN_SEED)
        .pop()
        .ok_or_else(|| ConformanceError::new("plaintext generation returned nothing"))?;
    let sim = GpuSimulator::new(GpuConfig::paper());
    let mut per_policy = ObjBuilder::new();
    for (name, policy) in golden_policies()? {
        let kernel = AesGpuKernel::new(&DEMO_KEY, lines.clone(), GpuConfig::paper().warp_size);
        let stats = sim
            .run(&kernel, policy, GOLDEN_SEED)
            .map_err(|e| ConformanceError::new(format!("golden sim {name}: {e}")))?;
        per_policy = per_policy.field(name, stats_to_value(&stats));
    }
    goldens.push(("sim_stats_paper_aes".to_string(), per_policy.build()));

    // 3. Cycle-level SimStats for every non-AES registry workload under
    // the subwarp defenses (AES is already pinned by golden 2). One
    // fixture per workload keeps diffs local to the kernel that drifted.
    for workload in rcoal_workload::registry() {
        if workload.name() == "aes" {
            continue;
        }
        let key = rcoal_experiments::demo_key_for(*workload);
        let mut per_policy = ObjBuilder::new();
        for (name, policy) in [
            (
                "fss_m8",
                CoalescingPolicy::fss(8)
                    .map_err(|e| ConformanceError::new(format!("golden policy: {e}")))?,
            ),
            (
                "rss_m8",
                CoalescingPolicy::rss(8)
                    .map_err(|e| ConformanceError::new(format!("golden policy: {e}")))?,
            ),
        ] {
            let kernel = workload.build_kernel(&key, lines.clone(), GpuConfig::paper().warp_size);
            let stats = sim.run(&kernel, policy, GOLDEN_SEED).map_err(|e| {
                ConformanceError::new(format!("golden sim {}/{name}: {e}", workload.name()))
            })?;
            per_policy = per_policy.field(name, stats_to_value(&stats));
        }
        goldens.push((
            format!("sim_stats_paper_{}", workload.name()),
            per_policy.build(),
        ));
    }

    // 4. Full experiment run documents (the figure-row inputs).
    let mut runs = ObjBuilder::new();
    for (name, policy) in [
        ("baseline", CoalescingPolicy::Baseline),
        (
            "rss_rts_m8",
            CoalescingPolicy::rss_rts(8)
                .map_err(|e| ConformanceError::new(format!("golden policy: {e}")))?,
        ),
    ] {
        let mut cfg = ExperimentConfig::new(policy, 3, 32);
        cfg.seed = GOLDEN_SEED;
        cfg.timing = true;
        let data = cfg
            .run()
            .map_err(|e| ConformanceError::new(format!("golden experiment {name}: {e}")))?;
        let doc =
            run_to_value(&data).ok_or_else(|| ConformanceError::new("run document unavailable"))?;
        runs = runs.field(name, doc);
    }
    goldens.push(("experiment_runs".to_string(), runs.build()));

    Ok(goldens)
}

/// Golden section: every built-in golden checked (or rewritten) against
/// `dir`.
///
/// # Errors
///
/// Returns [`ConformanceError`] on I/O failure, corrupt fixtures, or a
/// missing fixture outside update mode.
pub fn section(dir: &Path, update: bool) -> Result<SectionReport, ConformanceError> {
    let mut section = SectionReport::new("golden masters");
    for (name, payload) in builtin_goldens()? {
        section.cases += 1;
        let (outcome, diffs) = check_value(dir, &name, &payload, update)?;
        if outcome == GoldenOutcome::Drifted {
            section.failures.push(format!(
                "golden {name} drifted ({} field(s)); rerun with RCOAL_UPDATE_GOLDENS=1 \
                 if the change is intentional",
                diffs.len()
            ));
            section.failures.extend(diffs.into_iter().take(6));
        }
    }
    Ok(section)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rcoal-golden-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample() -> Value {
        ObjBuilder::new()
            .field("x", Value::u64(7))
            .field("rows", Value::Arr(vec![Value::u64(1), Value::u64(2)]))
            .build()
    }

    #[test]
    fn create_match_drift_update_cycle() {
        let dir = scratch_dir("cycle");
        let v = sample();
        // Missing without update mode is an error, not silent drift.
        assert!(check_value(&dir, "t", &v, false).is_err());
        assert_eq!(
            check_value(&dir, "t", &v, true).unwrap().0,
            GoldenOutcome::Created
        );
        assert_eq!(
            check_value(&dir, "t", &v, false).unwrap().0,
            GoldenOutcome::Matched
        );
        let changed = ObjBuilder::new()
            .field("x", Value::u64(8))
            .field("rows", Value::Arr(vec![Value::u64(1)]))
            .build();
        let (outcome, diffs) = check_value(&dir, "t", &changed, false).unwrap();
        assert_eq!(outcome, GoldenOutcome::Drifted);
        assert!(diffs.iter().any(|d| d.contains("t.x")), "{diffs:?}");
        assert!(diffs.iter().any(|d| d.contains("length")), "{diffs:?}");
        assert_eq!(
            check_value(&dir, "t", &changed, true).unwrap().0,
            GoldenOutcome::Updated
        );
        assert_eq!(
            check_value(&dir, "t", &changed, false).unwrap().0,
            GoldenOutcome::Matched
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_fixture_is_rejected() {
        let dir = scratch_dir("corrupt");
        let v = sample();
        check_value(&dir, "t", &v, true).unwrap();
        let path = dir.join("t.json");
        let tampered = std::fs::read_to_string(&path)
            .unwrap()
            .replace("\"x\":7", "\"x\":9");
        std::fs::write(&path, tampered).unwrap();
        let err = check_value(&dir, "t", &v, false).unwrap_err();
        assert!(err.to_string().contains("hash"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn builtin_goldens_are_deterministic() {
        let a = builtin_goldens().unwrap();
        let b = builtin_goldens().unwrap();
        // table2 + AES sim stats + one fixture per non-AES workload +
        // experiment runs.
        assert_eq!(a.len(), 3 + rcoal_workload::registry().len() - 1);
        for ((na, va), (nb, vb)) in a.iter().zip(&b) {
            assert_eq!(na, nb);
            assert_eq!(va.to_json(), vb.to_json(), "golden {na} not deterministic");
        }
    }

    #[test]
    fn table2_golden_has_six_rows() {
        let goldens = builtin_goldens().unwrap();
        let (_, table) = &goldens[0];
        assert_eq!(table.get("rows").and_then(Value::as_arr).unwrap().len(), 6);
    }
}
