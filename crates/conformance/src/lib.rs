//! # rcoal-conformance — validating the validator
//!
//! RCoal's security argument rests on the simulator computing
//! coalesced-access counts and DRAM service times exactly as the paper's
//! model prescribes; a silent off-by-one in subwarp partitioning would
//! change every figure *and* the Table II validation without failing a
//! single behavioural test. This crate makes the evaluation harness
//! itself falsifiable, three independent ways:
//!
//! 1. **Differential oracles** ([`oracle`], [`dram_oracle`]) —
//!    straight-line, queueing-free reference implementations of the
//!    coalescer (subwarp partition → unique-block count) and of DRAM
//!    service timing (FR-FCFS row-hit/miss accounting from first
//!    principles), checked request-for-request against the cycle-level
//!    simulator across a seeded corpus of randomized scenarios.
//! 2. **Golden-master fixtures** ([`golden`]) — content-hashed
//!    `SimStats` / run-result snapshots for paper-default configurations
//!    committed as JSON under `tests/goldens/`, with drift reported as a
//!    field-level diff and an explicit `RCOAL_UPDATE_GOLDENS=1`
//!    regeneration path.
//! 3. **Invariant checkers** ([`checker`]) — a [`SimChecker`] consuming
//!    the existing `SimTelemetry` event stream and asserting
//!    conservation (every issued memory request serviced exactly once),
//!    cycle monotonicity, subwarp-partition well-formedness under every
//!    policy, and RNG-stream isolation (timing-irrelevant code never
//!    advances the security RNG).
//!
//! The [`strategies`] module is the shared corpus: seeded,
//! proptest-style generators over policies, address streams, kernel
//! traces, and `rcoal-scenario` documents, so every crate's property
//! tests can draw from one input space. [`run_suite`] ties everything
//! into the report printed by `rcoal-cli conformance`.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::fmt;

pub mod checker;
pub mod dram_oracle;
pub mod golden;
pub mod lockstep;
pub mod oracle;
pub mod report;
pub mod strategies;
pub mod streaming;

pub use checker::{CheckedRun, CountingRng, SimChecker};
pub use dram_oracle::{check_dram_case, reference_dram_service, DramOracleResult};
pub use golden::{
    builtin_goldens, check_value, default_goldens_dir, update_requested, GoldenOutcome,
    GOLDEN_SCHEMA,
};
pub use lockstep::{check_lockstep_case, idle_corpus};
pub use oracle::{check_sim_case, reference_coalesce, RefAccess};
pub use report::{SectionReport, SuiteReport};
pub use strategies::{policy_pool, policy_pool_for, scenario_corpus, sim_corpus, SimScenario};

/// Failure of the conformance machinery itself (as opposed to a
/// conformance *violation*, which the suite reports and keeps running).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConformanceError {
    msg: String,
}

impl ConformanceError {
    /// Wraps a message.
    pub fn new(msg: impl Into<String>) -> Self {
        ConformanceError { msg: msg.into() }
    }
}

impl fmt::Display for ConformanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "conformance error: {}", self.msg)
    }
}

impl std::error::Error for ConformanceError {}

/// Options for [`run_suite`].
#[derive(Debug, Clone)]
pub struct SuiteOptions {
    /// Number of simulator differential scenarios (the acceptance floor
    /// is 200; the default stays above it).
    pub cases: usize,
    /// Master seed for every generator in the suite.
    pub seed: u64,
    /// Directory holding the golden fixtures.
    pub goldens_dir: std::path::PathBuf,
    /// Rewrite goldens instead of diffing against them.
    pub update_goldens: bool,
}

impl Default for SuiteOptions {
    fn default() -> Self {
        SuiteOptions {
            cases: 240,
            seed: 0xc0f0_24a1,
            goldens_dir: golden::default_goldens_dir(),
            update_goldens: golden::update_requested(),
        }
    }
}

/// Runs the full conformance suite: both differential oracles over the
/// seeded corpus, the invariant checker, scenario-document round-trips,
/// and the golden masters.
///
/// Violations are collected into the returned [`SuiteReport`]; only
/// infrastructure failures (e.g. an unwritable goldens directory) abort.
///
/// # Errors
///
/// Returns [`ConformanceError`] when the suite cannot run at all.
pub fn run_suite(opts: &SuiteOptions) -> Result<SuiteReport, ConformanceError> {
    let sections = vec![
        oracle::unit_section(opts.seed),
        oracle::sim_section(opts.seed, opts.cases)?,
        dram_oracle::section(opts.seed, (opts.cases / 4).max(16)),
        checker::section(opts.seed, (opts.cases / 10).max(12))?,
        strategies::scenario_section(opts.seed, 64),
        lockstep::section(opts.seed, (opts.cases / 4).max(24)),
        streaming::section(opts.seed, opts.cases / 2)?,
        golden::section(&opts.goldens_dir, opts.update_goldens)?,
    ];
    Ok(SuiteReport { sections })
}
