//! The event-core lockstep differential.
//!
//! The skip-ahead simulator core jumps the clock over cycles it proves
//! are dead; an event-queue bug (a component under-reporting its next
//! state change) would silently diverge *only* on workloads where the
//! skip distance is large. This section generates exactly those
//! workloads — idle-heavy machines with huge interconnect latencies,
//! slow DRAM, single warps, and serialized crossbars — and runs each
//! one through both [`GpuSimulator::run_instrumented`] (event-driven)
//! and [`GpuSimulator::run_instrumented_reference`] (the retained
//! cycle-accurate loop), demanding bit-identical results: the full
//! `Result<SimStats, SimError>` (including stall diagnostics and their
//! event trails), the telemetry profile, and the complete event stream
//! with cycle stamps.

use crate::report::SectionReport;
use crate::strategies::{arb_trace, policy_pool_for, SimScenario};
use rcoal_gpu_sim::{FaultPlan, GpuConfig, GpuSimulator, LaunchPolicy, ReplyJitter, SimTelemetry};
use rcoal_rng::{Rng, SeedableRng, StdRng};

/// Event capacity for lockstep telemetry rings: big enough that the
/// tiny idle kernels never evict, so the full streams are compared.
const LOCKSTEP_EVENT_CAPACITY: usize = 1 << 14;

/// The idle-heavy corpus: `n` scenarios engineered so that most core
/// cycles are dead ticks (maximal skip-ahead distance). Cycling through
/// the corpus varies, per case:
///
/// * interconnect latency from tens to thousands of cycles;
/// * DRAM timing scaled up to ~16× the paper values, plus a
///   faster-than-core memory clock slice (multiple mem ticks per core
///   cycle — the catch-up loop's fast-forward path);
/// * one to two warps only, so schedulers mostly starve;
/// * serialized crossbars (injection/ejection rate 1);
/// * a small-watchdog slice where the starvation backstop fires inside
///   a skippable gap.
pub fn idle_corpus(seed: u64, n: usize) -> Vec<SimScenario> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1d7e);
    let warp_sizes = [4usize, 8];
    let pools: Vec<_> = warp_sizes.iter().map(|&w| policy_pool_for(w)).collect();
    (0..n)
        .map(|id| {
            let wi = id % warp_sizes.len();
            let warp_size = warp_sizes[wi];
            let pool = &pools[wi];
            let policy = pool[(id / warp_sizes.len()) % pool.len()];
            let mut gpu = GpuConfig::tiny();
            gpu.warp_size = warp_size;
            gpu.icnt_latency = rng.gen_range(50u32..2_000);
            gpu.icnt_injection_rate = 1;
            gpu.icnt_ejection_rate = 1;
            // Slow DRAM: scale every timing parameter so completions
            // land hundreds of mem ticks out.
            let scale = rng.gen_range(2u32..16);
            gpu.dram_timing.t_cl *= scale;
            gpu.dram_timing.t_rp *= scale;
            gpu.dram_timing.t_rc *= scale;
            gpu.dram_timing.t_ras *= scale;
            gpu.dram_timing.t_rcd *= scale;
            gpu.burst_cycles *= scale;
            if id % 7 == 3 {
                // Memory clock faster than core: several mem ticks per
                // visited core cycle, exercising the catch-up loop's
                // fast-forward against multi-tick windows.
                gpu.core_clock_mhz = 700;
                gpu.mem_clock_mhz = 2_000;
            }
            if id % 5 == 4 {
                // The starvation backstop must fire at the identical
                // cycle whether the gap to it was walked or skipped.
                gpu.watchdog_window = rng.gen_range(40u64..200);
            }
            let num_warps = if id % 3 == 0 { 2 } else { 1 };
            let traces = (0..num_warps)
                .map(|_| arb_trace(&mut rng, warp_size))
                .collect();
            SimScenario {
                id,
                policy,
                gpu,
                traces,
                seed: rng.gen_range(0u64..u64::MAX),
            }
        })
        .collect()
}

/// The fault plan a lockstep case runs under, cycled by id: mostly
/// fault-free, with slices of reply jitter and drop/retransmit (both
/// skip-safe — their RNG streams must replay exactly across skips) and
/// of backpressure (which must force the event core into bit-identical
/// single-stepping).
fn plan_for(id: usize) -> FaultPlan {
    match id % 6 {
        1 => FaultPlan::seeded(id as u64).with_jitter(ReplyJitter::Uniform {
            min: 100,
            max: 1_000,
        }),
        3 => FaultPlan::seeded(id as u64).with_drop(0.3, 4),
        5 => FaultPlan::seeded(id as u64).with_backpressure(0.02, 64),
        _ => FaultPlan::none(),
    }
}

/// Runs one scenario through both cores in lockstep and returns
/// human-readable divergences (empty = bit-identical).
pub fn check_lockstep_case(s: &SimScenario, plan: &FaultPlan) -> Vec<String> {
    let mut failures = Vec::new();
    let kernel = s.kernel();
    let sim = GpuSimulator::new(s.gpu.clone());
    let launch = LaunchPolicy::Uniform(s.policy);
    let mut tel_event = SimTelemetry::with_event_capacity(LOCKSTEP_EVENT_CAPACITY);
    let mut tel_ref = SimTelemetry::with_event_capacity(LOCKSTEP_EVENT_CAPACITY);
    let event = sim.run_instrumented(&kernel, launch, s.seed, plan, &mut tel_event);
    let reference = sim.run_instrumented_reference(&kernel, launch, s.seed, plan, &mut tel_ref);
    if event != reference {
        failures.push(format!(
            "scenario {} ({}): results diverge: event {:?} vs reference {:?}",
            s.id, s.policy, event, reference
        ));
    }
    if tel_event.profile != tel_ref.profile {
        failures.push(format!(
            "scenario {} ({}): telemetry profiles diverge",
            s.id, s.policy
        ));
    }
    let ev: Vec<_> = tel_event.events.events().collect();
    let rv: Vec<_> = tel_ref.events.events().collect();
    if ev != rv {
        let first = ev
            .iter()
            .zip(&rv)
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| ev.len().min(rv.len()));
        failures.push(format!(
            "scenario {} ({}): event streams diverge at index {first} ({} vs {} events)",
            s.id,
            s.policy,
            ev.len(),
            rv.len()
        ));
    }
    failures
}

/// The lockstep section over the idle-heavy corpus.
pub fn section(seed: u64, cases: usize) -> SectionReport {
    let mut section = SectionReport::new("event-core lockstep");
    for s in &idle_corpus(seed, cases) {
        section.cases += 1;
        section
            .failures
            .extend(check_lockstep_case(s, &plan_for(s.id)));
    }
    section
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_corpus_is_deterministic() {
        let a = idle_corpus(3, 24);
        let b = idle_corpus(3, 24);
        assert_eq!(a.len(), 24);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.policy, y.policy);
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.traces, y.traces);
            assert_eq!(x.gpu.icnt_latency, y.gpu.icnt_latency);
        }
    }

    #[test]
    fn idle_corpus_is_actually_idle_heavy() {
        let corpus = idle_corpus(3, 24);
        assert!(corpus.iter().all(|s| s.gpu.icnt_injection_rate == 1));
        assert!(corpus.iter().any(|s| s.gpu.icnt_latency > 500));
        assert!(corpus
            .iter()
            .any(|s| s.gpu.mem_clock_mhz > s.gpu.core_clock_mhz));
        assert!(corpus.iter().any(|s| s.gpu.watchdog_window < 1_000));
        assert!(corpus.iter().all(|s| s.traces.len() <= 2));
    }

    #[test]
    fn corpus_exercises_every_fault_slice() {
        let plans: Vec<FaultPlan> = (0..12).map(plan_for).collect();
        assert!(plans.iter().any(|p| p.perturbs_per_cycle()));
        assert!(plans.iter().any(|p| !p.is_active()));
        assert!(
            plans
                .iter()
                .any(|p| p.is_active() && !p.perturbs_per_cycle()),
            "skip-safe active plans must be covered"
        );
    }

    #[test]
    fn lockstep_section_is_clean() {
        let s = section(0xc0f0_24a1, 36);
        assert_eq!(s.cases, 36);
        assert!(s.passed(), "{:?}", s.failures);
    }
}
