//! The coalescer differential oracle.
//!
//! [`reference_coalesce`] is a straight-line, queueing-free
//! reimplementation of the paper's subwarp coalescing semantics: within
//! each subwarp, active lanes touching the same `block_size`-aligned
//! block merge into one access; nothing merges across subwarps. It is
//! deliberately structured nothing like `rcoal_core::Coalescer` (a
//! set-keyed map instead of an ordered scan-and-merge) so the two can
//! only agree by computing the same function.
//!
//! Two differential surfaces:
//!
//! * **unit** — oracle vs. `Coalescer::coalesce`/`count_accesses` on
//!   random assignments and address vectors;
//! * **simulator** — oracle vs. the cycle-level sim: replay the launch's
//!   per-warp assignment draws from the seed, predict every load's
//!   access count, and compare against `SimStats` totals, per-tag
//!   accounting, *and* the per-load `coalescer.load` telemetry events.

use crate::report::SectionReport;
use crate::strategies::{
    arb_addrs, policy_pool, sim_corpus, variant_key, SimScenario, ALL_VARIANTS,
};
use rcoal_core::{Coalescer, SubwarpAssignment};
use rcoal_gpu_sim::{FaultPlan, GpuSimulator, LaunchPolicy, SimTelemetry, TraceInstr};
use rcoal_rng::{SeedableRng, StdRng};
use std::collections::BTreeMap;

/// One reference access: a `(subwarp, block)` pair touched by at least
/// one active lane, with the set of lanes it serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefAccess {
    /// Subwarp that issued the access.
    pub sid: u8,
    /// Block-aligned address.
    pub block_addr: u64,
    /// Bit `i` set iff lane `i` is served by this access.
    pub lane_mask: u64,
}

/// Straight-line reference coalescing: the unique `(subwarp, block)`
/// pairs among active lanes, returned sorted by `(sid, block_addr)`.
pub fn reference_coalesce(
    assignment: &SubwarpAssignment,
    addrs: &[Option<u64>],
    block_size: u64,
) -> Vec<RefAccess> {
    let mut merged: BTreeMap<(u8, u64), u64> = BTreeMap::new();
    for (lane, addr) in addrs.iter().enumerate().take(assignment.warp_size()) {
        if let Some(addr) = addr {
            // `addr - addr % bs` rather than the bitmask the production
            // coalescer uses: same function, different derivation.
            let block = addr - addr % block_size;
            *merged.entry((assignment.sid(lane), block)).or_insert(0) |= 1u64 << lane;
        }
    }
    merged
        .into_iter()
        .map(|((sid, block_addr), lane_mask)| RefAccess {
            sid,
            block_addr,
            lane_mask,
        })
        .collect()
}

/// Compares the oracle against the production coalescer on one case.
/// Returns human-readable mismatches (empty = agreement).
pub fn check_coalescer_case(
    coalescer: &Coalescer,
    assignment: &SubwarpAssignment,
    addrs: &[Option<u64>],
) -> Vec<String> {
    let mut failures = Vec::new();
    let expected = reference_coalesce(assignment, addrs, coalescer.block_size());
    let result = coalescer.coalesce(assignment, addrs);
    let mut got: Vec<RefAccess> = result
        .accesses()
        .iter()
        .map(|a| RefAccess {
            sid: a.sid,
            block_addr: a.block_addr,
            lane_mask: a.lane_mask,
        })
        .collect();
    got.sort_by_key(|a| (a.sid, a.block_addr));
    if got != expected {
        failures.push(format!(
            "coalesce() disagrees with oracle: got {} access(es), expected {}",
            got.len(),
            expected.len()
        ));
    }
    let counted = coalescer.count_accesses(assignment, addrs);
    if counted != expected.len() {
        failures.push(format!(
            "count_accesses() = {counted} but oracle found {}",
            expected.len()
        ));
    }
    failures
}

/// Unit differential: oracle vs. `Coalescer` over the policy pool with
/// random assignments and address vectors.
pub fn unit_section(seed: u64) -> SectionReport {
    let mut section = SectionReport::new("coalescer oracle (unit)");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0041);
    let coalescer = Coalescer::new();
    for policy in policy_pool() {
        for case in 0..8 {
            section.cases += 1;
            let addrs = arb_addrs(&mut rng, 32, 4096);
            match policy.assignment(32, &mut rng) {
                Ok(assignment) => {
                    for f in check_coalescer_case(&coalescer, &assignment, &addrs) {
                        section.failures.push(format!("{policy} case {case}: {f}"));
                    }
                }
                Err(e) => section
                    .failures
                    .push(format!("{policy} case {case}: assignment failed: {e}")),
            }
        }
    }
    section
}

/// What the oracle predicts for one simulated launch.
struct SimPrediction {
    /// `(num_subwarps, accesses)` per executed load, unordered.
    per_load: Vec<(u64, u64)>,
    total_accesses: u64,
    total_requests: u64,
    by_tag: Vec<u64>,
}

/// Replays the launch's per-warp assignment draws (one draw per warp,
/// warp order — the simulator's §IV-D contract) and predicts every
/// load with the reference coalescer.
fn predict(s: &SimScenario) -> Result<SimPrediction, String> {
    let mut rng = StdRng::seed_from_u64(s.seed);
    let mut p = SimPrediction {
        per_load: Vec::new(),
        total_accesses: 0,
        total_requests: 0,
        by_tag: vec![0; 8],
    };
    for trace in &s.traces {
        let width = s.gpu.warp_size;
        let assignment = s
            .policy
            .assignment(width, &mut rng)
            .map_err(|e| format!("assignment replay failed: {e}"))?;
        for instr in trace.instrs() {
            if let TraceInstr::Load { addrs, tag } = instr {
                let accesses = reference_coalesce(&assignment, addrs, s.gpu.block_size);
                let n = accesses.len() as u64;
                p.per_load.push((assignment.num_subwarps() as u64, n));
                p.total_accesses += n;
                p.total_requests += addrs.iter().filter(|a| a.is_some()).count() as u64;
                if let Some(slot) = p.by_tag.get_mut(usize::from(*tag)) {
                    *slot += n;
                }
            }
        }
    }
    Ok(p)
}

/// Full differential for one scenario: run the cycle-level simulator
/// instrumented and compare totals, per-tag accounting, and the
/// per-load event stream against the oracle's prediction.
pub fn check_sim_case(s: &SimScenario) -> Vec<String> {
    let mut failures = Vec::new();
    let p = match predict(s) {
        Ok(p) => p,
        Err(e) => return vec![format!("scenario {}: {e}", s.id)],
    };
    let instrs: usize = s.traces.iter().map(|t| t.instrs().len()).sum();
    // Size the ring so nothing is evicted: one event per load + reply +
    // round mark + warp finish, plus launch/done/backpressure slack.
    let capacity = instrs * 2 + p.total_accesses as usize + s.traces.len() + 64;
    let mut tel = SimTelemetry::with_event_capacity(capacity);
    let kernel = s.kernel();
    let stats = match GpuSimulator::new(s.gpu.clone()).run_instrumented(
        &kernel,
        LaunchPolicy::Uniform(s.policy),
        s.seed,
        &FaultPlan::none(),
        &mut tel,
    ) {
        Ok(stats) => stats,
        Err(e) => return vec![format!("scenario {} ({}): sim failed: {e}", s.id, s.policy)],
    };
    if tel.events.dropped() > 0 {
        failures.push(format!(
            "scenario {}: event ring dropped {} event(s); capacity estimate too small",
            s.id,
            tel.events.dropped()
        ));
    }
    if stats.total_accesses != p.total_accesses {
        failures.push(format!(
            "scenario {} ({}): total_accesses {} != oracle {}",
            s.id, s.policy, stats.total_accesses, p.total_accesses
        ));
    }
    if stats.total_requests != p.total_requests {
        failures.push(format!(
            "scenario {} ({}): total_requests {} != oracle {}",
            s.id, s.policy, stats.total_requests, p.total_requests
        ));
    }
    for (tag, &expected) in p.by_tag.iter().enumerate() {
        let got = stats.accesses_for_tag(tag as u16);
        if got != expected {
            failures.push(format!(
                "scenario {} ({}): tag {tag} accesses {got} != oracle {expected}",
                s.id, s.policy
            ));
        }
    }
    // Request-for-request: every executed load's (num_subwarps, count)
    // must match the oracle's prediction for that load. Issue order
    // across SMs is scheduler-dependent, so compare as multisets.
    let mut got: Vec<(u64, u64)> = tel
        .events
        .events()
        .filter(|e| e.component == "coalescer" && e.code == "load")
        .map(|e| (e.a, e.b))
        .collect();
    let mut expected = p.per_load.clone();
    got.sort_unstable();
    expected.sort_unstable();
    if got != expected {
        failures.push(format!(
            "scenario {} ({}): per-load events diverge from oracle ({} vs {} loads)",
            s.id,
            s.policy,
            got.len(),
            expected.len()
        ));
    }
    failures
}

/// Simulator differential over the seeded corpus, with variant-coverage
/// enforcement (every `CoalescingPolicy` variant must appear).
pub fn sim_section(seed: u64, cases: usize) -> Result<SectionReport, crate::ConformanceError> {
    let mut section = SectionReport::new("coalescer oracle (simulator)");
    let corpus = sim_corpus(seed ^ 0x51ca, cases);
    let mut covered: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
    for s in &corpus {
        section.cases += 1;
        covered.insert(variant_key(&s.policy));
        section.failures.extend(check_sim_case(s));
    }
    if cases >= crate::strategies::FULL_COVERAGE_CASES {
        for v in ALL_VARIANTS {
            if !covered.contains(v) {
                section
                    .failures
                    .push(format!("corpus never exercised policy variant {v:?}"));
            }
        }
    }
    Ok(section)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcoal_core::CoalescingPolicy;

    #[test]
    fn oracle_matches_figure_2_example() {
        // Paper Figure 2: four lanes, middle two sharing a block.
        let addrs = [Some(0u64), Some(64), Some(96), Some(128)];
        let one = SubwarpAssignment::single(4).unwrap();
        assert_eq!(reference_coalesce(&one, &addrs, 64).len(), 3);
        let two = SubwarpAssignment::in_order(&[2, 2]).unwrap();
        assert_eq!(reference_coalesce(&two, &addrs, 64).len(), 4);
    }

    #[test]
    fn oracle_lane_masks_partition_active_lanes() {
        let mut rng = StdRng::seed_from_u64(5);
        let policy = CoalescingPolicy::rss_rts(4).unwrap();
        for _ in 0..50 {
            let addrs = arb_addrs(&mut rng, 32, 4096);
            let a = policy.assignment(32, &mut rng).unwrap();
            let refs = reference_coalesce(&a, &addrs, 64);
            let mut covered = 0u64;
            for r in &refs {
                assert_eq!(covered & r.lane_mask, 0);
                covered |= r.lane_mask;
            }
            let active: u64 = addrs
                .iter()
                .enumerate()
                .filter(|(_, a)| a.is_some())
                .map(|(i, _)| 1u64 << i)
                .sum();
            assert_eq!(covered, active);
        }
    }

    #[test]
    fn unit_section_is_clean() {
        let s = unit_section(77);
        assert!(s.cases >= 100);
        assert!(s.passed(), "{:?}", s.failures);
    }

    #[test]
    fn empty_loads_predict_zero_accesses() {
        let a = SubwarpAssignment::single(8).unwrap();
        let addrs = vec![None; 8];
        assert!(reference_coalesce(&a, &addrs, 64).is_empty());
    }
}
