//! Suite report types: per-section case counts and collected violations,
//! rendered as the `rcoal-cli conformance` output.

use std::fmt;

/// One section of the conformance suite (e.g. "dram oracle").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionReport {
    /// Section name as printed in the report.
    pub name: String,
    /// Number of checked cases.
    pub cases: usize,
    /// Human-readable violations; empty when the section passed.
    pub failures: Vec<String>,
}

impl SectionReport {
    /// A section with no findings yet.
    pub fn new(name: impl Into<String>) -> Self {
        SectionReport {
            name: name.into(),
            cases: 0,
            failures: Vec::new(),
        }
    }

    /// Whether the section found no violations.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The full suite outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuiteReport {
    /// Sections in execution order.
    pub sections: Vec<SectionReport>,
}

impl SuiteReport {
    /// Whether every section passed.
    pub fn passed(&self) -> bool {
        self.sections.iter().all(SectionReport::passed)
    }

    /// Total cases checked across sections.
    pub fn total_cases(&self) -> usize {
        self.sections.iter().map(|s| s.cases).sum()
    }

    /// Total violations across sections.
    pub fn total_failures(&self) -> usize {
        self.sections.iter().map(|s| s.failures.len()).sum()
    }
}

impl fmt::Display for SuiteReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.sections {
            let verdict = if s.passed() { "ok" } else { "FAIL" };
            writeln!(f, "{verdict:>4}  {:<28} {:>5} case(s)", s.name, s.cases)?;
            // Cap the echoed violations so a systematic failure stays
            // readable; the count line above reports the full extent.
            for failure in s.failures.iter().take(8) {
                writeln!(f, "        - {failure}")?;
            }
            if s.failures.len() > 8 {
                writeln!(f, "        ... and {} more", s.failures.len() - 8)?;
            }
        }
        write!(
            f,
            "conformance: {} case(s), {} violation(s) -> {}",
            self.total_cases(),
            self.total_failures(),
            if self.passed() { "PASS" } else { "FAIL" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_aggregates_and_formats() {
        let mut ok = SectionReport::new("alpha");
        ok.cases = 3;
        let mut bad = SectionReport::new("beta");
        bad.cases = 2;
        bad.failures.push("case 1: mismatch".into());
        let suite = SuiteReport {
            sections: vec![ok, bad],
        };
        assert!(!suite.passed());
        assert_eq!(suite.total_cases(), 5);
        assert_eq!(suite.total_failures(), 1);
        let text = suite.to_string();
        assert!(text.contains("alpha"));
        assert!(text.contains("FAIL"));
        assert!(text.contains("case 1: mismatch"));
    }

    #[test]
    fn long_failure_lists_are_capped_in_display() {
        let mut s = SectionReport::new("gamma");
        s.cases = 20;
        for i in 0..20 {
            s.failures.push(format!("violation {i}"));
        }
        let suite = SuiteReport { sections: vec![s] };
        let text = suite.to_string();
        assert!(text.contains("... and 12 more"));
    }
}
