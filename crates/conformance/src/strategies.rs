//! The shared scenario corpus: seeded, proptest-style generators over
//! policies, address streams, kernel traces, and `rcoal-scenario`
//! documents.
//!
//! Every conformance section (and any crate's property tests) draws
//! from these generators, so the whole workspace exercises one input
//! space and failures reproduce from `(generator, seed, index)` alone.

use crate::report::SectionReport;
use rcoal_core::{CoalescingPolicy, NumSubwarps, SizeDistribution};
use rcoal_gpu_sim::{GpuConfig, TraceInstr, TraceKernel, WarpTrace};
use rcoal_rng::{Rng, SeedableRng, StdRng};
use rcoal_scenario::Scenario;

/// Stable key identifying a policy *variant* (mechanism + distribution,
/// ignoring the subwarp count) — used to assert corpus coverage.
pub fn variant_key(policy: &CoalescingPolicy) -> &'static str {
    match policy {
        CoalescingPolicy::Baseline => "baseline",
        CoalescingPolicy::Disabled => "disabled",
        CoalescingPolicy::Fss { .. } => "fss",
        CoalescingPolicy::Rss {
            dist: SizeDistribution::Skewed,
            ..
        } => "rss-skewed",
        CoalescingPolicy::Rss {
            dist: SizeDistribution::Normal,
            ..
        } => "rss-normal",
        CoalescingPolicy::FssRts { .. } => "fss-rts",
        CoalescingPolicy::RssRts { .. } => "rss-rts",
    }
}

/// Every policy-variant key a covering corpus must touch.
pub const ALL_VARIANTS: [&str; 7] = [
    "baseline",
    "disabled",
    "fss",
    "rss-skewed",
    "rss-normal",
    "fss-rts",
    "rss-rts",
];

/// Deterministic policy pool for a `warp_size`-thread warp covering
/// every [`CoalescingPolicy`] variant, including both RSS size
/// distributions, with a spread of valid subwarp counts.
pub fn policy_pool_for(warp_size: usize) -> Vec<CoalescingPolicy> {
    let mut pool = vec![CoalescingPolicy::Baseline, CoalescingPolicy::Disabled];
    let mut k = 1usize;
    while k <= warp_size {
        if warp_size.is_multiple_of(k) {
            if let Ok(m) = NumSubwarps::new(k, warp_size) {
                pool.push(CoalescingPolicy::Fss { num_subwarps: m });
                pool.push(CoalescingPolicy::FssRts { num_subwarps: m });
            }
        }
        k *= 2;
    }
    for m in [1usize, 2, 3, warp_size / 2, warp_size] {
        if let Ok(m) = NumSubwarps::new_unaligned(m, warp_size) {
            pool.push(CoalescingPolicy::Rss {
                num_subwarps: m,
                dist: SizeDistribution::Skewed,
            });
            pool.push(CoalescingPolicy::Rss {
                num_subwarps: m,
                dist: SizeDistribution::Normal,
            });
            pool.push(CoalescingPolicy::RssRts {
                num_subwarps: m,
                dist: SizeDistribution::Skewed,
            });
        }
    }
    pool
}

/// [`policy_pool_for`] over the paper's 32-thread warp.
pub fn policy_pool() -> Vec<CoalescingPolicy> {
    policy_pool_for(32)
}

/// One warp's worth of optional addresses: `warp_size` lanes, ~4/5
/// active, spread over `addr_space` bytes.
pub fn arb_addrs(rng: &mut StdRng, warp_size: usize, addr_space: u64) -> Vec<Option<u64>> {
    (0..warp_size)
        .map(|_| rng.gen_bool(0.8).then(|| rng.gen_range(0u64..addr_space)))
        .collect()
}

/// A random warp trace: a mix of compute bubbles, tagged loads (tags
/// 0..4, lanes possibly inactive or even fully empty), and round marks.
pub fn arb_trace(rng: &mut StdRng, warp_size: usize) -> WarpTrace {
    let n = rng.gen_range(1usize..10);
    let instrs = (0..n)
        .map(|_| match rng.gen_range(0u32..4) {
            0 => TraceInstr::compute(rng.gen_range(1u32..16)),
            3 => TraceInstr::RoundMark {
                round: rng.gen_range(1u16..4),
            },
            _ => {
                let addrs = arb_addrs(rng, warp_size, 1 << 14);
                TraceInstr::load_tagged(addrs, rng.gen_range(0u16..4))
            }
        })
        .collect();
    WarpTrace::from_instrs(instrs)
}

/// One differential-test scenario for the cycle-level simulator: a
/// policy, a GPU configuration, a set of warp traces, and the launch
/// seed. Everything needed to rerun the case is in the struct.
#[derive(Debug, Clone)]
pub struct SimScenario {
    /// Index in the generated corpus (for failure messages).
    pub id: usize,
    /// Policy every warp launches under ([`rcoal_gpu_sim::LaunchPolicy::Uniform`]).
    pub policy: CoalescingPolicy,
    /// The simulated machine.
    pub gpu: GpuConfig,
    /// Per-warp traces (also the replay input for the oracle).
    pub traces: Vec<WarpTrace>,
    /// Launch seed driving assignment draws.
    pub seed: u64,
}

impl SimScenario {
    /// The kernel the simulator executes.
    pub fn kernel(&self) -> TraceKernel {
        TraceKernel::new(self.traces.clone(), self.gpu.warp_size)
    }
}

/// Smallest corpus size at which [`sim_corpus`] guarantees every
/// [`ALL_VARIANTS`] key appears (one per variant per warp size).
pub const FULL_COVERAGE_CASES: usize = ALL_VARIANTS.len() * 4;

/// The seeded simulator corpus: `n` scenarios cycling warp sizes
/// {4, 8, 16, 32} and, per warp size, the full covering policy pool.
/// The first [`FULL_COVERAGE_CASES`] scenarios enumerate one
/// representative of every policy variant at every warp size, so any
/// corpus at least that large covers all variants by construction; the
/// remainder walks each pool exhaustively with varying kernels.
pub fn sim_corpus(seed: u64, n: usize) -> Vec<SimScenario> {
    let mut rng = StdRng::seed_from_u64(seed);
    let warp_sizes = [32usize, 8, 16, 4];
    let pools: Vec<Vec<CoalescingPolicy>> =
        warp_sizes.iter().map(|&w| policy_pool_for(w)).collect();
    (0..n)
        .map(|id| {
            let wi = id % warp_sizes.len();
            let warp_size = warp_sizes[wi];
            let pool = &pools[wi];
            let policy = if id < FULL_COVERAGE_CASES {
                let want = ALL_VARIANTS[id / warp_sizes.len()];
                pool.iter()
                    .copied()
                    .find(|p| variant_key(p) == want)
                    .unwrap_or(CoalescingPolicy::Baseline)
            } else {
                pool[(id / warp_sizes.len()) % pool.len()]
            };
            let mut gpu = GpuConfig::tiny();
            gpu.warp_size = warp_size;
            // A slice of the corpus runs on a multi-SM, multi-controller
            // machine so crossbar routing and per-MC accounting are part
            // of the differential surface.
            if id % 5 == 0 {
                gpu.num_sms = 2;
                gpu.num_mem_controllers = 2;
                gpu.banks_per_mc = 8;
            }
            let traces = (0..rng.gen_range(1usize..4))
                .map(|_| arb_trace(&mut rng, warp_size))
                .collect();
            SimScenario {
                id,
                policy,
                gpu,
                traces,
                seed: rng.gen_range(0u64..u64::MAX),
            }
        })
        .collect()
}

/// A seeded corpus of `rcoal-scenario` documents: every crate that
/// property-tests against scenario JSON should draw from here.
pub fn scenario_corpus(seed: u64, n: usize) -> Vec<Scenario> {
    let mut rng = StdRng::seed_from_u64(seed);
    let pool = policy_pool();
    (0..n)
        .map(|i| {
            let policy = pool[i % pool.len()];
            let mut s = Scenario::new(policy, rng.gen_range(1usize..4), rng.gen_range(4usize..33))
                .with_seed(rng.gen_range(0u64..u64::MAX));
            if rng.gen_bool(0.7) {
                s = s.functional_only();
            }
            if rng.gen_bool(0.3) {
                let mut key = [0u8; 16];
                rng.fill(&mut key);
                s = s.with_key(key);
            }
            s
        })
        .collect()
}

/// Scenario-document invariants over the corpus: canonical JSON
/// round-trips losslessly, the content hash is a pure function of the
/// canonical form, and the experiment-layer lowering preserves the
/// fields that determine results.
pub fn scenario_section(seed: u64, n: usize) -> SectionReport {
    let mut section = SectionReport::new("scenario documents");
    for (i, s) in scenario_corpus(seed, n).iter().enumerate() {
        section.cases += 1;
        let json = s.to_json();
        match Scenario::from_json(&json) {
            Ok(back) => {
                if &back != s {
                    section.failures.push(format!(
                        "scenario {i}: JSON round-trip changed the document"
                    ));
                }
                if back.content_hash() != s.content_hash() {
                    section
                        .failures
                        .push(format!("scenario {i}: content hash not canonical"));
                }
            }
            Err(e) => section
                .failures
                .push(format!("scenario {i}: canonical JSON failed to parse: {e}")),
        }
        let cfg = rcoal_experiments::scenario_config(s);
        if cfg.policy != s.policy || cfg.seed != s.seed || cfg.num_plaintexts != s.num_plaintexts {
            section.failures.push(format!(
                "scenario {i}: experiment lowering dropped a result-determining field"
            ));
        }
    }
    section
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn policy_pool_covers_every_variant_at_every_warp_size() {
        for w in [4usize, 8, 16, 32] {
            let keys: BTreeSet<&str> = policy_pool_for(w).iter().map(variant_key).collect();
            for v in ALL_VARIANTS {
                assert!(keys.contains(v), "warp {w} pool missing {v}");
            }
        }
    }

    #[test]
    fn sim_corpus_is_deterministic_and_covering() {
        let a = sim_corpus(9, 200);
        let b = sim_corpus(9, 200);
        assert_eq!(a.len(), 200);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.policy, y.policy);
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.traces, y.traces);
        }
        let keys: BTreeSet<&str> = a.iter().map(|s| variant_key(&s.policy)).collect();
        for v in ALL_VARIANTS {
            assert!(keys.contains(v), "200-case corpus missing {v}");
        }
    }

    #[test]
    fn minimal_corpus_covers_every_variant_for_any_seed() {
        for seed in [0u64, 1, 0xdead] {
            let corpus = sim_corpus(seed, FULL_COVERAGE_CASES);
            let keys: BTreeSet<&str> = corpus.iter().map(|s| variant_key(&s.policy)).collect();
            for v in ALL_VARIANTS {
                assert!(keys.contains(v), "seed {seed}: minimal corpus missing {v}");
            }
        }
    }

    #[test]
    fn scenario_corpus_documents_validate() {
        for s in scenario_corpus(3, 40) {
            s.validate().expect("generated scenarios are valid");
        }
    }

    #[test]
    fn scenario_section_passes_on_the_default_corpus() {
        let section = scenario_section(11, 48);
        assert_eq!(section.cases, 48);
        assert!(section.passed(), "{:?}", section.failures);
    }
}
