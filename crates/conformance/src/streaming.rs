//! Differential conformance for the streaming attack engine.
//!
//! The single-pass engine in `rcoal-attack::stream` claims three
//! contracts, each of which this section checks against an independent
//! reference on paper-configuration AES samples:
//!
//! 1. **Engine equivalence** — [`stream_recover_key`] over a chunked
//!    [`SliceSource`] must reproduce the materialized
//!    `Attack::recover_key` verdict byte for byte: same argmax, same
//!    rank of the true subkey byte, same recovered key. (Correlations
//!    come from different summation orders — Welford vs two-pass — so
//!    the *verdicts* are the conformance surface, not the floats.)
//! 2. **Bit-identical accumulators** — the per-guess
//!    [`PearsonAccumulator`] state (six f64 words, compared bitwise)
//!    must be invariant to the chunk size the stream arrives in *and*
//!    to the worker thread count, for all 256 guesses.
//! 3. **Early-stop falsifiability** — the default stopping rule must
//!    terminate on the leaky baseline channel *with the same best
//!    guess the full stream produces*, must never terminate on an
//!    RSS+RTS-randomized stream at the same budget, and an inverted
//!    rule (one checkpoint, zero margin) must stop immediately on the
//!    randomized stream — proving the rule, not luck, is load-bearing.
//!
//! [`stream_recover_key`]: rcoal_attack::stream_recover_key
//! [`SliceSource`]: rcoal_attack::SliceSource
//! [`PearsonAccumulator`]: rcoal_attack::PearsonAccumulator

use crate::report::SectionReport;
use crate::ConformanceError;
use rcoal_attack::{
    stream_recover_byte, stream_recover_key, Attack, AttackSample, EarlyStop, SliceSource,
    StreamOptions, StreamingByteRecovery,
};
use rcoal_core::CoalescingPolicy;
use rcoal_experiments::{ExperimentConfig, TimingSource};

/// Warp size of the paper's attacked AES kernel.
const WARP_SIZE: usize = 32;

/// Seed offset so the attack's mirrored-predictor RNG never aliases
/// the experiment RNG.
const ATTACK_SEED_XOR: u64 = 0x5eed;

/// Budget for the early-stop runs. The leaky baseline stabilizes well
/// before this on its exact per-byte channel; the randomized stream
/// must not.
const STOP_BUDGET: usize = 240;

/// Generates `n` paper-config AES attack samples under `policy` and
/// returns them with the true attacked subkey.
fn paper_samples(
    policy: CoalescingPolicy,
    n: usize,
    seed: u64,
    source: TimingSource,
) -> Result<(Vec<AttackSample>, [u8; 16]), ConformanceError> {
    let cfg = ExperimentConfig::new(policy, n, WARP_SIZE)
        .with_seed(seed)
        .with_threads(1)
        .functional_only();
    let data = cfg
        .run()
        .map_err(|e| ConformanceError::new(format!("streaming sample generation: {e}")))?;
    let samples = data
        .attack_samples(source)
        .map_err(|e| ConformanceError::new(format!("streaming sample packaging: {e}")))?;
    Ok((samples, data.attacked_subkey()))
}

/// Contract 1: streamed key recovery matches the materialized engine
/// byte for byte. Counts one case per subkey byte.
fn key_equivalence(
    report: &mut SectionReport,
    samples: &[AttackSample],
    subkey: [u8; 16],
    seed: u64,
) -> Result<(), ConformanceError> {
    let attack =
        Attack::against(CoalescingPolicy::Baseline, WARP_SIZE).with_seed(seed ^ ATTACK_SEED_XOR);
    let materialized = attack
        .recover_key(samples)
        .map_err(|e| ConformanceError::new(format!("materialized recover_key: {e}")))?;
    // A deliberately awkward chunk size: not a divisor of the sample
    // count, so the last chunk is ragged.
    let opts = StreamOptions::new(samples.len()).with_chunk(17);
    let mut source = SliceSource::new(samples);
    let streamed = stream_recover_key(&attack, &mut source, &opts)
        .map_err(|e| ConformanceError::new(format!("streamed recover_key: {e}")))?;

    for (j, (mat, st)) in materialized
        .bytes
        .iter()
        .zip(&streamed.recovery.bytes)
        .enumerate()
    {
        report.cases += 1;
        if mat.best_guess != st.best_guess {
            report.failures.push(format!(
                "byte {j}: streamed argmax {:#04x} != materialized {:#04x}",
                st.best_guess, mat.best_guess
            ));
        }
        let true_byte = subkey[j];
        let (mr, sr) = (mat.rank_of(true_byte), st.rank_of(true_byte));
        if mr != sr {
            report.failures.push(format!(
                "byte {j}: streamed rank of true byte {sr} != materialized {mr}"
            ));
        }
    }
    report.cases += 1;
    if materialized.recovered_key() != streamed.recovery.recovered_key() {
        report
            .failures
            .push("streamed recovered_key differs from materialized".into());
    }
    Ok(())
}

/// Contract 2: per-guess accumulator state is bitwise invariant to
/// chunk size and thread count. One case per (chunk, threads) combo.
fn accumulator_bit_identity(
    report: &mut SectionReport,
    samples: &[AttackSample],
    seed: u64,
) -> Result<(), ConformanceError> {
    let reference = {
        let attack = Attack::against(CoalescingPolicy::Baseline, WARP_SIZE)
            .with_seed(seed ^ ATTACK_SEED_XOR);
        let mut engine = StreamingByteRecovery::new(&attack, 0)
            .map_err(|e| ConformanceError::new(format!("reference engine: {e}")))?;
        engine.push_chunk(samples);
        (0..=u8::MAX)
            .map(|m| engine.accumulator(m).state_bits())
            .collect::<Vec<_>>()
    };

    for &threads in &[1usize, 3] {
        for &chunk in &[1usize, 7, 64, samples.len()] {
            report.cases += 1;
            let attack = Attack::against(CoalescingPolicy::Baseline, WARP_SIZE)
                .with_seed(seed ^ ATTACK_SEED_XOR)
                .with_threads(Some(threads));
            let mut engine = StreamingByteRecovery::new(&attack, 0)
                .map_err(|e| ConformanceError::new(format!("chunked engine: {e}")))?;
            for piece in samples.chunks(chunk) {
                engine.push_chunk(piece);
            }
            if let Some(m) = (0..=u8::MAX)
                .find(|&m| engine.accumulator(m).state_bits() != reference[usize::from(m)])
            {
                report.failures.push(format!(
                    "chunk {chunk} x threads {threads}: guess {m:#04x} accumulator \
                     state diverged from the monolithic reference"
                ));
            }
        }
    }
    Ok(())
}

/// Contract 3: the stopping rule is falsifiable in both directions.
fn early_stop_falsifiability(
    report: &mut SectionReport,
    seed: u64,
) -> Result<(), ConformanceError> {
    // Leaky: the baseline's exact per-byte access channel.
    let (leaky, subkey) = paper_samples(
        CoalescingPolicy::Baseline,
        STOP_BUDGET,
        seed ^ 0x1eaf,
        TimingSource::ByteAccesses(0),
    )?;
    let attack =
        Attack::against(CoalescingPolicy::Baseline, WARP_SIZE).with_seed(seed ^ ATTACK_SEED_XOR);

    let stopped = StreamOptions::new(STOP_BUDGET).with_early_stop(EarlyStop::default());
    let full = StreamOptions::new(STOP_BUDGET);
    let terminated = stream_recover_byte(&attack, &mut SliceSource::new(&leaky), 0, &stopped)
        .map_err(|e| ConformanceError::new(format!("leaky early-stop run: {e}")))?;
    let exhaustive = stream_recover_byte(&attack, &mut SliceSource::new(&leaky), 0, &full)
        .map_err(|e| ConformanceError::new(format!("leaky full-stream run: {e}")))?;

    report.cases += 1;
    if !terminated.terminated_early {
        report.failures.push(format!(
            "leaky baseline channel did not terminate within {STOP_BUDGET} samples"
        ));
    }
    report.cases += 1;
    if terminated.recovery.best_guess != exhaustive.recovery.best_guess {
        report.failures.push(format!(
            "terminated best guess {:#04x} != full-stream best guess {:#04x}",
            terminated.recovery.best_guess, exhaustive.recovery.best_guess
        ));
    }
    report.cases += 1;
    if terminated.recovery.best_guess != subkey[0] {
        report.failures.push(format!(
            "leaky terminated recovery missed the true byte {:#04x}",
            subkey[0]
        ));
    }

    // Secure: RSS+RTS randomizes the same channel; the default rule
    // must never report a confidently stable (and thus wrong) leader.
    let rss_rts = CoalescingPolicy::rss_rts(8)
        .map_err(|e| ConformanceError::new(format!("rss_rts policy: {e}")))?;
    let (secure, _) = paper_samples(
        rss_rts,
        STOP_BUDGET,
        seed ^ 0x5afe,
        TimingSource::ByteAccesses(0),
    )?;
    let defended = Attack::against(rss_rts, WARP_SIZE).with_seed(seed ^ ATTACK_SEED_XOR);
    let held = stream_recover_byte(&defended, &mut SliceSource::new(&secure), 0, &stopped)
        .map_err(|e| ConformanceError::new(format!("secure early-stop run: {e}")))?;
    report.cases += 1;
    if held.terminated_early {
        report.failures.push(format!(
            "RSS+RTS stream terminated early at {} samples with leader {:#04x}",
            held.samples, held.recovery.best_guess
        ));
    }

    // Inverted rule: one checkpoint, zero margin. If this did NOT stop
    // on the randomized stream, the stopping predicate would be inert
    // and the two checks above would be vacuous.
    let inverted = StreamOptions::new(STOP_BUDGET).with_early_stop(EarlyStop {
        stable_checkpoints: 1,
        margin_k: 0.0,
    });
    let trigger = stream_recover_byte(&defended, &mut SliceSource::new(&secure), 0, &inverted)
        .map_err(|e| ConformanceError::new(format!("inverted-rule run: {e}")))?;
    report.cases += 1;
    if !trigger.terminated_early {
        report
            .failures
            .push("inverted stopping rule (1 checkpoint, zero margin) failed to stop".into());
    }
    report.cases += 1;
    if trigger.samples >= held.samples {
        report.failures.push(format!(
            "inverted rule consumed {} samples, not fewer than the default rule's {}",
            trigger.samples, held.samples
        ));
    }
    Ok(())
}

/// Runs the streaming-attack conformance section.
///
/// `cases` scales the sample budget of the engine-equivalence corpus;
/// the early-stop budget is fixed at [`STOP_BUDGET`].
///
/// # Errors
///
/// [`ConformanceError`] when sample generation or the attack engines
/// fail outright (conformance *violations* are collected in the
/// report, not returned as errors).
pub fn section(seed: u64, cases: usize) -> Result<SectionReport, ConformanceError> {
    let mut report = SectionReport::new("streaming attack");
    let n = cases.clamp(48, 256);
    let (samples, subkey) = paper_samples(
        CoalescingPolicy::Baseline,
        n,
        seed,
        TimingSource::LastRoundAccesses,
    )?;
    key_equivalence(&mut report, &samples, subkey, seed)?;
    accumulator_bit_identity(&mut report, &samples, seed)?;
    early_stop_falsifiability(&mut report, seed)?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_section_passes_clean() {
        let report = section(0xc0f0_24a1, 64).expect("section runs");
        assert!(
            report.passed(),
            "streaming conformance violations: {:?}",
            report.failures
        );
        // 16 bytes + key + 8 combos + 6 early-stop checks.
        assert_eq!(report.cases, 16 + 1 + 8 + 6);
    }

    #[test]
    fn section_counts_every_check_as_a_case() {
        let report = section(7, 48).expect("section runs");
        assert!(report.cases >= 31);
    }
}
