//! The full conformance suite as a test: differential oracles over a
//! 240-scenario corpus, invariant checks, scenario round-trips, and the
//! committed golden masters.
//!
//! Regenerate fixtures after an intentional behaviour change with
//! `RCOAL_UPDATE_GOLDENS=1 cargo test -p rcoal-conformance`.

use rcoal_conformance::{run_suite, SuiteOptions};

#[test]
fn full_suite_passes_with_committed_goldens() {
    let opts = SuiteOptions::default();
    assert!(
        opts.cases >= 200,
        "acceptance floor: at least 200 simulator differential scenarios"
    );
    let report = run_suite(&opts).expect("suite must run");
    assert!(report.total_cases() > opts.cases, "{report}");
    assert!(report.passed(), "{report}");
}

#[test]
fn suite_is_deterministic_for_a_fixed_seed() {
    let opts = SuiteOptions {
        cases: 24,
        update_goldens: false,
        ..SuiteOptions::default()
    };
    let a = run_suite(&opts).expect("suite must run");
    let b = run_suite(&opts).expect("suite must run");
    assert_eq!(a, b, "identical options must give identical reports");
}
