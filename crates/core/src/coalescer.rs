use crate::{PolicyError, SubwarpAssignment};

/// One coalesced memory access produced by the coalescing unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemAccess {
    /// Block-aligned byte address of the access.
    pub block_addr: u64,
    /// Subwarp that generated the access.
    pub sid: u8,
    /// Bitmask of the lanes whose requests were merged into this access.
    pub lane_mask: u64,
}

impl MemAccess {
    /// Number of lane requests satisfied by this access.
    pub fn num_lanes(&self) -> u32 {
        self.lane_mask.count_ones()
    }
}

/// The result of coalescing one warp-wide memory instruction.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CoalesceResult {
    accesses: Vec<MemAccess>,
}

impl CoalesceResult {
    /// The coalesced accesses in issue order (subwarp-major, then first
    /// appearance within the subwarp).
    pub fn accesses(&self) -> &[MemAccess] {
        &self.accesses
    }

    /// Total number of coalesced accesses — the quantity the timing channel
    /// leaks.
    pub fn num_accesses(&self) -> usize {
        self.accesses.len()
    }

    /// Number of accesses issued by subwarp `sid`.
    pub fn accesses_for_subwarp(&self, sid: u8) -> usize {
        self.accesses.iter().filter(|a| a.sid == sid).count()
    }

    /// Consumes the result, returning the access list.
    pub fn into_accesses(self) -> Vec<MemAccess> {
        self.accesses
    }
}

impl IntoIterator for CoalesceResult {
    type Item = MemAccess;
    type IntoIter = std::vec::IntoIter<MemAccess>;

    fn into_iter(self) -> Self::IntoIter {
        self.accesses.into_iter()
    }
}

/// The memory coalescing unit (MCU) of an SM's LD/ST pipeline, extended
/// with the subwarp-id field of paper §IV-D.
///
/// Requests from lanes that share a subwarp id and fall in the same
/// `block_size`-aligned memory block are merged into a single access;
/// requests in different subwarps are never merged, even to the same block.
///
/// ```
/// use rcoal_core::{Coalescer, SubwarpAssignment};
///
/// let c = Coalescer::with_block_size(64)?;
/// let warp = SubwarpAssignment::single(4)?;
/// // All four lanes hit the same 64-byte block: one access.
/// let r = c.coalesce(&warp, &[Some(0), Some(16), Some(32), Some(63)]);
/// assert_eq!(r.num_accesses(), 1);
/// assert_eq!(r.accesses()[0].num_lanes(), 4);
/// # Ok::<(), rcoal_core::PolicyError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Coalescer {
    block_size: u64,
}

impl Default for Coalescer {
    fn default() -> Self {
        Coalescer {
            block_size: crate::DEFAULT_BLOCK_SIZE,
        }
    }
}

impl Coalescer {
    /// Creates a coalescer with the default 64-byte block granularity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a coalescer with an explicit block granularity.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::InvalidBlockSize`] unless `block_size` is a
    /// positive power of two.
    pub fn with_block_size(block_size: u64) -> Result<Self, PolicyError> {
        if block_size == 0 || !block_size.is_power_of_two() {
            return Err(PolicyError::InvalidBlockSize { block_size });
        }
        Ok(Coalescer { block_size })
    }

    /// Coalescing block granularity in bytes.
    pub fn block_size(&self) -> u64 {
        self.block_size
    }

    /// Merges one warp-wide set of lane requests.
    ///
    /// `lane_addrs[lane]` is the byte address requested by `lane`, or
    /// `None` if the lane is inactive (branch divergence). Lanes beyond
    /// `assignment.warp_size()` are ignored; missing lanes are treated as
    /// inactive.
    ///
    /// The returned accesses are ordered subwarp-major and, within a
    /// subwarp, by first requesting lane — deterministic for a given
    /// assignment, as in hardware.
    pub fn coalesce(
        &self,
        assignment: &SubwarpAssignment,
        lane_addrs: &[Option<u64>],
    ) -> CoalesceResult {
        let mut accesses: Vec<MemAccess> = Vec::new();
        for (sid, lanes) in assignment.lanes_by_subwarp().into_iter().enumerate() {
            let start = accesses.len();
            for lane in lanes {
                let Some(addr) = lane_addrs.get(lane).copied().flatten() else {
                    continue;
                };
                let block_addr = addr & !(self.block_size - 1);
                match accesses[start..]
                    .iter_mut()
                    .find(|a| a.block_addr == block_addr)
                {
                    Some(existing) => existing.lane_mask |= 1 << lane,
                    None => accesses.push(MemAccess {
                        block_addr,
                        sid: sid as u8,
                        lane_mask: 1 << lane,
                    }),
                }
            }
        }
        CoalesceResult { accesses }
    }

    /// Counts coalesced accesses without materializing them — the fast path
    /// used by the functional (timing-free) experiment mode and by attack
    /// predictors.
    pub fn count_accesses(
        &self,
        assignment: &SubwarpAssignment,
        lane_addrs: &[Option<u64>],
    ) -> usize {
        let mut total = 0;
        let mut blocks: Vec<u64> = Vec::with_capacity(8);
        for lanes in assignment.lanes_by_subwarp() {
            blocks.clear();
            for lane in lanes {
                let Some(addr) = lane_addrs.get(lane).copied().flatten() else {
                    continue;
                };
                let block_addr = addr & !(self.block_size - 1);
                if !blocks.contains(&block_addr) {
                    blocks.push(block_addr);
                    total += 1;
                }
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CoalescingPolicy;
    use rcoal_rng::SeedableRng;
    use rcoal_rng::StdRng;

    fn addrs_fig2() -> [Option<u64>; 4] {
        // Figure 2: threads 1 and 2 share a block; threads 0 and 3 have
        // their own blocks.
        [Some(0), Some(64), Some(96), Some(128)]
    }

    #[test]
    fn figure_2_case_1_single_subwarp_three_accesses() {
        let c = Coalescer::new();
        let a = SubwarpAssignment::single(4).unwrap();
        let r = c.coalesce(&a, &addrs_fig2());
        assert_eq!(r.num_accesses(), 3);
        assert_eq!(r.accesses()[1].lane_mask, 0b0110, "lanes 1 and 2 merged");
    }

    #[test]
    fn figure_2_case_2_two_subwarps_four_accesses() {
        let c = Coalescer::new();
        let a = SubwarpAssignment::in_order(&[2, 2]).unwrap();
        let r = c.coalesce(&a, &addrs_fig2());
        assert_eq!(r.num_accesses(), 4);
        assert_eq!(r.accesses_for_subwarp(0), 2);
        assert_eq!(r.accesses_for_subwarp(1), 2);
    }

    #[test]
    fn figure_10a_fss_rts_four_accesses() {
        // FSS+RTS with subwarps {0,2} and {1,3}: lane 1's and lane 2's
        // shared block lands in different subwarps, so nothing merges.
        let c = Coalescer::new();
        let a = SubwarpAssignment::permuted(&[2, 2], &[0, 2, 1, 3]).unwrap();
        let r = c.coalesce(&a, &addrs_fig2());
        assert_eq!(r.num_accesses(), 4);
    }

    #[test]
    fn figure_10b_rss_rts_three_accesses() {
        // RSS+RTS with sizes (1, 3): the size-3 subwarp recovers the merge
        // of lanes 1 and 2, so only three accesses are generated.
        let c = Coalescer::new();
        let a = SubwarpAssignment::permuted(&[1, 3], &[3, 0, 1, 2]).unwrap();
        assert_eq!(a.lanes_by_subwarp(), vec![vec![3], vec![0, 1, 2]]);
        let r = c.coalesce(&a, &addrs_fig2());
        assert_eq!(r.num_accesses(), 3);
    }

    #[test]
    fn perfectly_coalesced_warp_is_one_access() {
        let c = Coalescer::new();
        let a = SubwarpAssignment::single(32).unwrap();
        let addrs: Vec<Option<u64>> = (0..32).map(|i| Some(i as u64 * 2)).collect();
        assert_eq!(c.coalesce(&a, &addrs).num_accesses(), 1);
    }

    #[test]
    fn disabled_coalescing_is_one_access_per_active_lane() {
        let c = Coalescer::new();
        let a = SubwarpAssignment::fully_split(32).unwrap();
        let addrs: Vec<Option<u64>> = (0..32).map(|_| Some(0)).collect();
        assert_eq!(c.coalesce(&a, &addrs).num_accesses(), 32);
    }

    #[test]
    fn inactive_lanes_are_skipped() {
        let c = Coalescer::new();
        let a = SubwarpAssignment::single(4).unwrap();
        let r = c.coalesce(&a, &[Some(0), None, None, Some(1024)]);
        assert_eq!(r.num_accesses(), 2);
        // Short address slices are treated as all-inactive beyond the end.
        let r = c.coalesce(&a, &[Some(0)]);
        assert_eq!(r.num_accesses(), 1);
    }

    #[test]
    fn different_subwarps_never_merge_same_block() {
        let c = Coalescer::new();
        let a = SubwarpAssignment::in_order(&[2, 2]).unwrap();
        let r = c.coalesce(&a, &[Some(0), Some(0), Some(0), Some(0)]);
        assert_eq!(r.num_accesses(), 2);
    }

    #[test]
    fn block_alignment_respected() {
        let c = Coalescer::with_block_size(128).unwrap();
        let a = SubwarpAssignment::single(2).unwrap();
        // 100 and 127 share the first 128-byte block; 128 does not.
        assert_eq!(c.coalesce(&a, &[Some(100), Some(127)]).num_accesses(), 1);
        assert_eq!(c.coalesce(&a, &[Some(100), Some(128)]).num_accesses(), 2);
        let acc = c.coalesce(&a, &[Some(100), Some(128)]);
        assert_eq!(acc.accesses()[0].block_addr, 0);
        assert_eq!(acc.accesses()[1].block_addr, 128);
    }

    #[test]
    fn invalid_block_sizes_rejected() {
        assert!(Coalescer::with_block_size(0).is_err());
        assert!(Coalescer::with_block_size(48).is_err());
        assert!(Coalescer::with_block_size(64).is_ok());
    }

    #[test]
    fn count_matches_full_coalesce() {
        let c = Coalescer::new();
        let mut rng = StdRng::seed_from_u64(21);
        use rcoal_rng::Rng;
        for _ in 0..100 {
            let policy = CoalescingPolicy::rss_rts(4).unwrap();
            let a = policy.assignment(32, &mut rng).unwrap();
            let addrs: Vec<Option<u64>> = (0..32)
                .map(|_| {
                    if rng.gen_bool(0.9) {
                        Some(rng.gen_range(0u64..1024))
                    } else {
                        None
                    }
                })
                .collect();
            assert_eq!(
                c.count_accesses(&a, &addrs),
                c.coalesce(&a, &addrs).num_accesses()
            );
        }
    }

    #[test]
    fn lane_masks_partition_active_lanes() {
        let c = Coalescer::new();
        let a = SubwarpAssignment::in_order(&[16, 16]).unwrap();
        let addrs: Vec<Option<u64>> = (0..32).map(|i| Some((i as u64 % 5) * 64)).collect();
        let r = c.coalesce(&a, &addrs);
        let combined: u64 = r.accesses().iter().fold(0, |m, a| {
            assert_eq!(m & a.lane_mask, 0, "lane covered twice");
            m | a.lane_mask
        });
        assert_eq!(combined, (1u64 << 32) - 1);
    }
}
