use std::error::Error;
use std::fmt;

/// Error produced when constructing or applying a coalescing policy with
/// invalid parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PolicyError {
    /// The requested number of subwarps must divide the warp size for
    /// fixed-sized subwarps (FSS).
    NotADivisor {
        /// Requested number of subwarps.
        num_subwarps: usize,
        /// Warp size it must divide.
        warp_size: usize,
    },
    /// The number of subwarps must be between 1 and the warp size.
    OutOfRange {
        /// Requested number of subwarps.
        num_subwarps: usize,
        /// Warp size bounding the request.
        warp_size: usize,
    },
    /// Subwarp sizes must be positive and sum to the warp size.
    InvalidSizes {
        /// The offending size vector.
        sizes: Vec<usize>,
    },
    /// A block size of zero (or not a power of two) cannot define coalescing
    /// granularity.
    InvalidBlockSize {
        /// The offending block size.
        block_size: u64,
    },
    /// A warp of zero threads cannot be assigned subwarps.
    EmptyWarp,
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::NotADivisor {
                num_subwarps,
                warp_size,
            } => write!(
                f,
                "number of subwarps {num_subwarps} does not divide warp size {warp_size}"
            ),
            PolicyError::OutOfRange {
                num_subwarps,
                warp_size,
            } => write!(
                f,
                "number of subwarps {num_subwarps} is outside 1..={warp_size}"
            ),
            PolicyError::InvalidSizes { sizes } => write!(
                f,
                "subwarp sizes {sizes:?} must be positive and sum to the warp size"
            ),
            PolicyError::InvalidBlockSize { block_size } => {
                write!(f, "block size {block_size} is not a positive power of two")
            }
            PolicyError::EmptyWarp => write!(f, "warp has no threads"),
        }
    }
}

impl Error for PolicyError {}

/// Error produced when parsing a [`crate::CoalescingPolicy`] from its
/// textual form (see the `FromStr` implementation for the grammar).
///
/// Carries a human-readable message naming the offending spec, suitable
/// for direct display in CLI errors and scenario-file diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePolicyError {
    msg: String,
}

impl ParsePolicyError {
    pub(crate) fn new(msg: String) -> Self {
        ParsePolicyError { msg }
    }
}

impl fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl Error for ParsePolicyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            PolicyError::NotADivisor {
                num_subwarps: 3,
                warp_size: 32,
            },
            PolicyError::OutOfRange {
                num_subwarps: 0,
                warp_size: 32,
            },
            PolicyError::InvalidSizes { sizes: vec![0, 4] },
            PolicyError::InvalidBlockSize { block_size: 0 },
            PolicyError::EmptyWarp,
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PolicyError>();
    }
}
