//! # rcoal-core
//!
//! Subwarp-based randomized memory-access coalescing, the primary
//! contribution of *RCoal: Mitigating GPU Timing Attack via Subwarp-Based
//! Randomized Coalescing Techniques* (HPCA 2018).
//!
//! A GPU's coalescing unit merges the per-lane memory requests of a warp
//! into as few cache-line-sized accesses as possible. That merge is
//! deterministic, which lets a correlation timing attacker *predict* the
//! number of accesses for every last-round AES key-byte guess and pick the
//! guess whose prediction correlates best with measured execution time.
//!
//! This crate randomizes the merge. A warp is split into *subwarps* and
//! coalescing happens independently inside each subwarp. Three knobs are
//! exposed, mirroring the paper's mechanisms:
//!
//! * **FSS** (fixed-sized subwarps): the warp is split into `M` equal,
//!   in-order subwarps. The attacker no longer knows `M`.
//! * **RSS** (random-sized subwarps): subwarp sizes are redrawn from a
//!   distribution (uniform-over-compositions "skewed", or "normal") for
//!   every kernel launch.
//! * **RTS** (random-threaded subwarps): lanes are assigned to subwarps by a
//!   fresh random permutation, composable with FSS and RSS.
//!
//! # Example
//!
//! Reproduces the paper's Figure 2: four lanes whose middle two requests
//! share a memory block coalesce to 3 accesses with one subwarp, but to 4
//! with two subwarps.
//!
//! ```
//! use rcoal_core::{Coalescer, CoalescingPolicy, SubwarpAssignment};
//! use rcoal_rng::SeedableRng;
//!
//! let coalescer = Coalescer::with_block_size(64)?;
//! let addrs = [Some(0u64), Some(64), Some(96), Some(128)];
//!
//! let mut rng = rcoal_rng::StdRng::seed_from_u64(7);
//! let one = CoalescingPolicy::Baseline.assignment(4, &mut rng)?;
//! assert_eq!(coalescer.coalesce(&one, &addrs).num_accesses(), 3);
//!
//! let two = SubwarpAssignment::in_order(&[2, 2])?;
//! assert_eq!(coalescer.coalesce(&two, &addrs).num_accesses(), 4);
//! # Ok::<(), rcoal_core::PolicyError>(())
//! ```

mod coalescer;
mod error;
mod policy;
mod prt;
mod subwarp;

pub use coalescer::{CoalesceResult, Coalescer, MemAccess};
pub use error::{ParsePolicyError, PolicyError};
pub use policy::{CoalescingPolicy, SizeDistribution, NORMAL_SIGMA_DIVISOR};
pub use prt::{PendingRequestTable, PrtEntry};
pub use subwarp::{NumSubwarps, SubwarpAssignment};

/// Number of threads in a full warp on the simulated architecture (Table I).
pub const WARP_SIZE: usize = 32;

/// Size in bytes of one coalescing memory block.
///
/// The paper's attack configuration maps "16 consecutive table elements ...
/// to the same memory block"; with 4-byte T-table entries that is a 64-byte
/// block, i.e. `R = 16` blocks for the 1 KiB last-round table.
pub const DEFAULT_BLOCK_SIZE: u64 = 64;
