use crate::{NumSubwarps, ParsePolicyError, PolicyError, SubwarpAssignment};

use rcoal_rng::seq::SliceRandom;
use rcoal_rng::Rng;

/// Divisor applied to the mean subwarp size to obtain the standard
/// deviation of the [`SizeDistribution::Normal`] sampler (σ = mean / 4).
pub const NORMAL_SIGMA_DIVISOR: f64 = 4.0;

/// Distribution from which RSS draws subwarp sizes (paper §IV-B, Figure 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SizeDistribution {
    /// Sizes clustered around the FSS mean `warp_size / num_subwarps`.
    /// The paper finds this empirically equivalent to FSS and discards it.
    Normal,
    /// Uniform over all compositions of the warp into `num_subwarps`
    /// non-empty parts ("all possible subwarp size combinations equally
    /// likely and no subwarp is empty"). Heavily skewed toward one large
    /// subwarp, which both hinders the attacker and recovers coalescing
    /// opportunity. This is the distribution RCoal adopts.
    #[default]
    Skewed,
}

impl std::fmt::Display for SizeDistribution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SizeDistribution::Normal => f.write_str("normal"),
            SizeDistribution::Skewed => f.write_str("skewed"),
        }
    }
}

impl std::str::FromStr for SizeDistribution {
    type Err = ParsePolicyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "normal" => Ok(SizeDistribution::Normal),
            "skewed" => Ok(SizeDistribution::Skewed),
            _ => Err(ParsePolicyError::new(format!(
                "unknown size distribution {s:?} (expected normal or skewed)"
            ))),
        }
    }
}

/// A coalescing policy: how the warp is split into subwarps for memory
/// access coalescing, and with how much randomness.
///
/// The policy is consulted once per kernel launch (per encryption, in the
/// AES setting) to produce a [`SubwarpAssignment`]; the assignment then
/// stays fixed for the whole launch, matching the hardware description in
/// paper §IV-D ("set ... at the beginning of the application execution and
/// does not change during the execution").
///
/// ```
/// use rcoal_core::{CoalescingPolicy, NumSubwarps, SizeDistribution};
/// use rcoal_rng::SeedableRng;
///
/// let m = NumSubwarps::new(4, 32)?;
/// let policy = CoalescingPolicy::RssRts { num_subwarps: m, dist: SizeDistribution::Skewed };
/// let mut rng = rcoal_rng::StdRng::seed_from_u64(42);
/// let a = policy.assignment(32, &mut rng)?;
/// assert_eq!(a.num_subwarps(), 4);
/// assert_eq!(a.sizes().iter().sum::<usize>(), 32);
/// # Ok::<(), rcoal_core::PolicyError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoalescingPolicy {
    /// One subwarp per warp — the vulnerable stock configuration
    /// (equivalent to FSS with `num_subwarps = 1`).
    Baseline,
    /// No coalescing at all: every lane issues its own access. Secure but
    /// pays the full bandwidth cost (§III: up to 178 % slowdown, 2.7×
    /// accesses for AES).
    Disabled,
    /// Fixed-sized subwarps: `num_subwarps` equal, in-order groups.
    Fss {
        /// How many equal subwarps the warp is split into.
        num_subwarps: NumSubwarps,
    },
    /// Random-sized subwarps: group sizes redrawn per launch from `dist`,
    /// lanes assigned in order.
    Rss {
        /// How many subwarps the warp is split into.
        num_subwarps: NumSubwarps,
        /// Distribution of the subwarp sizes.
        dist: SizeDistribution,
    },
    /// Fixed sizes with random lane-to-subwarp allocation (FSS + RTS).
    FssRts {
        /// How many equal subwarps the warp is split into.
        num_subwarps: NumSubwarps,
    },
    /// Random sizes *and* random lane allocation (RSS + RTS) — the paper's
    /// strongest combination for small subwarp counts.
    RssRts {
        /// How many subwarps the warp is split into.
        num_subwarps: NumSubwarps,
        /// Distribution of the subwarp sizes.
        dist: SizeDistribution,
    },
}

impl CoalescingPolicy {
    /// Convenience constructor for FSS over a 32-thread warp.
    ///
    /// # Errors
    ///
    /// Propagates [`NumSubwarps::new`] validation errors.
    pub fn fss(num_subwarps: usize) -> Result<Self, PolicyError> {
        Ok(CoalescingPolicy::Fss {
            num_subwarps: NumSubwarps::new(num_subwarps, crate::WARP_SIZE)?,
        })
    }

    /// Convenience constructor for skewed RSS over a 32-thread warp.
    ///
    /// # Errors
    ///
    /// Propagates [`NumSubwarps::new_unaligned`] validation errors.
    pub fn rss(num_subwarps: usize) -> Result<Self, PolicyError> {
        Ok(CoalescingPolicy::Rss {
            num_subwarps: NumSubwarps::new_unaligned(num_subwarps, crate::WARP_SIZE)?,
            dist: SizeDistribution::Skewed,
        })
    }

    /// Convenience constructor for FSS+RTS over a 32-thread warp.
    ///
    /// # Errors
    ///
    /// Propagates [`NumSubwarps::new`] validation errors.
    pub fn fss_rts(num_subwarps: usize) -> Result<Self, PolicyError> {
        Ok(CoalescingPolicy::FssRts {
            num_subwarps: NumSubwarps::new(num_subwarps, crate::WARP_SIZE)?,
        })
    }

    /// Convenience constructor for skewed RSS+RTS over a 32-thread warp.
    ///
    /// # Errors
    ///
    /// Propagates [`NumSubwarps::new_unaligned`] validation errors.
    pub fn rss_rts(num_subwarps: usize) -> Result<Self, PolicyError> {
        Ok(CoalescingPolicy::RssRts {
            num_subwarps: NumSubwarps::new_unaligned(num_subwarps, crate::WARP_SIZE)?,
            dist: SizeDistribution::Skewed,
        })
    }

    /// Draws the subwarp assignment used for one kernel launch.
    ///
    /// Deterministic policies ignore `rng`. The same `rng` state always
    /// yields the same assignment, so experiments are reproducible from a
    /// seed.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::EmptyWarp`] for a zero-sized warp, and
    /// [`PolicyError::OutOfRange`] if the configured subwarp count exceeds
    /// `warp_size` (e.g. an FSS-of-32 policy applied to a 4-thread warp).
    pub fn assignment<R: Rng + ?Sized>(
        &self,
        warp_size: usize,
        rng: &mut R,
    ) -> Result<SubwarpAssignment, PolicyError> {
        if warp_size == 0 {
            return Err(PolicyError::EmptyWarp);
        }
        match *self {
            CoalescingPolicy::Baseline => SubwarpAssignment::single(warp_size),
            CoalescingPolicy::Disabled => SubwarpAssignment::fully_split(warp_size),
            CoalescingPolicy::Fss { num_subwarps } => {
                let sizes = fixed_sizes(warp_size, num_subwarps.get())?;
                SubwarpAssignment::in_order(&sizes)
            }
            CoalescingPolicy::Rss { num_subwarps, dist } => {
                let sizes = random_sizes(warp_size, num_subwarps.get(), dist, rng)?;
                SubwarpAssignment::in_order(&sizes)
            }
            CoalescingPolicy::FssRts { num_subwarps } => {
                let sizes = fixed_sizes(warp_size, num_subwarps.get())?;
                SubwarpAssignment::permuted(&sizes, &random_permutation(warp_size, rng))
            }
            CoalescingPolicy::RssRts { num_subwarps, dist } => {
                let sizes = random_sizes(warp_size, num_subwarps.get(), dist, rng)?;
                SubwarpAssignment::permuted(&sizes, &random_permutation(warp_size, rng))
            }
        }
    }

    /// Number of subwarps this policy splits a `warp_size`-thread warp
    /// into.
    pub fn num_subwarps(&self, warp_size: usize) -> usize {
        match *self {
            CoalescingPolicy::Baseline => 1,
            CoalescingPolicy::Disabled => warp_size,
            CoalescingPolicy::Fss { num_subwarps }
            | CoalescingPolicy::FssRts { num_subwarps }
            | CoalescingPolicy::Rss { num_subwarps, .. }
            | CoalescingPolicy::RssRts { num_subwarps, .. } => num_subwarps.get(),
        }
    }

    /// Whether the assignment varies between launches.
    pub fn is_randomized(&self) -> bool {
        matches!(
            self,
            CoalescingPolicy::Rss { .. }
                | CoalescingPolicy::FssRts { .. }
                | CoalescingPolicy::RssRts { .. }
        )
    }

    /// Short display name matching the paper's terminology.
    pub fn name(&self) -> &'static str {
        match self {
            CoalescingPolicy::Baseline => "baseline",
            CoalescingPolicy::Disabled => "no-coalescing",
            CoalescingPolicy::Fss { .. } => "FSS",
            CoalescingPolicy::Rss { .. } => "RSS",
            CoalescingPolicy::FssRts { .. } => "FSS+RTS",
            CoalescingPolicy::RssRts { .. } => "RSS+RTS",
        }
    }
}

impl std::fmt::Display for CoalescingPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoalescingPolicy::Baseline | CoalescingPolicy::Disabled => f.write_str(self.name()),
            CoalescingPolicy::Fss { num_subwarps } | CoalescingPolicy::FssRts { num_subwarps } => {
                write!(f, "{}(M={})", self.name(), num_subwarps)
            }
            CoalescingPolicy::Rss { num_subwarps, dist }
            | CoalescingPolicy::RssRts { num_subwarps, dist } => {
                write!(f, "{}(M={}, {})", self.name(), num_subwarps, dist)
            }
        }
    }
}

impl std::str::FromStr for CoalescingPolicy {
    type Err = ParsePolicyError;

    /// Parses a policy spec, accepting both the CLI grammar and the
    /// [`Display`](std::fmt::Display) form (so `parse ∘ to_string = id`):
    ///
    /// * `baseline`; `disabled`, `off`, `no-coalescing`
    /// * `fss:M`, `rss:M`, `fss-rts:M`, `rss-rts:M` (also `fss+rts:M`,
    ///   `rss+rts:M`) with `M` the subwarp count; RSS forms take an
    ///   optional trailing `:normal` / `:skewed`
    /// * `FSS(M=8)`, `FSS+RTS(M=8)`, `RSS(M=4, skewed)`,
    ///   `RSS+RTS(M=4, normal)`
    ///
    /// Matching is case-insensitive and whitespace-tolerant.
    fn from_str(spec: &str) -> Result<Self, Self::Err> {
        let lower = spec.trim().to_ascii_lowercase();
        let (name, m, dist) = if let Some((name, rest)) = lower.split_once('(') {
            // Display form: NAME(M=count[, dist])
            let inner = rest.trim_end().strip_suffix(')').ok_or_else(|| {
                ParsePolicyError::new(format!("invalid policy {spec:?}: missing ')'"))
            })?;
            let (m_part, dist_part) = match inner.split_once(',') {
                Some((m_part, dist_part)) => (m_part, Some(dist_part)),
                None => (inner, None),
            };
            let m_str = m_part.trim().strip_prefix("m=").ok_or_else(|| {
                ParsePolicyError::new(format!("invalid policy {spec:?}: expected M=<count>"))
            })?;
            let m = parse_subwarp_count(m_str.trim(), spec)?;
            let dist = dist_part.map(str::parse::<SizeDistribution>).transpose()?;
            (name.trim().to_string(), Some(m), dist)
        } else {
            // CLI form: name[:count[:dist]]
            let mut parts = lower.splitn(3, ':');
            let name = parts.next().unwrap_or_default().to_string();
            let m = parts
                .next()
                .map(|m_str| parse_subwarp_count(m_str, spec))
                .transpose()?;
            let dist = parts
                .next()
                .map(str::parse::<SizeDistribution>)
                .transpose()?;
            (name, m, dist)
        };
        let fail = |e: PolicyError| ParsePolicyError::new(format!("{spec:?}: {e}"));
        let no_dist = |p: Result<CoalescingPolicy, PolicyError>| {
            if dist.is_some() {
                return Err(ParsePolicyError::new(format!(
                    "policy {spec:?} does not take a size distribution"
                )));
            }
            p.map_err(fail)
        };
        match (name.as_str(), m) {
            ("baseline", None) => no_dist(Ok(CoalescingPolicy::Baseline)),
            ("disabled" | "off" | "no-coalescing", None) => no_dist(Ok(CoalescingPolicy::Disabled)),
            ("fss", Some(m)) => no_dist(CoalescingPolicy::fss(m)),
            ("fss-rts" | "fss+rts", Some(m)) => no_dist(CoalescingPolicy::fss_rts(m)),
            ("rss", Some(m)) => Ok(CoalescingPolicy::Rss {
                num_subwarps: NumSubwarps::new_unaligned(m, crate::WARP_SIZE).map_err(fail)?,
                dist: dist.unwrap_or_default(),
            }),
            ("rss-rts" | "rss+rts", Some(m)) => Ok(CoalescingPolicy::RssRts {
                num_subwarps: NumSubwarps::new_unaligned(m, crate::WARP_SIZE).map_err(fail)?,
                dist: dist.unwrap_or_default(),
            }),
            ("fss" | "rss" | "fss-rts" | "fss+rts" | "rss-rts" | "rss+rts", None) => {
                Err(ParsePolicyError::new(format!(
                    "policy {spec:?} needs a subwarp count, e.g. {name}:4"
                )))
            }
            _ => Err(ParsePolicyError::new(format!(
                "unknown policy {spec:?} (expected baseline, disabled, fss:M, rss:M, fss-rts:M, rss-rts:M)"
            ))),
        }
    }
}

fn parse_subwarp_count(m_str: &str, spec: &str) -> Result<usize, ParsePolicyError> {
    m_str
        .parse()
        .map_err(|_| ParsePolicyError::new(format!("invalid subwarp count {m_str:?} in {spec:?}")))
}

fn fixed_sizes(warp_size: usize, m: usize) -> Result<Vec<usize>, PolicyError> {
    if m > warp_size {
        return Err(PolicyError::OutOfRange {
            num_subwarps: m,
            warp_size,
        });
    }
    if !warp_size.is_multiple_of(m) {
        return Err(PolicyError::NotADivisor {
            num_subwarps: m,
            warp_size,
        });
    }
    Ok(vec![warp_size / m; m])
}

/// Draws subwarp sizes for RSS.
pub(crate) fn random_sizes<R: Rng + ?Sized>(
    warp_size: usize,
    m: usize,
    dist: SizeDistribution,
    rng: &mut R,
) -> Result<Vec<usize>, PolicyError> {
    if m == 0 || m > warp_size {
        return Err(PolicyError::OutOfRange {
            num_subwarps: m,
            warp_size,
        });
    }
    Ok(match dist {
        SizeDistribution::Skewed => skewed_sizes(warp_size, m, rng),
        SizeDistribution::Normal => normal_sizes(warp_size, m, rng),
    })
}

/// Uniform over compositions of `n` into `m` positive parts, via the
/// stars-and-bars bijection: choose `m - 1` distinct cut points among the
/// `n - 1` gaps between the `n` threads.
fn skewed_sizes<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Vec<usize> {
    debug_assert!(m >= 1 && m <= n);
    if m == 1 {
        return vec![n];
    }
    let mut gaps: Vec<usize> = (1..n).collect();
    gaps.shuffle(rng);
    let mut cuts: Vec<usize> = gaps[..m - 1].to_vec();
    cuts.sort_unstable();
    let mut sizes = Vec::with_capacity(m);
    let mut prev = 0;
    for c in cuts {
        sizes.push(c - prev);
        prev = c;
    }
    sizes.push(n - prev);
    sizes
}

/// Sizes drawn iid from a normal centred on the FSS mean, rounded, clamped
/// to at least 1, then repaired so the total is exactly `n`.
fn normal_sizes<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Vec<usize> {
    debug_assert!(m >= 1 && m <= n);
    if m == 1 {
        return vec![n];
    }
    let mean = n as f64 / m as f64;
    let sigma = (mean / NORMAL_SIGMA_DIVISOR).max(0.25);
    let mut sizes: Vec<usize> = (0..m)
        .map(|_| {
            // Box–Muller from two uniforms keeps the draw on the
            // workspace's own `rcoal-rng` generator.
            let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.gen_range(0.0f64..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            ((mean + sigma * z).round() as i64).max(1) as usize
        })
        .collect();
    // Repair pass: add/remove one thread at a time, never emptying a
    // subwarp, until the sizes sum to the warp size.
    loop {
        let total: usize = sizes.iter().sum();
        match total.cmp(&n) {
            std::cmp::Ordering::Equal => break,
            std::cmp::Ordering::Less => {
                let i = rng.gen_range(0..m);
                sizes[i] += 1;
            }
            std::cmp::Ordering::Greater => {
                let candidates: Vec<usize> = (0..m).filter(|&i| sizes[i] > 1).collect();
                let i = candidates[rng.gen_range(0..candidates.len())];
                sizes[i] -= 1;
            }
        }
    }
    sizes
}

fn random_permutation<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    perm.shuffle(rng);
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcoal_rng::SeedableRng;
    use rcoal_rng::StdRng;
    use std::collections::HashMap;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn baseline_is_single_subwarp() {
        let a = CoalescingPolicy::Baseline
            .assignment(32, &mut rng(0))
            .unwrap();
        assert_eq!(a.num_subwarps(), 1);
        assert_eq!(a.warp_size(), 32);
    }

    #[test]
    fn disabled_is_one_lane_per_subwarp() {
        let a = CoalescingPolicy::Disabled
            .assignment(32, &mut rng(0))
            .unwrap();
        assert_eq!(a.num_subwarps(), 32);
        assert!(a.sizes().iter().all(|&s| s == 1));
    }

    #[test]
    fn fss_splits_equally_in_order() {
        let p = CoalescingPolicy::fss(4).unwrap();
        let a = p.assignment(32, &mut rng(0)).unwrap();
        assert_eq!(a.sizes(), vec![8; 4]);
        // In-order allocation: lane 7 in sid 0, lane 8 in sid 1.
        assert_eq!(a.sid(7), 0);
        assert_eq!(a.sid(8), 1);
    }

    #[test]
    fn fss_with_m1_equals_baseline() {
        let p = CoalescingPolicy::fss(1).unwrap();
        let base = CoalescingPolicy::Baseline
            .assignment(32, &mut rng(0))
            .unwrap();
        assert_eq!(p.assignment(32, &mut rng(1)).unwrap(), base);
    }

    #[test]
    fn fss_rejects_mismatched_warp() {
        let p = CoalescingPolicy::fss(8).unwrap();
        assert!(p.assignment(4, &mut rng(0)).is_err());
        assert!(p.assignment(0, &mut rng(0)).is_err());
    }

    #[test]
    fn rss_sizes_sum_and_are_nonempty() {
        let p = CoalescingPolicy::rss(4).unwrap();
        for seed in 0..200 {
            let a = p.assignment(32, &mut rng(seed)).unwrap();
            let sizes = a.sizes();
            assert_eq!(sizes.len(), 4);
            assert_eq!(sizes.iter().sum::<usize>(), 32);
            assert!(sizes.iter().all(|&s| s >= 1));
        }
    }

    #[test]
    fn rss_skewed_is_uniform_over_compositions_small_case() {
        // n = 4, m = 2 has compositions (1,3), (2,2), (3,1) — each should
        // appear about a third of the time.
        let mut counts: HashMap<Vec<usize>, usize> = HashMap::new();
        let mut r = rng(7);
        for _ in 0..3000 {
            let sizes = skewed_sizes(4, 2, &mut r);
            *counts.entry(sizes).or_default() += 1;
        }
        assert_eq!(counts.len(), 3);
        for &c in counts.values() {
            assert!(
                (800..1200).contains(&c),
                "non-uniform composition count {c}"
            );
        }
    }

    #[test]
    fn rss_skewed_has_higher_size_variance_than_normal() {
        let mut r = rng(11);
        let spread = |dist: SizeDistribution, r: &mut StdRng| {
            let mut var_sum = 0.0;
            for _ in 0..500 {
                let sizes = random_sizes(32, 4, dist, r).unwrap();
                let mean = 8.0;
                var_sum += sizes
                    .iter()
                    .map(|&s| (s as f64 - mean).powi(2))
                    .sum::<f64>()
                    / 4.0;
            }
            var_sum / 500.0
        };
        let skewed = spread(SizeDistribution::Skewed, &mut r);
        let normal = spread(SizeDistribution::Normal, &mut r);
        assert!(
            skewed > 2.0 * normal,
            "skewed variance {skewed} should far exceed normal variance {normal}"
        );
    }

    #[test]
    fn rts_produces_varying_permutations() {
        let p = CoalescingPolicy::fss_rts(4).unwrap();
        let mut r = rng(3);
        let a = p.assignment(32, &mut r).unwrap();
        let b = p.assignment(32, &mut r).unwrap();
        assert_ne!(
            a, b,
            "two RTS draws should differ with overwhelming probability"
        );
        // Still a valid partition into 4 groups of 8.
        assert_eq!(a.sizes(), vec![8; 4]);
        let mut lanes: Vec<usize> = a.lanes_by_subwarp().into_iter().flatten().collect();
        lanes.sort_unstable();
        assert_eq!(lanes, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_given_seed() {
        let p = CoalescingPolicy::rss_rts(8).unwrap();
        let a = p.assignment(32, &mut rng(99)).unwrap();
        let b = p.assignment(32, &mut rng(99)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn normal_sizes_respect_invariants() {
        let mut r = rng(5);
        for _ in 0..200 {
            let sizes = normal_sizes(32, 8, &mut r);
            assert_eq!(sizes.iter().sum::<usize>(), 32);
            assert!(sizes.iter().all(|&s| s >= 1));
        }
    }

    #[test]
    fn policy_metadata() {
        assert!(!CoalescingPolicy::Baseline.is_randomized());
        assert!(!CoalescingPolicy::fss(4).unwrap().is_randomized());
        assert!(CoalescingPolicy::rss(4).unwrap().is_randomized());
        assert!(CoalescingPolicy::fss_rts(4).unwrap().is_randomized());
        assert_eq!(CoalescingPolicy::rss_rts(4).unwrap().name(), "RSS+RTS");
        assert_eq!(CoalescingPolicy::Baseline.num_subwarps(32), 1);
        assert_eq!(CoalescingPolicy::Disabled.num_subwarps(32), 32);
        assert_eq!(CoalescingPolicy::fss(16).unwrap().num_subwarps(32), 16);
    }

    #[test]
    fn display_formats() {
        assert_eq!(CoalescingPolicy::Baseline.to_string(), "baseline");
        assert_eq!(CoalescingPolicy::fss(8).unwrap().to_string(), "FSS(M=8)");
        assert_eq!(
            CoalescingPolicy::rss(4).unwrap().to_string(),
            "RSS(M=4, skewed)"
        );
    }

    #[test]
    fn parses_cli_grammar() {
        assert_eq!("baseline".parse(), Ok(CoalescingPolicy::Baseline));
        assert_eq!("BASELINE".parse(), Ok(CoalescingPolicy::Baseline));
        assert_eq!("disabled".parse(), Ok(CoalescingPolicy::Disabled));
        assert_eq!("off".parse(), Ok(CoalescingPolicy::Disabled));
        assert_eq!("no-coalescing".parse(), Ok(CoalescingPolicy::Disabled));
        assert_eq!("fss:8".parse(), Ok(CoalescingPolicy::fss(8).unwrap()));
        assert_eq!("rss:4".parse(), Ok(CoalescingPolicy::rss(4).unwrap()));
        assert_eq!(
            "fss+rts:16".parse(),
            Ok(CoalescingPolicy::fss_rts(16).unwrap())
        );
        assert_eq!(
            "rss-rts:4".parse(),
            Ok(CoalescingPolicy::rss_rts(4).unwrap())
        );
        assert_eq!(
            "rss:4:normal".parse(),
            Ok(CoalescingPolicy::Rss {
                num_subwarps: NumSubwarps::new_unaligned(4, 32).unwrap(),
                dist: SizeDistribution::Normal,
            })
        );
    }

    #[test]
    fn parses_display_grammar() {
        assert_eq!("FSS(M=8)".parse(), Ok(CoalescingPolicy::fss(8).unwrap()));
        assert_eq!(
            "FSS+RTS(M=2)".parse(),
            Ok(CoalescingPolicy::fss_rts(2).unwrap())
        );
        assert_eq!(
            "RSS(M=4, skewed)".parse(),
            Ok(CoalescingPolicy::rss(4).unwrap())
        );
        assert_eq!(
            "RSS+RTS(M=3, normal)".parse(),
            Ok(CoalescingPolicy::RssRts {
                num_subwarps: NumSubwarps::new_unaligned(3, 32).unwrap(),
                dist: SizeDistribution::Normal,
            })
        );
    }

    #[test]
    fn parse_rejects_bad_specs() {
        let err = |s: &str| s.parse::<CoalescingPolicy>().unwrap_err().to_string();
        assert!(err("fss").contains("subwarp count"));
        assert!(err("fss:3").contains("divide"));
        assert!(err("fss:x").contains("invalid"));
        assert!(err("magic").contains("unknown"));
        assert!(err("fss:8:skewed").contains("distribution"));
        assert!(err("FSS(M=8").contains("')'"));
        assert!(err("FSS(8)").contains("M=<count>"));
        assert!(err("RSS(M=4, diagonal)").contains("unknown size distribution"));
        assert!("rss:0".parse::<CoalescingPolicy>().is_err());
        assert!("rss:33".parse::<CoalescingPolicy>().is_err());
    }

    #[test]
    fn display_round_trips_through_from_str() {
        let mut pool = vec![CoalescingPolicy::Baseline, CoalescingPolicy::Disabled];
        for m in [1, 2, 4, 8, 16, 32] {
            pool.push(CoalescingPolicy::fss(m).unwrap());
            pool.push(CoalescingPolicy::fss_rts(m).unwrap());
        }
        for m in 1..=32 {
            for dist in [SizeDistribution::Skewed, SizeDistribution::Normal] {
                pool.push(CoalescingPolicy::Rss {
                    num_subwarps: NumSubwarps::new_unaligned(m, 32).unwrap(),
                    dist,
                });
                pool.push(CoalescingPolicy::RssRts {
                    num_subwarps: NumSubwarps::new_unaligned(m, 32).unwrap(),
                    dist,
                });
            }
        }
        for p in pool {
            assert_eq!(p.to_string().parse::<CoalescingPolicy>(), Ok(p), "{p}");
        }
    }

    #[test]
    fn size_distribution_round_trips() {
        for d in [SizeDistribution::Normal, SizeDistribution::Skewed] {
            assert_eq!(d.to_string().parse::<SizeDistribution>(), Ok(d));
        }
        assert!("diagonal".parse::<SizeDistribution>().is_err());
    }
}
