use crate::SubwarpAssignment;

/// One entry of the pending request table (PRT) inside the memory
/// coalescing unit, following Leng et al. (GPUWattch) as extended by RCoal
/// §IV-D with a subwarp-id field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PrtEntry {
    /// Requesting thread (lane) index within the warp.
    pub tid: u8,
    /// Block-aligned base address of the request.
    pub base_addr: u64,
    /// Byte offset of the request within its block.
    pub offset: u16,
    /// Request size in bytes.
    pub size: u16,
    /// Subwarp id — the field RCoal adds to the PRT.
    pub sid: u8,
}

/// A structural model of the modified coalescing unit's pending request
/// table (paper Figure 11).
///
/// The table is filled from a warp's lane addresses and a
/// [`SubwarpAssignment`]; the hardware then merges entries that share
/// `(sid, base_addr)`. The model exists to make the hardware cost of the
/// defense concrete — see [`PendingRequestTable::sid_overhead_bits`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PendingRequestTable {
    entries: Vec<PrtEntry>,
}

impl PendingRequestTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Logs one entry per active lane, tagging each with its subwarp id.
    pub fn fill(
        &mut self,
        assignment: &SubwarpAssignment,
        lane_addrs: &[Option<u64>],
        request_size: u16,
        block_size: u64,
    ) {
        self.entries.clear();
        for (lane, sid) in assignment.iter() {
            let Some(addr) = lane_addrs.get(lane).copied().flatten() else {
                continue;
            };
            let base_addr = addr & !(block_size - 1);
            self.entries.push(PrtEntry {
                tid: lane as u8,
                base_addr,
                offset: (addr - base_addr) as u16,
                size: request_size,
                sid,
            });
        }
    }

    /// The logged entries, in lane order.
    pub fn entries(&self) -> &[PrtEntry] {
        &self.entries
    }

    /// Number of logged entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of distinct `(sid, base_addr)` groups, i.e. the coalesced
    /// access count the merge stage will emit.
    pub fn merged_groups(&self) -> usize {
        let mut seen: Vec<(u8, u64)> = Vec::with_capacity(self.entries.len());
        for e in &self.entries {
            let key = (e.sid, e.base_addr);
            if !seen.contains(&key) {
                seen.push(key);
            }
        }
        seen.len()
    }

    /// Storage overhead of the added sid fields for one SM, in bits
    /// (paper §IV-D: 32 threads × 2 schedulers × 5 bits = 320 bits).
    pub fn sid_overhead_bits(warp_size: usize, warp_schedulers: usize) -> usize {
        let sid_bits = usize::BITS as usize - (warp_size - 1).leading_zeros() as usize;
        warp_size * warp_schedulers * sid_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_overhead_number() {
        // §IV-D: 32 × 2 × 5 bits = 320 bits per SM.
        assert_eq!(PendingRequestTable::sid_overhead_bits(32, 2), 320);
        assert_eq!(PendingRequestTable::sid_overhead_bits(16, 2), 128);
    }

    #[test]
    fn fill_tags_entries_with_sid() {
        let a = SubwarpAssignment::in_order(&[2, 2]).unwrap();
        let mut prt = PendingRequestTable::new();
        prt.fill(&a, &[Some(10), Some(70), None, Some(130)], 4, 64);
        assert_eq!(prt.len(), 3);
        assert!(!prt.is_empty());
        assert_eq!(
            prt.entries()[0],
            PrtEntry {
                tid: 0,
                base_addr: 0,
                offset: 10,
                size: 4,
                sid: 0
            }
        );
        assert_eq!(prt.entries()[1].sid, 0);
        assert_eq!(prt.entries()[2].sid, 1);
        assert_eq!(prt.entries()[2].base_addr, 128);
        assert_eq!(prt.entries()[2].offset, 2);
    }

    #[test]
    fn merged_groups_match_coalescer() {
        use crate::Coalescer;
        let a = SubwarpAssignment::in_order(&[2, 2]).unwrap();
        let addrs = [Some(0u64), Some(64), Some(96), Some(128)];
        let mut prt = PendingRequestTable::new();
        prt.fill(&a, &addrs, 4, 64);
        let c = Coalescer::new();
        assert_eq!(prt.merged_groups(), c.coalesce(&a, &addrs).num_accesses());
    }

    #[test]
    fn refill_clears_previous_contents() {
        let a = SubwarpAssignment::single(2).unwrap();
        let mut prt = PendingRequestTable::new();
        prt.fill(&a, &[Some(0), Some(4)], 4, 64);
        assert_eq!(prt.len(), 2);
        prt.fill(&a, &[Some(0), None], 4, 64);
        assert_eq!(prt.len(), 1);
    }
}
