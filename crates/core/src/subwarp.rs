use crate::PolicyError;

/// A validated number of subwarps for fixed-sized subwarping.
///
/// For FSS the warp is split into equal groups, so the count must divide the
/// warp size. `NumSubwarps` carries that invariant in the type
/// (the paper sweeps `M ∈ {1, 2, 4, 8, 16, 32}` for a 32-thread warp).
///
/// ```
/// use rcoal_core::NumSubwarps;
/// let m = NumSubwarps::new(8, 32)?;
/// assert_eq!(m.get(), 8);
/// assert!(NumSubwarps::new(3, 32).is_err());
/// # Ok::<(), rcoal_core::PolicyError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NumSubwarps(usize);

impl NumSubwarps {
    /// Creates a subwarp count that evenly divides `warp_size`.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::OutOfRange`] if `num_subwarps` is zero or
    /// exceeds `warp_size`, and [`PolicyError::NotADivisor`] if it does not
    /// divide `warp_size`.
    pub fn new(num_subwarps: usize, warp_size: usize) -> Result<Self, PolicyError> {
        if num_subwarps == 0 || num_subwarps > warp_size {
            return Err(PolicyError::OutOfRange {
                num_subwarps,
                warp_size,
            });
        }
        if !warp_size.is_multiple_of(num_subwarps) {
            return Err(PolicyError::NotADivisor {
                num_subwarps,
                warp_size,
            });
        }
        Ok(NumSubwarps(num_subwarps))
    }

    /// Creates a subwarp count bounded by `warp_size` without requiring
    /// divisibility (valid for RSS, where sizes are drawn at random).
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::OutOfRange`] if `num_subwarps` is zero or
    /// exceeds `warp_size`.
    pub fn new_unaligned(num_subwarps: usize, warp_size: usize) -> Result<Self, PolicyError> {
        if num_subwarps == 0 || num_subwarps > warp_size {
            return Err(PolicyError::OutOfRange {
                num_subwarps,
                warp_size,
            });
        }
        Ok(NumSubwarps(num_subwarps))
    }

    /// Returns the raw count.
    pub fn get(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for NumSubwarps {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// An assignment of every lane of a warp to a subwarp.
///
/// This is the `sid` (subwarp-id) mapping held in the modified coalescing
/// unit's pending request table (paper §IV-D, Figure 11). Invariants upheld
/// by construction:
///
/// * every lane has a subwarp id `< num_subwarps()`;
/// * every subwarp owns at least one lane (no subwarp is empty, as required
///   by the paper's skewed RSS distribution, §IV-B).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SubwarpAssignment {
    /// `sid[lane]` is the subwarp id of `lane`.
    sid: Vec<u8>,
    num_subwarps: usize,
}

impl SubwarpAssignment {
    /// Builds an assignment from per-subwarp sizes with lanes mapped
    /// *in order*: the first `sizes[0]` lanes get sid 0, the next
    /// `sizes[1]` get sid 1, and so on. This is how FSS and RSS (without
    /// RTS) allot subwarp ids (§IV-D: "the subwarp-ids are allotted in
    /// order").
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::InvalidSizes`] if any size is zero or the
    /// sizes are empty, and [`PolicyError::OutOfRange`] if there are more
    /// than 256 subwarps (sid is stored in a byte; real warps have ≤ 32
    /// lanes).
    pub fn in_order(sizes: &[usize]) -> Result<Self, PolicyError> {
        Self::validate_sizes(sizes)?;
        let total: usize = sizes.iter().sum();
        let mut sid = Vec::with_capacity(total);
        for (s, &size) in sizes.iter().enumerate() {
            sid.extend(std::iter::repeat_n(s as u8, size));
        }
        Ok(SubwarpAssignment {
            sid,
            num_subwarps: sizes.len(),
        })
    }

    /// Builds an assignment from per-subwarp sizes and an explicit lane
    /// permutation: `perm[i]` is the lane that occupies slot `i` of the
    /// in-order layout. This realizes RTS on top of FSS or RSS.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::InvalidSizes`] if the sizes are invalid or if
    /// `perm` is not a permutation of `0..sizes.iter().sum()`.
    pub fn permuted(sizes: &[usize], perm: &[usize]) -> Result<Self, PolicyError> {
        Self::validate_sizes(sizes)?;
        let total: usize = sizes.iter().sum();
        if perm.len() != total || !is_permutation(perm) {
            return Err(PolicyError::InvalidSizes {
                sizes: sizes.to_vec(),
            });
        }
        let mut sid = vec![0u8; total];
        let mut slot = 0;
        for (s, &size) in sizes.iter().enumerate() {
            for _ in 0..size {
                sid[perm[slot]] = s as u8;
                slot += 1;
            }
        }
        Ok(SubwarpAssignment {
            sid,
            num_subwarps: sizes.len(),
        })
    }

    /// Places all lanes of a `warp_size`-thread warp in a single subwarp —
    /// the deterministic baseline the attack of Jiang et al. assumes.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::EmptyWarp`] if `warp_size` is zero.
    pub fn single(warp_size: usize) -> Result<Self, PolicyError> {
        if warp_size == 0 {
            return Err(PolicyError::EmptyWarp);
        }
        Self::in_order(&[warp_size])
    }

    /// Places every lane in its own subwarp, i.e. coalescing disabled.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::EmptyWarp`] if `warp_size` is zero and
    /// [`PolicyError::OutOfRange`] if `warp_size` exceeds 256.
    pub fn fully_split(warp_size: usize) -> Result<Self, PolicyError> {
        if warp_size == 0 {
            return Err(PolicyError::EmptyWarp);
        }
        Self::in_order(&vec![1; warp_size])
    }

    fn validate_sizes(sizes: &[usize]) -> Result<(), PolicyError> {
        if sizes.is_empty() || sizes.contains(&0) {
            return Err(PolicyError::InvalidSizes {
                sizes: sizes.to_vec(),
            });
        }
        if sizes.len() > 256 {
            return Err(PolicyError::OutOfRange {
                num_subwarps: sizes.len(),
                warp_size: sizes.iter().sum(),
            });
        }
        Ok(())
    }

    /// Subwarp id of `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= self.warp_size()`.
    pub fn sid(&self, lane: usize) -> u8 {
        self.sid[lane]
    }

    /// Number of lanes covered by this assignment.
    pub fn warp_size(&self) -> usize {
        self.sid.len()
    }

    /// Number of subwarps.
    pub fn num_subwarps(&self) -> usize {
        self.num_subwarps
    }

    /// Iterates over `(lane, sid)` pairs in lane order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u8)> + '_ {
        self.sid.iter().copied().enumerate()
    }

    /// Returns the lanes of each subwarp, indexed by sid.
    pub fn lanes_by_subwarp(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.num_subwarps];
        for (lane, s) in self.iter() {
            groups[s as usize].push(lane);
        }
        groups
    }

    /// Returns the size of each subwarp, indexed by sid.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_subwarps];
        for &s in &self.sid {
            sizes[s as usize] += 1;
        }
        sizes
    }
}

fn is_permutation(perm: &[usize]) -> bool {
    let mut seen = vec![false; perm.len()];
    for &p in perm {
        if p >= perm.len() || seen[p] {
            return false;
        }
        seen[p] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_subwarps_accepts_divisors_of_32() {
        for m in [1, 2, 4, 8, 16, 32] {
            assert_eq!(NumSubwarps::new(m, 32).unwrap().get(), m);
        }
    }

    #[test]
    fn num_subwarps_rejects_non_divisors_and_bounds() {
        assert!(matches!(
            NumSubwarps::new(3, 32),
            Err(PolicyError::NotADivisor { .. })
        ));
        assert!(matches!(
            NumSubwarps::new(0, 32),
            Err(PolicyError::OutOfRange { .. })
        ));
        assert!(matches!(
            NumSubwarps::new(64, 32),
            Err(PolicyError::OutOfRange { .. })
        ));
        // Unaligned accepts non-divisors but keeps the range check.
        assert_eq!(NumSubwarps::new_unaligned(3, 32).unwrap().get(), 3);
        assert!(NumSubwarps::new_unaligned(33, 32).is_err());
    }

    #[test]
    fn in_order_assignment_maps_contiguous_groups() {
        let a = SubwarpAssignment::in_order(&[2, 2]).unwrap();
        assert_eq!(a.warp_size(), 4);
        assert_eq!(a.num_subwarps(), 2);
        assert_eq!(
            (0..4).map(|l| a.sid(l)).collect::<Vec<_>>(),
            vec![0, 0, 1, 1]
        );
        assert_eq!(a.sizes(), vec![2, 2]);
    }

    #[test]
    fn in_order_rejects_empty_subwarps() {
        assert!(SubwarpAssignment::in_order(&[2, 0, 2]).is_err());
        assert!(SubwarpAssignment::in_order(&[]).is_err());
    }

    #[test]
    fn permuted_assignment_matches_figure_10a() {
        // Figure 10a: FSS+RTS, 4 threads, 2 subwarps of size 2,
        // subwarp 0 owns lanes {0, 2}, subwarp 1 owns lanes {1, 3}.
        let a = SubwarpAssignment::permuted(&[2, 2], &[0, 2, 1, 3]).unwrap();
        assert_eq!(a.lanes_by_subwarp(), vec![vec![0, 2], vec![1, 3]]);
    }

    #[test]
    fn permuted_rejects_non_permutations() {
        assert!(SubwarpAssignment::permuted(&[2, 2], &[0, 0, 1, 3]).is_err());
        assert!(SubwarpAssignment::permuted(&[2, 2], &[0, 1, 2]).is_err());
        assert!(SubwarpAssignment::permuted(&[2, 2], &[0, 1, 2, 4]).is_err());
    }

    #[test]
    fn single_and_fully_split() {
        let one = SubwarpAssignment::single(32).unwrap();
        assert_eq!(one.num_subwarps(), 1);
        assert_eq!(one.sizes(), vec![32]);

        let split = SubwarpAssignment::fully_split(32).unwrap();
        assert_eq!(split.num_subwarps(), 32);
        assert!(split.sizes().iter().all(|&s| s == 1));

        assert!(SubwarpAssignment::single(0).is_err());
        assert!(SubwarpAssignment::fully_split(0).is_err());
    }

    #[test]
    fn lanes_by_subwarp_partitions_all_lanes() {
        let a = SubwarpAssignment::in_order(&[1, 3, 4]).unwrap();
        let groups = a.lanes_by_subwarp();
        let mut all: Vec<usize> = groups.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..8).collect::<Vec<_>>());
    }
}
