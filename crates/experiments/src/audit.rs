//! Leakage audits over experiment results — the glue between
//! [`rcoal_audit`] and the experiment/sweep pipeline.
//!
//! The audit consumes what a run already produced: the attack-sample
//! stream for the spec's channel, plus (when the run was instrumented)
//! per-launch stage scalars pulled from telemetry. Nothing here
//! re-simulates — auditing a cached sweep row costs statistics only.

use crate::error::ExperimentError;
use crate::run::{ExperimentData, TimingSource};
use rcoal_audit::{
    audit_target_with_stages, AuditChannel, AuditSpec, AuditTarget, LeakageReport, StageChannel,
};

/// Maps an audit channel onto the experiment's timing source.
fn timing_source(spec: &AuditSpec) -> Result<TimingSource, ExperimentError> {
    Ok(match spec.channel {
        AuditChannel::ByteAccesses => {
            let j = u8::try_from(spec.byte).map_err(|_| {
                ExperimentError::Config(format!("audit byte {} out of range", spec.byte))
            })?;
            TimingSource::ByteAccesses(j)
        }
        AuditChannel::LastRoundAccesses => TimingSource::LastRoundAccesses,
        AuditChannel::LastRoundCycles => TimingSource::LastRoundCycles,
        AuditChannel::TotalCycles => TimingSource::TotalCycles,
    })
}

/// Per-launch stage channels from the run's telemetry, index-aligned
/// with the attack samples. Empty when the run was not instrumented
/// (or the trace is not one-per-plaintext, e.g. after trimming).
fn stage_channels(data: &ExperimentData) -> Vec<StageChannel> {
    let Some(tel) = &data.telemetry else {
        return Vec::new();
    };
    if tel.launches.len() != data.len() || data.is_empty() {
        return Vec::new();
    }
    let per_launch = |name: &str, f: &dyn Fn(&crate::telemetry::LaunchTrace) -> f64| StageChannel {
        name: name.to_string(),
        values: tel.launches.iter().map(f).collect(),
    };
    vec![
        per_launch("mem_latency_mean", &|l| l.profile.mem_latency.mean()),
        per_launch("mem_latency_p95", &|l| {
            l.profile.mem_latency.p95().unwrap_or(0) as f64
        }),
        per_launch("dram_row_hit_rate", &|l| {
            let (hits, serviced) = l.profile.mcs.iter().fold((0u64, 0u64), |(h, s), mc| {
                (h + mc.row_hits, s + mc.serviced)
            });
            if serviced == 0 {
                0.0
            } else {
                hits as f64 / serviced as f64
            }
        }),
        per_launch("issue_stall_cycles", &|l| {
            l.profile.issue_stall_cycles as f64
        }),
        per_launch("icnt_deferred", &|l| {
            (l.profile.icnt_req_deferred + l.profile.icnt_reply_deferred) as f64
        }),
        per_launch("warp_finish_spread", &|l| {
            l.profile.warp_finish_spread as f64
        }),
    ]
}

/// Audits an experiment's results against `spec`.
///
/// `warp_size` is the simulated GPU's warp width (the attacker models
/// the same coalescer geometry); pass `config.gpu.warp_size` or 32 for
/// the paper configuration. Stage channels are included automatically
/// when the run carries per-launch telemetry.
///
/// # Errors
///
/// [`ExperimentError::TimingUnavailable`] when a cycle channel is
/// audited on a functional-only run; [`ExperimentError::Config`] for a
/// bad spec; [`ExperimentError::Attack`] when the attack driver rejects
/// the stream (e.g. no samples).
pub fn audit_data(
    data: &ExperimentData,
    warp_size: usize,
    spec: &AuditSpec,
) -> Result<LeakageReport, ExperimentError> {
    let samples = data.attack_samples(timing_source(spec)?)?;
    let workload = data.workload_def();
    let geometry = workload.geometry();
    let true_byte = workload.attacked_subkey(&data.key)[spec.byte.min(15)];
    let stages = stage_channels(data);
    let target = AuditTarget {
        policy: data.policy,
        warp_size,
        true_key_byte: true_byte,
        oracle: workload.oracle(),
        // Theory cross-checks need the closed-form (R, N) model; the
        // gather control opts out (its indices are not byte-local).
        theory_r: workload
            .theory_comparable()
            .then_some(geometry.table_size_r),
    };
    audit_target_with_stages(&target, &samples, &stages, spec).map_err(|e| match e {
        rcoal_audit::AuditError::Attack(a) => ExperimentError::Attack(a),
        other => ExperimentError::Config(format!("audit: {other}")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::ExperimentConfig;
    use crate::telemetry::TelemetrySpec;
    use rcoal_core::CoalescingPolicy;

    #[test]
    fn functional_baseline_audit_is_leaky_and_matches_theory() {
        let data = ExperimentConfig::new(CoalescingPolicy::Baseline, 96, 32)
            .functional_only()
            .with_seed(11)
            .run()
            .unwrap();
        let report = audit_data(&data, 32, &AuditSpec::new()).unwrap();
        assert!(report.leaky, "t = {}", report.timing.welch.t);
        assert!((report.empirical_rho - 1.0).abs() < 1e-9);
        let theory = report.theory.expect("byte channel has a closed form");
        assert!(theory.ok);
        assert!(report.stages.is_empty(), "no telemetry, no stage channels");
    }

    #[test]
    fn cycle_channel_on_functional_run_is_a_timing_error() {
        let data = ExperimentConfig::new(CoalescingPolicy::Baseline, 16, 32)
            .functional_only()
            .with_seed(3)
            .run()
            .unwrap();
        let spec = AuditSpec::new().with_channel(AuditChannel::TotalCycles);
        let err = audit_data(&data, 32, &spec).unwrap_err();
        assert!(matches!(err, ExperimentError::TimingUnavailable { .. }));
    }

    #[test]
    fn telemetry_run_contributes_stage_channels() {
        let data = ExperimentConfig::new(CoalescingPolicy::Baseline, 12, 32)
            .with_seed(5)
            .with_telemetry(TelemetrySpec::profile_only())
            .run()
            .unwrap();
        let spec = AuditSpec::new().with_channel(AuditChannel::LastRoundCycles);
        let report = audit_data(&data, 32, &spec).unwrap();
        let names: Vec<&str> = report.stages.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"mem_latency_mean"), "{names:?}");
        assert!(names.contains(&"dram_row_hit_rate"), "{names:?}");
        assert!(names.contains(&"warp_finish_spread"), "{names:?}");
        for s in &report.stages {
            assert_eq!(s.welch.n_low + s.welch.n_high, 12, "{}", s.name);
        }
    }
}
