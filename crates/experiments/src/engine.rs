//! The sweep engine: executes declarative scenarios through the
//! experiment pipeline with a content-addressed run cache.
//!
//! This is where the dependency layers meet: `rcoal-scenario` describes
//! runs as data ([`Scenario`], [`SweepSpec`], [`RunCache`]) without
//! knowing how to execute them; this module supplies the three missing
//! pieces —
//!
//! * [`scenario_config`]: scenario → [`ExperimentConfig`] conversion,
//! * the `rcoal-run/v1` disk codec for [`ExperimentData`]
//!   ([`encode_run`] / [`decode_run`]), and
//! * [`SweepRunner`]: deterministic, cache-aware execution of scenario
//!   lists through `rcoal-parallel`.
//!
//! ## Execution contract
//!
//! For a scenario list, the runner resolves each *distinct* scenario
//! (by content hash) exactly once — from the cache when possible,
//! otherwise by one fresh simulation — and assembles results in input
//! order. Because experiment results are a pure function of the
//! scenario (bit-identical at any thread count), a cache hit is
//! indistinguishable from a fresh run; the equivalence test pins this.
//!
//! ## Caching policy
//!
//! Runs carrying telemetry stay memory-only (the codec declines to
//! encode them: traces are bulky and mostly write-once); everything
//! else round-trips losslessly through JSON — [`ExperimentData`] is
//! integers and byte blocks, no floats — so disk hits are exact.

use crate::error::ExperimentError;
use crate::run::{ExperimentConfig, ExperimentData};
use crate::telemetry::TelemetrySpec;
use rcoal_aes::Block;
use rcoal_core::CoalescingPolicy;
use rcoal_parallel::{resolve_threads, supervised_map, try_parallel_map, SupervisorPolicy};
use rcoal_scenario::json::{ObjBuilder, Value};
use rcoal_scenario::{
    CacheStats, ChaosPlan, RunCache, Scenario, ScenarioError, SweepJournal, SweepSpec,
};
use rcoal_telemetry::MetricsRegistry;
use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// File name of the sweep journal inside a runner's store directory.
/// The `.jsonl` extension keeps it out of the cache's `*.json` entry
/// namespace (and out of [`RunCache::verify`] audits).
pub const JOURNAL_FILE: &str = "sweep-journal.jsonl";

/// Journal records between fsync checkpoints on the supervised path
/// (every record is flushed to the OS immediately; the checkpoint is
/// the power-loss bound).
const CHECKPOINT_EVERY: u64 = 8;

/// Schema identifier of one serialized run result.
pub const RUN_SCHEMA: &str = "rcoal-run/v1";

/// Lowers a scenario onto the experiment layer. Thread counts are an
/// execution detail, so the returned config keeps `threads: None`; the
/// runner overrides it per batch.
pub fn scenario_config(scenario: &Scenario) -> ExperimentConfig {
    let mut cfg = if scenario.selective {
        ExperimentConfig::selective(scenario.policy, scenario.num_plaintexts, scenario.lines)
    } else {
        ExperimentConfig::new(scenario.policy, scenario.num_plaintexts, scenario.lines)
    };
    cfg.seed = scenario.seed;
    if let Some(workload) = &scenario.workload {
        cfg.workload = workload.clone();
    }
    if let Some(key) = scenario.key {
        cfg.key = key;
    }
    cfg.gpu = scenario.gpu_config();
    cfg.timing = scenario.timing;
    cfg.faults = scenario.faults.clone();
    cfg.telemetry = scenario.telemetry.map(|t| {
        TelemetrySpec::full()
            .with_event_capacity(t.event_capacity)
            .with_min_severity(t.min_severity)
    });
    cfg
}

/// Serializes a run result to its `rcoal-run/v1` JSON form.
///
/// Returns `None` for telemetry-bearing runs, which stay memory-only
/// (see the module docs); every other run encodes losslessly.
pub fn encode_run(data: &ExperimentData) -> Option<String> {
    run_to_value(data).map(|doc| doc.to_json())
}

/// Conformance hook: the `rcoal-run/v1` document of a run as a JSON
/// [`Value`] tree (the exact structure [`encode_run`] serializes).
///
/// Golden-master fixtures snapshot this value so drift diffs can point
/// at individual fields instead of one long JSON line. Returns `None`
/// for telemetry-bearing runs, like [`encode_run`].
pub fn run_to_value(data: &ExperimentData) -> Option<Value> {
    if data.telemetry.is_some() {
        return None;
    }
    let ciphertexts = Value::Arr(
        data.ciphertexts
            .iter()
            .map(|lines| Value::str(hex_blocks(lines)))
            .collect(),
    );
    let by_byte = Value::Arr(
        data.last_round_accesses_by_byte
            .iter()
            .map(|row| Value::Arr(row.iter().map(|&n| Value::u64(n)).collect()))
            .collect(),
    );
    let doc = ObjBuilder::new()
        .field("schema", Value::str(RUN_SCHEMA))
        .field("policy", Value::str(data.policy.to_string()))
        // Elided for AES so pre-registry cache entries stay valid (and
        // pre-registry readers keep decoding AES rows).
        .opt_field(
            "workload",
            (data.workload != "aes").then(|| Value::str(data.workload.clone())),
        )
        .field("key", Value::str(hex_bytes(&data.key)))
        .field("ciphertexts", ciphertexts)
        .field("last_round_accesses", u64_arr(&data.last_round_accesses))
        .field("last_round_accesses_by_byte", by_byte)
        .field("total_accesses", u64_arr(&data.total_accesses))
        .field("total_requests", u64_arr(&data.total_requests))
        .opt_field(
            "last_round_cycles",
            data.last_round_cycles.as_deref().map(u64_arr),
        )
        .opt_field("total_cycles", data.total_cycles.as_deref().map(u64_arr))
        .build();
    Some(doc)
}

/// Parses a run result back from its `rcoal-run/v1` form.
///
/// # Errors
///
/// Returns a [`ScenarioError`] for syntax errors, schema mismatches, or
/// ill-formed fields.
pub fn decode_run(input: &str) -> Result<ExperimentData, ScenarioError> {
    let v = Value::parse(input).map_err(|e| ScenarioError::new(e.to_string()))?;
    let schema = v.get("schema").and_then(Value::as_str).unwrap_or_default();
    if schema != RUN_SCHEMA {
        return Err(ScenarioError::new(format!(
            "unsupported run schema {schema:?} (expected {RUN_SCHEMA:?})"
        )));
    }
    let policy = v
        .get("policy")
        .and_then(Value::as_str)
        .ok_or_else(|| ScenarioError::new("run policy must be a string"))?
        .parse::<CoalescingPolicy>()
        .map_err(|e| ScenarioError::new(e.to_string()))?;
    let key_hex = v
        .get("key")
        .and_then(Value::as_str)
        .ok_or_else(|| ScenarioError::new("run key must be a hex string"))?;
    let key_bytes = unhex(key_hex)?;
    let key: [u8; 16] = key_bytes
        .try_into()
        .map_err(|_| ScenarioError::new("run key must be 16 bytes"))?;
    let ciphertexts = v
        .get("ciphertexts")
        .and_then(Value::as_arr)
        .ok_or_else(|| ScenarioError::new("run ciphertexts must be an array"))?
        .iter()
        .map(|item| {
            let hex = item
                .as_str()
                .ok_or_else(|| ScenarioError::new("ciphertext entries must be hex strings"))?;
            Ok(Arc::new(unhex_blocks(hex)?))
        })
        .collect::<Result<Vec<Arc<Vec<Block>>>, ScenarioError>>()?;
    let last_round_accesses = parse_u64_arr(&v, "last_round_accesses")?;
    let by_byte = v
        .get("last_round_accesses_by_byte")
        .and_then(Value::as_arr)
        .ok_or_else(|| ScenarioError::new("last_round_accesses_by_byte must be an array"))?
        .iter()
        .map(|row| {
            let nums = row
                .as_arr()
                .ok_or_else(|| ScenarioError::new("by-byte rows must be arrays"))?
                .iter()
                .map(|n| {
                    n.as_u64()
                        .ok_or_else(|| ScenarioError::new("by-byte entries must be u64"))
                })
                .collect::<Result<Vec<u64>, ScenarioError>>()?;
            <[u64; 16]>::try_from(nums)
                .map_err(|_| ScenarioError::new("by-byte rows must have 16 entries"))
        })
        .collect::<Result<Vec<[u64; 16]>, ScenarioError>>()?;
    let workload = v
        .get("workload")
        .and_then(Value::as_str)
        .unwrap_or("aes")
        .to_string();
    Ok(ExperimentData {
        policy,
        workload,
        key,
        ciphertexts,
        last_round_accesses,
        last_round_accesses_by_byte: by_byte,
        total_accesses: parse_u64_arr(&v, "total_accesses")?,
        total_requests: parse_u64_arr(&v, "total_requests")?,
        last_round_cycles: parse_opt_u64_arr(&v, "last_round_cycles")?,
        total_cycles: parse_opt_u64_arr(&v, "total_cycles")?,
        telemetry: None,
    })
}

/// What a [`SweepRunner`] did so far: occurrences served, simulations
/// actually launched, and the hits that made up the difference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunnerReport {
    /// Scenario occurrences served (input-list entries, duplicates
    /// included).
    pub served: u64,
    /// Fresh simulations performed.
    pub launched: u64,
    /// Supervised tasks that succeeded only after retrying.
    pub retried: u64,
    /// Supervised tasks that exhausted their retry budget and were
    /// quarantined (their rows are `None` in the [`SweepOutcome`]).
    pub quarantined: u64,
    /// Distinct scenarios served from the store that a previous
    /// process's journal had recorded as completed — the work a resume
    /// did *not* redo.
    pub journal_replayed: u64,
}

impl RunnerReport {
    /// Occurrences answered without a fresh simulation — by the cache,
    /// by in-batch deduplication, or (on the supervised path) left
    /// unresolved by quarantine.
    pub fn hits(&self) -> u64 {
        self.served - self.launched
    }

    /// Hit fraction in `[0, 1]`; `0` when nothing was served.
    pub fn hit_rate(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.hits() as f64 / self.served as f64
        }
    }
}

/// A scenario the supervised path gave up on: its task exhausted the
/// retry budget (panic, error, or deadline overrun on every attempt).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedScenario {
    /// First index of this scenario in the input list.
    pub index: usize,
    /// The scenario's content hash.
    pub hash: u64,
    /// Attempts consumed (first try + retries).
    pub attempts: u32,
    /// Human-readable failure description (last attempt's).
    pub reason: String,
}

/// What a supervised sweep produced: one row per input scenario
/// (`None` where the scenario was quarantined), the quarantine details,
/// and the runner's cumulative report.
///
/// A partially-failed sweep is a *result*, not an error — callers
/// decide whether `quarantined` is fatal. This is the difference from
/// [`SweepRunner::run_scenarios`], which fails the whole batch on the
/// first broken scenario.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Results in input order; `None` marks a quarantined scenario.
    pub rows: Vec<Option<ExperimentData>>,
    /// One entry per distinct quarantined scenario, in input order.
    pub quarantined: Vec<QuarantinedScenario>,
    /// The runner's cumulative report after this batch.
    pub report: RunnerReport,
}

impl SweepOutcome {
    /// Whether every input scenario produced a result.
    pub fn is_complete(&self) -> bool {
        self.quarantined.is_empty()
    }

    /// Rows that resolved to a result.
    pub fn completed(&self) -> usize {
        self.rows.iter().filter(|r| r.is_some()).count()
    }
}

/// Executes scenario lists deterministically with a content-addressed
/// run cache.
///
/// ```no_run
/// use rcoal_experiments::engine::SweepRunner;
/// use rcoal_scenario::{Scenario, SweepSpec};
/// use rcoal_core::CoalescingPolicy;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let runner = SweepRunner::new();
/// let sweep = SweepSpec::grid(Scenario::new(CoalescingPolicy::Baseline, 50, 32))
///     .with_policies(vec![CoalescingPolicy::Baseline, CoalescingPolicy::fss(8)?]);
/// let results = runner.run_sweep(&sweep)?;
/// assert_eq!(results.len(), 2);
/// # Ok(())
/// # }
/// ```
pub struct SweepRunner {
    cache: RunCache<ExperimentData>,
    caching: bool,
    threads: Option<usize>,
    supervision: SupervisorPolicy,
    chaos: ChaosPlan,
    journal: Option<SweepJournal>,
    /// Hashes the journal proved complete before this process started.
    replayed: HashSet<u64>,
    metrics: Option<MetricsRegistry>,
    served: AtomicU64,
    launched: AtomicU64,
    retried: AtomicU64,
    quarantined: AtomicU64,
    journal_served: AtomicU64,
    /// Monotonic op counter for chaos panic injection: retries draw
    /// fresh ops, so an injected panic is transient, not permanent.
    chaos_ops: AtomicU64,
}

impl Default for SweepRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepRunner {
    /// A runner with an in-memory cache.
    pub fn new() -> Self {
        SweepRunner {
            cache: RunCache::in_memory(),
            caching: true,
            threads: None,
            supervision: SupervisorPolicy::default(),
            chaos: ChaosPlan::inert(),
            journal: None,
            replayed: HashSet::new(),
            metrics: None,
            served: AtomicU64::new(0),
            launched: AtomicU64::new(0),
            retried: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            journal_served: AtomicU64::new(0),
            chaos_ops: AtomicU64::new(0),
        }
    }

    /// A runner that never caches — every occurrence simulates afresh
    /// (the pre-engine behaviour; kept for benchmarking the cache).
    pub fn uncached() -> Self {
        let mut runner = Self::new();
        runner.caching = false;
        runner
    }

    /// A runner whose cache persists under `dir` across processes.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError::Scenario`] if the directory cannot be
    /// created.
    pub fn with_disk_cache(dir: impl AsRef<Path>) -> Result<Self, ExperimentError> {
        let mut runner = Self::new();
        runner.cache = RunCache::with_disk(dir.as_ref(), encode_run, decode_run)?;
        Ok(runner)
    }

    /// A runner with the full crash-safe store under `dir`: the disk
    /// cache plus an append-only sweep journal ([`JOURNAL_FILE`]).
    ///
    /// Opening the store replays the journal of any previous process —
    /// a sweep killed mid-flight picks up where it crashed, serving the
    /// journaled runs from the cache bit-identically and re-simulating
    /// only the remainder. [`RunnerReport::journal_replayed`] counts
    /// the runs a resume did not redo.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError::Scenario`] if the directory or
    /// journal cannot be created/recovered.
    pub fn with_store(dir: impl AsRef<Path>) -> Result<Self, ExperimentError> {
        let dir = dir.as_ref();
        let mut runner = Self::with_disk_cache(dir)?;
        let journal = SweepJournal::open(dir.join(JOURNAL_FILE))?;
        runner.replayed = journal.replay().completed_set();
        runner.journal = Some(journal);
        Ok(runner)
    }

    /// Pins the worker-thread count for sweeps (`1` = sequential).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Sets the supervision policy (retry budget, backoff, deadline)
    /// used by [`SweepRunner::run_scenarios_supervised`].
    #[must_use]
    pub fn with_supervision(mut self, policy: SupervisorPolicy) -> Self {
        self.supervision = policy;
        self
    }

    /// Arms seeded fault injection: worker panics and the abort switch
    /// fire in the supervised execution path, write-path faults in the
    /// cache. Test-only by intent; the default plan is inert.
    #[must_use]
    pub fn with_chaos(mut self, plan: ChaosPlan) -> Self {
        self.chaos = plan;
        self.cache.set_chaos(plan);
        self
    }

    /// Mirrors runner and cache failure counters into `registry`
    /// (`pool.sweep.*` and `cache.*`).
    #[must_use]
    pub fn with_metrics(mut self, registry: MetricsRegistry) -> Self {
        self.cache.set_metrics(registry.clone());
        self.metrics = Some(registry);
        self
    }

    /// Raw cache traffic counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Occurrences served vs. simulations launched so far.
    pub fn report(&self) -> RunnerReport {
        RunnerReport {
            served: self.served.load(Ordering::Relaxed),
            launched: self.launched.load(Ordering::Relaxed),
            retried: self.retried.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            journal_replayed: self.journal_served.load(Ordering::Relaxed),
        }
    }

    /// Drains the cache's warning events (write failures, quarantined
    /// entries) accumulated so far.
    pub fn take_cache_events(&self) -> Vec<rcoal_telemetry::Event> {
        self.cache.take_events()
    }

    /// Audits every on-disk store entry without modifying anything.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError::Scenario`] if the runner has no disk
    /// store or it cannot be listed.
    pub fn verify_store(&self) -> Result<rcoal_scenario::StoreAudit, ExperimentError> {
        Ok(self.cache.verify()?)
    }

    /// Audits the store, quarantining corrupt entries to `.corrupt`
    /// sidecars.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError::Scenario`] if the runner has no disk
    /// store or it cannot be listed.
    pub fn repair_store(&self) -> Result<rcoal_scenario::StoreAudit, ExperimentError> {
        Ok(self.cache.repair()?)
    }

    /// Expands `spec` and runs the expansion in order.
    ///
    /// # Errors
    ///
    /// Propagates expansion errors ([`ExperimentError::Scenario`]) and
    /// the first (lowest-index) execution failure.
    pub fn run_sweep(&self, spec: &SweepSpec) -> Result<Vec<ExperimentData>, ExperimentError> {
        let scenarios = spec.expand()?;
        self.run_scenarios(&scenarios)
    }

    /// Runs one scenario (through the cache).
    ///
    /// # Errors
    ///
    /// Propagates validation and execution failures.
    pub fn run_one(&self, scenario: &Scenario) -> Result<ExperimentData, ExperimentError> {
        let mut results = self.run_scenarios(std::slice::from_ref(scenario))?;
        results
            .pop()
            .ok_or_else(|| ExperimentError::MissingData("empty scenario batch".into()))
    }

    /// Resolves a scenario (cache first — a cached row is audited
    /// without re-simulating) and runs a leakage audit over its data.
    ///
    /// The audit spec is not part of the scenario's content hash: one
    /// cached row can be audited many times, under many specs, for the
    /// cost of the statistics alone.
    ///
    /// # Errors
    ///
    /// Everything [`SweepRunner::run_one`] can return, plus the audit
    /// failures of [`crate::audit_data`] (e.g. a cycle channel against
    /// a functional-only scenario).
    pub fn audit_one(
        &self,
        scenario: &Scenario,
        spec: &rcoal_audit::AuditSpec,
    ) -> Result<(ExperimentData, rcoal_audit::LeakageReport), ExperimentError> {
        let data = self.run_one(scenario)?;
        let warp_size = scenario_config(scenario).gpu.warp_size;
        let report = crate::audit::audit_data(&data, warp_size, spec)?;
        Ok((data, report))
    }

    /// [`SweepRunner::audit_one`] over a scenario list: resolves every
    /// scenario through the cache-aware batch path, then audits each
    /// row under the same spec. Reports line up index-for-index with
    /// the input.
    ///
    /// # Errors
    ///
    /// Propagates the lowest-index resolution or audit failure.
    pub fn audit_scenarios(
        &self,
        scenarios: &[Scenario],
        spec: &rcoal_audit::AuditSpec,
    ) -> Result<Vec<rcoal_audit::LeakageReport>, ExperimentError> {
        let rows = self.run_scenarios(scenarios)?;
        scenarios
            .iter()
            .zip(&rows)
            .map(|(scenario, data)| {
                let warp_size = scenario_config(scenario).gpu.warp_size;
                crate::audit::audit_data(data, warp_size, spec)
            })
            .collect()
    }

    /// Runs a scenario list: each distinct scenario resolves exactly
    /// once (cache first, then one fresh simulation), and the result
    /// vector lines up index-for-index with the input — duplicates
    /// share one run.
    ///
    /// Distinct missing scenarios fan out across worker threads; each
    /// one then simulates its own launches sequentially (`threads = 1`)
    /// so the machine is not oversubscribed. A batch with a single
    /// missing scenario instead parallelizes *inside* that experiment.
    /// Either way the results are bit-identical — the workspace's
    /// determinism contract.
    ///
    /// # Errors
    ///
    /// Propagates the lowest-index failure, matching
    /// `rcoal_parallel::try_parallel_map`.
    pub fn run_scenarios(
        &self,
        scenarios: &[Scenario],
    ) -> Result<Vec<ExperimentData>, ExperimentError> {
        let mut resolved: HashMap<u64, ExperimentData> = HashMap::new();
        let mut missing: Vec<&Scenario> = Vec::new();
        let mut missing_keys: HashSet<u64> = HashSet::new();
        for scenario in scenarios {
            let key = scenario.content_hash();
            if resolved.contains_key(&key) || missing_keys.contains(&key) {
                continue;
            }
            if self.caching {
                if let Some(data) = self.cache.get(scenario) {
                    resolved.insert(key, data);
                    continue;
                }
            }
            missing.push(scenario);
            missing_keys.insert(key);
        }

        let inner_threads = if missing.len() > 1 { Some(1) } else { None };
        let fresh = try_parallel_map(
            resolve_threads(self.threads),
            &missing,
            |_i, scenario| -> Result<ExperimentData, ExperimentError> {
                let mut cfg = scenario_config(scenario);
                cfg.threads = inner_threads.or(self.threads);
                cfg.run()
            },
        )?;
        for (scenario, data) in missing.iter().zip(fresh) {
            if self.caching {
                self.cache.insert(scenario, data.clone());
            }
            resolved.insert(scenario.content_hash(), data);
        }
        self.launched
            .fetch_add(missing.len() as u64, Ordering::Relaxed);
        self.served
            .fetch_add(scenarios.len() as u64, Ordering::Relaxed);

        let mut remaining = occurrence_counts(scenarios);
        scenarios
            .iter()
            .map(|s| {
                take_or_clone(&mut resolved, &mut remaining, s.content_hash())
                    .ok_or_else(|| ExperimentError::MissingData("unresolved scenario".into()))
            })
            .collect()
    }

    /// Expands `spec` and runs the expansion through the supervised,
    /// crash-safe path.
    ///
    /// # Errors
    ///
    /// Propagates expansion errors only; execution failures land in the
    /// outcome's quarantine list.
    pub fn run_sweep_supervised(&self, spec: &SweepSpec) -> Result<SweepOutcome, ExperimentError> {
        let scenarios = spec.expand()?;
        Ok(self.run_scenarios_supervised(&scenarios))
    }

    /// Runs a scenario list under worker supervision, with per-run
    /// persistence and journaling.
    ///
    /// This is the crash-safe sibling of [`SweepRunner::run_scenarios`],
    /// differing in three ways:
    ///
    /// * **Isolation** — a panicking, failing, or overrunning task is
    ///   retried per the [`SupervisorPolicy`] and, if it keeps failing,
    ///   *quarantined*: its row comes back `None` and the sweep keeps
    ///   going. Nothing short of expansion errors fails the batch.
    /// * **Per-completion persistence** — each fresh result is written
    ///   to the cache and journaled *as it completes*, inside the
    ///   worker, not at batch end. A process killed mid-sweep has
    ///   durably recorded every finished run; re-running under
    ///   [`SweepRunner::with_store`] serves them back bit-identically.
    /// * **Checkpointing** — every journal append is flushed, and every
    ///   [`CHECKPOINT_EVERY`]-th is fsync'd (plus a final sync), so even
    ///   power loss loses at most one checkpoint window of bookkeeping
    ///   (never results: the cache entries themselves are fsync'd).
    ///
    /// The strict path's determinism contract still holds: rows are
    /// bit-identical at any thread count, because supervision only
    /// decides *whether* a result exists, never *which* result wins.
    pub fn run_scenarios_supervised(&self, scenarios: &[Scenario]) -> SweepOutcome {
        let mut resolved: HashMap<u64, ExperimentData> = HashMap::new();
        let mut missing: Vec<&Scenario> = Vec::new();
        let mut missing_keys: HashSet<u64> = HashSet::new();
        let mut first_index: HashMap<u64, usize> = HashMap::new();
        for (i, scenario) in scenarios.iter().enumerate() {
            let key = scenario.content_hash();
            first_index.entry(key).or_insert(i);
            if resolved.contains_key(&key) || missing_keys.contains(&key) {
                continue;
            }
            if self.caching {
                if let Some(data) = self.cache.get(scenario) {
                    if self.replayed.contains(&key) {
                        self.journal_served.fetch_add(1, Ordering::Relaxed);
                    }
                    resolved.insert(key, data);
                    continue;
                }
            }
            missing.push(scenario);
            missing_keys.insert(key);
        }

        let inner_threads = if missing.len() > 1 { Some(1) } else { None };
        let (results, pool_report) = supervised_map(
            resolve_threads(self.threads),
            &self.supervision,
            &missing,
            |_i, scenario| -> Result<ExperimentData, ExperimentError> {
                let op = self.chaos_ops.fetch_add(1, Ordering::Relaxed);
                if self.chaos.panics_on(op) {
                    panic!("injected chaos panic (op {op})");
                }
                let mut cfg = scenario_config(scenario);
                cfg.threads = inner_threads.or(self.threads);
                let data = cfg.run()?;
                // Persist *inside* the worker: a crash after this point
                // cannot lose the completed run.
                if self.caching {
                    self.cache.insert(scenario, data.clone());
                }
                if let Some(journal) = &self.journal {
                    // Journal loss is recoverable (the store stays
                    // authoritative; a lost line costs one re-run), so
                    // an append error must not fail the task.
                    if journal.record_completed(scenario.content_hash()).is_ok() {
                        let appended = journal.appended();
                        if appended.is_multiple_of(CHECKPOINT_EVERY) {
                            let _ = journal.sync();
                        }
                        if self.chaos.abort_after.is_some_and(|n| appended >= n) {
                            // The honest crash: no unwinding, no
                            // destructors, nothing saved by a landing
                            // pad. What the store has is what survives.
                            std::process::abort();
                        }
                    }
                }
                Ok(data)
            },
        );

        let mut quarantined = Vec::new();
        let mut fresh = 0u64;
        for (scenario, result) in missing.iter().zip(results) {
            let key = scenario.content_hash();
            match result {
                Ok(data) => {
                    resolved.insert(key, data);
                    fresh += 1;
                }
                Err(failure) => quarantined.push(QuarantinedScenario {
                    index: first_index.get(&key).copied().unwrap_or(0),
                    hash: key,
                    attempts: failure.attempts,
                    reason: failure.to_string(),
                }),
            }
        }
        if let Some(journal) = &self.journal {
            let _ = journal.sync();
        }
        self.launched.fetch_add(fresh, Ordering::Relaxed);
        self.served
            .fetch_add(scenarios.len() as u64, Ordering::Relaxed);
        self.retried
            .fetch_add(pool_report.outcomes.retried, Ordering::Relaxed);
        self.quarantined
            .fetch_add(pool_report.outcomes.failed(), Ordering::Relaxed);
        if let Some(registry) = &self.metrics {
            pool_report.record_into(registry, "sweep");
        }

        let mut remaining = occurrence_counts(scenarios);
        let rows = scenarios
            .iter()
            .map(|s| take_or_clone(&mut resolved, &mut remaining, s.content_hash()))
            .collect();
        SweepOutcome {
            rows,
            quarantined,
            report: self.report(),
        }
    }
}

/// Occurrences of each content hash in `scenarios`, so result assembly
/// knows when it is serving a hash for the last time.
fn occurrence_counts(scenarios: &[Scenario]) -> HashMap<u64, usize> {
    let mut counts: HashMap<u64, usize> = HashMap::with_capacity(scenarios.len());
    for s in scenarios {
        *counts.entry(s.content_hash()).or_insert(0) += 1;
    }
    counts
}

/// Serves one occurrence of `key` from `resolved`: the last occurrence
/// takes the entry by move, earlier ones clone. [`ExperimentData`]'s
/// per-plaintext vectors are the dominant per-run allocation, so for
/// the common all-distinct sweep this halves the assembly footprint —
/// every row is moved, never deep-copied.
fn take_or_clone(
    resolved: &mut HashMap<u64, ExperimentData>,
    remaining: &mut HashMap<u64, usize>,
    key: u64,
) -> Option<ExperimentData> {
    let n = remaining.get_mut(&key)?;
    *n -= 1;
    if *n == 0 {
        resolved.remove(&key)
    } else {
        resolved.get(&key).cloned()
    }
}

fn u64_arr(items: &[u64]) -> Value {
    Value::Arr(items.iter().map(|&n| Value::u64(n)).collect())
}

fn parse_u64_arr(v: &Value, key: &str) -> Result<Vec<u64>, ScenarioError> {
    v.get(key)
        .and_then(Value::as_arr)
        .ok_or_else(|| ScenarioError::new(format!("{key} must be an array")))?
        .iter()
        .map(|n| {
            n.as_u64()
                .ok_or_else(|| ScenarioError::new(format!("{key} entries must be u64")))
        })
        .collect()
}

fn parse_opt_u64_arr(v: &Value, key: &str) -> Result<Option<Vec<u64>>, ScenarioError> {
    match v.get(key) {
        None => Ok(None),
        Some(_) => Ok(Some(parse_u64_arr(v, key)?)),
    }
}

fn hex_bytes(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn hex_blocks(blocks: &[Block]) -> String {
    let mut out = String::with_capacity(blocks.len() * 32);
    for block in blocks {
        out.push_str(&hex_bytes(block));
    }
    out
}

fn unhex(hex: &str) -> Result<Vec<u8>, ScenarioError> {
    if !hex.len().is_multiple_of(2) {
        return Err(ScenarioError::new("hex string has odd length"));
    }
    hex.as_bytes()
        .chunks(2)
        .map(|pair| {
            let s = std::str::from_utf8(pair)
                .map_err(|_| ScenarioError::new("hex string is not ascii"))?;
            u8::from_str_radix(s, 16)
                .map_err(|_| ScenarioError::new(format!("invalid hex byte {s:?}")))
        })
        .collect()
}

fn unhex_blocks(hex: &str) -> Result<Vec<Block>, ScenarioError> {
    let bytes = unhex(hex)?;
    if bytes.len() % 16 != 0 {
        return Err(ScenarioError::new(
            "ciphertext hex must be a whole number of 16-byte blocks",
        ));
    }
    Ok(bytes
        .chunks(16)
        .map(|chunk| {
            let mut block = [0u8; 16];
            block.copy_from_slice(chunk);
            block
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcoal_scenario::GpuOverrides;
    use rcoal_telemetry::Severity;

    fn tiny(policy: CoalescingPolicy, n: usize) -> Scenario {
        // A real timing scenario kept cheap: 4 plaintexts of one warp.
        Scenario::new(policy, n, 32).with_seed(0xbead)
    }

    #[test]
    fn scenario_config_mirrors_the_scenario() {
        let s = Scenario::selective(CoalescingPolicy::rss_rts(4).unwrap(), 7, 64)
            .with_seed(99)
            .with_key([3; 16])
            .with_gpu(GpuOverrides {
                mshr_entries: Some(8),
                ..GpuOverrides::default()
            })
            .with_telemetry(rcoal_scenario::TelemetryOverrides {
                event_capacity: 5,
                min_severity: Severity::Warn,
            });
        let cfg = scenario_config(&s);
        assert_eq!(cfg.policy, s.policy);
        assert_eq!(cfg.num_plaintexts, 7);
        assert_eq!(cfg.lines, 64);
        assert_eq!(cfg.seed, 99);
        assert_eq!(cfg.key, [3; 16]);
        assert_eq!(cfg.gpu.mshr_entries, 8);
        assert!(cfg.launch.is_some(), "selective sets a launch policy");
        let spec = cfg.telemetry.unwrap();
        assert_eq!(spec.event_capacity, 5);
        assert_eq!(spec.min_severity, Severity::Warn);
        assert!(cfg.threads.is_none(), "threads stay an execution detail");

        let plain = scenario_config(&tiny(CoalescingPolicy::Baseline, 2).functional_only());
        assert!(plain.launch.is_none());
        assert!(!plain.timing);
    }

    #[test]
    fn run_codec_round_trips_bit_identically() {
        for scenario in [
            tiny(CoalescingPolicy::Baseline, 3),
            tiny(CoalescingPolicy::fss(8).unwrap(), 2),
            tiny(CoalescingPolicy::rss_rts(4).unwrap(), 2).functional_only(),
        ] {
            let data = scenario_config(&scenario).run().unwrap();
            let encoded = encode_run(&data).unwrap();
            let back = decode_run(&encoded).unwrap();
            assert_eq!(back, data, "{}", scenario.to_json());
            assert_eq!(encode_run(&back).unwrap(), encoded, "codec is a fixpoint");
        }
    }

    #[test]
    fn telemetry_runs_are_memory_only() {
        let s = tiny(CoalescingPolicy::Baseline, 1).with_telemetry(
            rcoal_scenario::TelemetryOverrides {
                event_capacity: 4,
                min_severity: Severity::Info,
            },
        );
        let data = scenario_config(&s).run().unwrap();
        assert!(data.telemetry.is_some());
        assert_eq!(encode_run(&data), None);
    }

    #[test]
    fn decode_rejects_malformed_documents() {
        assert!(decode_run("{").is_err());
        assert!(decode_run(r#"{"schema":"rcoal-run/v9"}"#).is_err());
        let no_key = r#"{"schema":"rcoal-run/v1","policy":"baseline"}"#;
        assert!(decode_run(no_key).is_err());
    }

    #[test]
    fn cache_hit_is_bit_identical_to_a_fresh_run() {
        let runner = SweepRunner::new();
        let s = tiny(CoalescingPolicy::fss(4).unwrap(), 2);
        let first = runner.run_one(&s).unwrap();
        let second = runner.run_one(&s).unwrap();
        assert_eq!(first, second);
        let report = runner.report();
        assert_eq!((report.served, report.launched), (2, 1));
        assert_eq!(report.hits(), 1);
        // And identical to an uncached runner's result.
        let fresh = SweepRunner::uncached().run_one(&s).unwrap();
        assert_eq!(first, fresh);
    }

    #[test]
    fn duplicate_scenarios_in_one_batch_simulate_once() {
        let runner = SweepRunner::new().with_threads(2);
        let a = tiny(CoalescingPolicy::Baseline, 2);
        let b = tiny(CoalescingPolicy::Disabled, 2).functional_only();
        let batch = vec![a.clone(), b.clone(), a.clone(), a.clone()];
        let results = runner.run_scenarios(&batch).unwrap();
        assert_eq!(results.len(), 4);
        assert_eq!(results[0], results[2]);
        assert_eq!(results[0], results[3]);
        assert_ne!(results[0], results[1]);
        let report = runner.report();
        assert_eq!(report.served, 4);
        assert_eq!(report.launched, 2, "two distinct scenarios");
        assert_eq!(report.hits(), 2);
        assert!((report.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn uncached_runner_always_simulates() {
        let runner = SweepRunner::uncached();
        let s = tiny(CoalescingPolicy::Baseline, 1).functional_only();
        runner.run_one(&s).unwrap();
        runner.run_one(&s).unwrap();
        let report = runner.report();
        assert_eq!(report.launched, 2);
        assert_eq!(report.hits(), 0);
        assert_eq!(runner.cache_stats().hits, 0);
    }

    #[test]
    fn disk_cache_round_trips_across_runners() {
        let dir =
            std::env::temp_dir().join(format!("rcoal-engine-disk-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s = tiny(CoalescingPolicy::rss(4).unwrap(), 2);
        let first = {
            let runner = SweepRunner::with_disk_cache(&dir).unwrap();
            runner.run_one(&s).unwrap()
        };
        let runner = SweepRunner::with_disk_cache(&dir).unwrap();
        let second = runner.run_one(&s).unwrap();
        assert_eq!(first, second, "disk hit is bit-identical");
        assert_eq!(runner.report().launched, 0);
        assert_eq!(runner.cache_stats().disk_hits, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn run_sweep_expands_and_executes_in_order() {
        let runner = SweepRunner::new();
        let sweep = SweepSpec::grid(tiny(CoalescingPolicy::Baseline, 2).functional_only())
            .with_policies(vec![
                CoalescingPolicy::Baseline,
                CoalescingPolicy::fss(8).unwrap(),
            ]);
        let results = runner.run_sweep(&sweep).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].policy, CoalescingPolicy::Baseline);
        assert_eq!(results[1].policy, CoalescingPolicy::fss(8).unwrap());
        // Expansion errors surface as scenario errors.
        let bad = SweepSpec::default();
        assert!(matches!(
            runner.run_sweep(&bad),
            Err(ExperimentError::Scenario(_))
        ));
    }

    /// A scenario the simulator rejects (FSS subwarps not dividing the
    /// warp), for exercising failure paths.
    fn broken() -> Scenario {
        Scenario::new(CoalescingPolicy::fss(32).unwrap(), 1, 32)
            .with_gpu(GpuOverrides {
                warp_size: Some(8),
                ..GpuOverrides::default()
            })
            .functional_only()
    }

    #[test]
    fn supervised_sweep_quarantines_instead_of_failing() {
        let runner = SweepRunner::new();
        let good = tiny(CoalescingPolicy::Baseline, 1).functional_only();
        let batch = vec![good.clone(), broken(), good.clone()];
        let outcome = runner.run_scenarios_supervised(&batch);
        assert!(!outcome.is_complete());
        assert_eq!(outcome.rows.len(), 3);
        assert!(outcome.rows[0].is_some());
        assert!(outcome.rows[1].is_none(), "broken row is None, not fatal");
        assert_eq!(outcome.rows[0], outcome.rows[2], "dedup still applies");
        assert_eq!(outcome.completed(), 2);
        assert_eq!(outcome.quarantined.len(), 1);
        let q = &outcome.quarantined[0];
        assert_eq!((q.index, q.hash), (1, broken().content_hash()));
        assert!(q.attempts >= 1);
        assert_eq!(outcome.report.quarantined, 1);
        // The runner stays usable: the good scenario now serves from
        // cache and a fresh batch succeeds outright.
        let again = runner.run_scenarios_supervised(std::slice::from_ref(&good));
        assert!(again.is_complete());
        assert_eq!(again.report.launched, 1, "good run was cached");
    }

    #[test]
    fn supervised_rows_match_the_strict_path_bit_identically() {
        let scenarios = vec![
            tiny(CoalescingPolicy::Baseline, 2).functional_only(),
            tiny(CoalescingPolicy::fss(8).unwrap(), 2).functional_only(),
            tiny(CoalescingPolicy::rss(4).unwrap(), 2).functional_only(),
        ];
        let strict = SweepRunner::new().run_scenarios(&scenarios).unwrap();
        let supervised = SweepRunner::new()
            .with_threads(2)
            .run_scenarios_supervised(&scenarios);
        assert!(supervised.is_complete());
        let rows: Vec<ExperimentData> = supervised.rows.into_iter().flatten().collect();
        assert_eq!(rows, strict);
    }

    #[test]
    fn store_resume_serves_journaled_runs_bit_identically() {
        let dir =
            std::env::temp_dir().join(format!("rcoal-engine-store-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let scenarios = vec![
            tiny(CoalescingPolicy::Baseline, 1).functional_only(),
            tiny(CoalescingPolicy::Disabled, 1).functional_only(),
        ];
        let first = {
            let runner = SweepRunner::with_store(&dir).unwrap();
            let outcome = runner.run_scenarios_supervised(&scenarios);
            assert!(outcome.is_complete());
            assert_eq!(outcome.report.launched, 2);
            assert_eq!(outcome.report.journal_replayed, 0);
            outcome.rows
        };
        assert!(dir.join(super::JOURNAL_FILE).exists());
        // A second process (fresh runner, same store) re-simulates
        // nothing: the journal proves completion, the cache serves the
        // exact bytes.
        let runner = SweepRunner::with_store(&dir).unwrap();
        let outcome = runner.run_scenarios_supervised(&scenarios);
        assert!(outcome.is_complete());
        assert_eq!(outcome.report.launched, 0, "nothing re-simulated");
        assert_eq!(outcome.report.journal_replayed, 2);
        assert_eq!(outcome.rows, first, "resume is bit-identical");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chaos_panics_never_lose_tasks() {
        use rcoal_scenario::ChaosPlan;
        // Aggressive panic injection, single-threaded for a
        // deterministic op schedule. Every input must end as a result
        // or an accounted quarantine — never silently vanish.
        let runner = SweepRunner::new()
            .with_threads(1)
            .with_chaos(ChaosPlan::seeded(11).with_panics(2));
        let scenarios: Vec<Scenario> = (0..6)
            .map(|i| {
                tiny(CoalescingPolicy::Baseline, 1)
                    .with_seed(0x1000 + i)
                    .functional_only()
            })
            .collect();
        let outcome = runner.run_scenarios_supervised(&scenarios);
        assert_eq!(outcome.rows.len(), 6);
        assert_eq!(
            outcome.completed() + outcome.quarantined.len(),
            6,
            "every task accounted for"
        );
        for q in &outcome.quarantined {
            assert!(q.reason.contains("panic"), "{}", q.reason);
        }
        let report = outcome.report;
        assert!(
            report.retried > 0 || report.quarantined > 0,
            "period-2 injection must have fired: {report:?}"
        );
    }

    #[test]
    fn execution_failures_propagate() {
        // FSS over a warp the subwarp count does not divide fails in
        // the simulator; the runner must surface it, not cache it.
        let runner = SweepRunner::new();
        let bad = Scenario::new(CoalescingPolicy::fss(32).unwrap(), 1, 32)
            .with_gpu(GpuOverrides {
                warp_size: Some(8),
                ..GpuOverrides::default()
            })
            .functional_only();
        assert!(runner.run_one(&bad).is_err());
        assert_eq!(runner.report().launched, 0, "failed runs are not counted");
    }
}
