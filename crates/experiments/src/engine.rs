//! The sweep engine: executes declarative scenarios through the
//! experiment pipeline with a content-addressed run cache.
//!
//! This is where the dependency layers meet: `rcoal-scenario` describes
//! runs as data ([`Scenario`], [`SweepSpec`], [`RunCache`]) without
//! knowing how to execute them; this module supplies the three missing
//! pieces —
//!
//! * [`scenario_config`]: scenario → [`ExperimentConfig`] conversion,
//! * the `rcoal-run/v1` disk codec for [`ExperimentData`]
//!   ([`encode_run`] / [`decode_run`]), and
//! * [`SweepRunner`]: deterministic, cache-aware execution of scenario
//!   lists through `rcoal-parallel`.
//!
//! ## Execution contract
//!
//! For a scenario list, the runner resolves each *distinct* scenario
//! (by content hash) exactly once — from the cache when possible,
//! otherwise by one fresh simulation — and assembles results in input
//! order. Because experiment results are a pure function of the
//! scenario (bit-identical at any thread count), a cache hit is
//! indistinguishable from a fresh run; the equivalence test pins this.
//!
//! ## Caching policy
//!
//! Runs carrying telemetry stay memory-only (the codec declines to
//! encode them: traces are bulky and mostly write-once); everything
//! else round-trips losslessly through JSON — [`ExperimentData`] is
//! integers and byte blocks, no floats — so disk hits are exact.

use crate::error::ExperimentError;
use crate::run::{ExperimentConfig, ExperimentData};
use crate::telemetry::TelemetrySpec;
use rcoal_aes::Block;
use rcoal_core::CoalescingPolicy;
use rcoal_parallel::{resolve_threads, try_parallel_map};
use rcoal_scenario::json::{ObjBuilder, Value};
use rcoal_scenario::{CacheStats, RunCache, Scenario, ScenarioError, SweepSpec};
use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Schema identifier of one serialized run result.
pub const RUN_SCHEMA: &str = "rcoal-run/v1";

/// Lowers a scenario onto the experiment layer. Thread counts are an
/// execution detail, so the returned config keeps `threads: None`; the
/// runner overrides it per batch.
pub fn scenario_config(scenario: &Scenario) -> ExperimentConfig {
    let mut cfg = if scenario.selective {
        ExperimentConfig::selective(scenario.policy, scenario.num_plaintexts, scenario.lines)
    } else {
        ExperimentConfig::new(scenario.policy, scenario.num_plaintexts, scenario.lines)
    };
    cfg.seed = scenario.seed;
    if let Some(key) = scenario.key {
        cfg.key = key;
    }
    cfg.gpu = scenario.gpu_config();
    cfg.timing = scenario.timing;
    cfg.faults = scenario.faults.clone();
    cfg.telemetry = scenario.telemetry.map(|t| {
        TelemetrySpec::full()
            .with_event_capacity(t.event_capacity)
            .with_min_severity(t.min_severity)
    });
    cfg
}

/// Serializes a run result to its `rcoal-run/v1` JSON form.
///
/// Returns `None` for telemetry-bearing runs, which stay memory-only
/// (see the module docs); every other run encodes losslessly.
pub fn encode_run(data: &ExperimentData) -> Option<String> {
    run_to_value(data).map(|doc| doc.to_json())
}

/// Conformance hook: the `rcoal-run/v1` document of a run as a JSON
/// [`Value`] tree (the exact structure [`encode_run`] serializes).
///
/// Golden-master fixtures snapshot this value so drift diffs can point
/// at individual fields instead of one long JSON line. Returns `None`
/// for telemetry-bearing runs, like [`encode_run`].
pub fn run_to_value(data: &ExperimentData) -> Option<Value> {
    if data.telemetry.is_some() {
        return None;
    }
    let ciphertexts = Value::Arr(
        data.ciphertexts
            .iter()
            .map(|lines| Value::str(hex_blocks(lines)))
            .collect(),
    );
    let by_byte = Value::Arr(
        data.last_round_accesses_by_byte
            .iter()
            .map(|row| Value::Arr(row.iter().map(|&n| Value::u64(n)).collect()))
            .collect(),
    );
    let doc = ObjBuilder::new()
        .field("schema", Value::str(RUN_SCHEMA))
        .field("policy", Value::str(data.policy.to_string()))
        .field("key", Value::str(hex_bytes(&data.key)))
        .field("ciphertexts", ciphertexts)
        .field("last_round_accesses", u64_arr(&data.last_round_accesses))
        .field("last_round_accesses_by_byte", by_byte)
        .field("total_accesses", u64_arr(&data.total_accesses))
        .field("total_requests", u64_arr(&data.total_requests))
        .opt_field(
            "last_round_cycles",
            data.last_round_cycles.as_deref().map(u64_arr),
        )
        .opt_field("total_cycles", data.total_cycles.as_deref().map(u64_arr))
        .build();
    Some(doc)
}

/// Parses a run result back from its `rcoal-run/v1` form.
///
/// # Errors
///
/// Returns a [`ScenarioError`] for syntax errors, schema mismatches, or
/// ill-formed fields.
pub fn decode_run(input: &str) -> Result<ExperimentData, ScenarioError> {
    let v = Value::parse(input).map_err(|e| ScenarioError::new(e.to_string()))?;
    let schema = v.get("schema").and_then(Value::as_str).unwrap_or_default();
    if schema != RUN_SCHEMA {
        return Err(ScenarioError::new(format!(
            "unsupported run schema {schema:?} (expected {RUN_SCHEMA:?})"
        )));
    }
    let policy = v
        .get("policy")
        .and_then(Value::as_str)
        .ok_or_else(|| ScenarioError::new("run policy must be a string"))?
        .parse::<CoalescingPolicy>()
        .map_err(|e| ScenarioError::new(e.to_string()))?;
    let key_hex = v
        .get("key")
        .and_then(Value::as_str)
        .ok_or_else(|| ScenarioError::new("run key must be a hex string"))?;
    let key_bytes = unhex(key_hex)?;
    let key: [u8; 16] = key_bytes
        .try_into()
        .map_err(|_| ScenarioError::new("run key must be 16 bytes"))?;
    let ciphertexts = v
        .get("ciphertexts")
        .and_then(Value::as_arr)
        .ok_or_else(|| ScenarioError::new("run ciphertexts must be an array"))?
        .iter()
        .map(|item| {
            let hex = item
                .as_str()
                .ok_or_else(|| ScenarioError::new("ciphertext entries must be hex strings"))?;
            Ok(Arc::new(unhex_blocks(hex)?))
        })
        .collect::<Result<Vec<Arc<Vec<Block>>>, ScenarioError>>()?;
    let last_round_accesses = parse_u64_arr(&v, "last_round_accesses")?;
    let by_byte = v
        .get("last_round_accesses_by_byte")
        .and_then(Value::as_arr)
        .ok_or_else(|| ScenarioError::new("last_round_accesses_by_byte must be an array"))?
        .iter()
        .map(|row| {
            let nums = row
                .as_arr()
                .ok_or_else(|| ScenarioError::new("by-byte rows must be arrays"))?
                .iter()
                .map(|n| {
                    n.as_u64()
                        .ok_or_else(|| ScenarioError::new("by-byte entries must be u64"))
                })
                .collect::<Result<Vec<u64>, ScenarioError>>()?;
            <[u64; 16]>::try_from(nums)
                .map_err(|_| ScenarioError::new("by-byte rows must have 16 entries"))
        })
        .collect::<Result<Vec<[u64; 16]>, ScenarioError>>()?;
    Ok(ExperimentData {
        policy,
        key,
        ciphertexts,
        last_round_accesses,
        last_round_accesses_by_byte: by_byte,
        total_accesses: parse_u64_arr(&v, "total_accesses")?,
        total_requests: parse_u64_arr(&v, "total_requests")?,
        last_round_cycles: parse_opt_u64_arr(&v, "last_round_cycles")?,
        total_cycles: parse_opt_u64_arr(&v, "total_cycles")?,
        telemetry: None,
    })
}

/// What a [`SweepRunner`] did so far: occurrences served, simulations
/// actually launched, and the hits that made up the difference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunnerReport {
    /// Scenario occurrences served (input-list entries, duplicates
    /// included).
    pub served: u64,
    /// Fresh simulations performed.
    pub launched: u64,
}

impl RunnerReport {
    /// Occurrences answered without a fresh simulation — by the cache or
    /// by in-batch deduplication.
    pub fn hits(&self) -> u64 {
        self.served - self.launched
    }

    /// Hit fraction in `[0, 1]`; `0` when nothing was served.
    pub fn hit_rate(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.hits() as f64 / self.served as f64
        }
    }
}

/// Executes scenario lists deterministically with a content-addressed
/// run cache.
///
/// ```no_run
/// use rcoal_experiments::engine::SweepRunner;
/// use rcoal_scenario::{Scenario, SweepSpec};
/// use rcoal_core::CoalescingPolicy;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let runner = SweepRunner::new();
/// let sweep = SweepSpec::grid(Scenario::new(CoalescingPolicy::Baseline, 50, 32))
///     .with_policies(vec![CoalescingPolicy::Baseline, CoalescingPolicy::fss(8)?]);
/// let results = runner.run_sweep(&sweep)?;
/// assert_eq!(results.len(), 2);
/// # Ok(())
/// # }
/// ```
pub struct SweepRunner {
    cache: RunCache<ExperimentData>,
    caching: bool,
    threads: Option<usize>,
    served: AtomicU64,
    launched: AtomicU64,
}

impl Default for SweepRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepRunner {
    /// A runner with an in-memory cache.
    pub fn new() -> Self {
        SweepRunner {
            cache: RunCache::in_memory(),
            caching: true,
            threads: None,
            served: AtomicU64::new(0),
            launched: AtomicU64::new(0),
        }
    }

    /// A runner that never caches — every occurrence simulates afresh
    /// (the pre-engine behaviour; kept for benchmarking the cache).
    pub fn uncached() -> Self {
        let mut runner = Self::new();
        runner.caching = false;
        runner
    }

    /// A runner whose cache persists under `dir` across processes.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError::Scenario`] if the directory cannot be
    /// created.
    pub fn with_disk_cache(dir: impl AsRef<Path>) -> Result<Self, ExperimentError> {
        let mut runner = Self::new();
        runner.cache = RunCache::with_disk(dir.as_ref(), encode_run, decode_run)?;
        Ok(runner)
    }

    /// Pins the worker-thread count for sweeps (`1` = sequential).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Raw cache traffic counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Occurrences served vs. simulations launched so far.
    pub fn report(&self) -> RunnerReport {
        RunnerReport {
            served: self.served.load(Ordering::Relaxed),
            launched: self.launched.load(Ordering::Relaxed),
        }
    }

    /// Expands `spec` and runs the expansion in order.
    ///
    /// # Errors
    ///
    /// Propagates expansion errors ([`ExperimentError::Scenario`]) and
    /// the first (lowest-index) execution failure.
    pub fn run_sweep(&self, spec: &SweepSpec) -> Result<Vec<ExperimentData>, ExperimentError> {
        let scenarios = spec.expand()?;
        self.run_scenarios(&scenarios)
    }

    /// Runs one scenario (through the cache).
    ///
    /// # Errors
    ///
    /// Propagates validation and execution failures.
    pub fn run_one(&self, scenario: &Scenario) -> Result<ExperimentData, ExperimentError> {
        let mut results = self.run_scenarios(std::slice::from_ref(scenario))?;
        results
            .pop()
            .ok_or_else(|| ExperimentError::MissingData("empty scenario batch".into()))
    }

    /// Runs a scenario list: each distinct scenario resolves exactly
    /// once (cache first, then one fresh simulation), and the result
    /// vector lines up index-for-index with the input — duplicates
    /// share one run.
    ///
    /// Distinct missing scenarios fan out across worker threads; each
    /// one then simulates its own launches sequentially (`threads = 1`)
    /// so the machine is not oversubscribed. A batch with a single
    /// missing scenario instead parallelizes *inside* that experiment.
    /// Either way the results are bit-identical — the workspace's
    /// determinism contract.
    ///
    /// # Errors
    ///
    /// Propagates the lowest-index failure, matching
    /// `rcoal_parallel::try_parallel_map`.
    pub fn run_scenarios(
        &self,
        scenarios: &[Scenario],
    ) -> Result<Vec<ExperimentData>, ExperimentError> {
        let mut resolved: HashMap<u64, ExperimentData> = HashMap::new();
        let mut missing: Vec<&Scenario> = Vec::new();
        let mut missing_keys: HashSet<u64> = HashSet::new();
        for scenario in scenarios {
            let key = scenario.content_hash();
            if resolved.contains_key(&key) || missing_keys.contains(&key) {
                continue;
            }
            if self.caching {
                if let Some(data) = self.cache.get(scenario) {
                    resolved.insert(key, data);
                    continue;
                }
            }
            missing.push(scenario);
            missing_keys.insert(key);
        }

        let inner_threads = if missing.len() > 1 { Some(1) } else { None };
        let fresh = try_parallel_map(
            resolve_threads(self.threads),
            &missing,
            |_i, scenario| -> Result<ExperimentData, ExperimentError> {
                let mut cfg = scenario_config(scenario);
                cfg.threads = inner_threads.or(self.threads);
                cfg.run()
            },
        )?;
        for (scenario, data) in missing.iter().zip(fresh) {
            if self.caching {
                self.cache.insert(scenario, data.clone());
            }
            resolved.insert(scenario.content_hash(), data);
        }
        self.launched
            .fetch_add(missing.len() as u64, Ordering::Relaxed);
        self.served
            .fetch_add(scenarios.len() as u64, Ordering::Relaxed);

        scenarios
            .iter()
            .map(|s| {
                resolved
                    .get(&s.content_hash())
                    .cloned()
                    .ok_or_else(|| ExperimentError::MissingData("unresolved scenario".into()))
            })
            .collect()
    }
}

fn u64_arr(items: &[u64]) -> Value {
    Value::Arr(items.iter().map(|&n| Value::u64(n)).collect())
}

fn parse_u64_arr(v: &Value, key: &str) -> Result<Vec<u64>, ScenarioError> {
    v.get(key)
        .and_then(Value::as_arr)
        .ok_or_else(|| ScenarioError::new(format!("{key} must be an array")))?
        .iter()
        .map(|n| {
            n.as_u64()
                .ok_or_else(|| ScenarioError::new(format!("{key} entries must be u64")))
        })
        .collect()
}

fn parse_opt_u64_arr(v: &Value, key: &str) -> Result<Option<Vec<u64>>, ScenarioError> {
    match v.get(key) {
        None => Ok(None),
        Some(_) => Ok(Some(parse_u64_arr(v, key)?)),
    }
}

fn hex_bytes(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn hex_blocks(blocks: &[Block]) -> String {
    let mut out = String::with_capacity(blocks.len() * 32);
    for block in blocks {
        out.push_str(&hex_bytes(block));
    }
    out
}

fn unhex(hex: &str) -> Result<Vec<u8>, ScenarioError> {
    if !hex.len().is_multiple_of(2) {
        return Err(ScenarioError::new("hex string has odd length"));
    }
    hex.as_bytes()
        .chunks(2)
        .map(|pair| {
            let s = std::str::from_utf8(pair)
                .map_err(|_| ScenarioError::new("hex string is not ascii"))?;
            u8::from_str_radix(s, 16)
                .map_err(|_| ScenarioError::new(format!("invalid hex byte {s:?}")))
        })
        .collect()
}

fn unhex_blocks(hex: &str) -> Result<Vec<Block>, ScenarioError> {
    let bytes = unhex(hex)?;
    if bytes.len() % 16 != 0 {
        return Err(ScenarioError::new(
            "ciphertext hex must be a whole number of 16-byte blocks",
        ));
    }
    Ok(bytes
        .chunks(16)
        .map(|chunk| {
            let mut block = [0u8; 16];
            block.copy_from_slice(chunk);
            block
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcoal_scenario::GpuOverrides;
    use rcoal_telemetry::Severity;

    fn tiny(policy: CoalescingPolicy, n: usize) -> Scenario {
        // A real timing scenario kept cheap: 4 plaintexts of one warp.
        Scenario::new(policy, n, 32).with_seed(0xbead)
    }

    #[test]
    fn scenario_config_mirrors_the_scenario() {
        let s = Scenario::selective(CoalescingPolicy::rss_rts(4).unwrap(), 7, 64)
            .with_seed(99)
            .with_key([3; 16])
            .with_gpu(GpuOverrides {
                mshr_entries: Some(8),
                ..GpuOverrides::default()
            })
            .with_telemetry(rcoal_scenario::TelemetryOverrides {
                event_capacity: 5,
                min_severity: Severity::Warn,
            });
        let cfg = scenario_config(&s);
        assert_eq!(cfg.policy, s.policy);
        assert_eq!(cfg.num_plaintexts, 7);
        assert_eq!(cfg.lines, 64);
        assert_eq!(cfg.seed, 99);
        assert_eq!(cfg.key, [3; 16]);
        assert_eq!(cfg.gpu.mshr_entries, 8);
        assert!(cfg.launch.is_some(), "selective sets a launch policy");
        let spec = cfg.telemetry.unwrap();
        assert_eq!(spec.event_capacity, 5);
        assert_eq!(spec.min_severity, Severity::Warn);
        assert!(cfg.threads.is_none(), "threads stay an execution detail");

        let plain = scenario_config(&tiny(CoalescingPolicy::Baseline, 2).functional_only());
        assert!(plain.launch.is_none());
        assert!(!plain.timing);
    }

    #[test]
    fn run_codec_round_trips_bit_identically() {
        for scenario in [
            tiny(CoalescingPolicy::Baseline, 3),
            tiny(CoalescingPolicy::fss(8).unwrap(), 2),
            tiny(CoalescingPolicy::rss_rts(4).unwrap(), 2).functional_only(),
        ] {
            let data = scenario_config(&scenario).run().unwrap();
            let encoded = encode_run(&data).unwrap();
            let back = decode_run(&encoded).unwrap();
            assert_eq!(back, data, "{}", scenario.to_json());
            assert_eq!(encode_run(&back).unwrap(), encoded, "codec is a fixpoint");
        }
    }

    #[test]
    fn telemetry_runs_are_memory_only() {
        let s = tiny(CoalescingPolicy::Baseline, 1).with_telemetry(
            rcoal_scenario::TelemetryOverrides {
                event_capacity: 4,
                min_severity: Severity::Info,
            },
        );
        let data = scenario_config(&s).run().unwrap();
        assert!(data.telemetry.is_some());
        assert_eq!(encode_run(&data), None);
    }

    #[test]
    fn decode_rejects_malformed_documents() {
        assert!(decode_run("{").is_err());
        assert!(decode_run(r#"{"schema":"rcoal-run/v9"}"#).is_err());
        let no_key = r#"{"schema":"rcoal-run/v1","policy":"baseline"}"#;
        assert!(decode_run(no_key).is_err());
    }

    #[test]
    fn cache_hit_is_bit_identical_to_a_fresh_run() {
        let runner = SweepRunner::new();
        let s = tiny(CoalescingPolicy::fss(4).unwrap(), 2);
        let first = runner.run_one(&s).unwrap();
        let second = runner.run_one(&s).unwrap();
        assert_eq!(first, second);
        let report = runner.report();
        assert_eq!((report.served, report.launched), (2, 1));
        assert_eq!(report.hits(), 1);
        // And identical to an uncached runner's result.
        let fresh = SweepRunner::uncached().run_one(&s).unwrap();
        assert_eq!(first, fresh);
    }

    #[test]
    fn duplicate_scenarios_in_one_batch_simulate_once() {
        let runner = SweepRunner::new().with_threads(2);
        let a = tiny(CoalescingPolicy::Baseline, 2);
        let b = tiny(CoalescingPolicy::Disabled, 2).functional_only();
        let batch = vec![a.clone(), b.clone(), a.clone(), a.clone()];
        let results = runner.run_scenarios(&batch).unwrap();
        assert_eq!(results.len(), 4);
        assert_eq!(results[0], results[2]);
        assert_eq!(results[0], results[3]);
        assert_ne!(results[0], results[1]);
        let report = runner.report();
        assert_eq!(report.served, 4);
        assert_eq!(report.launched, 2, "two distinct scenarios");
        assert_eq!(report.hits(), 2);
        assert!((report.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn uncached_runner_always_simulates() {
        let runner = SweepRunner::uncached();
        let s = tiny(CoalescingPolicy::Baseline, 1).functional_only();
        runner.run_one(&s).unwrap();
        runner.run_one(&s).unwrap();
        let report = runner.report();
        assert_eq!(report.launched, 2);
        assert_eq!(report.hits(), 0);
        assert_eq!(runner.cache_stats().hits, 0);
    }

    #[test]
    fn disk_cache_round_trips_across_runners() {
        let dir =
            std::env::temp_dir().join(format!("rcoal-engine-disk-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s = tiny(CoalescingPolicy::rss(4).unwrap(), 2);
        let first = {
            let runner = SweepRunner::with_disk_cache(&dir).unwrap();
            runner.run_one(&s).unwrap()
        };
        let runner = SweepRunner::with_disk_cache(&dir).unwrap();
        let second = runner.run_one(&s).unwrap();
        assert_eq!(first, second, "disk hit is bit-identical");
        assert_eq!(runner.report().launched, 0);
        assert_eq!(runner.cache_stats().disk_hits, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn run_sweep_expands_and_executes_in_order() {
        let runner = SweepRunner::new();
        let sweep = SweepSpec::grid(tiny(CoalescingPolicy::Baseline, 2).functional_only())
            .with_policies(vec![
                CoalescingPolicy::Baseline,
                CoalescingPolicy::fss(8).unwrap(),
            ]);
        let results = runner.run_sweep(&sweep).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].policy, CoalescingPolicy::Baseline);
        assert_eq!(results[1].policy, CoalescingPolicy::fss(8).unwrap());
        // Expansion errors surface as scenario errors.
        let bad = SweepSpec::default();
        assert!(matches!(
            runner.run_sweep(&bad),
            Err(ExperimentError::Scenario(_))
        ));
    }

    #[test]
    fn execution_failures_propagate() {
        // FSS over a warp the subwarp count does not divide fails in
        // the simulator; the runner must surface it, not cache it.
        let runner = SweepRunner::new();
        let bad = Scenario::new(CoalescingPolicy::fss(32).unwrap(), 1, 32)
            .with_gpu(GpuOverrides {
                warp_size: Some(8),
                ..GpuOverrides::default()
            })
            .functional_only();
        assert!(runner.run_one(&bad).is_err());
        assert_eq!(runner.report().launched, 0, "failed runs are not counted");
    }
}
