//! Typed errors for the experiment pipeline.
//!
//! Every failure an experiment can hit — a bad configuration, a
//! simulator fault, a policy/warp-size mismatch, an attack-driver
//! domain violation, or asking a functional-only run for cycle data —
//! surfaces here as one [`ExperimentError`], with the underlying error
//! preserved through [`std::error::Error::source`].

use rcoal_attack::AttackError;
use rcoal_core::PolicyError;
use rcoal_gpu_sim::SimError;
use rcoal_scenario::ScenarioError;
use std::error::Error;
use std::fmt;

/// Errors reported by the experiment pipeline and figure generators.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ExperimentError {
    /// The [`crate::ExperimentConfig`] failed validation before any
    /// simulation started.
    Config(String),
    /// The GPU simulator failed (cycle limit, watchdog stall, bad GPU
    /// configuration, injected-fault livelock, ...).
    Sim(SimError),
    /// A coalescing policy could not be constructed or applied.
    Policy(PolicyError),
    /// An attack driver rejected its input (empty samples, byte index,
    /// numeric domain).
    Attack(AttackError),
    /// A cycle-based quantity was requested from a functional-only run.
    TimingUnavailable {
        /// The quantity that was asked for.
        what: &'static str,
    },
    /// A figure generator needed data that the preceding sweeps did not
    /// produce (e.g. an empty grid cell).
    MissingData(String),
    /// A scenario or sweep spec failed to parse, validate, or expand.
    Scenario(ScenarioError),
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::Config(msg) => {
                write!(f, "invalid experiment configuration: {msg}")
            }
            ExperimentError::Sim(e) => write!(f, "simulation failed: {e}"),
            ExperimentError::Policy(e) => write!(f, "coalescing policy failed: {e}"),
            ExperimentError::Attack(e) => write!(f, "attack driver failed: {e}"),
            ExperimentError::TimingUnavailable { what } => write!(
                f,
                "{what} requires cycle timing, but the experiment ran functional-only"
            ),
            ExperimentError::MissingData(msg) => {
                write!(f, "experiment produced no data: {msg}")
            }
            ExperimentError::Scenario(e) => write!(f, "scenario failed: {e}"),
        }
    }
}

impl Error for ExperimentError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExperimentError::Sim(e) => Some(e),
            ExperimentError::Policy(e) => Some(e),
            ExperimentError::Attack(e) => Some(e),
            ExperimentError::Scenario(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for ExperimentError {
    fn from(e: SimError) -> Self {
        // Keep the policy chain flat: a policy failure inside the
        // simulator is still a policy failure to the experimenter.
        match e {
            SimError::Policy(p) => ExperimentError::Policy(p),
            other => ExperimentError::Sim(other),
        }
    }
}

impl From<PolicyError> for ExperimentError {
    fn from(e: PolicyError) -> Self {
        ExperimentError::Policy(e)
    }
}

impl From<AttackError> for ExperimentError {
    fn from(e: AttackError) -> Self {
        ExperimentError::Attack(e)
    }
}

impl From<ScenarioError> for ExperimentError {
    fn from(e: ScenarioError) -> Self {
        ExperimentError::Scenario(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_chain() {
        let e = ExperimentError::from(SimError::CycleLimit { limit: 10 });
        assert!(e.to_string().contains("cycle limit"));
        assert!(e.source().is_some());

        let e = ExperimentError::TimingUnavailable {
            what: "mean_total_cycles",
        };
        assert!(e.to_string().contains("functional-only"));
        assert!(e.source().is_none());

        let e = ExperimentError::from(AttackError::NoSamples);
        assert!(e.to_string().contains("no attack samples"));
    }

    #[test]
    fn sim_policy_errors_flatten_to_policy() {
        let p = rcoal_core::CoalescingPolicy::fss(7).unwrap_err();
        let via_sim = ExperimentError::from(SimError::Policy(p.clone()));
        assert_eq!(via_sim, ExperimentError::Policy(p));
    }
}
