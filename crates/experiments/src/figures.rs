//! One generator per table/figure of the paper's evaluation. Each
//! function returns typed rows; the bench targets in `rcoal-bench` print
//! them and EXPERIMENTS.md records paper-vs-measured.

//! Every generator is a *declarative sweep plus a typed fold*: it
//! describes its simulations as a [`SweepSpec`] (a policy grid or an
//! explicit scenario list) and executes them through a
//! [`SweepRunner`], which deduplicates scenarios by content hash,
//! consults the run cache, and fans distinct misses out across worker
//! threads (one worker per configuration, each experiment pinned to one
//! inner thread — results are collected in scenario order and are
//! bit-identical to a sequential run). The fold then turns raw
//! [`ExperimentData`] into figure rows, parallelizing only the
//! attack-side post-processing.
//!
//! Each generator has a `*_with` variant taking a shared runner — pass
//! the same runner to several generators and configurations they have
//! in common (the baseline timing run, most prominently) simulate
//! exactly once. The legacy signatures are kept as thin wrappers over a
//! fresh private runner.

use crate::engine::SweepRunner;
use crate::error::ExperimentError;
use crate::run::{ExperimentData, TimingSource};
use rcoal_attack::{pearson, Attack};
use rcoal_core::{CoalescingPolicy, PolicyError, SizeDistribution};
use rcoal_parallel::{resolve_threads, try_parallel_map};
use rcoal_rng::SeedableRng;
use rcoal_rng::StdRng;
use rcoal_scenario::{GpuOverrides, Scenario, SweepSpec};
use rcoal_theory::RCoalScore;

/// Subwarp counts the paper sweeps in its defense evaluations.
pub const SUBWARP_SWEEP: [usize; 4] = [2, 4, 8, 16];

/// The four defense mechanisms of §VI, constructed for `m` subwarps.
///
/// # Errors
///
/// Propagates the policy constructors' validation ([`PolicyError`]) when
/// `m` does not divide the warp size (FSS) or exceeds it (RSS).
pub fn mechanisms(m: usize) -> Result<Vec<(&'static str, CoalescingPolicy)>, PolicyError> {
    Ok(vec![
        ("FSS", CoalescingPolicy::fss(m)?),
        ("FSS+RTS", CoalescingPolicy::fss_rts(m)?),
        ("RSS", CoalescingPolicy::rss(m)?),
        ("RSS+RTS", CoalescingPolicy::rss_rts(m)?),
    ])
}

/// A timing scenario on the paper's GPU — the base most figures sweep
/// around.
fn timed(policy: CoalescingPolicy, num_plaintexts: usize, lines: usize, seed: u64) -> Scenario {
    Scenario::new(policy, num_plaintexts, lines).with_seed(seed)
}

// ---------------------------------------------------------------- Fig. 5

/// Figure 5: one point per plaintext relating last-round and total time.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Data {
    /// `(last_round_cycles, total_cycles)` per plaintext.
    pub points: Vec<(u64, u64)>,
    /// Pearson correlation of the two series.
    pub correlation: f64,
}

/// Figure 5: the total execution time is proportional to the last-round
/// time (both are driven by coalesced accesses), which is why an attacker
/// observing only total time still sees the last-round channel.
pub fn fig05_last_vs_total(num_plaintexts: usize, seed: u64) -> Result<Fig5Data, ExperimentError> {
    fig05_last_vs_total_with(&SweepRunner::new(), num_plaintexts, seed)
}

/// [`fig05_last_vs_total`] against a shared runner/cache.
///
/// # Errors
///
/// Propagates simulation failures; [`ExperimentError::TimingUnavailable`]
/// cannot occur (the scenario is a timing run).
pub fn fig05_last_vs_total_with(
    runner: &SweepRunner,
    num_plaintexts: usize,
    seed: u64,
) -> Result<Fig5Data, ExperimentError> {
    let data = runner.run_one(&timed(CoalescingPolicy::Baseline, num_plaintexts, 32, seed))?;
    let last = data
        .last_round_cycles
        .as_ref()
        .ok_or(ExperimentError::TimingUnavailable {
            what: "fig05_last_vs_total",
        })?;
    let total = data
        .total_cycles
        .as_ref()
        .ok_or(ExperimentError::TimingUnavailable {
            what: "fig05_last_vs_total",
        })?;
    let points: Vec<(u64, u64)> = last.iter().copied().zip(total.iter().copied()).collect();
    let xf: Vec<f64> = last.iter().map(|&v| v as f64).collect();
    let yf: Vec<f64> = total.iter().map(|&v| v as f64).collect();
    Ok(Fig5Data {
        points,
        correlation: pearson(&xf, &yf),
    })
}

// ---------------------------------------------------------------- Fig. 6

/// Figure 6: per-guess correlations for key byte 0, coalescing on vs off.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Data {
    /// Correlations of all 256 guesses with coalescing enabled.
    pub enabled: Vec<f64>,
    /// Correlations with coalescing disabled.
    pub disabled: Vec<f64>,
    /// The true value of key byte 0.
    pub correct_byte: u8,
    /// Rank of the correct byte with coalescing enabled (0 = recovered).
    pub rank_enabled: usize,
    /// Rank of the correct byte with coalescing disabled.
    pub rank_disabled: usize,
}

/// Figure 6: the baseline attack succeeds against stock coalescing and
/// collapses when coalescing is disabled (every count is the constant 32).
pub fn fig06_coalescing_onoff(
    num_plaintexts: usize,
    seed: u64,
) -> Result<Fig6Data, ExperimentError> {
    fig06_coalescing_onoff_with(&SweepRunner::new(), num_plaintexts, seed)
}

/// [`fig06_coalescing_onoff`] against a shared runner/cache.
///
/// # Errors
///
/// Propagates simulation and attack failures.
pub fn fig06_coalescing_onoff_with(
    runner: &SweepRunner,
    num_plaintexts: usize,
    seed: u64,
) -> Result<Fig6Data, ExperimentError> {
    let sweep = SweepSpec::grid(timed(CoalescingPolicy::Baseline, num_plaintexts, 32, seed))
        .with_policies(vec![CoalescingPolicy::Baseline, CoalescingPolicy::Disabled]);
    let results = runner.run_sweep(&sweep)?;
    let (on, off) = match results.as_slice() {
        [on, off] => (on, off),
        _ => {
            return Err(ExperimentError::MissingData(
                "fig06 sweep must expand to exactly two runs".into(),
            ))
        }
    };
    let attack = Attack::baseline(32);
    let k10 = on.true_last_round_key();
    let rec_on = attack.recover_byte(&on.attack_samples(TimingSource::LastRoundCycles)?, 0)?;
    let rec_off = attack.recover_byte(&off.attack_samples(TimingSource::LastRoundCycles)?, 0)?;
    Ok(Fig6Data {
        rank_enabled: rec_on.rank_of(k10[0]),
        rank_disabled: rec_off.rank_of(k10[0]),
        enabled: rec_on.correlations,
        disabled: rec_off.correlations,
        correct_byte: k10[0],
    })
}

// ------------------------------------------------------------ Motivation

/// §III motivation numbers: the cost of disabling coalescing outright.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MotivationData {
    /// Execution-time increase of no-coalescing over baseline, percent.
    pub slowdown_pct: f64,
    /// Memory-access multiplication factor (paper: 2.7×).
    pub access_factor: f64,
}

/// §III: disabling coalescing for a 1024-line plaintext costs far more
/// than any RCoal configuration.
pub fn motivation_disable_coalescing(
    num_plaintexts: usize,
    lines: usize,
    seed: u64,
) -> Result<MotivationData, ExperimentError> {
    motivation_disable_coalescing_with(&SweepRunner::new(), num_plaintexts, lines, seed)
}

/// [`motivation_disable_coalescing`] against a shared runner/cache.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn motivation_disable_coalescing_with(
    runner: &SweepRunner,
    num_plaintexts: usize,
    lines: usize,
    seed: u64,
) -> Result<MotivationData, ExperimentError> {
    let sweep = SweepSpec::grid(timed(
        CoalescingPolicy::Baseline,
        num_plaintexts,
        lines,
        seed,
    ))
    .with_policies(vec![CoalescingPolicy::Baseline, CoalescingPolicy::Disabled]);
    let results = runner.run_sweep(&sweep)?;
    let (base, off) = match results.as_slice() {
        [base, off] => (base, off),
        _ => {
            return Err(ExperimentError::MissingData(
                "motivation sweep must expand to exactly two runs".into(),
            ))
        }
    };
    Ok(MotivationData {
        slowdown_pct: 100.0 * (off.mean_total_cycles()? / base.mean_total_cycles()? - 1.0),
        access_factor: off.mean_total_accesses() / base.mean_total_accesses(),
    })
}

// ---------------------------------------------------------------- Fig. 7

/// One Figure 7 row: FSS at a given subwarp count under the *naive*
/// baseline attack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig7Row {
    /// Number of subwarps.
    pub m: usize,
    /// Mean execution cycles per plaintext.
    pub mean_total_cycles: f64,
    /// Mean total coalesced accesses per plaintext.
    pub mean_total_accesses: f64,
    /// Average over the 16 key bytes of the correct guess's correlation
    /// under the baseline (num-subwarp = 1) attack.
    pub avg_corr_naive_attack: f64,
}

/// Figure 7: FSS costs performance as `M` grows (a) and degrades the
/// naive attack's correlation (b).
pub fn fig07_fss_performance(
    num_plaintexts: usize,
    seed: u64,
) -> Result<Vec<Fig7Row>, ExperimentError> {
    fig07_fss_performance_with(&SweepRunner::new(), num_plaintexts, seed)
}

/// [`fig07_fss_performance`] against a shared runner/cache.
///
/// # Errors
///
/// Propagates policy construction and simulation failures.
pub fn fig07_fss_performance_with(
    runner: &SweepRunner,
    num_plaintexts: usize,
    seed: u64,
) -> Result<Vec<Fig7Row>, ExperimentError> {
    let ms = [1usize, 2, 4, 8, 16, 32];
    let mut policies = Vec::with_capacity(ms.len());
    for &m in &ms {
        policies.push(CoalescingPolicy::fss(m)?);
    }
    let sweep = SweepSpec::grid(timed(CoalescingPolicy::Baseline, num_plaintexts, 32, seed))
        .with_policies(policies);
    let results = runner.run_sweep(&sweep)?;
    let pairs: Vec<(usize, ExperimentData)> = ms.iter().copied().zip(results).collect();
    try_parallel_map(resolve_threads(None), &pairs, |_, (m, data)| {
        let avg =
            avg_correct_correlation(data, Attack::baseline(32), TimingSource::LastRoundCycles)?;
        Ok(Fig7Row {
            m: *m,
            mean_total_cycles: data.mean_total_cycles()?,
            mean_total_accesses: data.mean_total_accesses(),
            avg_corr_naive_attack: avg,
        })
    })
}

// ---------------------------------------- Figs. 8 and 12–14 (scatters)

/// One correlation scatter (a panel of Figures 8, 12, 13, 14): all 256
/// guess correlations for key byte 0 at a given subwarp count.
#[derive(Debug, Clone, PartialEq)]
pub struct ScatterData {
    /// Number of subwarps.
    pub m: usize,
    /// Correlations of all 256 guesses for key byte 0.
    pub correlations: Vec<f64>,
    /// The true value of key byte 0.
    pub correct_byte: u8,
    /// Rank of the correct byte (0 = attack recovers it).
    pub rank_of_correct: usize,
}

fn defense_scatter(
    runner: &SweepRunner,
    defense: impl Fn(usize) -> Result<CoalescingPolicy, PolicyError>,
    num_plaintexts: usize,
    seed: u64,
) -> Result<Vec<ScatterData>, ExperimentError> {
    let mut policies = Vec::with_capacity(SUBWARP_SWEEP.len());
    for &m in &SUBWARP_SWEEP {
        policies.push(defense(m)?);
    }
    let sweep = SweepSpec::grid(timed(CoalescingPolicy::Baseline, num_plaintexts, 32, seed))
        .with_policies(policies);
    let results = runner.run_sweep(&sweep)?;
    let pairs: Vec<(usize, ExperimentData)> = SUBWARP_SWEEP.iter().copied().zip(results).collect();
    try_parallel_map(resolve_threads(None), &pairs, |_, (m, data)| {
        let k10 = data.true_last_round_key();
        // Corresponding attack (§IV-E): the attacker mirrors the defense.
        let attack = Attack::against(data.policy, 32)
            .with_seed(seed ^ 0xa77ac)
            .with_threads(Some(1));
        let rec = attack.recover_byte(&data.attack_samples(TimingSource::LastRoundCycles)?, 0)?;
        Ok(ScatterData {
            m: *m,
            rank_of_correct: rec.rank_of(k10[0]),
            correlations: rec.correlations,
            correct_byte: k10[0],
        })
    })
}

/// Figure 8: FSS-enabled GPU under the FSS attack (Algorithm 1) — the
/// attack re-establishes the correlation, FSS alone is insufficient.
pub fn fig08_fss_attack(
    num_plaintexts: usize,
    seed: u64,
) -> Result<Vec<ScatterData>, ExperimentError> {
    fig08_fss_attack_with(&SweepRunner::new(), num_plaintexts, seed)
}

/// [`fig08_fss_attack`] against a shared runner/cache.
///
/// # Errors
///
/// Propagates simulation and attack failures.
pub fn fig08_fss_attack_with(
    runner: &SweepRunner,
    num_plaintexts: usize,
    seed: u64,
) -> Result<Vec<ScatterData>, ExperimentError> {
    defense_scatter(runner, CoalescingPolicy::fss, num_plaintexts, seed)
}

/// Figure 12: FSS+RTS under the FSS+RTS attack.
pub fn fig12_fss_rts(
    num_plaintexts: usize,
    seed: u64,
) -> Result<Vec<ScatterData>, ExperimentError> {
    fig12_fss_rts_with(&SweepRunner::new(), num_plaintexts, seed)
}

/// [`fig12_fss_rts`] against a shared runner/cache.
///
/// # Errors
///
/// Propagates simulation and attack failures.
pub fn fig12_fss_rts_with(
    runner: &SweepRunner,
    num_plaintexts: usize,
    seed: u64,
) -> Result<Vec<ScatterData>, ExperimentError> {
    defense_scatter(runner, CoalescingPolicy::fss_rts, num_plaintexts, seed)
}

/// Figure 13: RSS under the RSS attack.
pub fn fig13_rss(num_plaintexts: usize, seed: u64) -> Result<Vec<ScatterData>, ExperimentError> {
    fig13_rss_with(&SweepRunner::new(), num_plaintexts, seed)
}

/// [`fig13_rss`] against a shared runner/cache.
///
/// # Errors
///
/// Propagates simulation and attack failures.
pub fn fig13_rss_with(
    runner: &SweepRunner,
    num_plaintexts: usize,
    seed: u64,
) -> Result<Vec<ScatterData>, ExperimentError> {
    defense_scatter(runner, CoalescingPolicy::rss, num_plaintexts, seed)
}

/// Figure 14: RSS+RTS under the RSS+RTS attack.
pub fn fig14_rss_rts(
    num_plaintexts: usize,
    seed: u64,
) -> Result<Vec<ScatterData>, ExperimentError> {
    fig14_rss_rts_with(&SweepRunner::new(), num_plaintexts, seed)
}

/// [`fig14_rss_rts`] against a shared runner/cache.
///
/// # Errors
///
/// Propagates simulation and attack failures.
pub fn fig14_rss_rts_with(
    runner: &SweepRunner,
    num_plaintexts: usize,
    seed: u64,
) -> Result<Vec<ScatterData>, ExperimentError> {
    defense_scatter(runner, CoalescingPolicy::rss_rts, num_plaintexts, seed)
}

// ---------------------------------------------------------------- Fig. 9

/// Figure 9: subwarp-size histograms for the two RSS distributions.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9Data {
    /// `normal[s]` = how often size `s` was drawn under the normal
    /// distribution.
    pub normal: Vec<u64>,
    /// Same for the skewed (uniform-composition) distribution.
    pub skewed: Vec<u64>,
}

/// Figure 9: the skewed distribution spreads subwarp sizes over the whole
/// 1..=29 range while the normal distribution stays near 32/M.
///
/// # Errors
///
/// [`ExperimentError::Policy`] when `m` exceeds the warp size.
pub fn fig09_rss_distributions(
    draws: usize,
    m: usize,
    seed: u64,
) -> Result<Fig9Data, ExperimentError> {
    let mut normal = vec![0u64; 33];
    let mut skewed = vec![0u64; 33];
    let mut rng = StdRng::seed_from_u64(seed);
    for (dist, hist) in [
        (SizeDistribution::Normal, &mut normal),
        (SizeDistribution::Skewed, &mut skewed),
    ] {
        let policy = CoalescingPolicy::Rss {
            num_subwarps: rcoal_core::NumSubwarps::new_unaligned(m, 32)?,
            dist,
        };
        for _ in 0..draws {
            let a = policy.assignment(32, &mut rng)?;
            for s in a.sizes() {
                hist[s] += 1;
            }
        }
    }
    Ok(Fig9Data { normal, skewed })
}

// ----------------------------------------------------- Figs. 15, 16, 17

/// One security row (Figure 15): the average correct-guess correlation
/// under the corresponding attack.
#[derive(Debug, Clone, PartialEq)]
pub struct SecurityRow {
    /// Mechanism name ("FSS", "FSS+RTS", "RSS", "RSS+RTS").
    pub mechanism: String,
    /// Number of subwarps.
    pub m: usize,
    /// Average over the 16 key bytes of the correct guess's correlation.
    pub avg_correct_corr: f64,
}

/// One performance row (Figure 16): execution time and data movement.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfRow {
    /// Mechanism name.
    pub mechanism: String,
    /// Number of subwarps.
    pub m: usize,
    /// Mean total coalesced accesses per plaintext.
    pub mean_total_accesses: f64,
    /// Mean execution cycles per plaintext.
    pub mean_total_cycles: f64,
    /// Execution time normalized to the baseline (num-subwarp = 1).
    pub normalized_time: f64,
}

/// One RCoal_Score row (Figure 17).
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreRow {
    /// Mechanism name.
    pub mechanism: String,
    /// Number of subwarps.
    pub m: usize,
    /// Eq. 7 with a = 1, b = 1 (security-oriented).
    pub security_oriented: f64,
    /// Eq. 7 with a = 1, b = 20 (performance-oriented).
    pub performance_oriented: f64,
}

/// Average over the attacked key bytes of the correct guess's
/// correlation, dispatched through the run's workload oracle (AES's
/// 16-byte last-round subkey for legacy runs).
///
/// # Errors
///
/// [`ExperimentError::TimingUnavailable`] when `source` needs cycle data
/// the experiment did not record.
pub fn avg_correct_correlation(
    data: &ExperimentData,
    attack: Attack,
    source: TimingSource,
) -> Result<f64, ExperimentError> {
    let samples = data.attack_samples(source)?;
    let workload = data.workload_def();
    let subkey = data.attacked_subkey();
    let bytes = workload.oracle().key_bytes().min(16);
    let times: Vec<f64> = samples.iter().map(|s| s.time).collect();
    let mut sum = 0.0;
    for (j, &kj) in subkey.iter().take(bytes).enumerate() {
        let mut predictor =
            rcoal_attack::AccessPredictor::new(attack.policy(), 32, 0xc0ffee + j as u64)
                .with_oracle(workload.oracle());
        let predicted: Vec<f64> = samples
            .iter()
            .map(|s| predictor.predict(&s.ciphertexts, j, kj))
            .collect();
        sum += pearson(&predicted, &times);
    }
    Ok(sum / bytes as f64)
}

/// Figures 15 and 16 share their simulations; this bundle carries both.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonData {
    /// Security rows (Figure 15).
    pub security: Vec<SecurityRow>,
    /// Performance rows (Figure 16), including the baseline row (`m = 1`).
    pub performance: Vec<PerfRow>,
}

/// Figures 15 + 16: sweep the four mechanisms over `M ∈ {2,4,8,16}`,
/// collecting the corresponding-attack correlation and the performance
/// cost from the same runs.
pub fn fig15_16_comparison(
    num_plaintexts: usize,
    seed: u64,
) -> Result<ComparisonData, ExperimentError> {
    fig15_16_comparison_with(&SweepRunner::new(), num_plaintexts, seed)
}

/// [`fig15_16_comparison`] against a shared runner/cache.
///
/// # Errors
///
/// Propagates policy construction, simulation, and attack failures.
pub fn fig15_16_comparison_with(
    runner: &SweepRunner,
    num_plaintexts: usize,
    seed: u64,
) -> Result<ComparisonData, ExperimentError> {
    // One grid: the baseline plus mechanism × subwarp-count; the labels
    // vector carries the (name, m) annotation the policy axis drops.
    let mut labels: Vec<(&'static str, usize)> = vec![("baseline", 1)];
    let mut policies = vec![CoalescingPolicy::Baseline];
    for m in SUBWARP_SWEEP {
        for (name, policy) in mechanisms(m)? {
            labels.push((name, m));
            policies.push(policy);
        }
    }
    let sweep = SweepSpec::grid(timed(CoalescingPolicy::Baseline, num_plaintexts, 32, seed))
        .with_policies(policies);
    let results = runner.run_sweep(&sweep)?;
    let base = results
        .first()
        .ok_or_else(|| ExperimentError::MissingData("empty fig15/16 sweep".into()))?;
    let base_cycles = base.mean_total_cycles()?;
    let pairs: Vec<(&str, usize, &ExperimentData)> = labels[1..]
        .iter()
        .zip(&results[1..])
        .map(|(&(name, m), data)| (name, m, data))
        .collect();
    let measured = try_parallel_map(resolve_threads(None), &pairs, |_, &(name, m, data)| {
        let attack = Attack::against(data.policy, 32).with_seed(seed ^ 0xa77ac);
        let avg = avg_correct_correlation(data, attack, TimingSource::LastRoundCycles)?;
        Ok::<_, ExperimentError>((
            name,
            m,
            avg,
            data.mean_total_accesses(),
            data.mean_total_cycles()?,
        ))
    })?;

    let mut security = Vec::new();
    let mut performance = vec![PerfRow {
        mechanism: "baseline".into(),
        m: 1,
        mean_total_accesses: base.mean_total_accesses(),
        mean_total_cycles: base_cycles,
        normalized_time: 1.0,
    }];
    for (name, m, avg, accesses, cycles) in measured {
        security.push(SecurityRow {
            mechanism: name.into(),
            m,
            avg_correct_corr: avg,
        });
        performance.push(PerfRow {
            mechanism: name.into(),
            m,
            mean_total_accesses: accesses,
            mean_total_cycles: cycles,
            normalized_time: cycles / base_cycles,
        });
    }
    Ok(ComparisonData {
        security,
        performance,
    })
}

/// Figure 17: RCoal_Score from the Figure 15/16 data.
///
/// A measured average correlation below the sampling noise floor
/// (≈ `1/√(16·N)` for N plaintexts × 16 bytes) carries no information
/// about the true correlation, so the score computation floors |ρ̄| there;
/// otherwise a lucky near-zero estimate produces an unbounded score.
///
/// # Errors
///
/// [`ExperimentError::MissingData`] when a security row has no matching
/// performance row.
pub fn fig17_rcoal_score(comparison: &ComparisonData) -> Result<Vec<ScoreRow>, ExperimentError> {
    fig17_rcoal_score_with_floor(comparison, 0.02)
}

/// [`fig17_rcoal_score`] with an explicit correlation floor.
///
/// # Errors
///
/// [`ExperimentError::MissingData`] when a security row has no matching
/// performance row.
pub fn fig17_rcoal_score_with_floor(
    comparison: &ComparisonData,
    corr_floor: f64,
) -> Result<Vec<ScoreRow>, ExperimentError> {
    let sec_cfg = RCoalScore::security_oriented();
    let perf_cfg = RCoalScore::performance_oriented();
    comparison
        .security
        .iter()
        .map(|s| {
            let perf = comparison
                .performance
                .iter()
                .find(|p| p.mechanism == s.mechanism && p.m == s.m)
                .ok_or_else(|| {
                    ExperimentError::MissingData(format!(
                        "no performance row for {} at M={}",
                        s.mechanism, s.m
                    ))
                })?;
            let corr = s.avg_correct_corr.abs().max(corr_floor);
            Ok(ScoreRow {
                mechanism: s.mechanism.clone(),
                m: s.m,
                security_oriented: sec_cfg.score(corr, perf.normalized_time),
                performance_oriented: perf_cfg.score(corr, perf.normalized_time),
            })
        })
        .collect()
}

// --------------------------------------------------------------- Fig. 18

/// One Figure 18 row: the 1024-line case study.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig18Row {
    /// Mechanism name.
    pub mechanism: String,
    /// Number of subwarps.
    pub m: usize,
    /// Average correct-guess correlation, computed against the *observed
    /// last-round accesses* (the paper's §VI-D noise-cancelling metric).
    pub avg_correct_corr: f64,
    /// Execution time normalized to the baseline.
    pub normalized_time: f64,
}

/// Figure 18: scalability to 1024-line plaintexts (32 warps). Security
/// uses functional access counts (fast, exact); timing uses a smaller
/// number of simulated launches (`timing_plaintexts`).
pub fn fig18_scalability(
    num_plaintexts: usize,
    timing_plaintexts: usize,
    seed: u64,
) -> Result<Vec<Fig18Row>, ExperimentError> {
    fig18_scalability_with(&SweepRunner::new(), num_plaintexts, timing_plaintexts, seed)
}

/// [`fig18_scalability`] against a shared runner/cache.
///
/// # Errors
///
/// Propagates policy construction, simulation, and attack failures.
pub fn fig18_scalability_with(
    runner: &SweepRunner,
    num_plaintexts: usize,
    timing_plaintexts: usize,
    seed: u64,
) -> Result<Vec<Fig18Row>, ExperimentError> {
    let mut configs = Vec::new();
    for m in [2usize, 4, 8] {
        for (name, policy) in mechanisms(m)? {
            configs.push((name, m, policy));
        }
    }
    // One batch: the baseline timing run, then per mechanism one
    // functional security run and one (smaller) timing run.
    let mut scenarios = vec![timed(
        CoalescingPolicy::Baseline,
        timing_plaintexts,
        1024,
        seed,
    )];
    for &(_, _, policy) in &configs {
        scenarios.push(timed(policy, num_plaintexts, 1024, seed).functional_only());
        scenarios.push(timed(policy, timing_plaintexts, 1024, seed));
    }
    let results = runner.run_sweep(&SweepSpec::list(scenarios))?;
    let base_time = results
        .first()
        .ok_or_else(|| ExperimentError::MissingData("empty fig18 sweep".into()))?
        .mean_total_cycles()?;
    let jobs: Vec<(&str, usize, &ExperimentData, &ExperimentData)> = configs
        .iter()
        .enumerate()
        .map(|(i, &(name, m, _))| (name, m, &results[1 + 2 * i], &results[2 + 2 * i]))
        .collect();
    try_parallel_map(resolve_threads(None), &jobs, |_, &(name, m, sec, time)| {
        let attack = Attack::against(sec.policy, 32).with_seed(seed ^ 0xa77ac);
        let avg = avg_correct_correlation(sec, attack, TimingSource::LastRoundAccesses)?;
        Ok(Fig18Row {
            mechanism: name.into(),
            m,
            avg_correct_corr: avg,
            normalized_time: time.mean_total_cycles()? / base_time,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    // Figure generators are exercised end-to-end (with small sample
    // counts) by the integration tests in `tests/`; here we keep fast
    // sanity checks of the pure pieces.

    #[test]
    fn mechanisms_cover_the_paper_set() {
        let ms = mechanisms(4).unwrap();
        let names: Vec<&str> = ms.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["FSS", "FSS+RTS", "RSS", "RSS+RTS"]);
        for (_, p) in ms {
            assert_eq!(p.num_subwarps(32), 4);
        }
    }

    #[test]
    fn fig09_histograms_have_expected_mass() {
        let d = fig09_rss_distributions(500, 4, 3).unwrap();
        assert_eq!(d.normal.iter().sum::<u64>(), 500 * 4);
        assert_eq!(d.skewed.iter().sum::<u64>(), 500 * 4);
        // Normal concentrates near 8; skewed reaches far beyond.
        let spread = |h: &[u64]| {
            h.iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(s, _)| s)
                .max()
                .unwrap()
        };
        assert!(spread(&d.skewed) > spread(&d.normal));
        assert!(d.normal[7] + d.normal[8] + d.normal[9] > d.skewed[7] + d.skewed[8] + d.skewed[9]);
    }

    #[test]
    fn score_rows_align_with_security_rows() {
        let comparison = ComparisonData {
            security: vec![SecurityRow {
                mechanism: "FSS".into(),
                m: 2,
                avg_correct_corr: 0.5,
            }],
            performance: vec![PerfRow {
                mechanism: "FSS".into(),
                m: 2,
                mean_total_accesses: 100.0,
                mean_total_cycles: 1100.0,
                normalized_time: 1.1,
            }],
        };
        let scores = fig17_rcoal_score(&comparison).unwrap();
        assert_eq!(scores.len(), 1);
        // S = 1/0.25 = 4; security-oriented = 4 / 1.1.
        assert!((scores[0].security_oriented - 4.0 / 1.1).abs() < 1e-9);
        assert!(scores[0].performance_oriented < scores[0].security_oriented);
    }

    #[test]
    fn workload_matrix_audits_every_cell() {
        let rows = workload_matrix(
            &["aes", "present80", "gather"],
            vec![CoalescingPolicy::Baseline, CoalescingPolicy::Disabled],
            96,
            17,
        )
        .unwrap();
        assert_eq!(rows.len(), 6);
        // Workloads expand outermost, policies within.
        assert_eq!(rows[0].workload, "aes");
        assert_eq!(rows[2].workload, "present80");
        assert_eq!(rows[4].workload, "gather");
        for pair in rows.chunks(2) {
            // Ciphers leak under stock coalescing; the key-independent
            // gather control must stay clean even there.
            let expect_baseline_leak = pair[0].workload != "gather";
            assert_eq!(
                pair[0].leaky, expect_baseline_leak,
                "{} under Baseline",
                pair[0].workload
            );
            assert!(
                !pair[1].leaky,
                "{} must not leak with coalescing disabled",
                pair[1].workload
            );
        }
        // Only the gather control opts out of the theory cross-check.
        for row in &rows {
            assert_eq!(row.theory_ok.is_none(), row.workload == "gather");
        }
    }

    #[test]
    fn streaming_sample_cost_recovers_the_leaky_baseline() {
        let policies = vec![
            ("Baseline".to_string(), CoalescingPolicy::Baseline),
            ("RSS+RTS".to_string(), CoalescingPolicy::rss_rts(8).unwrap()),
        ];
        let points = sample_cost_streaming(&policies, &[60, 160], 7).unwrap();
        assert_eq!(points.len(), 4, "policies expand outermost, budgets within");
        assert_eq!(points[0].mechanism, "Baseline");
        assert_eq!(points[2].mechanism, "RSS+RTS");
        for p in &points {
            assert!(p.samples_used <= p.budget);
            assert!(p.checkpoints >= 1);
            assert_eq!(p.terminated_early, p.samples_used < p.budget);
        }
        // The deterministic baseline on the exact access channel is
        // Table II's S=1 row: the true byte wins outright and the
        // online attacker notices well before the budget.
        let base = &points[1];
        assert_eq!(base.rank_of_true, 0);
        assert!(base.corr_true > 0.9, "corr {}", base.corr_true);
        assert!(base.terminated_early, "used {}", base.samples_used);
        // Randomized subwarps need more than this budget (Table II:
        // S grows ~49x at m=8), so the stream must run to exhaustion.
        let defended = &points[3];
        assert!(!defended.terminated_early);
    }

    #[test]
    fn shared_runner_reuses_common_configurations() {
        // fig05 and fig06 both need the baseline timing run at (n, seed);
        // through one runner it simulates exactly once.
        let runner = SweepRunner::new();
        fig05_last_vs_total_with(&runner, 6, 11).unwrap();
        fig06_coalescing_onoff_with(&runner, 6, 11).unwrap();
        let report = runner.report();
        assert_eq!(report.served, 3);
        assert_eq!(report.launched, 2, "the baseline run must be shared");
        assert_eq!(report.hits(), 1);
    }
}

// ------------------------------------------------ Extension: selective

/// One row of the selective-randomization ablation (the paper's §VII
/// future-work design, implemented here).
#[derive(Debug, Clone, PartialEq)]
pub struct SelectiveRow {
    /// Configuration label.
    pub config: String,
    /// Average correct-guess correlation under the corresponding attack
    /// (last-round access counts as the timing source — the cleanest
    /// channel, so this is a *conservative* security estimate).
    pub avg_correct_corr: f64,
    /// Execution time normalized to the baseline.
    pub normalized_time: f64,
    /// Mean total coalesced accesses per plaintext.
    pub mean_total_accesses: f64,
}

/// Ablation: protecting only the last-round loads (selective) retains the
/// uniform defense's last-round security at a fraction of its
/// performance cost.
pub fn ablation_selective(
    num_plaintexts: usize,
    timing_plaintexts: usize,
    m: usize,
    seed: u64,
) -> Result<Vec<SelectiveRow>, ExperimentError> {
    ablation_selective_with(
        &SweepRunner::new(),
        num_plaintexts,
        timing_plaintexts,
        m,
        seed,
    )
}

/// [`ablation_selective`] against a shared runner/cache.
///
/// # Errors
///
/// Propagates policy construction, simulation, and attack failures.
pub fn ablation_selective_with(
    runner: &SweepRunner,
    num_plaintexts: usize,
    timing_plaintexts: usize,
    m: usize,
    seed: u64,
) -> Result<Vec<SelectiveRow>, ExperimentError> {
    let vulnerable = CoalescingPolicy::rss_rts(m)?;
    let configs: Vec<(String, bool, CoalescingPolicy)> = vec![
        (
            "baseline (no defense)".into(),
            false,
            CoalescingPolicy::Baseline,
        ),
        (format!("uniform RSS+RTS(M={m})"), false, vulnerable),
        (
            format!("selective RSS+RTS(M={m}) on last round only"),
            true,
            vulnerable,
        ),
    ];
    let mk = |selective: bool, policy, n| {
        let s = if selective {
            Scenario::selective(policy, n, 32)
        } else {
            Scenario::new(policy, n, 32)
        };
        s.with_seed(seed)
    };
    // The baseline timing scenario doubles as the normalization run —
    // the cache makes the old duplicate simulation free.
    let mut scenarios = vec![timed(
        CoalescingPolicy::Baseline,
        timing_plaintexts,
        32,
        seed,
    )];
    for &(_, selective, policy) in &configs {
        scenarios.push(mk(selective, policy, num_plaintexts).functional_only());
        scenarios.push(mk(selective, policy, timing_plaintexts));
    }
    let results = runner.run_sweep(&SweepSpec::list(scenarios))?;
    let base_time = results
        .first()
        .ok_or_else(|| ExperimentError::MissingData("empty selective sweep".into()))?
        .mean_total_cycles()?;
    let jobs: Vec<(&String, &ExperimentData, &ExperimentData)> = configs
        .iter()
        .enumerate()
        .map(|(i, (label, _, _))| (label, &results[1 + 2 * i], &results[2 + 2 * i]))
        .collect();
    try_parallel_map(resolve_threads(None), &jobs, |_, &(label, sec, time)| {
        // The attacker knows the deployed (possibly selective) policy;
        // for the last round the effective policy is `sec.policy`.
        let attack = Attack::against(sec.policy, 32).with_seed(seed ^ 0xa77ac);
        let avg = avg_correct_correlation(sec, attack, TimingSource::LastRoundAccesses)?;
        Ok(SelectiveRow {
            config: label.clone(),
            avg_correct_corr: avg,
            normalized_time: time.mean_total_cycles()? / base_time,
            mean_total_accesses: sec.mean_total_accesses(),
        })
    })
}

// ----------------------------------------- Extension: noise sensitivity

/// One row of the measurement-noise sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseRow {
    /// Injected noise standard deviation, in units of the clean signal's
    /// standard deviation.
    pub sigma_over_signal: f64,
    /// Measured correlation of the correct guess.
    pub measured_corr: f64,
    /// Correlation predicted by the attenuation law
    /// `rho' = rho · sqrt(v/(v+sigma^2))`.
    pub predicted_corr: f64,
    /// Eq. 4 sample estimate at the measured correlation.
    pub samples_needed: f64,
}

/// Sweeps Gaussian measurement noise over the baseline attack's byte-0
/// channel, validating the attenuation law the paper's Eq. 4 builds on
/// (and quantifying why the real-hardware attack of Jiang et al. needed
/// ~10^6 samples while the clean simulator needs ~10^2).
pub fn ablation_noise(
    num_plaintexts: usize,
    sigmas_rel: &[f64],
    seed: u64,
) -> Result<Vec<NoiseRow>, ExperimentError> {
    ablation_noise_with(&SweepRunner::new(), num_plaintexts, sigmas_rel, seed)
}

/// [`ablation_noise`] against a shared runner/cache.
///
/// # Errors
///
/// Propagates simulation and attack failures.
pub fn ablation_noise_with(
    runner: &SweepRunner,
    num_plaintexts: usize,
    sigmas_rel: &[f64],
    seed: u64,
) -> Result<Vec<NoiseRow>, ExperimentError> {
    use rcoal_attack::{attenuated_correlation, samples_needed, GaussianNoise};

    let data = runner
        .run_one(&timed(CoalescingPolicy::Baseline, num_plaintexts, 32, seed).functional_only())?;
    let k10 = data.true_last_round_key();
    let clean = data.attack_samples(TimingSource::ByteAccesses(0))?;
    let times: Vec<f64> = clean.iter().map(|s| s.time).collect();
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    let var = times.iter().map(|t| (t - mean).powi(2)).sum::<f64>() / times.len() as f64;
    let attack = Attack::baseline(32);
    let clean_corr = attack.recover_byte(&clean, 0)?.correlation_of(k10[0]);

    let mut rows = Vec::new();
    for &rel in sigmas_rel {
        let sigma = rel * var.sqrt();
        let noisy = GaussianNoise::new(sigma, seed ^ 0x4015e)?.applied(&clean);
        let measured = attack.recover_byte(&noisy, 0)?.correlation_of(k10[0]);
        let predicted = attenuated_correlation(clean_corr, var, sigma)?;
        rows.push(NoiseRow {
            sigma_over_signal: rel,
            measured_corr: measured,
            predicted_corr: predicted,
            samples_needed: if measured.abs() < 1e-9 {
                f64::INFINITY
            } else if measured.abs() >= 1.0 {
                3.0 // Eq. 4's floor: a perfect correlation needs ~no samples
            } else {
                samples_needed(measured.abs(), 0.99)?
            },
        });
    }
    Ok(rows)
}

// ------------------------------ Extension: standalone-RSS rho (Table II)

/// Monte-Carlo estimate of the attacker correlation ρ(U, Û) for a
/// randomized policy under uniformly random block accesses — the
/// quantity Table II tabulates analytically for FSS+RTS and RSS+RTS. The
/// paper skips standalone RSS because its cross-moment needs the full
/// mapping enumeration; this estimator fills that column empirically.
///
/// # Errors
///
/// [`ExperimentError::Policy`] when the policy cannot produce a
/// 32-thread assignment.
pub fn rho_monte_carlo(
    policy: CoalescingPolicy,
    trials: usize,
    seed: u64,
) -> Result<f64, ExperimentError> {
    use rcoal_rng::Rng;
    let mut rng = StdRng::seed_from_u64(seed);
    let coalescer = rcoal_core::Coalescer::new();
    let mut u = Vec::with_capacity(trials);
    let mut u_hat = Vec::with_capacity(trials);
    for _ in 0..trials {
        let addrs: Vec<Option<u64>> = (0..32)
            .map(|_| Some(rng.gen_range(0u64..16) * 64))
            .collect();
        let defense = policy.assignment(32, &mut rng)?;
        let attacker = policy.assignment(32, &mut rng)?;
        u.push(coalescer.count_accesses(&defense, &addrs) as f64);
        u_hat.push(coalescer.count_accesses(&attacker, &addrs) as f64);
    }
    Ok(pearson(&u, &u_hat))
}

// ------------------------------------- Extension: empirical sample cost

/// One row of the empirical samples-to-recovery sweep, the measured
/// counterpart of Table II's normalized `S`.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplesNeededRow {
    /// Mechanism name.
    pub mechanism: String,
    /// Number of subwarps.
    pub m: usize,
    /// Smallest sample count (from the probed grid) at which the correct
    /// byte-0 guess wins and keeps winning; `None` if it never does
    /// within the budget.
    pub samples_to_recover: Option<usize>,
    /// Correlation of the correct guess at the full sample budget.
    pub corr_at_budget: f64,
}

/// Measures how many samples the corresponding attack needs to pin key
/// byte 0, per mechanism — the empirical counterpart of Eq. 4 / Table II.
/// Uses the per-byte access channel so the measurement is exact rather
/// than scheduler-noise-limited.
pub fn ablation_samples_needed(
    policies: &[(String, CoalescingPolicy)],
    max_samples: usize,
    seed: u64,
) -> Result<Vec<SamplesNeededRow>, ExperimentError> {
    ablation_samples_needed_with(&SweepRunner::new(), policies, max_samples, seed)
}

/// [`ablation_samples_needed`] against a shared runner/cache.
///
/// # Errors
///
/// Propagates simulation and attack failures;
/// [`ExperimentError::MissingData`] if the probe grid comes out empty.
pub fn ablation_samples_needed_with(
    runner: &SweepRunner,
    policies: &[(String, CoalescingPolicy)],
    max_samples: usize,
    seed: u64,
) -> Result<Vec<SamplesNeededRow>, ExperimentError> {
    let scenarios: Vec<Scenario> = policies
        .iter()
        .map(|&(_, policy)| timed(policy, max_samples, 32, seed).functional_only())
        .collect();
    let results = runner.run_sweep(&SweepSpec::list(scenarios))?;
    let jobs: Vec<(&String, CoalescingPolicy, &ExperimentData)> = policies
        .iter()
        .zip(&results)
        .map(|((name, policy), data)| (name, *policy, data))
        .collect();
    try_parallel_map(resolve_threads(None), &jobs, |_, &(name, policy, data)| {
        let k10 = data.true_last_round_key();
        let samples = data.attack_samples(TimingSource::ByteAccesses(0))?;
        let attack = Attack::against(policy, 32).with_seed(seed ^ 0x5eed);

        // Probe a geometric grid of prefix sizes with the streaming
        // attack (each prediction is computed once); recovery must hold
        // from the probed size onward to count, which guards against
        // lucky argmax ties at tiny n.
        let mut grid = Vec::new();
        let mut n = 25;
        while n < max_samples {
            grid.push(n);
            n = n * 3 / 2;
        }
        grid.push(max_samples);
        let curve = rcoal_attack::recovery_curve(&attack, &samples, 0, &grid)?;
        let wins: Vec<bool> = curve
            .iter()
            .map(|(_, rec)| rec.rank_of(k10[0]) == 0)
            .collect();
        let samples_to_recover = (0..grid.len())
            .find(|&i| wins[i..].iter().all(|&w| w))
            .map(|i| grid[i]);
        let corr_at_budget = curve
            .last()
            .ok_or_else(|| ExperimentError::MissingData(format!("empty recovery grid for {name}")))?
            .1
            .correlation_of(k10[0]);
        Ok(SamplesNeededRow {
            mechanism: name.clone(),
            m: policy.num_subwarps(32),
            samples_to_recover,
            corr_at_budget,
        })
    })
}

// -------------------------- Extension: streaming sample cost at scale

/// One point of the streaming sample-cost sweep: a mechanism × budget
/// cell attacked online through a [`crate::SimulatorSource`].
#[derive(Debug, Clone, PartialEq)]
pub struct SampleCostPoint {
    /// Mechanism name.
    pub mechanism: String,
    /// Number of subwarps.
    pub m: usize,
    /// Sample budget offered to the streaming attacker.
    pub budget: usize,
    /// Samples actually consumed (equals `budget` when the early-stop
    /// rule never fired).
    pub samples_used: usize,
    /// Whether the attacker stopped before exhausting the budget.
    pub terminated_early: bool,
    /// Rank of the true byte-0 subkey at the end of the stream
    /// (0 = recovered).
    pub rank_of_true: usize,
    /// Correlation of the true guess at the end of the stream.
    pub corr_true: f64,
    /// Checkpoints recorded along the way — the length of the
    /// online-attacker trajectory.
    pub checkpoints: usize,
}

/// The Fig. 17 / Table II sample-cost territory at streaming scale: for
/// each mechanism × budget cell, samples are generated on the simulated
/// GPU *chunk by chunk* ([`crate::SimulatorSource`]) and fed to the
/// online corresponding attack ([`rcoal_attack::stream_recover_byte`])
/// with the default early-stop rule, so nothing is materialized and a
/// million-sample budget runs with peak heap independent of the budget.
/// Like [`ablation_samples_needed`], the sweep reads the exact per-byte
/// access channel (byte 0) so the measurement is not
/// scheduler-noise-limited; unlike it, the attacker itself decides when
/// the leader is stable and stops drawing samples.
///
/// # Errors
///
/// Propagates simulation, policy, and attack failures.
pub fn sample_cost_streaming(
    policies: &[(String, CoalescingPolicy)],
    budgets: &[usize],
    seed: u64,
) -> Result<Vec<SampleCostPoint>, ExperimentError> {
    let jobs: Vec<(&String, CoalescingPolicy, usize)> = policies
        .iter()
        .flat_map(|(name, policy)| budgets.iter().map(move |&b| (name, *policy, b)))
        .collect();
    try_parallel_map(
        resolve_threads(None),
        &jobs,
        |_, &(name, policy, budget)| {
            // Streams regenerate instead of hitting the run cache, so keep
            // each cell's inner simulation single-threaded and parallelize
            // across cells; the stream itself is thread-count-invariant.
            let cfg = crate::run::ExperimentConfig::new(policy, 0, 32)
                .with_seed(seed)
                .with_threads(1)
                .functional_only();
            let mut source = crate::SimulatorSource::new(cfg, TimingSource::ByteAccesses(0))?;
            let true_byte = source.attacked_subkey()[0];
            let attack = Attack::against(policy, 32).with_seed(seed ^ 0x5eed);
            let opts = rcoal_attack::StreamOptions::new(budget)
                .with_early_stop(rcoal_attack::EarlyStop::default());
            let rec = rcoal_attack::stream_recover_byte(&attack, &mut source, 0, &opts)?;
            Ok(SampleCostPoint {
                mechanism: name.clone(),
                m: policy.num_subwarps(32),
                budget,
                samples_used: rec.samples,
                terminated_early: rec.terminated_early,
                rank_of_true: rec.recovery.rank_of(true_byte),
                corr_true: rec.recovery.correlation_of(true_byte),
                checkpoints: rec.checkpoints.len(),
            })
        },
    )
}

// ---------------------------------------------- Extension: MSHR hazard

/// One row of the MSHR-interaction ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct MshrRow {
    /// Configuration label.
    pub config: String,
    /// Correlation of the correct byte-0 guess under the baseline attack.
    pub corr_correct: f64,
    /// Rank of the correct guess (0 = recovered).
    pub rank: usize,
    /// Mean execution cycles.
    pub mean_total_cycles: f64,
}

/// Shows why the paper disables MSHRs (§VII): with coalescing *disabled*,
/// MSHR merging collapses a warp's duplicate same-block requests back
/// into one memory transaction per distinct block — quietly rebuilding
/// the very channel that disabling coalescing was meant to close.
pub fn ablation_mshr(num_plaintexts: usize, seed: u64) -> Result<Vec<MshrRow>, ExperimentError> {
    ablation_mshr_with(&SweepRunner::new(), num_plaintexts, seed)
}

/// [`ablation_mshr`] against a shared runner/cache.
///
/// # Errors
///
/// Propagates simulation and attack failures.
pub fn ablation_mshr_with(
    runner: &SweepRunner,
    num_plaintexts: usize,
    seed: u64,
) -> Result<Vec<MshrRow>, ExperimentError> {
    let paper_mshr = rcoal_gpu_sim::GpuConfig::paper().mshr_entries;
    let configs = [
        (
            "baseline coalescing, no MSHR",
            CoalescingPolicy::Baseline,
            0usize,
        ),
        (
            "coalescing disabled, no MSHR",
            CoalescingPolicy::Disabled,
            0,
        ),
        (
            "coalescing disabled, 64 MSHRs",
            CoalescingPolicy::Disabled,
            64,
        ),
    ];
    // Only deviations from the paper config become overrides, so the
    // paper-default rows share cache entries with the other figures.
    let scenarios: Vec<Scenario> = configs
        .iter()
        .map(|&(_, policy, mshr_entries)| {
            let mut s = timed(policy, num_plaintexts, 32, seed);
            if mshr_entries != paper_mshr {
                s = s.with_gpu(GpuOverrides {
                    mshr_entries: Some(mshr_entries),
                    ..GpuOverrides::default()
                });
            }
            s
        })
        .collect();
    let results = runner.run_sweep(&SweepSpec::list(scenarios))?;
    let jobs: Vec<(&'static str, &ExperimentData)> = configs
        .iter()
        .zip(&results)
        .map(|(&(label, _, _), data)| (label, data))
        .collect();
    try_parallel_map(resolve_threads(None), &jobs, |_, &(label, data)| {
        let k10 = data.true_last_round_key();
        let attack = Attack::baseline(32).with_threads(Some(1));
        let rec = attack.recover_byte(&data.attack_samples(TimingSource::LastRoundCycles)?, 0)?;
        Ok(MshrRow {
            config: label.into(),
            corr_correct: rec.correlation_of(k10[0]),
            rank: rec.rank_of(k10[0]),
            mean_total_cycles: data.mean_total_cycles()?,
        })
    })
}

// ------------------------------------------------ Extension: L1 hazard

/// One row of the L1-cache ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct L1Row {
    /// Configuration label.
    pub config: String,
    /// Correlation of the correct byte-0 guess under the baseline attack.
    pub corr_correct: f64,
    /// Rank of the correct guess (0 = recovered).
    pub rank: usize,
    /// L1 hits per plaintext (0 with the cache disabled).
    pub l1_hits_per_plaintext: f64,
    /// Mean execution cycles.
    pub mean_total_cycles: f64,
}

/// The other §VII lever: with an L1 that caches global loads, the 1 KiB
/// T4 table becomes resident, the coalescing channel disappears — and a
/// *cache-miss* channel appears in its place, with inverted sign
/// (concentrated compulsory misses overlap in the memory system, spread
/// misses each pay full latency). The stock argmax attacker fails, but
/// the leak has moved, not vanished: randomization is needed at every
/// level of the hierarchy (§VII).
pub fn ablation_l1(num_plaintexts: usize, seed: u64) -> Result<Vec<L1Row>, ExperimentError> {
    ablation_l1_with(&SweepRunner::new(), num_plaintexts, seed)
}

/// [`ablation_l1`] against a shared runner/cache.
///
/// # Errors
///
/// Propagates simulation and attack failures.
pub fn ablation_l1_with(
    runner: &SweepRunner,
    num_plaintexts: usize,
    seed: u64,
) -> Result<Vec<L1Row>, ExperimentError> {
    let paper_l1 = rcoal_gpu_sim::GpuConfig::paper().l1_sets;
    let configs = [("no L1 (globals bypass)", 0usize), ("16-set, 4-way L1", 16)];
    let scenarios: Vec<Scenario> = configs
        .iter()
        .map(|&(_, l1_sets)| {
            let mut s = timed(CoalescingPolicy::Baseline, num_plaintexts, 32, seed);
            if l1_sets != paper_l1 {
                s = s.with_gpu(GpuOverrides {
                    l1_sets: Some(l1_sets),
                    ..GpuOverrides::default()
                });
            }
            s
        })
        .collect();
    let results = runner.run_sweep(&SweepSpec::list(scenarios.clone()))?;
    let jobs: Vec<(&'static str, &Scenario, &ExperimentData)> = configs
        .iter()
        .zip(&scenarios)
        .zip(&results)
        .map(|((&(label, _), scenario), data)| (label, scenario, data))
        .collect();
    try_parallel_map(
        resolve_threads(None),
        &jobs,
        |_, &(label, scenario, data)| {
            let k10 = data.true_last_round_key();
            let attack = Attack::baseline(32).with_threads(Some(1));
            let rec =
                attack.recover_byte(&data.attack_samples(TimingSource::LastRoundCycles)?, 0)?;
            // Count hits via one representative launch.
            let kernel = rcoal_aes::AesGpuKernel::new(
                &data.key,
                crate::random_plaintexts(1, 32, seed).remove(0),
                32,
            );
            let stats = rcoal_gpu_sim::GpuSimulator::new(scenario.gpu_config()).run(
                &kernel,
                CoalescingPolicy::Baseline,
                seed,
            )?;
            Ok(L1Row {
                config: label.into(),
                corr_correct: rec.correlation_of(k10[0]),
                rank: rec.rank_of(k10[0]),
                l1_hits_per_plaintext: stats.l1_hits as f64,
                mean_total_cycles: data.mean_total_cycles()?,
            })
        },
    )
}

// ----------------------------------- Extension: workload leakage matrix

/// One cell of the cross-workload leakage matrix: a `(workload, policy)`
/// pair audited on the per-byte access channel.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadMatrixRow {
    /// Registered workload name.
    pub workload: String,
    /// Policy under audit.
    pub policy: CoalescingPolicy,
    /// Welch t of the primary channel.
    pub tvla_t: f64,
    /// Bias-corrected mutual information (bits) of the primary channel.
    pub mi_bits: f64,
    /// Signed correlation of the true subkey guess.
    pub empirical_rho: f64,
    /// Theory cross-check verdict (`None` when the workload opts out of
    /// the closed form, e.g. the gather control).
    pub theory_ok: Option<bool>,
    /// Headline audit verdict.
    pub leaky: bool,
}

/// Cross-workload leakage matrix: every registered (or requested)
/// workload under every requested policy, audited on the functional
/// per-byte access channel. Demonstrates that the coalescing channel —
/// and the RCoal defenses — are properties of *table-indexed loads*,
/// not of AES specifically.
///
/// # Errors
///
/// Propagates sweep expansion, simulation, and audit failures.
pub fn workload_matrix(
    workloads: &[&str],
    policies: Vec<CoalescingPolicy>,
    num_plaintexts: usize,
    seed: u64,
) -> Result<Vec<WorkloadMatrixRow>, ExperimentError> {
    workload_matrix_with(
        &SweepRunner::new(),
        workloads,
        policies,
        num_plaintexts,
        seed,
    )
}

/// [`workload_matrix`] against a shared runner/cache. AES rows hash
/// identically to legacy (pre-registry) scenarios, so a warm cache
/// replays them for free.
///
/// # Errors
///
/// Propagates sweep expansion, simulation, and audit failures.
pub fn workload_matrix_with(
    runner: &SweepRunner,
    workloads: &[&str],
    policies: Vec<CoalescingPolicy>,
    num_plaintexts: usize,
    seed: u64,
) -> Result<Vec<WorkloadMatrixRow>, ExperimentError> {
    let base = Scenario::new(CoalescingPolicy::Baseline, num_plaintexts, 32)
        .with_seed(seed)
        .functional_only();
    let sweep = SweepSpec::grid(base)
        .with_workloads(workloads.iter().map(|w| (*w).to_string()).collect())
        .with_policies(policies);
    let results = runner.run_sweep(&sweep)?;
    let refs: Vec<&ExperimentData> = results.iter().collect();
    try_parallel_map(resolve_threads(None), &refs, |_, data| {
        let report = crate::audit_data(data, 32, &rcoal_audit::AuditSpec::new())?;
        Ok(WorkloadMatrixRow {
            workload: data.workload.clone(),
            policy: data.policy,
            tvla_t: report.timing.welch.t,
            mi_bits: report.timing.mi.corrected_bits,
            empirical_rho: report.empirical_rho,
            theory_ok: report.theory.map(|t| t.ok),
            leaky: report.leaky,
        })
    })
}
