//! # rcoal-experiments
//!
//! End-to-end experiment harness for the RCoal reproduction: encrypts
//! attacker-style plaintext streams on the simulated GPU under a chosen
//! coalescing policy, packages the observations for the attack suite, and
//! regenerates every table and figure of the paper's evaluation
//! (see [`figures`]).
//!
//! ```no_run
//! use rcoal_experiments::{ExperimentConfig, TimingSource};
//! use rcoal_core::CoalescingPolicy;
//! use rcoal_attack::Attack;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let data = ExperimentConfig::new(CoalescingPolicy::Baseline, 100, 32).run()?;
//! let attack = Attack::baseline(32);
//! let recovery = attack.recover_key(&data.attack_samples(TimingSource::LastRoundCycles));
//! println!("{:?}", recovery.outcome(&data.true_last_round_key()));
//! # Ok(())
//! # }
//! ```

pub mod figures;
mod run;
mod workload;

pub use run::{ExperimentConfig, ExperimentData, TimingSource};
pub use workload::{random_plaintexts, DEMO_KEY};
