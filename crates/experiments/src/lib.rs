//! # rcoal-experiments
//!
//! End-to-end experiment harness for the RCoal reproduction: encrypts
//! attacker-style plaintext streams on the simulated GPU under a chosen
//! coalescing policy, packages the observations for the attack suite, and
//! regenerates every table and figure of the paper's evaluation
//! (see [`figures`]).
//!
//! ```no_run
//! use rcoal_experiments::{ExperimentConfig, TimingSource};
//! use rcoal_core::CoalescingPolicy;
//! use rcoal_attack::Attack;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let data = ExperimentConfig::new(CoalescingPolicy::Baseline, 100, 32).run()?;
//! let attack = Attack::baseline(32);
//! let recovery = attack.recover_key(&data.attack_samples(TimingSource::LastRoundCycles)?)?;
//! println!("{:?}", recovery.outcome(&data.true_last_round_key()));
//! # Ok(())
//! # }
//! ```
//!
//! Every fallible step reports a typed [`ExperimentError`] whose
//! [`std::error::Error::source`] chain preserves the underlying
//! simulator, policy, or attack failure; experiments can also inject
//! hardware faults ([`ExperimentConfig::with_faults`]) to measure how
//! DRAM jitter and dropped replies degrade the attacker's channel.

// Library code must propagate failures as typed errors, never panic;
// test modules are exempt (the harness is the panic handler there).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod audit;
pub mod engine;
mod error;
pub mod figures;
mod run;
mod source;
mod telemetry;
mod workload;

pub use audit::audit_data;
pub use engine::{
    decode_run, encode_run, run_to_value, scenario_config, QuarantinedScenario, RunnerReport,
    SweepOutcome, SweepRunner, JOURNAL_FILE, RUN_SCHEMA,
};
pub use error::ExperimentError;
pub use run::{ExperimentConfig, ExperimentData, TimingSource};
pub use source::SimulatorSource;
pub use telemetry::{ExperimentTelemetry, LaunchTrace, TelemetrySpec};
pub use workload::{demo_key_for, random_lines, random_plaintexts, DEMO_KEY};
