use crate::error::ExperimentError;
use crate::telemetry::{ExperimentTelemetry, TelemetrySpec};
use crate::workload::{random_plaintexts, DEMO_KEY};
use rcoal_aes::{Block, LAST_ROUND_TAG_BASE};
use rcoal_attack::AttackSample;
use rcoal_audit::{AuditSpec, LeakageReport};
use rcoal_core::{Coalescer, CoalescingPolicy};
use rcoal_gpu_sim::{
    FaultPlan, GpuConfig, GpuSimulator, Kernel, LaunchPolicy, SimTelemetry, TraceInstr,
};
use rcoal_parallel::{resolve_threads, try_parallel_map, try_parallel_map_metered};
use rcoal_rng::SeedableRng;
use rcoal_rng::StdRng;
use rcoal_telemetry::MetricsRegistry;
use rcoal_workload::KernelWorkload;
use std::sync::Arc;

/// Which measurement plays the role of the attacker's timing observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimingSource {
    /// Cycles spent after round 9 — the paper's strong attacker (§II-C).
    LastRoundCycles,
    /// Whole-kernel cycles — the realistic remote attacker.
    TotalCycles,
    /// The true number of last-round coalesced accesses — the paper's
    /// §VI-D trick to cancel warp-scheduling noise entirely.
    LastRoundAccesses,
    /// The last-round accesses of a single byte position's T4 load — the
    /// cleanest possible per-byte channel, useful for isolating one
    /// byte's leakage from the other fifteen.
    ByteAccesses(u8),
}

/// Configuration of one end-to-end encryption experiment: `num_plaintexts`
/// plaintexts of `lines` lines are encrypted on the simulated GPU under
/// `policy`, recording per-plaintext timing and access counts.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Coalescing policy the victim GPU deploys.
    pub policy: CoalescingPolicy,
    /// Registered workload the victim GPU runs (see
    /// [`rcoal_workload::registry`]); `"aes"` is the paper's kernel and
    /// the default.
    pub workload: String,
    /// Number of plaintexts (timing samples).
    pub num_plaintexts: usize,
    /// Lines per plaintext (32 = one warp; 1024 = the §VI-D case study).
    pub lines: usize,
    /// Master seed for plaintexts and per-launch policy randomness.
    pub seed: u64,
    /// AES-128 key held by the victim.
    pub key: [u8; 16],
    /// Simulated GPU configuration.
    pub gpu: GpuConfig,
    /// When false, skip the cycle simulator and collect only (functional)
    /// access counts — orders of magnitude faster, sufficient for the
    /// access-based security analyses.
    pub timing: bool,
    /// Optional launch-policy override; when set, `policy` is ignored and
    /// this (possibly selective) launch policy is used instead.
    pub launch: Option<LaunchPolicy>,
    /// Hardware faults to inject into every launch (DRAM reply jitter,
    /// dropped replies, interconnect backpressure). Defaults to
    /// [`FaultPlan::none`]. Only timing runs feel faults — they perturb
    /// cycles, never access counts.
    pub faults: FaultPlan,
    /// Worker threads for the per-plaintext launch sweep. `None` defers
    /// to `RCOAL_THREADS` / the machine's parallelism; `Some(1)` forces
    /// a true sequential run. Every launch derives its randomness from
    /// its own seed, so the results are bit-identical at any thread
    /// count.
    pub threads: Option<usize>,
    /// When set, every simulated launch runs instrumented and the
    /// collected [`ExperimentTelemetry`] lands on
    /// [`ExperimentData::telemetry`]. Requires `timing` (the telemetry is
    /// cycle-domain); everything collected is deterministic for a fixed
    /// seed at any thread count.
    pub telemetry: Option<TelemetrySpec>,
    /// Optional host-domain metrics sink. When set, the run records a
    /// `span.experiment.run` wall-clock span, `pool.launches.*` sweep
    /// utilization, and (if `telemetry` is also set) the aggregate
    /// `sim.*` profile. Host metrics are wall-clock and therefore **not**
    /// deterministic — they never feed back into results.
    pub host_metrics: Option<MetricsRegistry>,
    /// When set, [`ExperimentConfig::run_audited`] follows the run with
    /// a leakage audit over the produced data (see
    /// [`crate::audit_data`]). A cycle-domain audit channel requires
    /// `timing`; the audit itself is deterministic and never alters the
    /// experiment data.
    pub audit: Option<AuditSpec>,
}

impl ExperimentConfig {
    /// Creates a timing experiment with the paper's GPU configuration and
    /// the demo key.
    pub fn new(policy: CoalescingPolicy, num_plaintexts: usize, lines: usize) -> Self {
        ExperimentConfig {
            policy,
            workload: "aes".to_string(),
            num_plaintexts,
            lines,
            seed: 0x5C0A1,
            key: DEMO_KEY,
            gpu: GpuConfig::paper(),
            timing: true,
            launch: None,
            faults: FaultPlan::none(),
            threads: None,
            telemetry: None,
            host_metrics: None,
            audit: None,
        }
    }

    /// Creates a *selective* experiment implementing the paper's §VII
    /// future-work design: only the last-round (vulnerable) T4 loads use
    /// the randomized `vulnerable_policy`; every other load keeps stock
    /// baseline coalescing.
    pub fn selective(
        vulnerable_policy: CoalescingPolicy,
        num_plaintexts: usize,
        lines: usize,
    ) -> Self {
        let mut cfg = Self::new(vulnerable_policy, num_plaintexts, lines);
        cfg.launch = Some(LaunchPolicy::Selective {
            vulnerable: vulnerable_policy,
            default: CoalescingPolicy::Baseline,
            vulnerable_tags: (LAST_ROUND_TAG_BASE, LAST_ROUND_TAG_BASE + 16),
        });
        cfg
    }

    /// Selects a registered workload by name (see
    /// [`rcoal_workload::registry`]).
    pub fn with_workload(mut self, workload: impl Into<String>) -> Self {
        self.workload = workload.into();
        self
    }

    /// Overrides the launch policy (e.g. a custom selective split).
    pub fn with_launch(mut self, launch: LaunchPolicy) -> Self {
        self.launch = Some(launch);
        self
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the victim key.
    pub fn with_key(mut self, key: [u8; 16]) -> Self {
        self.key = key;
        self
    }

    /// Overrides the GPU configuration.
    pub fn with_gpu(mut self, gpu: GpuConfig) -> Self {
        self.gpu = gpu;
        self
    }

    /// Disables the cycle simulator (access counts only).
    pub fn functional_only(mut self) -> Self {
        self.timing = false;
        self
    }

    /// Injects hardware faults into every launch of the experiment.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the worker-thread count for the launch sweep (`1` =
    /// sequential). Use [`ExperimentConfig::threads`] = `None` (the
    /// default) to defer to `RCOAL_THREADS` / the machine.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Instruments every launch per `spec` (see
    /// [`ExperimentConfig::telemetry`]).
    pub fn with_telemetry(mut self, spec: TelemetrySpec) -> Self {
        self.telemetry = Some(spec);
        self
    }

    /// Attaches a host-domain metrics sink (see
    /// [`ExperimentConfig::host_metrics`]); the registry is shared, so
    /// the caller keeps visibility through its own clone.
    pub fn with_host_metrics(mut self, registry: &MetricsRegistry) -> Self {
        self.host_metrics = Some(registry.clone());
        self
    }

    /// Schedules a leakage audit to run after the experiment (see
    /// [`ExperimentConfig::audit`] and [`ExperimentConfig::run_audited`]).
    pub fn with_audit(mut self, spec: AuditSpec) -> Self {
        self.audit = Some(spec);
        self
    }

    /// Validates the configuration without running anything.
    ///
    /// # Errors
    ///
    /// [`ExperimentError::Config`] naming the offending field.
    pub fn validate(&self) -> Result<(), ExperimentError> {
        if self.num_plaintexts == 0 {
            return Err(ExperimentError::Config(
                "num_plaintexts must be positive".into(),
            ));
        }
        if self.lines == 0 {
            return Err(ExperimentError::Config("lines must be positive".into()));
        }
        if rcoal_workload::find(&self.workload).is_none() {
            return Err(ExperimentError::Config(format!(
                "unknown workload '{}' (registered: {})",
                self.workload,
                rcoal_workload::names()
            )));
        }
        if self.threads == Some(0) {
            return Err(ExperimentError::Config(
                "threads must be positive (use 1 for a sequential run)".into(),
            ));
        }
        if self.telemetry.is_some() && !self.timing {
            return Err(ExperimentError::Config(
                "telemetry requires a timing run (it instruments the cycle simulator); \
                 drop functional_only() or the telemetry spec"
                    .into(),
            ));
        }
        if let Some(audit) = &self.audit {
            audit
                .validate()
                .map_err(|msg| ExperimentError::Config(format!("audit: {msg}")))?;
            if audit.channel.needs_cycles() && !self.timing {
                return Err(ExperimentError::Config(format!(
                    "audit channel '{}' needs cycle timing; drop functional_only() \
                     or audit an access-count channel",
                    audit.channel
                )));
            }
        }
        self.gpu
            .validate()
            .map_err(|msg| ExperimentError::Config(format!("gpu: {msg}")))?;
        self.faults
            .validate()
            .map_err(|msg| ExperimentError::Config(format!("faults: {msg}")))?;
        Ok(())
    }

    /// Runs the experiment.
    ///
    /// # Errors
    ///
    /// [`ExperimentError::Config`] for an invalid configuration;
    /// otherwise propagates simulator errors (cycle limit, watchdog
    /// stall, injected-fault livelock) and policy errors. Functional-only
    /// runs can still fail on a policy/warp-size mismatch.
    pub fn run(&self) -> Result<ExperimentData, ExperimentError> {
        self.validate()?;
        let span = self.host_metrics.as_ref().map(|m| m.span("experiment.run"));
        let workload = rcoal_workload::find(&self.workload).ok_or_else(|| {
            ExperimentError::Config(format!("unknown workload '{}'", self.workload))
        })?;
        let plaintexts = random_plaintexts(self.num_plaintexts, self.lines, self.seed);
        let sim = GpuSimulator::new(self.gpu.clone());
        let coalescer = Coalescer::with_block_size(self.gpu.block_size)?;
        let launch = self.launch.unwrap_or(LaunchPolicy::Uniform(self.policy));

        // Launches are independent by construction — plaintext `i` draws
        // its policy randomness from its own `launch_seed` — so they fan
        // out across worker threads; results come back in plaintext
        // order, making the data bit-identical to a sequential run.
        let threads = resolve_threads(self.threads);
        let map = |i: usize, lines: &Vec<Block>| {
            self.run_one_launch(workload, i, lines, &sim, &coalescer, launch)
        };
        let launches = if let Some(metrics) = &self.host_metrics {
            let (result, report) = try_parallel_map_metered(threads, &plaintexts, map);
            report.record_into(metrics, "launches");
            result?
        } else {
            try_parallel_map(threads, &plaintexts, map)?
        };

        let mut data = ExperimentData {
            policy: self.policy,
            workload: self.workload.clone(),
            key: self.key,
            ciphertexts: Vec::with_capacity(self.num_plaintexts),
            last_round_accesses: Vec::with_capacity(self.num_plaintexts),
            last_round_accesses_by_byte: Vec::with_capacity(self.num_plaintexts),
            total_accesses: Vec::with_capacity(self.num_plaintexts),
            total_requests: Vec::with_capacity(self.num_plaintexts),
            last_round_cycles: self.timing.then(Vec::new),
            total_cycles: self.timing.then(Vec::new),
            telemetry: self.telemetry.map(|_| ExperimentTelemetry::default()),
        };
        for (i, launch_data) in launches.into_iter().enumerate() {
            data.ciphertexts.push(launch_data.ciphertexts);
            data.last_round_accesses
                .push(launch_data.by_byte.iter().sum());
            data.last_round_accesses_by_byte.push(launch_data.by_byte);
            data.total_accesses.push(launch_data.total_accesses);
            data.total_requests.push(launch_data.total_requests);
            if let Some(lr) = data.last_round_cycles.as_mut() {
                lr.push(launch_data.last_round_cycles.unwrap_or(0));
            }
            if let Some(tc) = data.total_cycles.as_mut() {
                tc.push(launch_data.total_cycles.unwrap_or(0));
            }
            if let (Some(tel), Some(sink)) = (data.telemetry.as_mut(), launch_data.telemetry) {
                // Launches arrive in index order, so the merge (and every
                // serialized form of it) is thread-count independent.
                tel.push(i, sink);
            }
        }
        if let (Some(metrics), Some(tel)) = (&self.host_metrics, &data.telemetry) {
            tel.record_into(metrics);
        }
        if let Some(span) = span {
            span.finish();
        }
        Ok(data)
    }

    /// Runs the experiment and, when [`ExperimentConfig::audit`] is
    /// set, follows it with a leakage audit over the produced data.
    ///
    /// # Errors
    ///
    /// Everything [`ExperimentConfig::run`] can return, plus the audit
    /// failures of [`crate::audit_data`].
    pub fn run_audited(&self) -> Result<(ExperimentData, Option<LeakageReport>), ExperimentError> {
        let data = self.run()?;
        let report = match &self.audit {
            None => None,
            Some(spec) => Some(crate::audit::audit_data(&data, self.gpu.warp_size, spec)?),
        };
        Ok((data, report))
    }

    /// One kernel launch (plaintext `i`): encrypts, simulates (or
    /// functionally counts), and returns everything the experiment
    /// records about it. Runs on worker threads; must depend only on its
    /// arguments. Crate-visible so the streaming [`crate::SimulatorSource`]
    /// generates launches through the exact same path.
    pub(crate) fn run_one_launch(
        &self,
        workload: &dyn KernelWorkload,
        i: usize,
        lines: &[Block],
        sim: &GpuSimulator,
        coalescer: &Coalescer,
        launch: LaunchPolicy,
    ) -> Result<LaunchData, ExperimentError> {
        let kernel = workload.build_kernel(&self.key, lines.to_vec(), self.gpu.warp_size);
        // One kernel launch per plaintext; each launch re-draws the
        // policy randomness from its own seed.
        let launch_seed = self.seed.wrapping_add(1 + i as u64);
        let mut out = LaunchData {
            ciphertexts: Arc::new(kernel.attack_text().to_vec()),
            by_byte: [0; 16],
            total_accesses: 0,
            total_requests: 0,
            last_round_cycles: None,
            total_cycles: None,
            telemetry: None,
        };
        if self.timing {
            let stats = if let Some(spec) = &self.telemetry {
                let mut sink = spec.sink();
                let stats =
                    sim.run_instrumented(&kernel, launch, launch_seed, &self.faults, &mut sink)?;
                out.telemetry = Some(sink);
                stats
            } else {
                sim.run_launch_faulted(&kernel, launch, launch_seed, &self.faults)?
            };
            for (j, slot) in out.by_byte.iter_mut().enumerate() {
                *slot = stats.accesses_for_tag(LAST_ROUND_TAG_BASE + j as u16);
            }
            out.total_accesses = stats.total_accesses;
            out.total_requests = stats.total_requests;
            // `try_` keeps a kernel that never passes the boundary round
            // from silently reporting the whole run as "post-boundary"
            // time (registered workloads always pass it; a custom kernel
            // may not).
            out.last_round_cycles = stats.try_cycles_after_round(workload.timing_boundary_round());
            out.total_cycles = Some(stats.total_cycles);
        } else {
            let counts = functional_counts(&kernel, launch, launch_seed, coalescer, &self.gpu)?;
            out.by_byte = counts.by_byte;
            out.total_accesses = counts.total;
            out.total_requests = counts.requests;
        }
        Ok(out)
    }
}

/// Everything one launch contributes to [`ExperimentData`].
pub(crate) struct LaunchData {
    pub(crate) ciphertexts: Arc<Vec<Block>>,
    pub(crate) by_byte: [u64; 16],
    pub(crate) total_accesses: u64,
    pub(crate) total_requests: u64,
    pub(crate) last_round_cycles: Option<u64>,
    pub(crate) total_cycles: Option<u64>,
    pub(crate) telemetry: Option<SimTelemetry>,
}

struct FunctionalCounts {
    total: u64,
    requests: u64,
    by_byte: [u64; 16],
}

/// Counts coalesced accesses without the cycle model, drawing the same
/// per-warp subwarp assignments the simulator would (same seed, same warp
/// order).
fn functional_counts(
    kernel: &dyn Kernel,
    launch: LaunchPolicy,
    launch_seed: u64,
    coalescer: &Coalescer,
    gpu: &GpuConfig,
) -> Result<FunctionalCounts, ExperimentError> {
    let mut rng = StdRng::seed_from_u64(launch_seed);
    let mut counts = FunctionalCounts {
        total: 0,
        requests: 0,
        by_byte: [0; 16],
    };
    let (default_policy, vulnerable_policy) = launch.policies();
    for w in 0..kernel.num_warps() {
        let width = kernel.warp_width(w).min(gpu.warp_size);
        // Same draw order as the simulator's launch stage, so seeded
        // functional runs reproduce its assignments exactly.
        let assignment = default_policy.assignment(width, &mut rng)?;
        let vulnerable_assignment = if matches!(launch, LaunchPolicy::Uniform(_)) {
            assignment.clone()
        } else {
            vulnerable_policy.assignment(width, &mut rng)?
        };
        for instr in kernel.trace(w).instrs() {
            if let TraceInstr::Load { addrs, tag } = instr {
                let a = if launch.is_vulnerable_tag(*tag) {
                    &vulnerable_assignment
                } else {
                    &assignment
                };
                let n = coalescer.count_accesses(a, addrs) as u64;
                counts.total += n;
                counts.requests += addrs.iter().filter(|a| a.is_some()).count() as u64;
                if *tag >= LAST_ROUND_TAG_BASE {
                    counts.by_byte[usize::from(tag - LAST_ROUND_TAG_BASE)] += n;
                }
            }
        }
    }
    Ok(counts)
}

/// Results of one experiment: per-plaintext observations.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentData {
    /// The deployed policy.
    pub policy: CoalescingPolicy,
    /// Name of the workload that produced the data (`"aes"` for the
    /// paper's kernel).
    pub workload: String,
    /// The victim key (available here because we are the experimenter;
    /// the attack itself never reads it).
    pub key: [u8; 16],
    /// Per-plaintext attacker-visible text lines (ciphertexts for AES,
    /// plaintexts for the first-round workloads), shared via [`Arc`] so
    /// packaging the data as attack samples (possibly several times, for
    /// different timing sources) never deep-copies the blocks.
    pub ciphertexts: Vec<Arc<Vec<Block>>>,
    /// Per-plaintext last-round coalesced accesses.
    pub last_round_accesses: Vec<u64>,
    /// Per-plaintext last-round accesses split by ciphertext byte
    /// position (`[n][j]` = plaintext `n`, byte `j`).
    pub last_round_accesses_by_byte: Vec<[u64; 16]>,
    /// Per-plaintext total coalesced accesses.
    pub total_accesses: Vec<u64>,
    /// Per-plaintext pre-coalescing lane requests.
    pub total_requests: Vec<u64>,
    /// Per-plaintext last-round cycles (timing runs only).
    pub last_round_cycles: Option<Vec<u64>>,
    /// Per-plaintext total cycles (timing runs only).
    pub total_cycles: Option<Vec<u64>>,
    /// Per-launch traces and the aggregate leakage profile (present only
    /// when the config set [`ExperimentConfig::telemetry`]). Cycle-domain
    /// and deterministic, so it participates in `PartialEq` like every
    /// other observation.
    pub telemetry: Option<ExperimentTelemetry>,
}

impl ExperimentData {
    /// The true last-round key (ground truth for scoring recoveries).
    pub fn true_last_round_key(&self) -> [u8; 16] {
        rcoal_aes::Aes128::new(&self.key).last_round_key()
    }

    /// The registry entry of the workload that produced this data.
    /// Unknown names (e.g. data decoded from a future cache format)
    /// fall back to the AES entry, matching the pre-registry pipeline.
    pub fn workload_def(&self) -> &'static dyn KernelWorkload {
        rcoal_workload::find(&self.workload).unwrap_or(rcoal_workload::registry()[0])
    }

    /// The true attacked subkey for this data's workload (ground truth
    /// for scoring recoveries): the last-round key for AES, the
    /// whitening material for the first-round workloads.
    pub fn attacked_subkey(&self) -> [u8; 16] {
        self.workload_def().attacked_subkey(&self.key)
    }

    /// Packages the observations as attack samples with the chosen
    /// timing source.
    ///
    /// # Errors
    ///
    /// [`ExperimentError::TimingUnavailable`] if a cycle-based source is
    /// requested from a functional-only run, and
    /// [`ExperimentError::Config`] for an out-of-range byte index.
    pub fn attack_samples(
        &self,
        source: TimingSource,
    ) -> Result<Vec<AttackSample>, ExperimentError> {
        let times: Vec<f64> = match source {
            TimingSource::LastRoundCycles => self
                .last_round_cycles
                .as_ref()
                .ok_or(ExperimentError::TimingUnavailable {
                    what: "TimingSource::LastRoundCycles",
                })?
                .iter()
                .map(|&c| c as f64)
                .collect(),
            TimingSource::TotalCycles => self
                .total_cycles
                .as_ref()
                .ok_or(ExperimentError::TimingUnavailable {
                    what: "TimingSource::TotalCycles",
                })?
                .iter()
                .map(|&c| c as f64)
                .collect(),
            TimingSource::LastRoundAccesses => {
                self.last_round_accesses.iter().map(|&c| c as f64).collect()
            }
            TimingSource::ByteAccesses(j) => {
                if usize::from(j) >= 16 {
                    return Err(ExperimentError::Config(format!(
                        "ByteAccesses index {j} out of range (observations carry 16 \
                         per-byte channels)"
                    )));
                }
                self.last_round_accesses_by_byte
                    .iter()
                    .map(|b| b[usize::from(j)] as f64)
                    .collect()
            }
        };
        Ok(self
            .ciphertexts
            .iter()
            .zip(times)
            .map(|(cts, time)| AttackSample {
                // Arc clone: the sample shares the experiment's blocks.
                ciphertexts: Arc::clone(cts),
                time,
            })
            .collect())
    }

    /// Mean total cycles per plaintext.
    ///
    /// # Errors
    ///
    /// [`ExperimentError::TimingUnavailable`] on a functional-only run.
    pub fn mean_total_cycles(&self) -> Result<f64, ExperimentError> {
        Ok(mean_u64(self.total_cycles.as_ref().ok_or(
            ExperimentError::TimingUnavailable {
                what: "mean_total_cycles",
            },
        )?))
    }

    /// Mean last-round cycles per plaintext.
    ///
    /// # Errors
    ///
    /// [`ExperimentError::TimingUnavailable`] on a functional-only run.
    pub fn mean_last_round_cycles(&self) -> Result<f64, ExperimentError> {
        Ok(mean_u64(self.last_round_cycles.as_ref().ok_or(
            ExperimentError::TimingUnavailable {
                what: "mean_last_round_cycles",
            },
        )?))
    }

    /// Mean total coalesced accesses per plaintext.
    pub fn mean_total_accesses(&self) -> f64 {
        mean_u64(&self.total_accesses)
    }

    /// Mean last-round coalesced accesses per plaintext.
    pub fn mean_last_round_accesses(&self) -> f64 {
        mean_u64(&self.last_round_accesses)
    }

    /// Number of plaintexts observed.
    pub fn len(&self) -> usize {
        self.ciphertexts.len()
    }

    /// Whether the experiment observed no plaintexts.
    pub fn is_empty(&self) -> bool {
        self.ciphertexts.is_empty()
    }
}

fn mean_u64(v: &[u64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        // Accumulate in f64: a u64 sum overflows at ~2^64 total cycles,
        // which long timing sweeps can reach.
        v.iter().fold(0.0, |acc, &x| acc + x as f64) / v.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcoal_aes::Aes128;

    fn quick(policy: CoalescingPolicy, timing: bool) -> ExperimentData {
        let mut cfg = ExperimentConfig::new(policy, 4, 32).with_seed(7);
        cfg.timing = timing;
        cfg.run().unwrap()
    }

    #[test]
    fn ciphertexts_match_reference_aes() {
        let data = quick(CoalescingPolicy::Baseline, false);
        let plaintexts = random_plaintexts(4, 32, 7);
        let aes = Aes128::new(&DEMO_KEY);
        for (p, c) in plaintexts.iter().zip(&data.ciphertexts) {
            for (line, ct) in p.iter().zip(c.iter()) {
                assert_eq!(aes.encrypt_block(*line), *ct);
            }
        }
    }

    #[test]
    fn functional_counts_match_simulator_counts() {
        for policy in [
            CoalescingPolicy::Baseline,
            CoalescingPolicy::Disabled,
            CoalescingPolicy::fss(4).unwrap(),
            CoalescingPolicy::rss_rts(8).unwrap(),
        ] {
            let timing = quick(policy, true);
            let functional = quick(policy, false);
            assert_eq!(timing.total_accesses, functional.total_accesses, "{policy}");
            assert_eq!(
                timing.last_round_accesses, functional.last_round_accesses,
                "{policy}"
            );
            assert_eq!(timing.total_requests, functional.total_requests);
        }
    }

    #[test]
    fn last_round_access_bounds() {
        // Baseline: per byte 1..=16 blocks, 16 bytes → 16..=256 per warp.
        let data = quick(CoalescingPolicy::Baseline, false);
        for &a in &data.last_round_accesses {
            assert!((16..=256).contains(&a), "accesses {a}");
        }
        // Disabled: exactly 32 threads × 16 bytes = 512.
        let data = quick(CoalescingPolicy::Disabled, false);
        assert!(data.last_round_accesses.iter().all(|&a| a == 512));
    }

    #[test]
    fn attack_samples_carry_requested_source() {
        let data = quick(CoalescingPolicy::Baseline, true);
        let s = data
            .attack_samples(TimingSource::LastRoundAccesses)
            .unwrap();
        assert_eq!(s.len(), 4);
        assert_eq!(s[0].time, data.last_round_accesses[0] as f64);
        let s = data.attack_samples(TimingSource::TotalCycles).unwrap();
        assert_eq!(s[0].time, data.total_cycles.as_ref().unwrap()[0] as f64);
        assert_eq!(s[0].ciphertexts.len(), 32);
    }

    #[test]
    fn cycle_source_requires_timing_run() {
        let data = quick(CoalescingPolicy::Baseline, false);
        assert_eq!(
            data.attack_samples(TimingSource::LastRoundCycles)
                .unwrap_err(),
            ExperimentError::TimingUnavailable {
                what: "TimingSource::LastRoundCycles"
            }
        );
        assert!(matches!(
            data.mean_total_cycles(),
            Err(ExperimentError::TimingUnavailable { .. })
        ));
        assert!(matches!(
            data.mean_last_round_cycles(),
            Err(ExperimentError::TimingUnavailable { .. })
        ));
    }

    #[test]
    fn invalid_configs_fail_validation() {
        let cfg = ExperimentConfig::new(CoalescingPolicy::Baseline, 0, 32);
        assert!(matches!(cfg.run(), Err(ExperimentError::Config(_))));
        let cfg = ExperimentConfig::new(CoalescingPolicy::Baseline, 4, 0);
        assert!(matches!(cfg.run(), Err(ExperimentError::Config(_))));
        let cfg = ExperimentConfig::new(CoalescingPolicy::Baseline, 4, 32)
            .with_faults(rcoal_gpu_sim::FaultPlan::seeded(1).with_drop(2.0, 1));
        assert!(matches!(cfg.validate(), Err(ExperimentError::Config(_))));
    }

    #[test]
    fn randomized_policies_vary_across_plaintexts() {
        let data = quick(CoalescingPolicy::rss_rts(4).unwrap(), false);
        // With random subwarps the per-plaintext last-round counts should
        // not all coincide (holds with overwhelming probability).
        let first = data.last_round_accesses[0];
        assert!(
            data.last_round_accesses.iter().any(|&a| a != first),
            "counts: {:?}",
            data.last_round_accesses
        );
    }

    #[test]
    fn subwarping_increases_accesses_and_time() {
        let base = quick(CoalescingPolicy::Baseline, true);
        let fss16 = quick(CoalescingPolicy::fss(16).unwrap(), true);
        assert!(fss16.mean_total_accesses() > base.mean_total_accesses());
        assert!(fss16.mean_total_cycles().unwrap() > base.mean_total_cycles().unwrap());
        assert!(fss16.mean_last_round_accesses() > base.mean_last_round_accesses());
        assert!(!base.is_empty());
        assert_eq!(base.len(), 4);
    }

    #[test]
    fn telemetry_collects_per_launch_traces() {
        let data = ExperimentConfig::new(CoalescingPolicy::Baseline, 3, 32)
            .with_seed(7)
            .with_telemetry(TelemetrySpec::full())
            .run()
            .unwrap();
        let tel = data.telemetry.as_ref().unwrap();
        assert_eq!(tel.launches.len(), 3);
        assert!(tel.num_events() > 0);
        assert_eq!(tel.launches[1].index, 1);
        // Every launch issues the same loads, so the aggregate profile
        // sums the per-launch ones.
        let per_launch: u64 = tel
            .launches
            .iter()
            .map(|l| l.profile.accesses_per_load.count())
            .sum();
        assert_eq!(tel.profile.accesses_per_load.count(), per_launch);
        let jsonl = tel.trace_jsonl();
        assert!(jsonl.lines().count() == tel.num_events());
        assert!(jsonl.contains("\"launch\":2,"));
    }

    #[test]
    fn telemetry_requires_timing() {
        let cfg = ExperimentConfig::new(CoalescingPolicy::Baseline, 2, 32)
            .with_telemetry(TelemetrySpec::profile_only())
            .functional_only();
        assert!(matches!(cfg.validate(), Err(ExperimentError::Config(_))));
    }

    #[test]
    fn telemetry_does_not_perturb_observations() {
        let plain = quick(CoalescingPolicy::fss(4).unwrap(), true);
        let mut cfg = ExperimentConfig::new(CoalescingPolicy::fss(4).unwrap(), 4, 32)
            .with_seed(7)
            .with_telemetry(TelemetrySpec::full());
        cfg.timing = true;
        let mut instrumented = cfg.run().unwrap();
        instrumented.telemetry = None;
        assert_eq!(instrumented, plain, "instrumentation must be invisible");
    }

    #[test]
    fn host_metrics_record_span_and_pool() {
        let registry = rcoal_telemetry::MetricsRegistry::new();
        let data = ExperimentConfig::new(CoalescingPolicy::Baseline, 3, 32)
            .with_telemetry(TelemetrySpec::profile_only())
            .with_host_metrics(&registry)
            .with_threads(2)
            .run()
            .unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counters["span.experiment.run.calls"], 1);
        assert_eq!(snap.counters["pool.launches.items"], 3);
        assert_eq!(snap.counters["sim.launches"], 3);
        assert!(snap.hists["sim.mem_latency"].count > 0);
        assert!(data.telemetry.is_some());
    }

    #[test]
    fn true_last_round_key_matches_reference() {
        let data = quick(CoalescingPolicy::Baseline, false);
        assert_eq!(
            data.true_last_round_key(),
            Aes128::new(&DEMO_KEY).last_round_key()
        );
        assert_eq!(data.workload, "aes");
        assert_eq!(data.attacked_subkey(), data.true_last_round_key());
    }

    #[test]
    fn unknown_workload_fails_validation() {
        let cfg = ExperimentConfig::new(CoalescingPolicy::Baseline, 2, 32).with_workload("des-cbc");
        let err = cfg.run().unwrap_err();
        assert!(
            matches!(&err, ExperimentError::Config(msg) if msg.contains("des-cbc")),
            "{err}"
        );
    }

    #[test]
    fn cipher_workloads_run_and_expose_plaintext_attack_text() {
        for name in ["present80", "gift64", "rectangle", "gather"] {
            let cfg = ExperimentConfig::new(CoalescingPolicy::Baseline, 3, 32)
                .with_workload(name)
                .with_seed(7);
            let data = cfg.run().unwrap();
            assert_eq!(data.workload, name);
            assert_eq!(data.len(), 3);
            // First-round attacks observe the plaintext stream itself.
            let plaintexts = random_plaintexts(3, 32, 7);
            for (p, seen) in plaintexts.iter().zip(&data.ciphertexts) {
                assert_eq!(p, seen.as_ref(), "{name}");
            }
            let cycles = data.last_round_cycles.as_ref().unwrap();
            assert!(cycles.iter().all(|&c| c > 0), "{name}: {cycles:?}");
            assert!(data.mean_total_accesses() > 0.0, "{name}");
        }
    }

    #[test]
    fn workload_functional_counts_match_simulator_counts() {
        for name in ["present80", "rectangle"] {
            for policy in [
                CoalescingPolicy::Baseline,
                CoalescingPolicy::fss(8).unwrap(),
            ] {
                let cfg = ExperimentConfig::new(policy, 3, 32)
                    .with_workload(name)
                    .with_seed(5);
                let timing = cfg.clone().run().unwrap();
                let functional = cfg.functional_only().run().unwrap();
                assert_eq!(timing.total_accesses, functional.total_accesses, "{name}");
                assert_eq!(
                    timing.last_round_accesses_by_byte, functional.last_round_accesses_by_byte,
                    "{name}"
                );
            }
        }
    }
}
