//! Simulator-backed streaming sample generation.
//!
//! [`SimulatorSource`] is the generative counterpart of
//! [`crate::ExperimentData::attack_samples`]: instead of materializing
//! `num_plaintexts` launches and then packaging them, it produces
//! [`AttackSample`] chunks on demand through the **exact same launch
//! path** ([`ExperimentConfig`]'s per-launch seeding, policy assignment
//! replay, and timing extraction), so the concatenation of its chunks is
//! bit-identical to a materialized run of the same configuration — at
//! any chunk size. That is what lets million-sample attack and audit
//! budgets run with peak heap independent of the sample count.

use crate::error::ExperimentError;
use crate::run::{ExperimentConfig, TimingSource};
use crate::workload::random_lines_with;
use rcoal_attack::{AttackError, AttackSample, SampleSource};
use rcoal_core::Coalescer;
use rcoal_gpu_sim::{GpuSimulator, LaunchPolicy};
use rcoal_parallel::{resolve_threads, try_parallel_map};
use rcoal_rng::{SeedableRng, StdRng};
use rcoal_workload::KernelWorkload;
use std::sync::Arc;

/// A [`SampleSource`] that generates launches on the simulated GPU chunk
/// by chunk.
///
/// The source is *unbounded*: the configuration's `num_plaintexts` is
/// ignored, and the consumer's budget (e.g.
/// [`rcoal_attack::StreamOptions::max_samples`]) decides how much of the
/// infinite deterministic stream to realize. Sample `i` of this stream
/// equals sample `i` of a materialized
/// [`ExperimentConfig::run`]/[`crate::ExperimentData::attack_samples`]
/// pipeline with `num_plaintexts > i`: the plaintext generator is one
/// carried sequential stream, and each launch's policy randomness comes
/// from its own index-derived seed.
pub struct SimulatorSource {
    cfg: ExperimentConfig,
    workload: &'static dyn KernelWorkload,
    sim: GpuSimulator,
    coalescer: Coalescer,
    launch: LaunchPolicy,
    source: TimingSource,
    rng: StdRng,
    produced: usize,
}

impl std::fmt::Debug for SimulatorSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimulatorSource")
            .field("workload", &self.cfg.workload)
            .field("source", &self.source)
            .field("produced", &self.produced)
            .finish_non_exhaustive()
    }
}

impl SimulatorSource {
    /// Builds a streaming source for `cfg`'s scenario, extracting the
    /// attacker's time from `source`.
    ///
    /// # Errors
    ///
    /// [`ExperimentError::Config`] for an invalid configuration, a
    /// telemetry spec (streamed launches are not collected, so
    /// instrumenting them would silently drop data), or an out-of-range
    /// [`TimingSource::ByteAccesses`] index;
    /// [`ExperimentError::TimingUnavailable`] when a cycle-based source
    /// is requested from a functional-only configuration.
    pub fn new(cfg: ExperimentConfig, source: TimingSource) -> Result<Self, ExperimentError> {
        // `num_plaintexts` is meaningless for an unbounded stream; run
        // validation with a nominal 1 so callers can leave it at 0.
        let mut probe = cfg.clone();
        probe.num_plaintexts = probe.num_plaintexts.max(1);
        probe.validate()?;
        if cfg.telemetry.is_some() {
            return Err(ExperimentError::Config(
                "streamed sources do not collect telemetry; drop the telemetry spec".into(),
            ));
        }
        match source {
            TimingSource::LastRoundCycles if !cfg.timing => {
                return Err(ExperimentError::TimingUnavailable {
                    what: "TimingSource::LastRoundCycles",
                });
            }
            TimingSource::TotalCycles if !cfg.timing => {
                return Err(ExperimentError::TimingUnavailable {
                    what: "TimingSource::TotalCycles",
                });
            }
            TimingSource::ByteAccesses(j) if usize::from(j) >= 16 => {
                return Err(ExperimentError::Config(format!(
                    "ByteAccesses index {j} out of range (observations carry 16 \
                     per-byte channels)"
                )));
            }
            _ => {}
        }
        let workload = rcoal_workload::find(&cfg.workload).ok_or_else(|| {
            ExperimentError::Config(format!("unknown workload '{}'", cfg.workload))
        })?;
        let sim = GpuSimulator::new(cfg.gpu.clone());
        let coalescer = Coalescer::with_block_size(cfg.gpu.block_size)?;
        let launch = cfg.launch.unwrap_or(LaunchPolicy::Uniform(cfg.policy));
        let rng = StdRng::seed_from_u64(cfg.seed);
        Ok(SimulatorSource {
            cfg,
            workload,
            sim,
            coalescer,
            launch,
            source,
            rng,
            produced: 0,
        })
    }

    /// Samples generated so far.
    pub fn produced(&self) -> usize {
        self.produced
    }

    /// The registry entry of the workload this source simulates.
    pub fn workload_def(&self) -> &'static dyn KernelWorkload {
        self.workload
    }

    /// The true attacked subkey of the simulated victim (ground truth
    /// for scoring streamed recoveries).
    pub fn attacked_subkey(&self) -> [u8; 16] {
        self.workload.attacked_subkey(&self.cfg.key)
    }

    /// Generates the next `max` samples of the stream into `out`.
    ///
    /// Launches within the chunk fan out across the configured worker
    /// threads; each launch draws its policy randomness from its own
    /// index-derived seed, so the stream is bit-identical at any thread
    /// count and chunk size.
    ///
    /// # Errors
    ///
    /// Propagates simulator and policy failures.
    pub fn next_batch(
        &mut self,
        max: usize,
        out: &mut Vec<AttackSample>,
    ) -> Result<usize, ExperimentError> {
        if max == 0 {
            return Ok(0);
        }
        let plaintexts = random_lines_with(&mut self.rng, max, self.cfg.lines);
        let offset = self.produced;
        let threads = resolve_threads(self.cfg.threads);
        let launches = try_parallel_map(threads, &plaintexts, |i, lines: &Vec<_>| {
            self.cfg.run_one_launch(
                self.workload,
                offset + i,
                lines,
                &self.sim,
                &self.coalescer,
                self.launch,
            )
        })?;
        for data in launches {
            let time = match self.source {
                // `unwrap_or(0)` mirrors the materialized pipeline:
                // `run()` records missing boundary cycles as 0.
                TimingSource::LastRoundCycles => data.last_round_cycles.unwrap_or(0) as f64,
                TimingSource::TotalCycles => data.total_cycles.unwrap_or(0) as f64,
                TimingSource::LastRoundAccesses => data.by_byte.iter().sum::<u64>() as f64,
                TimingSource::ByteAccesses(j) => data.by_byte[usize::from(j)] as f64,
            };
            out.push(AttackSample {
                ciphertexts: Arc::clone(&data.ciphertexts),
                time,
            });
        }
        self.produced += max;
        Ok(max)
    }
}

impl SampleSource for SimulatorSource {
    fn next_chunk(
        &mut self,
        max: usize,
        out: &mut Vec<AttackSample>,
    ) -> Result<usize, AttackError> {
        self.next_batch(max, out)
            .map_err(|e| AttackError::Source(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::TelemetrySpec;
    use rcoal_core::CoalescingPolicy;

    fn chunked(
        cfg: &ExperimentConfig,
        source: TimingSource,
        chunks: &[usize],
    ) -> Vec<AttackSample> {
        let mut src = SimulatorSource::new(cfg.clone(), source).unwrap();
        let mut out = Vec::new();
        for &c in chunks {
            let got = src.next_batch(c, &mut out).unwrap();
            assert_eq!(got, c);
        }
        out
    }

    #[test]
    fn chunked_stream_is_bit_identical_to_materialized_run() {
        // A randomized policy (per-launch seeds) + functional counts.
        let cfg = ExperimentConfig::new(CoalescingPolicy::rss_rts(8).unwrap(), 23, 32)
            .with_seed(42)
            .functional_only();
        let materialized = cfg
            .run()
            .unwrap()
            .attack_samples(TimingSource::ByteAccesses(2))
            .unwrap();
        for chunks in [vec![23], vec![5, 5, 5, 5, 3], vec![1; 23]] {
            let streamed = chunked(&cfg, TimingSource::ByteAccesses(2), &chunks);
            assert_eq!(streamed, materialized, "chunks {chunks:?}");
        }
    }

    #[test]
    fn timing_stream_matches_materialized_cycles() {
        let cfg = ExperimentConfig::new(CoalescingPolicy::Baseline, 6, 32).with_seed(9);
        let materialized = cfg
            .run()
            .unwrap()
            .attack_samples(TimingSource::LastRoundCycles)
            .unwrap();
        let streamed = chunked(&cfg, TimingSource::LastRoundCycles, &[4, 2]);
        assert_eq!(streamed, materialized);
        let totals = chunked(&cfg, TimingSource::TotalCycles, &[6]);
        assert!(totals.iter().zip(&streamed).all(|(t, l)| t.time >= l.time));
    }

    #[test]
    fn stream_is_thread_count_invariant() {
        let base = ExperimentConfig::new(CoalescingPolicy::rss(4).unwrap(), 0, 32)
            .with_seed(3)
            .functional_only();
        let one = chunked(
            &base.clone().with_threads(1),
            TimingSource::LastRoundAccesses,
            &[9],
        );
        let four = chunked(&base.with_threads(4), TimingSource::LastRoundAccesses, &[9]);
        assert_eq!(one, four);
    }

    #[test]
    fn source_trait_streams_and_counts() {
        let cfg = ExperimentConfig::new(CoalescingPolicy::Baseline, 0, 32)
            .with_seed(11)
            .functional_only();
        let mut src = SimulatorSource::new(cfg, TimingSource::LastRoundAccesses).unwrap();
        assert_eq!(
            src.remaining_hint(),
            None,
            "generative sources are unbounded"
        );
        let mut buf = Vec::new();
        assert_eq!(SampleSource::next_chunk(&mut src, 5, &mut buf).unwrap(), 5);
        assert_eq!(SampleSource::next_chunk(&mut src, 0, &mut buf).unwrap(), 0);
        assert_eq!(src.produced(), 5);
        assert_eq!(buf.len(), 5);
        assert_eq!(
            src.attacked_subkey(),
            rcoal_aes::Aes128::new(&crate::workload::DEMO_KEY).last_round_key()
        );
    }

    #[test]
    fn invalid_streaming_configs_are_typed_errors() {
        let cfg = ExperimentConfig::new(CoalescingPolicy::Baseline, 0, 32).functional_only();
        assert_eq!(
            SimulatorSource::new(cfg.clone(), TimingSource::LastRoundCycles).unwrap_err(),
            ExperimentError::TimingUnavailable {
                what: "TimingSource::LastRoundCycles"
            }
        );
        assert!(matches!(
            SimulatorSource::new(cfg.clone(), TimingSource::ByteAccesses(16)).unwrap_err(),
            ExperimentError::Config(_)
        ));
        let telemetry = ExperimentConfig::new(CoalescingPolicy::Baseline, 2, 32)
            .with_telemetry(TelemetrySpec::profile_only());
        assert!(matches!(
            SimulatorSource::new(telemetry, TimingSource::LastRoundCycles).unwrap_err(),
            ExperimentError::Config(_)
        ));
        let unknown =
            ExperimentConfig::new(CoalescingPolicy::Baseline, 2, 32).with_workload("des-cbc");
        assert!(matches!(
            SimulatorSource::new(unknown, TimingSource::LastRoundAccesses).unwrap_err(),
            ExperimentError::Config(_)
        ));
    }
}
