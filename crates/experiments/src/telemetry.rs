//! Experiment-level telemetry: per-launch traces and the aggregated
//! leakage profile.
//!
//! A [`TelemetrySpec`] on an [`crate::ExperimentConfig`] turns every
//! simulated launch into an instrumented run; the collected
//! [`ExperimentTelemetry`] carries one [`LaunchTrace`] per plaintext plus
//! the launch-order merge of all [`SimProfile`]s. Everything here stays
//! in the cycle domain, so for a fixed seed the whole struct — and its
//! serialized forms — is bit-identical across worker-thread counts.

use rcoal_gpu_sim::{SimProfile, SimTelemetry, DEFAULT_EVENT_CAPACITY};
use rcoal_telemetry::{Event, MetricsRegistry, Severity};

/// What the experiment collects from each simulated launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetrySpec {
    /// Events retained per launch (newest win once full).
    pub event_capacity: usize,
    /// Events below this severity are never retained.
    pub min_severity: Severity,
}

impl TelemetrySpec {
    /// Full collection: the default per-launch event capacity at `Debug`.
    pub fn full() -> Self {
        TelemetrySpec {
            event_capacity: DEFAULT_EVENT_CAPACITY,
            min_severity: Severity::Debug,
        }
    }

    /// Profile-only collection: histograms and counters but no retained
    /// events (the cheapest instrumented configuration).
    pub fn profile_only() -> Self {
        TelemetrySpec {
            event_capacity: 0,
            min_severity: Severity::Error,
        }
    }

    /// Overrides the per-launch event capacity.
    pub fn with_event_capacity(mut self, capacity: usize) -> Self {
        self.event_capacity = capacity;
        self
    }

    /// Overrides the retained-severity floor.
    pub fn with_min_severity(mut self, min: Severity) -> Self {
        self.min_severity = min;
        self
    }

    /// Builds the per-launch sink this spec describes.
    pub(crate) fn sink(&self) -> SimTelemetry {
        SimTelemetry::with_event_capacity(self.event_capacity).with_min_severity(self.min_severity)
    }
}

impl Default for TelemetrySpec {
    fn default() -> Self {
        Self::full()
    }
}

/// The trace one launch left behind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaunchTrace {
    /// Plaintext / launch index within the experiment.
    pub index: usize,
    /// Retained cycle-stamped events, oldest first.
    pub events: Vec<Event>,
    /// Events evicted from the ring (the trace is a suffix when > 0).
    pub dropped: u64,
    /// This launch's leakage profile.
    pub profile: SimProfile,
}

/// Everything an instrumented experiment collected.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExperimentTelemetry {
    /// Per-launch traces, in launch order.
    pub launches: Vec<LaunchTrace>,
    /// All launch profiles merged in launch order.
    pub profile: SimProfile,
}

impl ExperimentTelemetry {
    /// Absorbs one launch's sink. Callers feed launches in index order so
    /// the merged profile stays deterministic.
    pub(crate) fn push(&mut self, index: usize, mut sink: SimTelemetry) {
        self.profile.merge(&sink.profile);
        self.launches.push(LaunchTrace {
            index,
            events: sink.events.take_events(),
            dropped: sink.events.dropped(),
            profile: sink.profile,
        });
    }

    /// Total events retained across all launches.
    pub fn num_events(&self) -> usize {
        self.launches.iter().map(|l| l.events.len()).sum()
    }

    /// Serializes every retained event as JSONL, launch by launch. Each
    /// line is the event's JSON object prefixed with its launch index, so
    /// the interleaved cycle domains stay distinguishable:
    ///
    /// ```text
    /// {"launch":0,"cycle":12,"severity":"info",...}
    /// ```
    pub fn trace_jsonl(&self) -> String {
        let mut out = String::new();
        for launch in &self.launches {
            for e in &launch.events {
                // Splice the launch index into the event's own object.
                out.push_str(&format!("{{\"launch\":{},", launch.index));
                out.push_str(&e.to_json()[1..]);
                out.push('\n');
            }
        }
        out
    }

    /// Records the aggregate profile into `registry` under `sim.*`:
    /// histograms merged by name, stall/deferral counters, the finish
    /// spread as a gauge, and per-controller row locality under
    /// `sim.mc<i>.*`.
    pub fn record_into(&self, registry: &MetricsRegistry) {
        registry
            .counter("sim.launches")
            .add(self.launches.len() as u64);
        registry
            .counter("sim.trace.events")
            .add(self.num_events() as u64);
        registry
            .counter("sim.trace.dropped")
            .add(self.launches.iter().map(|l| l.dropped).sum());
        registry.merge_hist("sim.accesses_per_load", &self.profile.accesses_per_load);
        registry.merge_hist(
            "sim.accesses_per_subwarp",
            &self.profile.accesses_per_subwarp,
        );
        registry.merge_hist("sim.lanes_per_access", &self.profile.lanes_per_access);
        registry.merge_hist("sim.mem_latency", &self.profile.mem_latency);
        registry
            .counter("sim.issue_stall_cycles")
            .add(self.profile.issue_stall_cycles);
        registry
            .counter("sim.icnt.req_deferred")
            .add(self.profile.icnt_req_deferred);
        registry
            .counter("sim.icnt.reply_deferred")
            .add(self.profile.icnt_reply_deferred);
        registry
            .gauge("sim.warp_finish_spread")
            .raise_to(self.profile.warp_finish_spread);
        for (i, mc) in self.profile.mcs.iter().enumerate() {
            registry
                .counter(&format!("sim.mc{i}.row_hits"))
                .add(mc.row_hits);
            registry
                .counter(&format!("sim.mc{i}.row_misses"))
                .add(mc.row_misses);
            registry
                .counter(&format!("sim.mc{i}.serviced"))
                .add(mc.serviced);
            registry.merge_hist(&format!("sim.mc{i}.queue_depth"), &mc.queue_depth);
        }
    }

    /// The aggregate profile as one stable `rcoal-metrics/v1` JSON
    /// object (a fresh registry, filled by
    /// [`ExperimentTelemetry::record_into`], then snapshotted — so the
    /// string is deterministic for a fixed seed).
    pub fn metrics_json(&self) -> String {
        let registry = MetricsRegistry::new();
        self.record_into(&registry);
        registry.snapshot().to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builders_compose() {
        let spec = TelemetrySpec::full()
            .with_event_capacity(16)
            .with_min_severity(Severity::Warn);
        assert_eq!(spec.event_capacity, 16);
        assert_eq!(spec.min_severity, Severity::Warn);
        assert_eq!(TelemetrySpec::profile_only().event_capacity, 0);
        assert_eq!(TelemetrySpec::default(), TelemetrySpec::full());
    }

    #[test]
    fn trace_jsonl_prefixes_the_launch_index() {
        let mut tel = ExperimentTelemetry::default();
        let mut sink = SimTelemetry::new();
        sink.events.record(Event {
            cycle: 3,
            severity: Severity::Info,
            component: "sim",
            code: "launch",
            a: 1,
            b: 32,
        });
        tel.push(5, sink);
        let jsonl = tel.trace_jsonl();
        let line = jsonl.lines().next().unwrap();
        assert!(line.starts_with("{\"launch\":5,\"cycle\":3,"));
        assert!(line.ends_with('}'));
        assert_eq!(tel.num_events(), 1);
    }

    #[test]
    fn record_into_exposes_profile_and_mcs() {
        let mut tel = ExperimentTelemetry::default();
        let mut sink = SimTelemetry::new();
        sink.profile.issue_stall_cycles = 11;
        sink.profile.accesses_per_load.record(4);
        sink.profile.ensure_mcs(2);
        sink.profile.mcs[1].row_hits = 3;
        sink.profile.mcs[1].serviced = 4;
        tel.push(0, sink);
        let reg = MetricsRegistry::new();
        tel.record_into(&reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["sim.launches"], 1);
        assert_eq!(snap.counters["sim.issue_stall_cycles"], 11);
        assert_eq!(snap.counters["sim.mc1.row_hits"], 3);
        assert_eq!(snap.hists["sim.accesses_per_load"].count, 1);
        assert!(tel
            .metrics_json()
            .starts_with("{\"schema\":\"rcoal-metrics/v1\""));
    }
}
