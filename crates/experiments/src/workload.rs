//! Input-material generators for experiments, parameterized by the
//! workload registry's declared geometry.

use rcoal_aes::Block;
use rcoal_rng::StdRng;
use rcoal_rng::{Rng, SeedableRng};
use rcoal_workload::KernelWorkload;

/// Generates `num_samples` random inputs of `lines` 16-byte lines each,
/// reproducibly from `seed` — the attacker-observed uniformly random
/// text stream every registered workload consumes (workloads with
/// 8-byte blocks read each line's first 8 bytes).
///
/// The draw is workload-independent on purpose: an AES run and a
/// PRESENT run with the same `(num, lines, seed)` see the same bytes,
/// and the AES path stays bit-identical to the pre-registry pipeline.
pub fn random_lines(num_samples: usize, lines: usize, seed: u64) -> Vec<Vec<Block>> {
    let mut rng = StdRng::seed_from_u64(seed);
    random_lines_with(&mut rng, num_samples, lines)
}

/// [`random_lines`] continuing an existing generator: draws in the exact
/// same per-sample, per-line order, so repeated chunked calls against one
/// carried `rng` reproduce the prefixes of a single monolithic call —
/// the contract the streaming [`crate::SimulatorSource`] relies on.
pub(crate) fn random_lines_with(
    rng: &mut StdRng,
    num_samples: usize,
    lines: usize,
) -> Vec<Vec<Block>> {
    (0..num_samples)
        .map(|_| {
            (0..lines)
                .map(|_| {
                    let mut b = [0u8; 16];
                    rng.fill(&mut b);
                    b
                })
                .collect()
        })
        .collect()
}

/// AES-era name for [`random_lines`] (the plaintext stream of the
/// paper's workload); kept as a thin wrapper.
pub fn random_plaintexts(num_plaintexts: usize, lines: usize, seed: u64) -> Vec<Vec<Block>> {
    random_lines(num_plaintexts, lines, seed)
}

/// The fixed demonstration key used by examples and benches (any key
/// works; the attack recovers whatever key the server holds).
pub const DEMO_KEY: [u8; 16] = *b"rcoal demo key<>";

/// The demonstration key trimmed to `workload`'s declared key size:
/// bytes past `geometry().key_bytes` are zeroed, making the key
/// material the kernel actually consumes explicit (PRESENT-80 uses 10
/// bytes; the gather control uses none).
pub fn demo_key_for(workload: &dyn KernelWorkload) -> [u8; 16] {
    let mut key = DEMO_KEY;
    for b in key.iter_mut().skip(workload.geometry().key_bytes.min(16)) {
        *b = 0;
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let a = random_plaintexts(3, 32, 9);
        assert_eq!(a.len(), 3);
        assert!(a.iter().all(|p| p.len() == 32));
        let b = random_plaintexts(3, 32, 9);
        assert_eq!(a, b);
        let c = random_plaintexts(3, 32, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn plaintexts_differ_across_samples_and_lines() {
        let p = random_plaintexts(2, 4, 1);
        assert_ne!(p[0][0], p[0][1]);
        assert_ne!(p[0][0], p[1][0]);
    }

    #[test]
    fn random_lines_is_the_same_stream() {
        assert_eq!(random_lines(2, 8, 42), random_plaintexts(2, 8, 42));
    }

    #[test]
    fn demo_key_respects_declared_key_sizes() {
        let aes = rcoal_workload::find("aes").unwrap();
        assert_eq!(demo_key_for(aes), DEMO_KEY, "AES uses the full key");
        let present = rcoal_workload::find("present80").unwrap();
        let k = demo_key_for(present);
        assert_eq!(&k[..10], &DEMO_KEY[..10]);
        assert_eq!(&k[10..], &[0u8; 6]);
        let gather = rcoal_workload::find("gather").unwrap();
        assert_eq!(demo_key_for(gather), [0u8; 16], "keyless control");
    }
}
