use rcoal_aes::Block;
use rcoal_rng::StdRng;
use rcoal_rng::{Rng, SeedableRng};

/// Generates `num_plaintexts` random plaintexts of `lines` 16-byte lines
/// each, reproducibly from `seed`. This models the attacker-chosen (in
/// practice: attacker-observed, uniformly random) plaintext stream.
pub fn random_plaintexts(num_plaintexts: usize, lines: usize, seed: u64) -> Vec<Vec<Block>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..num_plaintexts)
        .map(|_| {
            (0..lines)
                .map(|_| {
                    let mut b = [0u8; 16];
                    rng.fill(&mut b);
                    b
                })
                .collect()
        })
        .collect()
}

/// The fixed demonstration key used by examples and benches (any key
/// works; the attack recovers whatever key the server holds).
pub const DEMO_KEY: [u8; 16] = *b"rcoal demo key<>";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let a = random_plaintexts(3, 32, 9);
        assert_eq!(a.len(), 3);
        assert!(a.iter().all(|p| p.len() == 32));
        let b = random_plaintexts(3, 32, 9);
        assert_eq!(a, b);
        let c = random_plaintexts(3, 32, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn plaintexts_differ_across_samples_and_lines() {
        let p = random_plaintexts(2, 4, 1);
        assert_ne!(p[0][0], p[0][1]);
        assert_ne!(p[0][0], p[1][0]);
    }
}
