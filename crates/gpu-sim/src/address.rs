use crate::GpuConfig;

/// The DRAM location a physical address decodes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PhysLoc {
    /// Memory controller (partition) index.
    pub mc: usize,
    /// Bank index within the controller.
    pub bank: usize,
    /// Bank group of `bank`.
    pub bank_group: usize,
    /// Row within the bank.
    pub row: u64,
    /// Column (byte offset within the row, block-aligned).
    pub col: u64,
}

/// Decodes global linear addresses into (controller, bank, row, column)
/// coordinates.
///
/// Following the paper's Table I (and GPGPU-Sim's default mapping), the
/// global linear address space is interleaved among the partitions in
/// chunks of 256 bytes; within a partition, consecutive chunks walk the
/// banks so that streaming accesses spread across banks, and higher bits
/// select the row.
#[derive(Debug, Clone, PartialEq)]
pub struct AddressMapper {
    num_mcs: usize,
    banks: usize,
    bank_groups: usize,
    interleave: u64,
    row_size: u64,
}

impl AddressMapper {
    /// Builds a mapper from the simulator configuration.
    pub fn new(config: &GpuConfig) -> Self {
        AddressMapper {
            num_mcs: config.num_mem_controllers,
            banks: config.banks_per_mc,
            bank_groups: config.bank_groups_per_mc,
            interleave: config.interleave_bytes,
            row_size: config.row_size_bytes,
        }
    }

    /// Decodes `addr` to its DRAM location.
    pub fn decode(&self, addr: u64) -> PhysLoc {
        let chunk = addr / self.interleave;
        let mc = (chunk % self.num_mcs as u64) as usize;
        // Address local to the partition: drop the partition-select bits by
        // compacting the chunk index.
        let local_chunk = chunk / self.num_mcs as u64;
        let local_addr = local_chunk * self.interleave + (addr % self.interleave);
        let bank = (local_chunk % self.banks as u64) as usize;
        let row = local_addr / (self.row_size * self.banks as u64);
        let col = local_addr % self.row_size;
        PhysLoc {
            mc,
            bank,
            bank_group: bank % self.bank_groups,
            row,
            col,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapper() -> AddressMapper {
        AddressMapper::new(&GpuConfig::default())
    }

    #[test]
    fn partitions_interleave_every_256_bytes() {
        let m = mapper();
        assert_eq!(m.decode(0).mc, 0);
        assert_eq!(m.decode(255).mc, 0);
        assert_eq!(m.decode(256).mc, 1);
        assert_eq!(m.decode(256 * 5).mc, 5);
        assert_eq!(m.decode(256 * 6).mc, 0, "wraps after 6 partitions");
    }

    #[test]
    fn banks_rotate_across_partition_chunks() {
        let m = mapper();
        // Consecutive chunks of the same partition land in different banks.
        let a = m.decode(0); // local chunk 0
        let b = m.decode(256 * 6); // local chunk 1 of MC 0
        assert_eq!(a.mc, b.mc);
        assert_ne!(a.bank, b.bank);
    }

    #[test]
    fn bank_group_is_consistent_with_bank() {
        let m = mapper();
        for addr in (0..(1 << 20)).step_by(4096) {
            let loc = m.decode(addr);
            assert_eq!(loc.bank_group, loc.bank % 4);
            assert!(loc.bank < 16);
            assert!(loc.mc < 6);
            assert!(loc.col < 2048);
        }
    }

    #[test]
    fn same_block_maps_to_same_location() {
        let m = mapper();
        let a = m.decode(4096);
        let b = m.decode(4096 + 63);
        assert_eq!((a.mc, a.bank, a.row), (b.mc, b.bank, b.row));
    }

    #[test]
    fn row_advances_with_address() {
        let m = mapper();
        // One row per bank is row_size bytes; the partition cycles through
        // all banks before reusing a bank, so the same bank's next row is
        // banks × row_size local bytes later.
        let first = m.decode(0);
        let stride = 2048 * 16 * 6; // row_size × banks × mcs of global space
        let next = m.decode(stride);
        assert_eq!(first.bank, next.bank);
        assert_eq!(first.mc, next.mc);
        assert_eq!(next.row, first.row + 1);
    }

    #[test]
    fn small_table_fits_in_one_row() {
        // The 1 KiB AES T4 table at any 256-aligned base touches at most a
        // handful of (mc, bank, row) tuples — sanity for the timing model.
        let m = mapper();
        let mut locs: Vec<(usize, usize, u64)> = (0..1024u64)
            .step_by(64)
            .map(|off| {
                let l = m.decode(0x2000 + off);
                (l.mc, l.bank, l.row)
            })
            .collect();
        locs.sort_unstable();
        locs.dedup();
        assert!(locs.len() <= 4, "1 KiB spans {} row-buffers", locs.len());
    }
}
