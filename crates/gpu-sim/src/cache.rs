//! A set-associative, LRU, per-SM L1 data cache for global loads.
//!
//! Disabled by default: the paper's configuration (and the GPUs the
//! baseline attack was demonstrated on) bypasses L1 for global memory.
//! Enabling it is an ablation lever — a 1 KiB lookup table that fits in
//! L1 serves every lookup from the cache after warm-up, flattening the
//! coalescing timing channel (see `ablation_l1` in `rcoal-experiments`).

/// Set-associative cache state over block-aligned addresses.
#[derive(Debug, Clone)]
pub(crate) struct L1Cache {
    /// `sets[s]` holds up to `ways` entries of `(block_addr, last_use)`.
    sets: Vec<Vec<(u64, u64)>>,
    ways: usize,
    use_counter: u64,
}

impl L1Cache {
    /// Creates a cache with `sets` sets of `ways` lines each.
    pub fn new(sets: usize, ways: usize) -> Self {
        L1Cache {
            sets: vec![Vec::new(); sets.max(1)],
            ways: ways.max(1),
            use_counter: 0,
        }
    }

    fn set_of(&self, block_addr: u64) -> usize {
        ((block_addr >> 6) % self.sets.len() as u64) as usize
    }

    /// Looks up a block, updating LRU on a hit (the simulator's `SimStats`
    /// carries the hit/miss accounting).
    pub fn probe(&mut self, block_addr: u64) -> bool {
        self.use_counter += 1;
        let counter = self.use_counter;
        let set = self.set_of(block_addr);
        match self.sets[set].iter_mut().find(|(b, _)| *b == block_addr) {
            Some(entry) => {
                entry.1 = counter;
                true
            }
            None => false,
        }
    }

    /// Installs a block, evicting the LRU line of its set if full.
    pub fn fill(&mut self, block_addr: u64) {
        self.use_counter += 1;
        let counter = self.use_counter;
        let ways = self.ways;
        let set = self.set_of(block_addr);
        let lines = &mut self.sets[set];
        if let Some(entry) = lines.iter_mut().find(|(b, _)| *b == block_addr) {
            entry.1 = counter;
            return;
        }
        if lines.len() >= ways {
            if let Some(lru) = lines
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(i, _)| i)
            {
                lines.swap_remove(lru);
            }
        }
        lines.push((block_addr, counter));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_probe_misses_then_hits_after_fill() {
        let mut c = L1Cache::new(16, 4);
        assert!(!c.probe(0x1000));
        c.fill(0x1000);
        assert!(c.probe(0x1000));
    }

    #[test]
    fn distinct_blocks_occupy_distinct_sets() {
        let mut c = L1Cache::new(16, 1);
        // 16 consecutive 64-byte blocks — exactly one per set.
        for b in 0..16u64 {
            c.fill(b * 64);
        }
        for b in 0..16u64 {
            assert!(c.probe(b * 64), "block {b} evicted unexpectedly");
        }
    }

    #[test]
    fn lru_evicts_the_oldest_way() {
        let mut c = L1Cache::new(1, 2);
        c.fill(0); // set 0
        c.fill(64); // same set: sets=1 -> everything set 0
        assert!(c.probe(0)); // touch 0 so 64 is LRU
        c.fill(64 * 2); // evicts 64
        assert!(c.probe(0));
        assert!(!c.probe(64));
        assert!(c.probe(128));
    }

    #[test]
    fn refill_of_resident_block_updates_lru_without_duplicates() {
        let mut c = L1Cache::new(1, 2);
        c.fill(0);
        c.fill(0);
        c.fill(64);
        c.fill(128); // must evict 0 or 64, never hold duplicates
        let resident = [0u64, 64, 128].iter().filter(|&&b| c.probe(b)).count();
        assert_eq!(resident, 2);
    }
}
