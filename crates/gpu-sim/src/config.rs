/// Warp scheduling policy of each SM's schedulers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedulerPolicy {
    /// Greedy-then-oldest: keep issuing from the warp issued last; fall
    /// back to the oldest ready warp (GPGPU-Sim's default, and ours).
    #[default]
    Gto,
    /// Loose round-robin: rotate the scan start across warps each cycle,
    /// spreading issue slots evenly.
    Lrr,
}

/// GDDR5 bank timing parameters in memory-clock cycles, following the
/// Hynix GDDR5 datasheet values listed in the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramTiming {
    /// CAS latency: read command to first data beat.
    pub t_cl: u32,
    /// Row precharge time.
    pub t_rp: u32,
    /// Activate-to-activate delay for the same bank (row cycle time).
    pub t_rc: u32,
    /// Activate-to-precharge minimum for a bank.
    pub t_ras: u32,
    /// Column-to-column delay (burst gap on the data bus).
    pub t_ccd: u32,
    /// Activate-to-read delay (RAS-to-CAS).
    pub t_rcd: u32,
    /// Activate-to-activate delay across banks of the same controller.
    pub t_rrd: u32,
}

impl Default for DramTiming {
    /// Table I: `tCL = 12, tRP = 12, tRC = 40, tRAS = 28, tCCD = 2,
    /// tRCD = 12, tRRD = 6`.
    fn default() -> Self {
        DramTiming {
            t_cl: 12,
            t_rp: 12,
            t_rc: 40,
            t_ras: 28,
            t_ccd: 2,
            t_rcd: 12,
            t_rrd: 6,
        }
    }
}

/// Full simulated-GPU configuration, mirroring the paper's Table I.
///
/// `GpuConfig::default()` is the paper's configuration; tests shrink it
/// (fewer SMs, smaller warps) for speed where the full machine is not the
/// point.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors (15).
    pub num_sms: usize,
    /// Threads per warp (32).
    pub warp_size: usize,
    /// Warp schedulers per SM; bounds instructions issued per SM per cycle
    /// (2, i.e. SIMT width 32 arranged 16 × 2).
    pub warp_schedulers: usize,
    /// Core clock in MHz (1400).
    pub core_clock_mhz: u32,
    /// Interconnect clock in MHz (1400).
    pub icnt_clock_mhz: u32,
    /// Memory clock in MHz (924).
    pub mem_clock_mhz: u32,
    /// Number of GDDR5 memory controllers / partitions (6).
    pub num_mem_controllers: usize,
    /// DRAM banks per controller (16).
    pub banks_per_mc: usize,
    /// Bank groups per controller (4).
    pub bank_groups_per_mc: usize,
    /// Linear address space is interleaved among partitions in chunks of
    /// this many bytes (256).
    pub interleave_bytes: u64,
    /// DRAM row (page) size per bank in bytes.
    pub row_size_bytes: u64,
    /// Coalescing granularity / memory transaction size in bytes (64: the
    /// attack model maps 16 consecutive 4-byte table elements per block).
    pub block_size: u64,
    /// GDDR5 bank timing.
    pub dram_timing: DramTiming,
    /// Memory-clock cycles occupied on the data bus per block transfer.
    pub burst_cycles: u32,
    /// One-way interconnect latency in core cycles.
    pub icnt_latency: u32,
    /// Requests each SM may inject per interconnect cycle.
    pub icnt_injection_rate: usize,
    /// Requests each memory controller may accept per interconnect cycle.
    pub icnt_ejection_rate: usize,
    /// Warp scheduling policy.
    pub scheduler: SchedulerPolicy,
    /// L1 data-cache sets per SM; `0` disables the L1 entirely — the
    /// paper's configuration (§VII disables caches; the attacked GPUs
    /// bypass L1 for global loads).
    pub l1_sets: usize,
    /// L1 associativity (ways per set); ignored when `l1_sets == 0`.
    pub l1_ways: usize,
    /// Miss-status-holding-register entries per SM. `0` disables MSHR
    /// merging — the paper's configuration (§VII: MSHRs are disabled so
    /// the intra-warp coalescer is the only merge point). When enabled,
    /// outstanding requests to the same memory block from the same SM
    /// merge instead of issuing duplicate network requests.
    pub mshr_entries: usize,
    /// Pipeline cycles to issue one warp instruction.
    pub issue_cycles: u32,
    /// Upper bound on simulated core cycles before [`crate::SimError::CycleLimit`]
    /// aborts a runaway simulation.
    pub max_cycles: u64,
    /// Forward-progress watchdog window in core cycles: if this many
    /// cycles elapse with no instruction issued, no reply drained, no
    /// warp executing and no reply awaiting release, the run aborts with
    /// [`crate::SimError::Stalled`] instead of burning to `max_cycles`.
    /// `0` disables the windowed backstop (the exact livelock detector —
    /// quiescent machine with unfinished warps — stays on regardless).
    pub watchdog_window: u64,
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig {
            num_sms: 15,
            warp_size: 32,
            warp_schedulers: 2,
            core_clock_mhz: 1400,
            icnt_clock_mhz: 1400,
            mem_clock_mhz: 924,
            num_mem_controllers: 6,
            banks_per_mc: 16,
            bank_groups_per_mc: 4,
            interleave_bytes: 256,
            row_size_bytes: 2048,
            block_size: 64,
            dram_timing: DramTiming::default(),
            burst_cycles: 2,
            icnt_latency: 8,
            icnt_injection_rate: 1,
            icnt_ejection_rate: 1,
            scheduler: SchedulerPolicy::Gto,
            l1_sets: 0,
            l1_ways: 4,
            mshr_entries: 0,
            issue_cycles: 1,
            max_cycles: 500_000_000,
            watchdog_window: 100_000,
        }
    }
}

impl GpuConfig {
    /// The paper's simulated configuration (alias for [`Default::default`]).
    pub fn paper() -> Self {
        Self::default()
    }

    /// A deliberately small configuration for fast unit tests: one SM, one
    /// memory controller, 4-thread warps.
    pub fn tiny() -> Self {
        GpuConfig {
            num_sms: 1,
            warp_size: 4,
            num_mem_controllers: 1,
            banks_per_mc: 4,
            bank_groups_per_mc: 2,
            ..Self::default()
        }
    }

    /// Ratio of memory clock to core clock, used to schedule DRAM ticks.
    pub fn mem_ratio(&self) -> f64 {
        f64::from(self.mem_clock_mhz) / f64::from(self.core_clock_mhz)
    }

    /// Converts a duration in memory cycles into core cycles (rounded up).
    pub fn mem_to_core_cycles(&self, mem_cycles: u64) -> u64 {
        let scaled =
            mem_cycles as f64 * f64::from(self.core_clock_mhz) / f64::from(self.mem_clock_mhz);
        scaled.ceil() as u64
    }

    /// Validates structural invariants the simulator relies on.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_sms == 0 {
            return Err("num_sms must be positive".into());
        }
        if self.warp_size == 0 || self.warp_size > 64 {
            return Err("warp_size must be in 1..=64".into());
        }
        if self.num_mem_controllers == 0 {
            return Err("num_mem_controllers must be positive".into());
        }
        if self.banks_per_mc == 0 || self.bank_groups_per_mc == 0 {
            return Err("banks and bank groups must be positive".into());
        }
        if !self.banks_per_mc.is_multiple_of(self.bank_groups_per_mc) {
            return Err("bank_groups_per_mc must divide banks_per_mc".into());
        }
        if !self.interleave_bytes.is_power_of_two()
            || !self.row_size_bytes.is_power_of_two()
            || !self.block_size.is_power_of_two()
        {
            return Err("interleave, row size and block size must be powers of two".into());
        }
        if self.block_size > self.interleave_bytes {
            return Err("block_size must not exceed interleave_bytes".into());
        }
        if self.core_clock_mhz == 0 || self.mem_clock_mhz == 0 || self.icnt_clock_mhz == 0 {
            return Err("clock frequencies must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_1() {
        let c = GpuConfig::default();
        assert_eq!(c.num_sms, 15);
        assert_eq!(c.warp_size, 32);
        assert_eq!(c.num_mem_controllers, 6);
        assert_eq!(c.banks_per_mc, 16);
        assert_eq!(c.bank_groups_per_mc, 4);
        assert_eq!(c.interleave_bytes, 256);
        assert_eq!(c.core_clock_mhz, 1400);
        assert_eq!(c.mem_clock_mhz, 924);
        let t = c.dram_timing;
        assert_eq!(
            (t.t_cl, t.t_rp, t.t_rc, t.t_ras, t.t_ccd, t.t_rcd, t.t_rrd),
            (12, 12, 40, 28, 2, 12, 6)
        );
        c.validate().unwrap();
    }

    #[test]
    fn tiny_validates() {
        GpuConfig::tiny().validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_configs() {
        let bad = [
            GpuConfig {
                num_sms: 0,
                ..GpuConfig::default()
            },
            GpuConfig {
                block_size: 48,
                ..GpuConfig::default()
            },
            // block larger than the interleave chunk:
            GpuConfig {
                block_size: 512,
                ..GpuConfig::default()
            },
            GpuConfig {
                bank_groups_per_mc: 5,
                ..GpuConfig::default()
            },
            GpuConfig {
                warp_size: 0,
                ..GpuConfig::default()
            },
        ];
        for c in bad {
            assert!(c.validate().is_err(), "{c:?}");
        }
    }

    #[test]
    fn scheduler_default_is_gto() {
        assert_eq!(GpuConfig::default().scheduler, SchedulerPolicy::Gto);
        assert_eq!(SchedulerPolicy::default(), SchedulerPolicy::Gto);
    }

    #[test]
    fn mshrs_default_off_per_the_paper() {
        assert_eq!(GpuConfig::default().mshr_entries, 0);
    }

    #[test]
    fn l1_defaults_off_per_the_paper() {
        assert_eq!(GpuConfig::default().l1_sets, 0);
    }

    #[test]
    fn clock_conversion() {
        let c = GpuConfig::default();
        assert!((c.mem_ratio() - 0.66).abs() < 0.01);
        // 924 mem cycles take 1400 core cycles.
        assert_eq!(c.mem_to_core_cycles(924), 1400);
        assert_eq!(c.mem_to_core_cycles(0), 0);
    }
}
