use crate::{DramTiming, GpuConfig, PhysLoc};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

/// A memory request at a controller, in memory-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct MemRequest {
    /// Simulator-wide unique id used to route the reply.
    pub id: u64,
    /// Decoded DRAM coordinates.
    pub loc: PhysLoc,
    /// Memory cycle at which the request reached the controller queue.
    pub arrival: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct BankState {
    open_row: Option<u64>,
    /// Memory cycle at which the bank can accept its next command.
    ready_at: u64,
    /// Memory cycle of the bank's last ACTIVATE (for tRC / tRAS), `None`
    /// until the first activate.
    last_activate: Option<u64>,
}

/// One GDDR5 memory controller with a First-Ready, First-Come-First-Served
/// (FR-FCFS) scheduler.
///
/// Each memory cycle the controller issues at most one transaction,
/// preferring the oldest *row-hit* request (open-row match) and falling
/// back to the oldest request overall, for which it pays
/// precharge/activate latency. Bank state honors `tRP`, `tRC`, `tRAS`,
/// `tRCD`, `tRRD`; the shared data bus serializes bursts at `tCCD`
/// granularity.
#[derive(Debug, Clone)]
pub struct MemoryController {
    timing: DramTiming,
    burst_cycles: u32,
    queue: VecDeque<MemRequest>,
    banks: Vec<BankState>,
    /// Data bus occupancy frontier.
    bus_free_at: u64,
    /// Controller-wide last ACTIVATE (for tRRD), `None` until the first.
    last_activate: Option<u64>,
    /// Completions not yet drained, ordered by finish time.
    completions: BinaryHeap<Reverse<(u64, u64)>>,
    /// Row-buffer hit/access counters for locality statistics.
    row_hits: u64,
    accesses: u64,
}

impl MemoryController {
    /// Creates an idle controller from the GPU configuration.
    pub fn new(config: &GpuConfig) -> Self {
        MemoryController {
            timing: config.dram_timing,
            burst_cycles: config.burst_cycles,
            queue: VecDeque::new(),
            banks: vec![BankState::default(); config.banks_per_mc],
            bus_free_at: 0,
            last_activate: None,
            completions: BinaryHeap::new(),
            row_hits: 0,
            accesses: 0,
        }
    }

    pub(crate) fn enqueue(&mut self, req: MemRequest) {
        debug_assert!(req.loc.bank < self.banks.len());
        self.queue.push_back(req);
    }

    /// Conformance hook: enqueues a request by its raw coordinates.
    ///
    /// Exposes the controller to external differential testing (the
    /// `rcoal-conformance` DRAM oracle replays request streams through
    /// this entry point); the simulator itself uses the internal queue
    /// path. `arrival` is in memory cycles, and requests must arrive in
    /// non-decreasing queue order just as the simulator delivers them.
    pub fn inject(&mut self, id: u64, loc: PhysLoc, arrival: u64) {
        self.enqueue(MemRequest { id, loc, arrival });
    }

    /// Conformance hook: advances the controller to memory cycle `now`,
    /// draining finished requests into `completed` as
    /// `(request id, finish mem-cycle)` pairs.
    ///
    /// Public mirror of the simulator's per-cycle tick so oracles can
    /// drive a controller in isolation.
    pub fn advance(&mut self, now: u64, completed: &mut Vec<(u64, u64)>) {
        self.tick(now, completed);
    }

    /// Number of requests waiting or in flight.
    pub fn pending(&self) -> usize {
        self.queue.len() + self.completions.len()
    }

    /// Total requests this controller has serviced.
    pub fn serviced(&self) -> u64 {
        self.accesses
    }

    /// Serviced requests that hit an already-open row.
    pub fn row_hits(&self) -> u64 {
        self.row_hits
    }

    /// Serviced requests that paid a precharge/activate.
    pub fn row_misses(&self) -> u64 {
        self.accesses - self.row_hits
    }

    /// Requests currently waiting in the controller queue (excluding
    /// completions not yet drained).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Fraction of serviced requests that hit an open row.
    pub fn row_hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.accesses as f64
        }
    }

    /// The next memory cycle (>= `now`) at which ticking this
    /// controller can do anything, or `None` if it is idle.
    ///
    /// A queued request becomes issuable at its arrival cycle (FR-FCFS
    /// always picks *something* once any request has arrived, so the
    /// earliest arrival is exact, and with the queue non-empty each
    /// subsequent tick keeps issuing — hence the clamp to `now`); a
    /// completion drains at its finish cycle. Every tick strictly
    /// before the reported cycle is a no-op: `issue` returns without
    /// touching bank state and the completion heap stays unpopped.
    /// Callers enqueue in non-decreasing arrival order (the simulator's
    /// delivery and retransmit stamps are monotone) and FR-FCFS removal
    /// from the middle preserves that order, so the front of the queue
    /// holds the earliest arrival and this is O(1).
    pub fn next_event(&self, now: u64) -> Option<u64> {
        // min(max(a, now), max(b, now)) == max(min(a, b), now), so the
        // clamp distributes over the raw minimum.
        self.next_event_raw().map(|t| t.max(now))
    }

    /// [`MemoryController::next_event`] without the `now` clamp: the raw
    /// earliest of the head-of-queue arrival and the earliest completion.
    /// Pure in the controller's state, so callers may memoize it and
    /// clamp at the point of use.
    pub fn next_event_raw(&self) -> Option<u64> {
        let mut next = u64::MAX;
        if let Some(front) = self.queue.front() {
            debug_assert!(self.queue.iter().all(|r| r.arrival >= front.arrival));
            next = next.min(front.arrival);
        }
        if let Some(&Reverse((done, _))) = self.completions.peek() {
            next = next.min(done);
        }
        (next != u64::MAX).then_some(next)
    }

    /// Advances the controller to memory cycle `now`: possibly issues one
    /// transaction and drains finished requests into `completed` as
    /// `(request id, finish mem-cycle)` pairs.
    pub(crate) fn tick(&mut self, now: u64, completed: &mut Vec<(u64, u64)>) {
        self.issue(now);
        while let Some(&Reverse((done, id))) = self.completions.peek() {
            if done > now {
                break;
            }
            self.completions.pop();
            completed.push((id, done));
        }
    }

    fn issue(&mut self, now: u64) {
        // FR-FCFS: oldest *ready* row hit first (a hit whose bank is
        // still busy does not stall the controller — fall back to the
        // oldest request overall, which may activate another bank).
        let t = self.timing;
        let ready_hit = self.queue.iter().position(|r| {
            r.arrival <= now
                && self.banks[r.loc.bank].open_row == Some(r.loc.row)
                && self.banks[r.loc.bank].ready_at <= now + u64::from(t.t_ccd)
        });
        let pick = ready_hit.or_else(|| self.queue.iter().position(|r| r.arrival <= now));
        let Some(idx) = pick else { return };
        let req = self.queue[idx];
        let bank = self.banks[req.loc.bank];
        let t = &self.timing;

        let is_hit = bank.open_row == Some(req.loc.row);
        let read_cmd = if is_hit {
            bank.ready_at.max(now)
        } else {
            // Closed bank or row conflict: (precharge +) activate + tRCD.
            let mut start = bank.ready_at.max(now);
            if bank.open_row.is_some() {
                // Precharge must respect tRAS since the last activate.
                if let Some(last) = bank.last_activate {
                    start = start.max(last + u64::from(t.t_ras));
                }
                start += u64::from(t.t_rp);
            }
            // Activate respects tRC (same bank) and tRRD (same controller).
            let activate = start
                .max(
                    bank.last_activate
                        .map_or(0, |last| last + u64::from(t.t_rc)),
                )
                .max(
                    self.last_activate
                        .map_or(0, |last| last + u64::from(t.t_rrd)),
                );
            activate + u64::from(t.t_rcd)
        };

        let data_start = (read_cmd + u64::from(t.t_cl)).max(self.bus_free_at);
        let done = data_start + u64::from(self.burst_cycles);

        // Commit.
        self.queue.remove(idx);
        self.bus_free_at = data_start + u64::from(t.t_ccd.max(self.burst_cycles));
        let bank = &mut self.banks[req.loc.bank];
        if !is_hit {
            let activate = read_cmd - u64::from(t.t_rcd);
            bank.last_activate = Some(activate);
            self.last_activate = Some(activate);
            bank.open_row = Some(req.loc.row);
        } else {
            self.row_hits += 1;
        }
        bank.ready_at = read_cmd + u64::from(t.t_ccd);
        self.accesses += 1;
        self.completions.push(Reverse((done, req.id)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc(bank: usize, row: u64) -> PhysLoc {
        PhysLoc {
            mc: 0,
            bank,
            bank_group: bank % 4,
            row,
            col: 0,
        }
    }

    fn drain_until_done(mc: &mut MemoryController, limit: u64) -> Vec<(u64, u64)> {
        let mut done = Vec::new();
        let mut now = 0;
        while mc.pending() > 0 {
            mc.tick(now, &mut done);
            now += 1;
            assert!(now < limit, "controller stalled");
        }
        done.sort_by_key(|&(id, t)| (t, id));
        done
    }

    #[test]
    fn single_request_latency_is_activate_plus_cas() {
        let mut mc = MemoryController::new(&GpuConfig::default());
        mc.enqueue(MemRequest {
            id: 0,
            loc: loc(0, 5),
            arrival: 0,
        });
        let done = drain_until_done(&mut mc, 1000);
        // Cold bank: tRCD + tCL + burst = 12 + 12 + 2 = 26.
        assert_eq!(done, vec![(0, 26)]);
    }

    #[test]
    fn row_hit_is_faster_than_row_conflict() {
        // Two requests to the same row: the second is a row hit.
        let mut mc = MemoryController::new(&GpuConfig::default());
        mc.enqueue(MemRequest {
            id: 0,
            loc: loc(0, 5),
            arrival: 0,
        });
        mc.enqueue(MemRequest {
            id: 1,
            loc: loc(0, 5),
            arrival: 0,
        });
        let hit_done = drain_until_done(&mut mc, 1000)[1].1;

        // Two requests to different rows of the same bank: conflict.
        let mut mc = MemoryController::new(&GpuConfig::default());
        mc.enqueue(MemRequest {
            id: 0,
            loc: loc(0, 5),
            arrival: 0,
        });
        mc.enqueue(MemRequest {
            id: 1,
            loc: loc(0, 9),
            arrival: 0,
        });
        let conflict_done = drain_until_done(&mut mc, 1000)[1].1;

        assert!(
            hit_done + 10 < conflict_done,
            "row hit at {hit_done} should beat conflict at {conflict_done}"
        );
    }

    #[test]
    fn fr_fcfs_prefers_row_hits_over_older_conflicts() {
        let mut mc = MemoryController::new(&GpuConfig::default());
        // Open row 5 on bank 0.
        mc.enqueue(MemRequest {
            id: 0,
            loc: loc(0, 5),
            arrival: 0,
        });
        // A conflicting request to row 9 queued *ahead of* a hit to row 5,
        // both arriving once the bank is ready again (after id 0's
        // read + tCCD), so the hit is first-ready and must win.
        mc.enqueue(MemRequest {
            id: 1,
            loc: loc(0, 9),
            arrival: 20,
        });
        mc.enqueue(MemRequest {
            id: 2,
            loc: loc(0, 5),
            arrival: 20,
        });
        let done = drain_until_done(&mut mc, 2000);
        let pos = |id| done.iter().position(|&(i, _)| i == id).unwrap();
        assert!(
            pos(2) < pos(1),
            "row hit (id 2) should be served before conflict (id 1)"
        );
        assert!(mc.row_hit_rate() > 0.3);
    }

    #[test]
    fn bank_parallelism_beats_single_bank() {
        // Same number of row-miss requests, spread over 8 banks vs 1 bank.
        let mut spread = MemoryController::new(&GpuConfig::default());
        for i in 0..8 {
            spread.enqueue(MemRequest {
                id: i,
                loc: loc(i as usize, 1 + i),
                arrival: 0,
            });
        }
        let t_spread = drain_until_done(&mut spread, 5000).last().unwrap().1;

        let mut serial = MemoryController::new(&GpuConfig::default());
        for i in 0..8 {
            serial.enqueue(MemRequest {
                id: i,
                loc: loc(0, 1 + i),
                arrival: 0,
            });
        }
        let t_serial = drain_until_done(&mut serial, 5000).last().unwrap().1;
        assert!(
            t_spread * 2 < t_serial,
            "banked {t_spread} vs serial {t_serial}"
        );
    }

    #[test]
    fn bus_serializes_row_hits_at_tccd() {
        let mut mc = MemoryController::new(&GpuConfig::default());
        for i in 0..10 {
            mc.enqueue(MemRequest {
                id: i,
                loc: loc(0, 5),
                arrival: 0,
            });
        }
        let done = drain_until_done(&mut mc, 5000);
        // After the first access, row hits stream one per tCCD (=2).
        for w in done.windows(2) {
            assert!(w[1].1 - w[0].1 >= 2);
        }
        let total = done.last().unwrap().1 - done.first().unwrap().1;
        assert_eq!(total, 9 * 2, "streaming hits pipeline at tCCD");
    }

    #[test]
    fn service_time_scales_with_request_count() {
        let run = |n: u64| {
            let mut mc = MemoryController::new(&GpuConfig::default());
            for i in 0..n {
                // Scatter over banks and rows like a random workload.
                mc.enqueue(MemRequest {
                    id: i,
                    loc: loc((i % 16) as usize, i / 16 % 7),
                    arrival: 0,
                });
            }
            drain_until_done(&mut mc, 100_000).last().unwrap().1
        };
        assert!(run(64) > run(16));
        assert!(run(16) > run(4));
    }

    #[test]
    fn requests_do_not_start_before_arrival() {
        let mut mc = MemoryController::new(&GpuConfig::default());
        mc.enqueue(MemRequest {
            id: 0,
            loc: loc(0, 5),
            arrival: 100,
        });
        let done = drain_until_done(&mut mc, 1000);
        assert!(
            done[0].1 >= 126,
            "cold access takes 26 cycles after arrival at 100"
        );
    }
}
