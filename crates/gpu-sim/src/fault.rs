//! Seeded fault injection for the memory subsystem.
//!
//! A [`FaultPlan`] describes *deterministic* hardware misbehaviour for a
//! launch: per-memory-controller reply jitter, dropped replies with a
//! bounded retransmit budget, and transient interconnect backpressure.
//! Faults perturb **timing only** — coalesced-access accounting is taken
//! at issue, before any fault fires, so security statistics remain
//! policy-deterministic under an arbitrary plan (a property the test
//! suite pins down).
//!
//! The plan is seeded independently of the launch seed, so one can sweep
//! fault severity while holding the policy's subwarp draws fixed, or
//! vice versa.

use rcoal_rng::{Rng, SeedableRng, StdRng};
use std::collections::HashMap;

/// Extra delay applied to a DRAM reply before it re-enters the reply
/// network, in core cycles.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ReplyJitter {
    /// No added delay.
    #[default]
    None,
    /// Uniform delay in `[min, max]` core cycles.
    Uniform {
        /// Smallest added delay.
        min: u64,
        /// Largest added delay (inclusive).
        max: u64,
    },
    /// Half-normal delay: `|N(0, sigma²)|` core cycles, rounded. Models
    /// thermally-throttled or contended DRAM with occasional long tails.
    Gaussian {
        /// Standard deviation of the underlying normal, in core cycles.
        sigma: f64,
    },
}

/// Fault profile of one memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct McFault {
    /// Jitter added to every reply from this controller.
    pub jitter: ReplyJitter,
    /// Probability in `[0, 1]` that a reply is dropped at release time.
    pub drop_rate: f64,
    /// How many times a dropped request is retransmitted to the
    /// controller before the reply is lost for good. With `0`, a single
    /// drop permanently wedges the requesting warp — the livelock the
    /// simulator's watchdog exists to catch.
    pub max_retries: u32,
}

/// Transient interconnect backpressure: bursts during which neither
/// crossbar moves packets.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IcntBackpressure {
    /// Per-cycle probability that a stall burst begins.
    pub stall_rate: f64,
    /// Length of each burst in core cycles.
    pub stall_cycles: u64,
}

/// A complete, seeded description of injected faults for one launch.
///
/// The default plan ([`FaultPlan::none`]) injects nothing and costs the
/// simulator no work on the hot path.
///
/// ```
/// use rcoal_gpu_sim::{FaultPlan, ReplyJitter};
///
/// let plan = FaultPlan::seeded(7)
///     .with_jitter(ReplyJitter::Uniform { min: 0, max: 40 })
///     .with_mc_drop(0, 0.05, 3)
///     .with_backpressure(0.001, 16);
/// assert!(plan.is_active());
/// assert_eq!(FaultPlan::none().is_active(), false);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the fault stream (independent of the launch seed).
    pub seed: u64,
    /// Profile applied to controllers without a dedicated entry.
    pub default_mc: McFault,
    /// Per-controller overrides as `(mc index, profile)` pairs.
    pub per_mc: Vec<(usize, McFault)>,
    /// Interconnect stall bursts.
    pub backpressure: IcntBackpressure,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// A plan injecting no faults at all.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            default_mc: McFault::default(),
            per_mc: Vec::new(),
            backpressure: IcntBackpressure::default(),
        }
    }

    /// An empty plan whose fault stream is driven by `seed`.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..Self::none()
        }
    }

    /// Applies `jitter` to every controller without a dedicated profile.
    #[must_use]
    pub fn with_jitter(mut self, jitter: ReplyJitter) -> Self {
        self.default_mc.jitter = jitter;
        self
    }

    /// Applies a drop rate and retransmit budget to every controller
    /// without a dedicated profile.
    #[must_use]
    pub fn with_drop(mut self, drop_rate: f64, max_retries: u32) -> Self {
        self.default_mc.drop_rate = drop_rate;
        self.default_mc.max_retries = max_retries;
        self
    }

    /// Overrides the full fault profile of controller `mc`.
    #[must_use]
    pub fn with_mc_profile(mut self, mc: usize, profile: McFault) -> Self {
        self.per_mc.retain(|(m, _)| *m != mc);
        self.per_mc.push((mc, profile));
        self
    }

    /// Overrides only the drop behaviour of controller `mc`.
    #[must_use]
    pub fn with_mc_drop(self, mc: usize, drop_rate: f64, max_retries: u32) -> Self {
        let mut profile = self.profile_for(mc);
        profile.drop_rate = drop_rate;
        profile.max_retries = max_retries;
        self.with_mc_profile(mc, profile)
    }

    /// Overrides only the jitter of controller `mc`.
    #[must_use]
    pub fn with_mc_jitter(self, mc: usize, jitter: ReplyJitter) -> Self {
        let mut profile = self.profile_for(mc);
        profile.jitter = jitter;
        self.with_mc_profile(mc, profile)
    }

    /// Enables interconnect stall bursts.
    #[must_use]
    pub fn with_backpressure(mut self, stall_rate: f64, stall_cycles: u64) -> Self {
        self.backpressure = IcntBackpressure {
            stall_rate,
            stall_cycles,
        };
        self
    }

    /// The effective profile of controller `mc`.
    pub fn profile_for(&self, mc: usize) -> McFault {
        self.per_mc
            .iter()
            .find(|(m, _)| *m == mc)
            .map(|&(_, p)| p)
            .unwrap_or(self.default_mc)
    }

    /// Whether this plan can perturb the simulation at all.
    pub fn is_active(&self) -> bool {
        let mc_active = |p: &McFault| p.drop_rate > 0.0 || p.jitter != ReplyJitter::None;
        mc_active(&self.default_mc)
            || self.per_mc.iter().any(|(_, p)| mc_active(p))
            || (self.backpressure.stall_rate > 0.0 && self.backpressure.stall_cycles > 0)
    }

    /// Whether this plan consumes fault randomness on every simulated
    /// core cycle.
    ///
    /// Interconnect backpressure samples its burst process per cycle,
    /// so such plans pin the simulator to cycle-accurate stepping; all
    /// other faults (reply jitter, drops) draw once per memory event
    /// and are safe to carry across skipped idle cycles.
    pub fn perturbs_per_cycle(&self) -> bool {
        self.backpressure.stall_rate > 0.0 && self.backpressure.stall_cycles > 0
    }

    /// Validates probabilities and jitter parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first out-of-range knob.
    pub fn validate(&self) -> Result<(), String> {
        let check_mc = |mc: &McFault, which: &str| -> Result<(), String> {
            if !(0.0..=1.0).contains(&mc.drop_rate) {
                return Err(format!("{which} drop_rate {} outside [0, 1]", mc.drop_rate));
            }
            match mc.jitter {
                ReplyJitter::Uniform { min, max } if min > max => {
                    Err(format!("{which} uniform jitter has min {min} > max {max}"))
                }
                ReplyJitter::Gaussian { sigma } if !(sigma >= 0.0 && sigma.is_finite()) => {
                    Err(format!("{which} gaussian jitter sigma {sigma} invalid"))
                }
                _ => Ok(()),
            }
        };
        check_mc(&self.default_mc, "default")?;
        for (mc, profile) in &self.per_mc {
            check_mc(profile, &format!("mc {mc}"))?;
        }
        if !(0.0..=1.0).contains(&self.backpressure.stall_rate) {
            return Err(format!(
                "backpressure stall_rate {} outside [0, 1]",
                self.backpressure.stall_rate
            ));
        }
        Ok(())
    }

    /// Instantiates the runtime fault state for one launch.
    pub(crate) fn state(&self) -> FaultState {
        FaultState {
            plan: self.clone(),
            rng: StdRng::seed_from_u64(self.seed ^ 0xfa_17),
            active: self.is_active(),
            stall_until: 0,
            retries: HashMap::new(),
        }
    }
}

/// Per-launch mutable fault machinery consumed by the simulator loop.
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    rng: StdRng,
    active: bool,
    stall_until: u64,
    retries: HashMap<u64, u32>,
}

/// Outcome of releasing one DRAM reply under the fault plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReplyFate {
    /// The reply proceeds into the reply network.
    Deliver,
    /// The reply was dropped; the request retransmits to its controller.
    Retransmit,
    /// The reply was dropped and the retry budget is exhausted; the
    /// requesting warp will never be unblocked by this request.
    Lost,
}

impl FaultState {
    /// Extra core cycles of delay for a reply from controller `mc`.
    pub(crate) fn reply_delay(&mut self, mc: usize) -> u64 {
        if !self.active {
            return 0;
        }
        match self.plan.profile_for(mc).jitter {
            ReplyJitter::None => 0,
            ReplyJitter::Uniform { min, max } => {
                if min >= max {
                    min
                } else {
                    self.rng.gen_range(min..max + 1)
                }
            }
            ReplyJitter::Gaussian { sigma } => {
                if sigma <= 0.0 {
                    return 0;
                }
                let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = self.rng.gen_range(0.0f64..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                (sigma * z).abs().round() as u64
            }
        }
    }

    /// Decides the fate of a reply from controller `mc` for request `id`.
    pub(crate) fn reply_fate(&mut self, mc: usize, id: u64) -> ReplyFate {
        if !self.active {
            return ReplyFate::Deliver;
        }
        let profile = self.plan.profile_for(mc);
        if profile.drop_rate <= 0.0 || !self.rng.gen_bool(profile.drop_rate) {
            return ReplyFate::Deliver;
        }
        let used = self.retries.entry(id).or_insert(0);
        if *used < profile.max_retries {
            *used += 1;
            ReplyFate::Retransmit
        } else {
            ReplyFate::Lost
        }
    }

    /// Whether the interconnect is stalled at `now`, advancing the burst
    /// process one cycle.
    pub(crate) fn icnt_stalled(&mut self, now: u64) -> bool {
        if !self.active {
            return false;
        }
        if now < self.stall_until {
            return true;
        }
        let bp = self.plan.backpressure;
        if bp.stall_rate > 0.0 && bp.stall_cycles > 0 && self.rng.gen_bool(bp.stall_rate) {
            self.stall_until = now + bp.stall_cycles;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inactive_and_free() {
        let mut state = FaultPlan::none().state();
        assert!(!FaultPlan::none().is_active());
        assert_eq!(state.reply_delay(0), 0);
        assert_eq!(state.reply_fate(0, 9), ReplyFate::Deliver);
        assert!(!state.icnt_stalled(0));
        FaultPlan::none().validate().expect("valid");
    }

    #[test]
    fn uniform_jitter_stays_in_range() {
        let plan = FaultPlan::seeded(3).with_jitter(ReplyJitter::Uniform { min: 5, max: 9 });
        let mut state = plan.state();
        for _ in 0..1000 {
            let d = state.reply_delay(0);
            assert!((5..=9).contains(&d), "delay {d}");
        }
    }

    #[test]
    fn gaussian_jitter_is_nonnegative_and_scales_with_sigma() {
        let small: u64 = {
            let mut s = FaultPlan::seeded(4)
                .with_jitter(ReplyJitter::Gaussian { sigma: 2.0 })
                .state();
            (0..2000).map(|_| s.reply_delay(0)).sum()
        };
        let large: u64 = {
            let mut s = FaultPlan::seeded(4)
                .with_jitter(ReplyJitter::Gaussian { sigma: 50.0 })
                .state();
            (0..2000).map(|_| s.reply_delay(0)).sum()
        };
        assert!(large > small, "{large} vs {small}");
    }

    #[test]
    fn per_mc_profiles_override_the_default() {
        let plan = FaultPlan::seeded(5)
            .with_drop(0.0, 0)
            .with_mc_drop(2, 1.0, 0);
        assert_eq!(plan.profile_for(0).drop_rate, 0.0);
        assert_eq!(plan.profile_for(2).drop_rate, 1.0);
        let mut state = plan.state();
        assert_eq!(state.reply_fate(0, 1), ReplyFate::Deliver);
        assert_eq!(state.reply_fate(2, 1), ReplyFate::Lost, "0 retries");
    }

    #[test]
    fn retry_budget_is_per_request() {
        let plan = FaultPlan::seeded(6).with_drop(1.0, 2);
        let mut state = plan.state();
        assert_eq!(state.reply_fate(0, 7), ReplyFate::Retransmit);
        assert_eq!(state.reply_fate(0, 7), ReplyFate::Retransmit);
        assert_eq!(state.reply_fate(0, 7), ReplyFate::Lost);
        // A different request has its own budget.
        assert_eq!(state.reply_fate(0, 8), ReplyFate::Retransmit);
    }

    #[test]
    fn backpressure_bursts_have_the_configured_length() {
        let plan = FaultPlan::seeded(7).with_backpressure(1.0, 4);
        let mut state = plan.state();
        assert!(state.icnt_stalled(0), "rate 1.0 stalls immediately");
        for now in 1..4 {
            assert!(state.icnt_stalled(now), "burst covers cycle {now}");
        }
    }

    #[test]
    fn validation_rejects_bad_knobs() {
        assert!(FaultPlan::seeded(0).with_drop(1.5, 0).validate().is_err());
        assert!(FaultPlan::seeded(0)
            .with_jitter(ReplyJitter::Uniform { min: 9, max: 5 })
            .validate()
            .is_err());
        assert!(FaultPlan::seeded(0)
            .with_jitter(ReplyJitter::Gaussian { sigma: f64::NAN })
            .validate()
            .is_err());
        assert!(FaultPlan::seeded(0)
            .with_backpressure(-0.1, 4)
            .validate()
            .is_err());
        assert!(FaultPlan::seeded(0)
            .with_mc_drop(1, 2.0, 0)
            .validate()
            .is_err());
    }

    #[test]
    fn seeded_fault_streams_are_reproducible() {
        let plan = FaultPlan::seeded(11)
            .with_jitter(ReplyJitter::Uniform { min: 0, max: 100 })
            .with_drop(0.5, 1);
        let run = || {
            let mut s = plan.state();
            let delays: Vec<u64> = (0..64).map(|_| s.reply_delay(0)).collect();
            let fates: Vec<ReplyFate> = (0..64).map(|i| s.reply_fate(0, i)).collect();
            (delays, fates)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn with_mc_profile_replaces_existing_entries() {
        let plan = FaultPlan::seeded(1)
            .with_mc_drop(3, 0.5, 1)
            .with_mc_jitter(3, ReplyJitter::Uniform { min: 1, max: 2 });
        assert_eq!(plan.per_mc.len(), 1);
        let p = plan.profile_for(3);
        assert_eq!(p.drop_rate, 0.5);
        assert_eq!(p.jitter, ReplyJitter::Uniform { min: 1, max: 2 });
    }
}
