use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// A packet traversing the crossbar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Packet {
    dst: usize,
    id: u64,
}

/// One direction of the on-chip crossbar interconnect (Table I: one
/// crossbar per direction).
///
/// Each source may inject a bounded number of packets per cycle, packets
/// take a fixed pipeline latency, and each destination port drains a
/// bounded number of packets per cycle — enough structure to make many
/// memory accesses *cost time*, which is what the timing channel measures.
///
/// The injection stage is virtualized for the skip-ahead simulator core:
/// the crossbar remembers the next cycle whose injection has not run
/// (`next_tick`), and [`Crossbar::tick_into`] replays the injection of
/// any missed cycles — identical pops, arrival stamps, and sequence
/// numbers to a caller that ticked every cycle — before processing the
/// current one. Buffered packets therefore never pin the clock: the
/// earliest a queued packet can matter is its head-of-line arrival,
/// `now + 1 + latency`.
#[derive(Debug, Clone)]
pub struct Crossbar {
    latency: u32,
    injection_rate: usize,
    ejection_rate: usize,
    src_queues: Vec<VecDeque<Packet>>,
    /// Packets buffered across all source queues (kept so the injection
    /// catch-up can skip drained spans and `next_event` is O(1)).
    queued: usize,
    /// Buffered + in-flight packets (constant-time [`Crossbar::pending`]).
    pending_count: usize,
    /// The next cycle whose injection stage has not run yet.
    next_tick: u64,
    /// Packets in flight: (arrival cycle, sequence, packet), drained in
    /// arrival order per destination port.
    in_flight: BinaryHeap<Reverse<(u64, u64, usize, u64)>>,
    seq: u64,
    /// Per-tick scratch: packets delivered per destination port this
    /// cycle. Kept on the struct so ticking allocates nothing.
    port_count: Vec<(usize, usize)>,
    /// Per-tick scratch: packets deferred by port contention.
    deferred: Vec<Reverse<(u64, u64, usize, u64)>>,
    /// Running count of deferrals — each is one cycle a packet lost to
    /// ejection-port contention (the interconnect-serialization signal).
    deferred_total: u64,
}

impl Crossbar {
    /// Creates a crossbar with `num_src` source ports.
    pub fn new(num_src: usize, latency: u32, injection_rate: usize, ejection_rate: usize) -> Self {
        Crossbar {
            latency,
            injection_rate: injection_rate.max(1),
            ejection_rate: ejection_rate.max(1),
            src_queues: vec![VecDeque::new(); num_src],
            queued: 0,
            pending_count: 0,
            next_tick: 0,
            in_flight: BinaryHeap::new(),
            seq: 0,
            port_count: Vec::new(),
            deferred: Vec::new(),
            deferred_total: 0,
        }
    }

    /// Queues packet `id` for delivery from `src` to `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `src` is not a valid source port.
    pub fn inject(&mut self, src: usize, dst: usize, id: u64) {
        self.src_queues[src].push_back(Packet { dst, id });
        self.queued += 1;
        self.pending_count += 1;
    }

    /// Number of packets buffered or in flight.
    pub fn pending(&self) -> usize {
        self.pending_count
    }

    /// Total packet-cycles lost to ejection-port contention since
    /// construction (each deferral delays one packet by one cycle).
    pub fn deferred_total(&self) -> u64 {
        self.deferred_total
    }

    /// The injection stage of cycle `now`: each source port moves up to
    /// `injection_rate` packets into the pipeline.
    fn inject_stage(&mut self, now: u64) {
        if self.queued == 0 {
            return;
        }
        for q in &mut self.src_queues {
            for _ in 0..self.injection_rate {
                let Some(p) = q.pop_front() else { break };
                self.queued -= 1;
                self.in_flight.push(Reverse((
                    now + u64::from(self.latency),
                    self.seq,
                    p.dst,
                    p.id,
                )));
                self.seq += 1;
            }
        }
    }

    /// Replays the injection stage of every unfrozen cycle before `now`
    /// that the caller skipped. Once the source queues drain, the rest
    /// of the span is a no-op and is crossed in one step.
    fn catch_up(&mut self, now: u64) {
        while self.next_tick < now {
            if self.queued == 0 {
                self.next_tick = now;
                break;
            }
            let t = self.next_tick;
            self.inject_stage(t);
            self.next_tick = t + 1;
        }
    }

    /// Advances the crossbar to cycle `now`, appending packets that
    /// complete delivery this cycle to `delivered` as `(dst, id)` pairs.
    ///
    /// The clock may have jumped since the last tick: missed injection
    /// cycles are replayed first (see the type docs), so results are
    /// bit-identical to ticking every cycle.
    ///
    /// The output buffer comes from the caller (cleared here) so the
    /// per-cycle network stage reuses one scratch vector for the whole
    /// run instead of allocating a fresh `Vec` every tick.
    pub fn tick_into(&mut self, now: u64, delivered: &mut Vec<(usize, u64)>) {
        delivered.clear();
        self.catch_up(now);
        self.inject_stage(now);
        self.next_tick = now + 1;
        // Ejection stage: each destination port drains up to
        // `ejection_rate` arrived packets; the rest wait at the port.
        self.port_count.clear();
        self.deferred.clear();
        while let Some(&Reverse((arrive, seq, dst, id))) = self.in_flight.peek() {
            if arrive > now {
                break;
            }
            self.in_flight.pop();
            let count = match self.port_count.iter_mut().find(|(p, _)| *p == dst) {
                Some((_, c)) => {
                    *c += 1;
                    *c
                }
                None => {
                    self.port_count.push((dst, 1));
                    1
                }
            };
            if count <= self.ejection_rate {
                delivered.push((dst, id));
                self.pending_count -= 1;
            } else {
                // Port contention: retry next cycle.
                self.deferred_total += 1;
                self.deferred.push(Reverse((arrive + 1, seq, dst, id)));
            }
        }
        self.in_flight.extend(self.deferred.drain(..));
    }

    /// Replays the injection stages of all skipped cycles before `now`
    /// without running cycle `now` itself.
    ///
    /// A skip-ahead caller must invoke this at the start of each visited
    /// cycle, *before* queueing that cycle's packets: otherwise the
    /// catch-up replay of the skipped span would see packets that did
    /// not exist yet and inject them cycles too early.
    pub fn sync(&mut self, now: u64) {
        self.catch_up(now);
    }

    /// Marks cycle `now` as frozen (interconnect backpressure): the
    /// injection stage of `now` never runs and nothing is ejected, but
    /// packets keep their queue positions. Unfrozen cycles the caller
    /// skipped before `now` are replayed first.
    pub fn freeze(&mut self, now: u64) {
        self.catch_up(now);
        self.next_tick = now + 1;
    }

    /// The next cycle (> `now`) at which ticking this crossbar can
    /// deliver or defer a packet, or `None` if it is empty.
    ///
    /// In-flight packets matter at their arrival cycles (deferred
    /// packets re-enter with `arrive = now + 1`, covered by the same
    /// bound). A buffered packet cannot reach a port before it is
    /// injected — at the earliest next cycle — and has traversed the
    /// pipeline; injection itself needs no visit, because
    /// [`Crossbar::tick_into`] replays missed injection cycles exactly.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        let mut next = u64::MAX;
        if let Some(&Reverse((arrive, _, _, _))) = self.in_flight.peek() {
            next = arrive.max(now + 1);
        }
        if self.queued > 0 {
            next = next.min(now + 1 + u64::from(self.latency));
        }
        (next != u64::MAX).then_some(next)
    }

    /// Allocating wrapper around [`Crossbar::tick_into`], kept for
    /// tests and one-off callers.
    pub fn tick(&mut self, now: u64) -> Vec<(usize, u64)> {
        let mut delivered = Vec::new();
        self.tick_into(now, &mut delivered);
        delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_after_latency() {
        let mut xb = Crossbar::new(2, 8, 1, 1);
        xb.inject(0, 3, 42);
        assert_eq!(xb.pending(), 1);
        for now in 0..8 {
            assert!(xb.tick(now).is_empty(), "too early at {now}");
        }
        assert_eq!(xb.tick(8), vec![(3, 42)]);
        assert_eq!(xb.pending(), 0);
    }

    #[test]
    fn injection_rate_limits_throughput() {
        let mut xb = Crossbar::new(1, 0, 1, 100);
        for i in 0..5 {
            xb.inject(0, 0, i);
        }
        // One packet leaves the source queue per cycle.
        assert_eq!(xb.tick(0).len(), 1);
        assert_eq!(xb.tick(1).len(), 1);
        assert_eq!(xb.tick(2).len(), 1);
    }

    #[test]
    fn ejection_port_contention_defers_packets() {
        // Two sources flood one destination with ejection rate 1.
        let mut xb = Crossbar::new(2, 0, 4, 1);
        xb.inject(0, 0, 1);
        xb.inject(1, 0, 2);
        let first = xb.tick(0);
        assert_eq!(first.len(), 1);
        let second = xb.tick(1);
        assert_eq!(second.len(), 1);
        assert_ne!(first[0].1, second[0].1);
    }

    #[test]
    fn distinct_ports_drain_in_parallel() {
        let mut xb = Crossbar::new(2, 0, 4, 1);
        xb.inject(0, 0, 1);
        xb.inject(1, 1, 2);
        let out = xb.tick(0);
        assert_eq!(out.len(), 2, "different destination ports do not contend");
    }

    #[test]
    fn fifo_order_per_source() {
        let mut xb = Crossbar::new(1, 2, 1, 1);
        xb.inject(0, 0, 10);
        xb.inject(0, 0, 11);
        let mut got = Vec::new();
        for now in 0..10 {
            got.extend(xb.tick(now).into_iter().map(|(_, id)| id));
        }
        assert_eq!(got, vec![10, 11]);
    }

    /// Ticks `xb` on every cycle in `0..horizon` and returns the
    /// timestamped deliveries.
    fn drain_every_cycle(xb: &mut Crossbar, horizon: u64) -> Vec<(u64, usize, u64)> {
        let mut got = Vec::new();
        for now in 0..horizon {
            for (dst, id) in xb.tick(now) {
                got.push((now, dst, id));
            }
        }
        got
    }

    #[test]
    fn skipping_to_next_event_matches_ticking_every_cycle() {
        // The skip-ahead contract: only visiting the cycles `next_event`
        // advertises yields the same deliveries, at the same cycles, in
        // the same order, as ticking every cycle.
        let build = || {
            let mut xb = Crossbar::new(3, 7, 1, 1);
            for i in 0..9u64 {
                xb.inject((i % 3) as usize, (i % 2) as usize, i);
            }
            xb
        };
        let dense = drain_every_cycle(&mut build(), 64);
        let mut xb = build();
        let mut sparse = Vec::new();
        let mut now = 0;
        while now < 64 {
            for (dst, id) in xb.tick(now) {
                sparse.push((now, dst, id));
            }
            match xb.next_event(now) {
                Some(t) => now = t,
                None => break,
            }
        }
        assert_eq!(dense, sparse);
        assert_eq!(xb.pending(), 0);
    }

    #[test]
    fn late_injection_after_a_skip_replays_missed_cycles() {
        // Queue two packets, skip straight past their injection cycles:
        // arrival stamps must match the every-cycle schedule (inject at
        // 0 and 1, arrive at 5 and 6), not the tick cycle.
        let mut xb = Crossbar::new(1, 5, 1, 4);
        xb.inject(0, 0, 1);
        xb.inject(0, 0, 2);
        assert!(xb.tick(0).is_empty());
        assert_eq!(xb.next_event(0), Some(5));
        assert_eq!(xb.tick(5), vec![(0, 1)]);
        assert_eq!(xb.next_event(5), Some(6));
        assert_eq!(xb.tick(6), vec![(0, 2)]);
    }

    #[test]
    fn frozen_cycles_inject_nothing() {
        // Freeze the injection cycle: the packet holds its place and the
        // pipeline entry shifts by exactly the frozen span.
        let mut xb = Crossbar::new(1, 3, 1, 1);
        xb.inject(0, 0, 7);
        xb.freeze(0);
        xb.freeze(1);
        assert_eq!(xb.pending(), 1);
        assert!(xb.tick(2).is_empty(), "injected at 2, arrives at 5");
        assert!(xb.tick(3).is_empty());
        assert!(xb.tick(4).is_empty());
        assert_eq!(xb.tick(5), vec![(0, 7)]);
    }

    #[test]
    fn next_event_bounds_queued_packets_by_pipeline_entry() {
        let mut xb = Crossbar::new(1, 8, 1, 1);
        assert_eq!(xb.next_event(0), None);
        xb.inject(0, 0, 1);
        // Head packet injects next cycle at the earliest.
        assert_eq!(xb.next_event(3), Some(3 + 1 + 8));
    }
}
