use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// A packet traversing the crossbar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Packet {
    dst: usize,
    id: u64,
}

/// One direction of the on-chip crossbar interconnect (Table I: one
/// crossbar per direction).
///
/// Each source may inject a bounded number of packets per cycle, packets
/// take a fixed pipeline latency, and each destination port drains a
/// bounded number of packets per cycle — enough structure to make many
/// memory accesses *cost time*, which is what the timing channel measures.
#[derive(Debug, Clone)]
pub struct Crossbar {
    latency: u32,
    injection_rate: usize,
    ejection_rate: usize,
    src_queues: Vec<VecDeque<Packet>>,
    /// Packets in flight: (arrival cycle, sequence, packet), drained in
    /// arrival order per destination port.
    in_flight: BinaryHeap<Reverse<(u64, u64, usize, u64)>>,
    seq: u64,
    /// Per-tick scratch: packets delivered per destination port this
    /// cycle. Kept on the struct so ticking allocates nothing.
    port_count: Vec<(usize, usize)>,
    /// Per-tick scratch: packets deferred by port contention.
    deferred: Vec<Reverse<(u64, u64, usize, u64)>>,
    /// Running count of deferrals — each is one cycle a packet lost to
    /// ejection-port contention (the interconnect-serialization signal).
    deferred_total: u64,
}

impl Crossbar {
    /// Creates a crossbar with `num_src` source ports.
    pub fn new(num_src: usize, latency: u32, injection_rate: usize, ejection_rate: usize) -> Self {
        Crossbar {
            latency,
            injection_rate: injection_rate.max(1),
            ejection_rate: ejection_rate.max(1),
            src_queues: vec![VecDeque::new(); num_src],
            in_flight: BinaryHeap::new(),
            seq: 0,
            port_count: Vec::new(),
            deferred: Vec::new(),
            deferred_total: 0,
        }
    }

    /// Queues packet `id` for delivery from `src` to `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `src` is not a valid source port.
    pub fn inject(&mut self, src: usize, dst: usize, id: u64) {
        self.src_queues[src].push_back(Packet { dst, id });
    }

    /// Number of packets buffered or in flight.
    pub fn pending(&self) -> usize {
        self.src_queues.iter().map(VecDeque::len).sum::<usize>() + self.in_flight.len()
    }

    /// Total packet-cycles lost to ejection-port contention since
    /// construction (each deferral delays one packet by one cycle).
    pub fn deferred_total(&self) -> u64 {
        self.deferred_total
    }

    /// Advances one interconnect cycle, appending packets that complete
    /// delivery this cycle to `delivered` as `(dst, id)` pairs.
    ///
    /// The output buffer comes from the caller (cleared here) so the
    /// per-cycle network stage reuses one scratch vector for the whole
    /// run instead of allocating a fresh `Vec` every tick.
    pub fn tick_into(&mut self, now: u64, delivered: &mut Vec<(usize, u64)>) {
        delivered.clear();
        // Injection stage: each source port moves up to `injection_rate`
        // packets into the pipeline.
        for q in &mut self.src_queues {
            for _ in 0..self.injection_rate {
                let Some(p) = q.pop_front() else { break };
                self.in_flight.push(Reverse((
                    now + u64::from(self.latency),
                    self.seq,
                    p.dst,
                    p.id,
                )));
                self.seq += 1;
            }
        }
        // Ejection stage: each destination port drains up to
        // `ejection_rate` arrived packets; the rest wait at the port.
        self.port_count.clear();
        self.deferred.clear();
        while let Some(&Reverse((arrive, seq, dst, id))) = self.in_flight.peek() {
            if arrive > now {
                break;
            }
            self.in_flight.pop();
            let count = match self.port_count.iter_mut().find(|(p, _)| *p == dst) {
                Some((_, c)) => {
                    *c += 1;
                    *c
                }
                None => {
                    self.port_count.push((dst, 1));
                    1
                }
            };
            if count <= self.ejection_rate {
                delivered.push((dst, id));
            } else {
                // Port contention: retry next cycle.
                self.deferred_total += 1;
                self.deferred.push(Reverse((arrive + 1, seq, dst, id)));
            }
        }
        self.in_flight.extend(self.deferred.drain(..));
    }

    /// Allocating wrapper around [`Crossbar::tick_into`], kept for
    /// tests and one-off callers.
    pub fn tick(&mut self, now: u64) -> Vec<(usize, u64)> {
        let mut delivered = Vec::new();
        self.tick_into(now, &mut delivered);
        delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_after_latency() {
        let mut xb = Crossbar::new(2, 8, 1, 1);
        xb.inject(0, 3, 42);
        assert_eq!(xb.pending(), 1);
        for now in 0..8 {
            assert!(xb.tick(now).is_empty(), "too early at {now}");
        }
        assert_eq!(xb.tick(8), vec![(3, 42)]);
        assert_eq!(xb.pending(), 0);
    }

    #[test]
    fn injection_rate_limits_throughput() {
        let mut xb = Crossbar::new(1, 0, 1, 100);
        for i in 0..5 {
            xb.inject(0, 0, i);
        }
        // One packet leaves the source queue per cycle.
        assert_eq!(xb.tick(0).len(), 1);
        assert_eq!(xb.tick(1).len(), 1);
        assert_eq!(xb.tick(2).len(), 1);
    }

    #[test]
    fn ejection_port_contention_defers_packets() {
        // Two sources flood one destination with ejection rate 1.
        let mut xb = Crossbar::new(2, 0, 4, 1);
        xb.inject(0, 0, 1);
        xb.inject(1, 0, 2);
        let first = xb.tick(0);
        assert_eq!(first.len(), 1);
        let second = xb.tick(1);
        assert_eq!(second.len(), 1);
        assert_ne!(first[0].1, second[0].1);
    }

    #[test]
    fn distinct_ports_drain_in_parallel() {
        let mut xb = Crossbar::new(2, 0, 4, 1);
        xb.inject(0, 0, 1);
        xb.inject(1, 1, 2);
        let out = xb.tick(0);
        assert_eq!(out.len(), 2, "different destination ports do not contend");
    }

    #[test]
    fn fifo_order_per_source() {
        let mut xb = Crossbar::new(1, 2, 1, 1);
        xb.inject(0, 0, 10);
        xb.inject(0, 0, 11);
        let mut got = Vec::new();
        for now in 0..10 {
            got.extend(xb.tick(now).into_iter().map(|(_, id)| id));
        }
        assert_eq!(got, vec![10, 11]);
    }
}
