/// One instruction of a warp's dynamic trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceInstr {
    /// `cycles` of ALU work with no memory traffic.
    Compute {
        /// Core cycles the warp is busy.
        cycles: u32,
    },
    /// A warp-wide global load; `addrs[lane]` is the byte address lane
    /// `lane` requests, or `None` when the lane is inactive.
    Load {
        /// Per-lane request addresses.
        addrs: Vec<Option<u64>>,
        /// Statistics tag: accesses from this load are accumulated into
        /// [`crate::SimStats::accesses_by_tag`] under this index. The AES
        /// kernel tags loads with their round number.
        tag: u16,
    },
    /// Marks that the warp has finished logical phase `round` (e.g. one
    /// AES round). Zero-cost; recorded in the statistics.
    RoundMark {
        /// Phase index that just completed.
        round: u16,
    },
}

impl TraceInstr {
    /// Convenience constructor for an untagged load (tag 0).
    pub fn load(addrs: Vec<Option<u64>>) -> Self {
        TraceInstr::Load { addrs, tag: 0 }
    }

    /// Convenience constructor for a tagged load.
    pub fn load_tagged(addrs: Vec<Option<u64>>, tag: u16) -> Self {
        TraceInstr::Load { addrs, tag }
    }

    /// Convenience constructor for compute work.
    pub fn compute(cycles: u32) -> Self {
        TraceInstr::Compute { cycles }
    }
}

/// The dynamic instruction trace of a single warp.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WarpTrace {
    instrs: Vec<TraceInstr>,
}

impl WarpTrace {
    /// Creates a trace from a list of instructions.
    pub fn from_instrs(instrs: Vec<TraceInstr>) -> Self {
        WarpTrace { instrs }
    }

    /// The instructions in program order.
    pub fn instrs(&self) -> &[TraceInstr] {
        &self.instrs
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Appends an instruction.
    pub fn push(&mut self, instr: TraceInstr) {
        self.instrs.push(instr);
    }
}

impl FromIterator<TraceInstr> for WarpTrace {
    fn from_iter<I: IntoIterator<Item = TraceInstr>>(iter: I) -> Self {
        WarpTrace {
            instrs: iter.into_iter().collect(),
        }
    }
}

impl Extend<TraceInstr> for WarpTrace {
    fn extend<I: IntoIterator<Item = TraceInstr>>(&mut self, iter: I) {
        self.instrs.extend(iter);
    }
}

/// A workload the simulator can execute: a set of warps, each with an
/// instruction trace.
///
/// Traces must be *timing-independent* (addresses fixed by the input data,
/// not by execution interleaving), which holds for the lock-step SIMT
/// kernels the paper studies.
pub trait Kernel {
    /// Number of warps launched by the kernel grid.
    fn num_warps(&self) -> usize;

    /// Number of active threads in warp `warp_id` (≤ the machine warp
    /// size; partial warps occur when the workload is not a multiple of
    /// 32 lines).
    fn warp_width(&self, warp_id: usize) -> usize;

    /// The dynamic trace of warp `warp_id`, borrowed from the kernel.
    ///
    /// Implementations build every trace once (at construction) and
    /// hand out references, so the simulator's launch and issue stages
    /// never copy instruction streams — with 32-lane loads every 2–3
    /// instructions, per-launch trace cloning used to dominate small
    /// kernels' simulation time.
    fn trace(&self, warp_id: usize) -> &WarpTrace;
}

impl<K: Kernel + ?Sized> Kernel for &K {
    fn num_warps(&self) -> usize {
        (**self).num_warps()
    }

    fn warp_width(&self, warp_id: usize) -> usize {
        (**self).warp_width(warp_id)
    }

    fn trace(&self, warp_id: usize) -> &WarpTrace {
        (**self).trace(warp_id)
    }
}

impl<K: Kernel + ?Sized> Kernel for Box<K> {
    fn num_warps(&self) -> usize {
        (**self).num_warps()
    }

    fn warp_width(&self, warp_id: usize) -> usize {
        (**self).warp_width(warp_id)
    }

    fn trace(&self, warp_id: usize) -> &WarpTrace {
        (**self).trace(warp_id)
    }
}

/// A trivial [`Kernel`] built directly from traces; used by tests and
/// microbenchmarks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceKernel {
    traces: Vec<WarpTrace>,
    warp_width: usize,
}

impl TraceKernel {
    /// Wraps explicit traces; every warp reports `warp_width` active
    /// threads.
    pub fn new(traces: Vec<WarpTrace>, warp_width: usize) -> Self {
        TraceKernel { traces, warp_width }
    }
}

impl Kernel for TraceKernel {
    fn num_warps(&self) -> usize {
        self.traces.len()
    }

    fn warp_width(&self, _warp_id: usize) -> usize {
        self.warp_width
    }

    fn trace(&self, warp_id: usize) -> &WarpTrace {
        &self.traces[warp_id]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_collects_from_iterator() {
        let t: WarpTrace = (0..3).map(|_| TraceInstr::compute(1)).collect();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        let mut t2 = WarpTrace::default();
        t2.extend(t.instrs().iter().cloned());
        assert_eq!(t, t2);
    }

    #[test]
    fn trace_kernel_round_trips() {
        let t = WarpTrace::from_instrs(vec![TraceInstr::load(vec![Some(0)])]);
        let k = TraceKernel::new(vec![t.clone(), t.clone()], 1);
        assert_eq!(k.num_warps(), 2);
        assert_eq!(k.warp_width(0), 1);
        assert_eq!(*k.trace(1), t);
    }

    #[test]
    fn instr_constructors() {
        assert_eq!(TraceInstr::compute(4), TraceInstr::Compute { cycles: 4 });
        assert_eq!(
            TraceInstr::load_tagged(vec![None], 10),
            TraceInstr::Load {
                addrs: vec![None],
                tag: 10
            }
        );
    }
}
