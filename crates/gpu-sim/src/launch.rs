use rcoal_core::CoalescingPolicy;

/// How a kernel launch maps coalescing policies onto its loads.
///
/// `Uniform` is the paper's deployed design: one policy for the whole
/// kernel. `Selective` implements the hardware/software co-design the
/// paper sketches as future work (§VII): randomized coalescing is applied
/// only to the *vulnerable* loads (identified by their statistics tag,
/// e.g. the AES last-round T4 lookups), while every other load keeps a
/// cheaper default policy. This recovers most of the performance of the
/// baseline while keeping the secret-dependent loads randomized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LaunchPolicy {
    /// One policy for every load of the kernel.
    Uniform(CoalescingPolicy),
    /// Split policies: loads whose tag falls in
    /// `vulnerable_tags.0..vulnerable_tags.1` use `vulnerable`; all other
    /// loads use `default`.
    Selective {
        /// Policy for the protected (secret-dependent) loads.
        vulnerable: CoalescingPolicy,
        /// Policy for everything else (typically `Baseline`).
        default: CoalescingPolicy,
        /// Half-open tag range `[start, end)` marking protected loads.
        vulnerable_tags: (u16, u16),
    },
}

impl LaunchPolicy {
    /// The policy applied to a load carrying `tag`.
    pub fn policy_for_tag(&self, tag: u16) -> CoalescingPolicy {
        match *self {
            LaunchPolicy::Uniform(p) => p,
            LaunchPolicy::Selective {
                vulnerable,
                default,
                vulnerable_tags: (lo, hi),
            } => {
                if (lo..hi).contains(&tag) {
                    vulnerable
                } else {
                    default
                }
            }
        }
    }

    /// The two distinct policies a warp must hold assignments for, in
    /// `(default, vulnerable)` order. For `Uniform` both are the same.
    pub fn policies(&self) -> (CoalescingPolicy, CoalescingPolicy) {
        match *self {
            LaunchPolicy::Uniform(p) => (p, p),
            LaunchPolicy::Selective {
                vulnerable,
                default,
                ..
            } => (default, vulnerable),
        }
    }

    /// Whether `tag` falls in the protected range.
    pub fn is_vulnerable_tag(&self, tag: u16) -> bool {
        match *self {
            LaunchPolicy::Uniform(_) => false,
            LaunchPolicy::Selective {
                vulnerable_tags: (lo, hi),
                ..
            } => (lo..hi).contains(&tag),
        }
    }
}

impl From<CoalescingPolicy> for LaunchPolicy {
    fn from(p: CoalescingPolicy) -> Self {
        LaunchPolicy::Uniform(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_applies_everywhere() {
        let lp = LaunchPolicy::Uniform(CoalescingPolicy::Baseline);
        assert_eq!(lp.policy_for_tag(0), CoalescingPolicy::Baseline);
        assert_eq!(lp.policy_for_tag(31), CoalescingPolicy::Baseline);
        assert!(!lp.is_vulnerable_tag(20));
        let (d, v) = lp.policies();
        assert_eq!(d, v);
    }

    #[test]
    fn selective_splits_on_tag_range() {
        let rts = CoalescingPolicy::fss_rts(8).unwrap();
        let lp = LaunchPolicy::Selective {
            vulnerable: rts,
            default: CoalescingPolicy::Baseline,
            vulnerable_tags: (16, 32),
        };
        assert_eq!(lp.policy_for_tag(5), CoalescingPolicy::Baseline);
        assert_eq!(lp.policy_for_tag(16), rts);
        assert_eq!(lp.policy_for_tag(31), rts);
        assert_eq!(lp.policy_for_tag(32), CoalescingPolicy::Baseline);
        assert!(lp.is_vulnerable_tag(16));
        assert!(!lp.is_vulnerable_tag(15));
    }

    #[test]
    fn from_policy_is_uniform() {
        let lp: LaunchPolicy = CoalescingPolicy::Disabled.into();
        assert_eq!(lp, LaunchPolicy::Uniform(CoalescingPolicy::Disabled));
    }
}
