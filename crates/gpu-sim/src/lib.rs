//! # rcoal-gpu-sim
//!
//! A cycle-level GPU timing simulator modeling the architecture the RCoal
//! paper evaluates on (its Table I): 15 SMs with 32-wide SIMT and two warp
//! schedulers each, an LD/ST path whose memory coalescing unit applies an
//! [`rcoal_core::CoalescingPolicy`], a crossbar interconnect, and six GDDR5
//! memory controllers with FR-FCFS scheduling over 16 banks in 4 bank
//! groups, using Hynix GDDR5 timing parameters.
//!
//! The simulator is *workload-agnostic*: a [`Kernel`] supplies per-warp
//! instruction traces (compute delays, warp-wide loads, round markers) and
//! the simulator reports cycle counts and coalesced-access statistics. The
//! AES workload in `rcoal-aes` is one such kernel.
//!
//! Fidelity notes relative to GPGPU-Sim: the paper disables caches and
//! MSHRs (§VII) and so does the default configuration here, though both
//! exist as ablation levers (`l1_sets`, `mshr_entries`); what is always
//! on — issue, coalescing, interconnect serialization, DRAM bank timing
//! and row locality — is exactly the path that carries the coalescing
//! timing channel.
//!
//! For robustness experiments the simulator can also inject seeded
//! hardware faults ([`FaultPlan`]): per-controller DRAM reply jitter,
//! dropped replies with a bounded retransmit budget, and transient
//! interconnect backpressure. A forward-progress watchdog turns the
//! resulting livelocks into [`SimError::Stalled`] with a diagnostic
//! naming the stuck components.
//!
//! # Example
//!
//! ```
//! use rcoal_gpu_sim::{GpuConfig, GpuSimulator, TraceKernel, WarpTrace, TraceInstr};
//! use rcoal_core::CoalescingPolicy;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // One warp of 4 threads loading from scattered addresses.
//! let trace = WarpTrace::from_instrs(vec![
//!     TraceInstr::load((0..4).map(|i| Some(i * 4096)).collect()),
//! ]);
//! let kernel = TraceKernel::new(vec![trace], 4);
//! let sim = GpuSimulator::new(GpuConfig::default());
//! let stats = sim.run(&kernel, CoalescingPolicy::Baseline, 7)?;
//! assert_eq!(stats.total_accesses, 4); // four distinct blocks
//! assert!(stats.total_cycles > 0);
//! # Ok(())
//! # }
//! ```

// Library code must propagate failures as typed errors, never panic;
// test modules are exempt (the harness is the panic handler there).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod address;
mod cache;
mod config;
mod dram;
mod fault;
mod icnt;
mod kernel;
mod launch;
mod sim;
mod sm;
mod stats;
mod synthetic;
mod telemetry;

pub use address::{AddressMapper, PhysLoc};
pub use config::{DramTiming, GpuConfig, SchedulerPolicy};
pub use dram::MemoryController;
pub use fault::{FaultPlan, IcntBackpressure, McFault, ReplyJitter};
pub use icnt::Crossbar;
pub use kernel::{Kernel, TraceInstr, TraceKernel, WarpTrace};
pub use launch::LaunchPolicy;
pub use sim::{GpuSimulator, SimError};
pub use stats::SimStats;
pub use synthetic::{AccessPattern, SyntheticKernel};
pub use telemetry::{McProfile, SimProfile, SimTelemetry, DEFAULT_EVENT_CAPACITY};
