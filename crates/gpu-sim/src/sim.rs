use crate::cache::L1Cache;
use crate::dram::MemRequest;
use crate::fault::{FaultPlan, FaultState, ReplyFate};
use crate::sm::Sm;
use crate::telemetry::SimTelemetry;
use crate::{
    AddressMapper, Crossbar, GpuConfig, Kernel, LaunchPolicy, MemoryController, PhysLoc, SimStats,
    TraceInstr,
};
use rcoal_core::{Coalescer, CoalescingPolicy, PolicyError};
use rcoal_rng::SeedableRng;
use rcoal_rng::StdRng;
use rcoal_telemetry::Severity;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::error::Error;
use std::fmt;

/// Errors reported by [`GpuSimulator::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The configuration failed validation.
    Config(String),
    /// The coalescing policy could not produce a subwarp assignment.
    Policy(PolicyError),
    /// The simulation exceeded `GpuConfig::max_cycles`.
    CycleLimit {
        /// The configured limit that was hit.
        limit: u64,
    },
    /// The forward-progress watchdog found the machine wedged: unfinished
    /// warps exist but no instruction can ever issue and no reply will
    /// ever arrive (for example after a faulted memory controller
    /// permanently lost a reply).
    Stalled {
        /// Core cycle at which the stall was diagnosed.
        cycle: u64,
        /// Memory replies warps are still waiting for.
        outstanding: u64,
        /// Human-readable description naming the stuck components.
        diagnostic: String,
        /// The last few telemetry events before the stall, rendered as
        /// one line each (empty when the run used the no-op sink).
        trail: Vec<String>,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(msg) => write!(f, "invalid gpu configuration: {msg}"),
            SimError::Policy(e) => write!(f, "coalescing policy failed: {e}"),
            SimError::CycleLimit { limit } => {
                write!(f, "simulation exceeded the cycle limit of {limit}")
            }
            SimError::Stalled {
                cycle,
                outstanding,
                diagnostic,
                trail,
            } => {
                write!(
                    f,
                    "simulation stalled at cycle {cycle} with {outstanding} replies outstanding: {diagnostic}"
                )?;
                if !trail.is_empty() {
                    write!(f, "; recent events:")?;
                    for line in trail {
                        write!(f, "\n  {line}")?;
                    }
                }
                Ok(())
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Policy(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PolicyError> for SimError {
    fn from(e: PolicyError) -> Self {
        SimError::Policy(e)
    }
}

/// How many trailing telemetry events a stall diagnostic carries.
const STALL_TRAIL_EVENTS: usize = 16;

#[derive(Debug, Clone, Copy)]
struct ReqMeta {
    sm: usize,
    warp: usize,
    loc: PhysLoc,
    block_addr: u64,
    issued_at: u64,
}

/// The complete mutable state of one launch: SMs, both crossbars, the
/// memory controllers, caches, MSHRs, in-flight request metadata, the
/// reply-release queue, and the fault machinery.
///
/// Both simulator loops — the event-driven skip-ahead core and the
/// cycle-accurate reference — drive the *same* machine through the
/// *same* stage methods below; only the loop skeletons differ. That
/// makes the bit-identity argument local to the loops: any divergence
/// must come from *when* a stage runs, never from *what* it does.
struct Machine<'k> {
    stats: SimStats,
    sms: Vec<Sm<'k>>,
    req_net: Crossbar,
    reply_net: Crossbar,
    mcs: Vec<MemoryController>,
    req_meta: Vec<ReqMeta>,
    /// Per-SM MSHR: in-flight block -> (primary request id, waiting
    /// warp entries to release on the primary's reply).
    mshrs: Vec<HashMap<u64, (u64, Vec<usize>)>>,
    /// Optional per-SM L1 data caches.
    l1s: Vec<Option<L1Cache>>,
    /// Replies waiting for their core-clock release time, as
    /// (release cycle, mc, id).
    pending_replies: BinaryHeap<Reverse<(u64, usize, u64)>>,
    /// Requests alive anywhere in the memory system (injected into the
    /// request network and neither absorbed nor lost yet). Every live
    /// request sits in exactly one stage — request crossbar, controller,
    /// release queue, reply crossbar — so this single counter makes the
    /// per-cycle quiescence test O(1).
    in_system: usize,
    /// Memoized [`MemoryController::next_event_raw`] per controller
    /// (`u64::MAX` = idle). Entries marked in `mc_dirty` are stale and
    /// recomputed by [`Machine::refresh_mc_cache`]; everything that can
    /// change a controller's schedule (ticking it, enqueueing a request
    /// or retransmit) sets its dirty bit. Turns the twice-per-cycle
    /// "earliest controller event" scans into flat array reads.
    mc_cache: Vec<u64>,
    mc_dirty: Vec<bool>,
    mapper: AddressMapper,
    coalescer: Coalescer,
    fault: FaultState,
}

impl Machine<'_> {
    /// Issues instructions from picked warp `widx` on SM `s`: consumes
    /// round marks for free, then stops after one compute or load (or at
    /// the end of the trace). Exactly the per-warp body of the issue
    /// stage; the caller owns scheduling and finish bookkeeping.
    fn issue_warp(
        &mut self,
        cfg: &GpuConfig,
        launch: &LaunchPolicy,
        s: usize,
        widx: usize,
        now: u64,
        tel: &mut SimTelemetry,
    ) {
        loop {
            // `current_instr` borrows the *kernel's* trace, so the
            // instruction (and its 32-lane address vector) is read in
            // place while warp state mutates — no per-issue clone.
            match self.sms[s].current_instr(widx) {
                None => break,
                Some(&TraceInstr::RoundMark { round }) => {
                    self.sms[s].pc[widx] += 1;
                    self.stats.record_round_mark(round, now);
                    tel.event(
                        now,
                        Severity::Debug,
                        "sm",
                        "round_mark",
                        u64::from(round),
                        (widx * cfg.num_sms + s) as u64,
                    );
                    // Marks are free: keep consuming.
                }
                Some(&TraceInstr::Compute { cycles }) => {
                    self.sms[s].pc[widx] += 1;
                    self.sms[s].busy_until[widx] =
                        now + u64::from(cycles) + u64::from(cfg.issue_cycles);
                    break;
                }
                Some(&TraceInstr::Load { ref addrs, tag }) => {
                    self.sms[s].pc[widx] += 1;
                    let (result, num_subwarps) = {
                        let assignment = if launch.is_vulnerable_tag(tag) {
                            self.sms[s].vulnerable_assignment(widx)
                        } else {
                            self.sms[s].assignment(widx)
                        };
                        (
                            self.coalescer.coalesce(assignment, addrs),
                            assignment.num_subwarps(),
                        )
                    };
                    let n = result.num_accesses() as u64;
                    let active = addrs.iter().filter(|a| a.is_some()).count() as u64;
                    self.stats.total_requests += active;
                    self.stats.record_tagged_accesses(tag, n);
                    if tel.is_enabled() {
                        tel.record_load(now, num_subwarps, &result);
                    }
                    if n == 0 {
                        continue; // all lanes inactive
                    }
                    self.sms[s].outstanding[widx] = n as u32;
                    for access in result.accesses() {
                        // L1 probe: hits are served without a memory
                        // transaction.
                        if let Some(l1) = self.l1s[s].as_mut() {
                            if l1.probe(access.block_addr) {
                                self.stats.l1_hits += 1;
                                self.sms[s].outstanding[widx] -= 1;
                                continue;
                            }
                        }
                        // MSHR merge: piggyback on an in-flight request
                        // to the same block from this SM.
                        if cfg.mshr_entries > 0 {
                            if let Some((_, waiters)) = self.mshrs[s].get_mut(&access.block_addr) {
                                waiters.push(widx);
                                self.stats.mshr_merged += 1;
                                continue;
                            }
                        }
                        let id = self.req_meta.len() as u64;
                        let loc = self.mapper.decode(access.block_addr);
                        self.req_meta.push(ReqMeta {
                            sm: s,
                            warp: widx,
                            loc,
                            block_addr: access.block_addr,
                            issued_at: now,
                        });
                        if cfg.mshr_entries > 0 && self.mshrs[s].len() < cfg.mshr_entries {
                            self.mshrs[s].insert(access.block_addr, (id, Vec::new()));
                        }
                        self.req_net.inject(s, loc.mc, id);
                        self.in_system += 1;
                    }
                    break;
                }
            }
        }
    }

    /// Hands request packets delivered by the request network to their
    /// memory controllers.
    fn deliver_requests(
        &mut self,
        mem_now: u64,
        delivered: &[(usize, u64)],
        tel: &mut SimTelemetry,
    ) {
        for &(mc, id) in delivered {
            let loc = self.req_meta[id as usize].loc;
            self.mcs[mc].enqueue(MemRequest {
                id,
                loc,
                arrival: mem_now,
            });
            self.mc_dirty[mc] = true;
            if tel.is_enabled() {
                tel.profile.mcs[mc]
                    .queue_depth
                    .record(self.mcs[mc].queue_len() as u64);
            }
        }
    }

    /// Recomputes the memoized next-event cache for every controller
    /// whose schedule may have changed since the last refresh.
    fn refresh_mc_cache(&mut self) {
        for (i, dirty) in self.mc_dirty.iter_mut().enumerate() {
            if *dirty {
                *dirty = false;
                self.mc_cache[i] = self.mcs[i].next_event_raw().unwrap_or(u64::MAX);
            }
        }
    }

    /// Advances the memory clock to keep pace with core cycle `now`,
    /// queueing completed DRAM reads (plus any fault jitter) for
    /// release. With `fast_forward`, mem ticks no controller can act on
    /// — exact no-ops in the reference — are crossed in one step.
    fn dram_advance(
        &mut self,
        cfg: &GpuConfig,
        now: u64,
        mem_ticks: &mut u64,
        fast_forward: bool,
        dram_done: &mut Vec<(u64, u64)>,
    ) {
        let target_mem = (now + 1) * u64::from(cfg.mem_clock_mhz) / u64::from(cfg.core_clock_mhz);
        while *mem_ticks < target_mem {
            if fast_forward {
                self.refresh_mc_cache();
                let mut active = u64::MAX;
                for &c in &self.mc_cache {
                    active = active.min(c);
                }
                if active > *mem_ticks {
                    // No controller can act before `active` (clamped to
                    // the window): cross the idle span in one step.
                    *mem_ticks = active.min(target_mem);
                    continue;
                }
            }
            for mc_idx in 0..self.mcs.len() {
                // Ticking a controller strictly before its next event is
                // a no-op (`MemoryController::next_event` contract), so
                // the skip-ahead path leaves idle controllers untouched.
                if fast_forward && self.mc_cache[mc_idx] > *mem_ticks {
                    continue;
                }
                dram_done.clear();
                self.mcs[mc_idx].tick(*mem_ticks, dram_done);
                self.mc_dirty[mc_idx] = true;
                for &(id, done_mem) in dram_done.iter() {
                    let done_core = cfg.mem_to_core_cycles(done_mem).max(now + 1)
                        + self.fault.reply_delay(mc_idx);
                    self.pending_replies.push(Reverse((done_core, mc_idx, id)));
                }
            }
            *mem_ticks += 1;
        }
    }

    /// Releases replies whose DRAM data is ready at `now`. A faulted
    /// controller may drop the reply here: the request either
    /// retransmits (rejoining the controller queue) or, with the retry
    /// budget spent, is lost for good and the warp wedges.
    fn release_replies(&mut self, now: u64, mem_ticks: u64, tel: &mut SimTelemetry) {
        while let Some(&Reverse((t, mc, id))) = self.pending_replies.peek() {
            if t > now {
                break;
            }
            self.pending_replies.pop();
            match self.fault.reply_fate(mc, id) {
                ReplyFate::Deliver => {
                    let sm = self.req_meta[id as usize].sm;
                    self.reply_net.inject(mc, sm, id);
                }
                ReplyFate::Retransmit => {
                    self.stats.dropped_replies += 1;
                    self.stats.fault_retries += 1;
                    tel.event(
                        now,
                        Severity::Warn,
                        "fault",
                        "reply_retransmit",
                        mc as u64,
                        id,
                    );
                    self.mcs[mc].enqueue(MemRequest {
                        id,
                        loc: self.req_meta[id as usize].loc,
                        arrival: mem_ticks,
                    });
                    self.mc_dirty[mc] = true;
                }
                ReplyFate::Lost => {
                    self.in_system -= 1;
                    self.stats.dropped_replies += 1;
                    self.stats.replies_lost += 1;
                    tel.event(now, Severity::Error, "fault", "reply_lost", mc as u64, id);
                }
            }
        }
    }

    /// Absorbs one reply delivered by the reply network: latency
    /// accounting, L1 fill, outstanding decrements (including MSHR
    /// waiters piggybacked on this request). Warps whose outstanding
    /// count reaches zero here are appended to `unblocked`.
    fn absorb_reply(
        &mut self,
        cfg: &GpuConfig,
        id: u64,
        now: u64,
        tel: &mut SimTelemetry,
        unblocked: &mut Vec<(usize, usize)>,
    ) {
        let meta = self.req_meta[id as usize];
        self.in_system -= 1;
        let latency = now - meta.issued_at;
        self.stats.mem_latency_sum += latency;
        if tel.is_enabled() {
            tel.profile.mem_latency.record(latency);
            tel.event(now, Severity::Debug, "mem", "reply", id, latency);
        }
        if let Some(l1) = self.l1s[meta.sm].as_mut() {
            l1.fill(meta.block_addr);
        }
        debug_assert!(self.sms[meta.sm].outstanding[meta.warp] > 0);
        self.sms[meta.sm].outstanding[meta.warp] -= 1;
        if self.sms[meta.sm].outstanding[meta.warp] == 0 {
            unblocked.push((meta.sm, meta.warp));
        }
        // Release MSHR waiters piggybacked on this request. The MSHR is
        // keyed by block address, and this request's block is in its
        // metadata, so the release is one hash lookup — not a scan over
        // every in-flight entry on the SM.
        if cfg.mshr_entries > 0
            && self.mshrs[meta.sm]
                .get(&meta.block_addr)
                .is_some_and(|(pid, _)| *pid == id)
        {
            if let Some((_, waiters)) = self.mshrs[meta.sm].remove(&meta.block_addr) {
                for w in waiters {
                    debug_assert!(self.sms[meta.sm].outstanding[w] > 0);
                    self.sms[meta.sm].outstanding[w] -= 1;
                    if self.sms[meta.sm].outstanding[w] == 0 {
                        unblocked.push((meta.sm, w));
                    }
                }
            }
        }
    }

    /// Whether the whole memory system is empty: nothing buffered or in
    /// flight on either crossbar, no reply awaiting release, and no
    /// request inside any controller.
    fn quiescent(&self) -> bool {
        debug_assert_eq!(
            self.in_system == 0,
            self.req_net.pending() == 0
                && self.reply_net.pending() == 0
                && self.pending_replies.is_empty()
                && self.mcs.iter().all(|m| m.pending() == 0)
        );
        self.in_system == 0
    }

    /// Builds the [`SimError::Stalled`] diagnostic naming the stuck
    /// components at the moment the watchdog fired, carrying the last
    /// few telemetry events as the `trail`.
    fn stall_report(&self, cycle: u64, tel: &mut SimTelemetry) -> SimError {
        let mut outstanding: u64 = 0;
        let mut stuck: Option<(usize, usize, u32, usize)> = None;
        for (s, sm) in self.sms.iter().enumerate() {
            for w in 0..sm.num_warps() {
                outstanding += u64::from(sm.outstanding[w]);
                if stuck.is_none() && !sm.done(w, cycle) {
                    stuck = Some((s, w, sm.outstanding[w], sm.pc[w]));
                }
            }
        }
        let mut diagnostic = match stuck {
            Some((s, w, out, pc)) => {
                format!("sm {s} warp {w} is stuck at pc {pc} waiting on {out} replies")
            }
            None => "no warp is runnable".to_string(),
        };
        if self.stats.replies_lost > 0 {
            diagnostic.push_str(&format!(
                "; {} replies were lost to fault injection",
                self.stats.replies_lost
            ));
        }
        let mc_pending: usize = self.mcs.iter().map(MemoryController::pending).sum();
        diagnostic.push_str(&format!(
            "; in flight: req_net {} reply_net {} dram {} pending replies {}",
            self.req_net.pending(),
            self.reply_net.pending(),
            mc_pending,
            self.pending_replies.len()
        ));
        tel.event(
            cycle,
            Severity::Error,
            "sim",
            "stalled",
            outstanding,
            self.pending_replies.len() as u64,
        );
        let trail = tel
            .events
            .tail(STALL_TRAIL_EVENTS)
            .iter()
            .map(rcoal_telemetry::Event::to_line)
            .collect();
        SimError::Stalled {
            cycle,
            outstanding,
            diagnostic,
            trail,
        }
    }

    /// Final statistics: fold controller row-buffer counters into the
    /// profile and the aggregate row-hit rate into the stats.
    fn into_stats(mut self, tel: &mut SimTelemetry) -> SimStats {
        if tel.is_enabled() {
            tel.profile.ensure_mcs(self.mcs.len());
            for (i, mc) in self.mcs.iter().enumerate() {
                let p = &mut tel.profile.mcs[i];
                p.row_hits += mc.row_hits();
                p.row_misses += mc.row_misses();
                p.serviced += mc.serviced();
            }
            tel.profile.icnt_req_deferred += self.req_net.deferred_total();
            tel.profile.icnt_reply_deferred += self.reply_net.deferred_total();
            let max = self
                .stats
                .warp_finish_cycle
                .iter()
                .max()
                .copied()
                .unwrap_or(0);
            let min = self
                .stats
                .warp_finish_cycle
                .iter()
                .min()
                .copied()
                .unwrap_or(0);
            tel.profile.warp_finish_spread = tel.profile.warp_finish_spread.max(max - min);
            tel.event(
                self.stats.total_cycles,
                Severity::Info,
                "sim",
                "done",
                self.stats.total_cycles,
                self.stats.total_accesses,
            );
        }
        let (hits, serviced) = self.mcs.iter().fold((0.0, 0u64), |(h, n), mc| {
            (
                h + mc.row_hit_rate() * mc.serviced() as f64,
                n + mc.serviced(),
            )
        });
        self.stats.row_hit_rate = if serviced == 0 {
            0.0
        } else {
            hits / serviced as f64
        };
        debug_assert_eq!(
            serviced,
            self.stats.total_accesses - self.stats.mshr_merged - self.stats.l1_hits
                + self.stats.fault_retries
        );
        self.stats
    }
}

/// The cycle-level GPU simulator.
///
/// Construct once from a [`GpuConfig`] and call [`GpuSimulator::run`] per
/// kernel launch; the simulator itself is stateless between runs, so one
/// instance can serve many launches (and many threads, behind `&self`).
///
/// Internally the simulator is event-driven: each component advertises
/// the next cycle at which its state can change (warp wake-ups via
/// `busy_until`, crossbar packet arrivals, DRAM arrivals and
/// completions, pending reply releases) and the main loop jumps the
/// clock straight to the minimum, falling back to single-stepping in
/// contended windows. Every *visited* cycle executes the exact
/// cycle-accurate machine step, so results — statistics, telemetry
/// traces, stall diagnostics — are bit-identical to the reference loop
/// retained as [`GpuSimulator::run_instrumented_reference`].
#[derive(Debug, Clone)]
pub struct GpuSimulator {
    config: GpuConfig,
}

impl GpuSimulator {
    /// Creates a simulator for the given configuration.
    pub fn new(config: GpuConfig) -> Self {
        GpuSimulator { config }
    }

    /// The configuration this simulator models.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Executes `kernel` under `policy` and returns timing and access
    /// statistics.
    ///
    /// `seed` drives every random draw (subwarp sizes for RSS, lane
    /// permutations for RTS); a fixed seed reproduces the launch exactly.
    /// Each warp draws its own assignment at launch, which then stays
    /// fixed for the whole run (paper §IV-D).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] for invalid configurations,
    /// [`SimError::Policy`] if the policy cannot split this warp size, and
    /// [`SimError::CycleLimit`] if the run exceeds the configured bound.
    pub fn run(
        &self,
        kernel: &dyn Kernel,
        policy: CoalescingPolicy,
        seed: u64,
    ) -> Result<SimStats, SimError> {
        self.run_launch(kernel, LaunchPolicy::Uniform(policy), seed)
    }

    /// Executes `kernel` under a [`LaunchPolicy`], which may protect only
    /// the vulnerable (tagged) loads with a randomized policy — the
    /// selective-randomization extension sketched in the paper's §VII.
    ///
    /// # Errors
    ///
    /// Same as [`GpuSimulator::run`].
    pub fn run_launch(
        &self,
        kernel: &dyn Kernel,
        launch: LaunchPolicy,
        seed: u64,
    ) -> Result<SimStats, SimError> {
        self.run_launch_faulted(kernel, launch, seed, &FaultPlan::none())
    }

    /// Executes `kernel` under `policy` with hardware faults injected
    /// from `plan`: per-controller reply jitter, dropped replies with a
    /// bounded retransmit budget, and interconnect stall bursts.
    ///
    /// Faults perturb timing only; coalesced-access statistics stay
    /// identical to the fault-free run with the same `seed`.
    ///
    /// # Errors
    ///
    /// Same as [`GpuSimulator::run`], plus [`SimError::Stalled`] when a
    /// lost reply (or any other forward-progress failure) permanently
    /// wedges a warp.
    pub fn run_faulted(
        &self,
        kernel: &dyn Kernel,
        policy: CoalescingPolicy,
        seed: u64,
        plan: &FaultPlan,
    ) -> Result<SimStats, SimError> {
        self.run_launch_faulted(kernel, LaunchPolicy::Uniform(policy), seed, plan)
    }

    /// Executes `kernel` under a [`LaunchPolicy`] with faults injected
    /// from `plan`. See [`GpuSimulator::run_faulted`].
    ///
    /// # Errors
    ///
    /// Same as [`GpuSimulator::run_faulted`].
    pub fn run_launch_faulted(
        &self,
        kernel: &dyn Kernel,
        launch: LaunchPolicy,
        seed: u64,
        plan: &FaultPlan,
    ) -> Result<SimStats, SimError> {
        self.run_instrumented(kernel, launch, seed, plan, &mut SimTelemetry::off())
    }

    /// Executes `kernel` like [`GpuSimulator::run_launch_faulted`] while
    /// recording structured events and a leakage-channel profile into
    /// `tel`.
    ///
    /// Timing and statistics are identical to the uninstrumented run:
    /// telemetry observes the machine, it never perturbs it. With
    /// [`SimTelemetry::off`] every hook reduces to one predictable
    /// branch, which is exactly what the plain entry points pass.
    ///
    /// This entry point uses the event-driven skip-ahead core. Fault
    /// plans that draw randomness every cycle (interconnect
    /// backpressure) automatically fall back to cycle-accurate
    /// stepping, so results are bit-identical to
    /// [`GpuSimulator::run_instrumented_reference`] for *every* plan.
    ///
    /// # Errors
    ///
    /// Same as [`GpuSimulator::run_launch_faulted`]; on
    /// [`SimError::Stalled`] the error carries the last few telemetry
    /// events as its `trail` (empty with the no-op sink).
    pub fn run_instrumented(
        &self,
        kernel: &dyn Kernel,
        launch: LaunchPolicy,
        seed: u64,
        plan: &FaultPlan,
        tel: &mut SimTelemetry,
    ) -> Result<SimStats, SimError> {
        let mut m = self.launch_machine(kernel, &launch, seed, plan, tel)?;
        // Backpressure draws fault randomness per cycle, so its RNG
        // stream (and the stall process itself) only replays under
        // cycle-accurate stepping. All other plans are skip-safe.
        if plan.perturbs_per_cycle() {
            self.reference_loop(&mut m, &launch, tel)?;
        } else {
            self.event_loop(&mut m, &launch, tel)?;
        }
        Ok(m.into_stats(tel))
    }

    /// The retained cycle-accurate reference: identical machine model,
    /// but the clock advances one cycle at a time and every component
    /// is ticked on every cycle.
    ///
    /// This is the loop the event-driven core must match bit-for-bit —
    /// the conformance lockstep tests diff complete [`SimStats`],
    /// telemetry event streams, and profiles between the two, and the
    /// `sim_throughput` bench records the speedup against it. It is not
    /// meant for production use: it produces the same results as
    /// [`GpuSimulator::run_instrumented`], only slower.
    ///
    /// # Errors
    ///
    /// Same as [`GpuSimulator::run_instrumented`].
    pub fn run_instrumented_reference(
        &self,
        kernel: &dyn Kernel,
        launch: LaunchPolicy,
        seed: u64,
        plan: &FaultPlan,
        tel: &mut SimTelemetry,
    ) -> Result<SimStats, SimError> {
        let mut m = self.launch_machine(kernel, &launch, seed, plan, tel)?;
        self.reference_loop(&mut m, &launch, tel)?;
        Ok(m.into_stats(tel))
    }

    /// Validates the configuration and fault plan, then builds the
    /// launch-time machine state: warps distributed round-robin over
    /// SMs, each drawing its subwarp assignment from the seeded stream.
    /// Warp contexts borrow their traces from the kernel, so launching
    /// copies no instructions.
    fn launch_machine<'k>(
        &self,
        kernel: &'k dyn Kernel,
        launch: &LaunchPolicy,
        seed: u64,
        plan: &FaultPlan,
        tel: &mut SimTelemetry,
    ) -> Result<Machine<'k>, SimError> {
        self.config.validate().map_err(SimError::Config)?;
        plan.validate()
            .map_err(|msg| SimError::Config(format!("invalid fault plan: {msg}")))?;
        let cfg = &self.config;
        let mapper = AddressMapper::new(cfg);
        let coalescer = Coalescer::with_block_size(cfg.block_size).map_err(SimError::Policy)?;
        let mut rng = StdRng::seed_from_u64(seed);

        let mut sms: Vec<Sm<'k>> = (0..cfg.num_sms)
            .map(|_| Sm::with_policy(cfg.warp_schedulers, cfg.scheduler))
            .collect();
        let (default_policy, vulnerable_policy) = launch.policies();
        for w in 0..kernel.num_warps() {
            let width = kernel.warp_width(w).min(cfg.warp_size);
            let assignment = default_policy.assignment(width, &mut rng)?;
            // Uniform launches must consume exactly one draw per warp so
            // seeded runs line up with the functional counting path.
            let vulnerable_assignment = if matches!(launch, LaunchPolicy::Uniform(_)) {
                assignment.clone()
            } else {
                vulnerable_policy.assignment(width, &mut rng)?
            };
            sms[w % cfg.num_sms].push_warp(kernel.trace(w), assignment, vulnerable_assignment);
        }

        let stats = SimStats {
            num_warps: kernel.num_warps(),
            warp_finish_cycle: vec![0; kernel.num_warps()],
            ..SimStats::default()
        };
        if tel.is_enabled() {
            tel.profile.ensure_mcs(cfg.num_mem_controllers);
            tel.event(
                0,
                Severity::Info,
                "sim",
                "launch",
                kernel.num_warps() as u64,
                cfg.warp_size as u64,
            );
        }
        let req_net = Crossbar::new(
            cfg.num_sms,
            cfg.icnt_latency,
            cfg.icnt_injection_rate,
            cfg.icnt_ejection_rate,
        );
        let reply_net = Crossbar::new(
            cfg.num_mem_controllers,
            cfg.icnt_latency,
            cfg.icnt_injection_rate,
            cfg.icnt_ejection_rate,
        );
        let mcs: Vec<MemoryController> = (0..cfg.num_mem_controllers)
            .map(|_| MemoryController::new(cfg))
            .collect();
        let l1s: Vec<Option<L1Cache>> = (0..cfg.num_sms)
            .map(|_| (cfg.l1_sets > 0).then(|| L1Cache::new(cfg.l1_sets, cfg.l1_ways)))
            .collect();
        Ok(Machine {
            stats,
            sms,
            req_net,
            reply_net,
            mcs,
            req_meta: Vec::new(),
            mshrs: vec![HashMap::new(); cfg.num_sms],
            l1s,
            pending_replies: BinaryHeap::new(),
            in_system: 0,
            mc_cache: vec![u64::MAX; cfg.num_mem_controllers],
            mc_dirty: vec![false; cfg.num_mem_controllers],
            mapper,
            coalescer,
            fault: plan.state(),
        })
    }

    /// The cycle-accurate loop body: every component is ticked on every
    /// cycle and every per-cycle scan is done the plain way. This is
    /// the semantics the event loop must reproduce exactly.
    fn reference_loop(
        &self,
        m: &mut Machine<'_>,
        launch: &LaunchPolicy,
        tel: &mut SimTelemetry,
    ) -> Result<(), SimError> {
        let cfg = &self.config;
        let mut mem_ticks: u64 = 0;
        let mut dram_done: Vec<(u64, u64)> = Vec::new();
        // Per-cycle scratch, hoisted out of the simulation loop so the
        // steady state allocates nothing.
        let mut ready_scratch: Vec<usize> = Vec::with_capacity(cfg.warp_schedulers);
        let mut net_scratch: Vec<(usize, u64)> = Vec::new();
        let mut unblocked: Vec<(usize, usize)> = Vec::new();
        // Forward-progress watchdog: last cycle at which the machine
        // demonstrably moved (an instruction issued, a reply drained, a
        // warp was executing, or a reply was waiting for release).
        let mut progress_at: u64 = 0;
        // Previous cycle's interconnect-freeze state, for edge-triggered
        // backpressure events.
        let mut prev_frozen = false;

        let mut now: u64 = 0;
        loop {
            let mut progressed = false;
            // --- Issue stage: each SM issues up to `warp_schedulers`
            // instructions from distinct ready warps.
            for s in 0..m.sms.len() {
                m.sms[s].select_ready_into(now, &mut ready_scratch);
                for &widx in &ready_scratch {
                    progressed = true;
                    m.issue_warp(cfg, launch, s, widx, now, tel);
                }
                // Issue-stall accounting: this SM still has unfinished
                // warps but found none ready to issue this cycle.
                if tel.is_enabled() && ready_scratch.is_empty() && !m.sms[s].all_done(now) {
                    tel.profile.issue_stall_cycles += 1;
                }
            }

            // --- Interconnect: transient backpressure bursts freeze both
            // crossbars for this cycle; packets keep their places.
            let icnt_frozen = m.fault.icnt_stalled(now);
            if tel.is_enabled() && icnt_frozen != prev_frozen {
                tel.event(
                    now,
                    Severity::Warn,
                    "icnt",
                    if icnt_frozen {
                        "backpressure_start"
                    } else {
                        "backpressure_end"
                    },
                    m.req_net.pending() as u64,
                    m.reply_net.pending() as u64,
                );
            }
            prev_frozen = icnt_frozen;

            // --- Request network (icnt clock == core clock in Table I).
            let mem_now = now * u64::from(cfg.mem_clock_mhz) / u64::from(cfg.core_clock_mhz);
            if icnt_frozen {
                // The crossbars virtualize their injection stage, so a
                // frozen cycle must be marked as passed — otherwise the
                // next tick would replay its injection.
                m.req_net.freeze(now);
                m.reply_net.freeze(now);
            } else {
                m.req_net.tick_into(now, &mut net_scratch);
                m.deliver_requests(mem_now, &net_scratch, tel);
            }

            // --- DRAM: advance memory clock to keep pace with core clock.
            m.dram_advance(cfg, now, &mut mem_ticks, false, &mut dram_done);

            // --- Release replies whose DRAM data is ready.
            m.release_replies(now, mem_ticks, tel);

            // --- Reply network: returning data unblocks warps.
            if !icnt_frozen {
                m.reply_net.tick_into(now, &mut net_scratch);
                unblocked.clear();
                for &(_sm, id) in &net_scratch {
                    progressed = true;
                    m.absorb_reply(cfg, id, now, tel, &mut unblocked);
                }
            }

            // --- Termination.
            let quiescent = m.quiescent();
            // Record per-warp completion as warps drain (0 = not yet),
            // noting executing warps for the watchdog on the same pass.
            let mut any_busy = false;
            for s in 0..m.sms.len() {
                for l in 0..m.sms[s].num_warps() {
                    let gid = l * cfg.num_sms + s;
                    if m.stats.warp_finish_cycle[gid] == 0 && m.sms[s].done(l, now) {
                        m.stats.warp_finish_cycle[gid] = now + 1;
                        tel.event(
                            now,
                            Severity::Info,
                            "sm",
                            "warp_finished",
                            gid as u64,
                            s as u64,
                        );
                    }
                    any_busy |= m.sms[s].busy_until[l] > now;
                }
            }
            let all_done = m.sms.iter().all(|sm| sm.all_done(now));
            if quiescent && all_done {
                m.stats.total_cycles = now + 1;
                return Ok(());
            }

            // --- Forward-progress watchdog. Fast path: the machine is
            // quiescent, nothing issued, no warp is executing, yet warps
            // remain unfinished — no event can ever wake them, so report
            // the stall immediately instead of burning to `max_cycles`.
            // Windowed backstop: `watchdog_window` cycles without any
            // progress event (catches e.g. a permanently frozen icnt,
            // where packets stay pending but never move).
            let wedged = quiescent && !progressed && !any_busy;
            let window = cfg.watchdog_window;
            let starved =
                window > 0 && !progressed && !any_busy && now.saturating_sub(progress_at) >= window;
            if wedged || starved {
                return Err(m.stall_report(now, tel));
            }
            if progressed || any_busy || !m.pending_replies.is_empty() {
                progress_at = now;
            }

            now += 1;
            if now >= cfg.max_cycles {
                return Err(SimError::CycleLimit {
                    limit: cfg.max_cycles,
                });
            }
        }
    }

    /// The event-driven skip-ahead loop. Beyond jumping the clock to
    /// the next advertised event, it replaces the reference's per-cycle
    /// whole-machine scans with incremental bookkeeping (DESIGN.md §12):
    ///
    /// - `ready_at[s]`: conservative lower bound on the next cycle SM
    ///   `s` can issue, recomputed from `Sm::next_warp_event` after each
    ///   issue pass and lowered to `now + 1` when a reply unblocks a
    ///   warp. SMs with `ready_at > now` skip scheduler selection
    ///   entirely — safe because an empty pick never mutates scheduler
    ///   state, so the reference's call on such cycles is a no-op.
    /// - `unfinished[s]` / `live_warps`: counts of warps whose finish
    ///   has not been recorded, replacing the reference's `all_done`
    ///   scans (equal to them at each phase by construction).
    /// - `max_busy`: running max of every assigned `busy_until` —
    ///   exact, because per-warp `busy_until` is monotone — replacing
    ///   the `any_busy` scan.
    /// - `finish_heap`: (cycle, sm, warp) min-heap of compute-tail
    ///   retirements (and zero-length traces, seeded at cycle 0), so
    ///   warp-finish cycles are observed without scanning warps.
    ///
    /// Finish events detected in a cycle are emitted in the reference's
    /// scan order (SM-major, then warp) during the termination phase.
    fn event_loop(
        &self,
        m: &mut Machine<'_>,
        launch: &LaunchPolicy,
        tel: &mut SimTelemetry,
    ) -> Result<(), SimError> {
        let cfg = &self.config;
        let core = u64::from(cfg.core_clock_mhz);
        let mem = u64::from(cfg.mem_clock_mhz);
        let num_sms = m.sms.len();
        let mut mem_ticks: u64 = 0;
        let mut dram_done: Vec<(u64, u64)> = Vec::new();
        let mut ready_scratch: Vec<usize> = Vec::with_capacity(cfg.warp_schedulers);
        let mut net_scratch: Vec<(usize, u64)> = Vec::new();
        let mut unblocked: Vec<(usize, usize)> = Vec::new();
        let mut progress_at: u64 = 0;
        let mut prev_frozen = false;

        let mut ready_at: Vec<u64> = vec![0; num_sms];
        let mut unfinished: Vec<usize> = m.sms.iter().map(Sm::num_warps).collect();
        let mut live_warps: usize = unfinished.iter().sum();
        // SMs that still have unfinished warps, ascending (issue order
        // matters: packet sequence numbers follow SM order). SMs with no
        // warps never issue, never stall-account, and keep
        // `ready_at == MAX`, so the loop skips them from the start.
        let mut active_sms: Vec<usize> = (0..num_sms).filter(|&s| unfinished[s] > 0).collect();
        let mut max_busy: u64 = 0;
        let mut finish_heap: BinaryHeap<Reverse<(u64, usize, usize)>> = BinaryHeap::new();
        let mut finishers: Vec<(usize, usize)> = Vec::new();
        // Zero-length traces are done at cycle 0 without ever issuing;
        // seed their finish events so the heap sees them.
        for (s, sm) in m.sms.iter().enumerate() {
            for l in 0..sm.num_warps() {
                if sm.done(l, 0) {
                    finish_heap.push(Reverse((0, s, l)));
                }
            }
        }

        let mut now: u64 = 0;
        loop {
            let mut progressed = false;
            finishers.clear();
            // --- Replay the crossbars' skipped injection cycles before
            // anything can queue new packets at `now`: packets issued
            // this cycle must not appear in the catch-up of the span.
            m.req_net.sync(now);
            m.reply_net.sync(now);
            // --- Compute-tail retirements due exactly now. Popped before
            // the issue stage: the reference's `all_done` sees these
            // warps as done at issue time (their `busy_until <= now`).
            while let Some(&Reverse((c, s, l))) = finish_heap.peek() {
                if c > now {
                    break;
                }
                debug_assert_eq!(c, now, "finish events are never skipped");
                finish_heap.pop();
                debug_assert!(m.sms[s].done(l, now));
                unfinished[s] -= 1;
                live_warps -= 1;
                finishers.push((s, l));
            }

            // --- Issue stage with per-SM gating.
            for &s in &active_sms {
                if ready_at[s] > now {
                    // No warp on this SM can be ready: the reference
                    // would run an empty (state-preserving) selection
                    // and account one issue stall if warps remain.
                    if tel.is_enabled() && unfinished[s] > 0 {
                        tel.profile.issue_stall_cycles += 1;
                    }
                    continue;
                }
                m.sms[s].select_ready_into(now, &mut ready_scratch);
                if ready_scratch.is_empty() {
                    if tel.is_enabled() && unfinished[s] > 0 {
                        tel.profile.issue_stall_cycles += 1;
                    }
                } else {
                    progressed = true;
                    for &widx in &ready_scratch {
                        m.issue_warp(cfg, launch, s, widx, now, tel);
                        let b = m.sms[s].busy_until[widx];
                        max_busy = max_busy.max(b);
                        // A warp that consumed its whole trace retires
                        // here (marks, an empty/all-hit load) or at the
                        // end of its final compute burst.
                        if m.sms[s].retired(widx) && m.sms[s].outstanding[widx] == 0 {
                            if b <= now {
                                unfinished[s] -= 1;
                                live_warps -= 1;
                                finishers.push((s, widx));
                            } else {
                                finish_heap.push(Reverse((b, s, widx)));
                            }
                        }
                    }
                }
                ready_at[s] = m.sms[s].next_warp_event(now);
            }

            // --- Interconnect. Plans routed to this loop never draw
            // per-cycle randomness, so `icnt_stalled` is false without
            // touching the fault RNG; the freeze branch is kept so the
            // loop stays correct if that routing ever changes.
            let icnt_frozen = m.fault.icnt_stalled(now);
            if tel.is_enabled() && icnt_frozen != prev_frozen {
                tel.event(
                    now,
                    Severity::Warn,
                    "icnt",
                    if icnt_frozen {
                        "backpressure_start"
                    } else {
                        "backpressure_end"
                    },
                    m.req_net.pending() as u64,
                    m.reply_net.pending() as u64,
                );
            }
            prev_frozen = icnt_frozen;

            let mem_now = now * mem / core;
            if icnt_frozen {
                m.req_net.freeze(now);
                m.reply_net.freeze(now);
            } else if m.req_net.pending() > 0 {
                // An empty crossbar's tick is a pure no-op (the deferred
                // injection bookkeeping fast-forwards through drained
                // spans), so skip it entirely.
                m.req_net.tick_into(now, &mut net_scratch);
                m.deliver_requests(mem_now, &net_scratch, tel);
            }

            m.dram_advance(cfg, now, &mut mem_ticks, true, &mut dram_done);
            m.release_replies(now, mem_ticks, tel);

            if !icnt_frozen && m.reply_net.pending() > 0 {
                m.reply_net.tick_into(now, &mut net_scratch);
                unblocked.clear();
                for &(_sm, id) in &net_scratch {
                    progressed = true;
                    m.absorb_reply(cfg, id, now, tel, &mut unblocked);
                }
                for &(us, uw) in &unblocked {
                    if m.sms[us].retired(uw) {
                        // A warp waiting on replies issued its load while
                        // ready, so its compute clock cannot be ahead.
                        debug_assert!(m.sms[us].busy_until[uw] <= now);
                        unfinished[us] -= 1;
                        live_warps -= 1;
                        finishers.push((us, uw));
                    } else {
                        ready_at[us] = ready_at[us].min(now + 1);
                    }
                }
            }
            if !finishers.is_empty() {
                active_sms.retain(|&s| unfinished[s] > 0);
            }

            // --- Termination: emit this cycle's finish events in the
            // reference's scan order (SM-major, then warp index).
            let quiescent = m.quiescent();
            if !finishers.is_empty() {
                finishers.sort_unstable();
                for &(s, l) in &finishers {
                    let gid = l * cfg.num_sms + s;
                    debug_assert_eq!(m.stats.warp_finish_cycle[gid], 0);
                    m.stats.warp_finish_cycle[gid] = now + 1;
                    tel.event(
                        now,
                        Severity::Info,
                        "sm",
                        "warp_finished",
                        gid as u64,
                        s as u64,
                    );
                }
            }
            let any_busy = max_busy > now;
            if quiescent && live_warps == 0 {
                m.stats.total_cycles = now + 1;
                return Ok(());
            }

            // --- Forward-progress watchdog, identical to the reference.
            let wedged = quiescent && !progressed && !any_busy;
            let window = cfg.watchdog_window;
            let starved =
                window > 0 && !progressed && !any_busy && now.saturating_sub(progress_at) >= window;
            if wedged || starved {
                return Err(m.stall_report(now, tel));
            }
            if progressed || any_busy || !m.pending_replies.is_empty() {
                progress_at = now;
            }

            // --- Clock advance: jump straight to the next cycle at
            // which any component can change state.
            let mut next = u64::MAX;
            for &s in &active_sms {
                next = next.min(ready_at[s]);
            }
            if let Some(&Reverse((c, _, _))) = finish_heap.peek() {
                next = next.min(c);
            }
            if let Some(t) = m.req_net.next_event(now) {
                next = next.min(t);
            }
            if let Some(t) = m.reply_net.next_event(now) {
                next = next.min(t);
            }
            if let Some(&Reverse((t, _, _))) = m.pending_replies.peek() {
                next = next.min(t.max(now + 1));
            }
            m.refresh_mc_cache();
            let mut min_mt = u64::MAX;
            for &c in &m.mc_cache {
                min_mt = min_mt.min(c);
            }
            if min_mt != u64::MAX {
                // The cache stores raw (unclamped) ticks; the reference
                // bound is `next_event(mem_ticks)`, whose clamp
                // distributes over the minimum.
                let min_mt = min_mt.max(mem_ticks);
                // Mem tick `mt` executes in the body of the first
                // core cycle c with (c+1)*mem/core > mt, i.e.
                // c = ceil((mt+1)*core/mem) - 1 — landing there
                // (not earlier, not later) is what keeps the
                // reply-release clamp `max(now + 1)` and the
                // retransmit arrival stamps bit-identical to the
                // reference. The tick-to-cycle map is monotone, so
                // converting the minimum tick is the minimum cycle.
                let c = (min_mt + 1).saturating_mul(core).div_ceil(mem) - 1;
                next = next.min(c.max(now + 1));
            }
            if next <= now || next == u64::MAX {
                // No component advertises an event: the machine is
                // either wedged (the watchdog must run next cycle to
                // see it) or about to be diagnosed. Stepping once is
                // always safe.
                next = now + 1;
            }
            if any_busy || !m.pending_replies.is_empty() {
                // The reference loop refreshes `progress_at` on every
                // cycle of this span; land just behind the jump target
                // so the windowed backstop measures the same distance
                // afterwards.
                if next > now + 1 {
                    progress_at = next - 1;
                }
            } else if window > 0 {
                // Nothing refreshes progress across the gap: never skip
                // past the cycle where the windowed backstop would have
                // fired.
                next = next.min(progress_at.saturating_add(window).max(now + 1));
            }
            // The skipped cycles are exact no-ops, but the reference
            // loop still accounts one issue-stall per SM with
            // unfinished warps on each of them. Done-ness cannot flip
            // inside the span: any finish event in it would have
            // bounded `next`.
            if tel.is_enabled() && next > now + 1 {
                let skipped = next - now - 1;
                tel.profile.issue_stall_cycles += skipped * active_sms.len() as u64;
            }
            now = next;
            if now >= cfg.max_cycles {
                return Err(SimError::CycleLimit {
                    limit: cfg.max_cycles,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceKernel, WarpTrace};

    fn one_warp_kernel(instrs: Vec<TraceInstr>, width: usize) -> TraceKernel {
        TraceKernel::new(vec![WarpTrace::from_instrs(instrs)], width)
    }

    fn sim() -> GpuSimulator {
        GpuSimulator::new(GpuConfig::tiny())
    }

    #[test]
    fn empty_kernel_finishes_immediately() {
        let k = TraceKernel::new(vec![], 4);
        let stats = sim().run(&k, CoalescingPolicy::Baseline, 0).unwrap();
        assert_eq!(stats.total_accesses, 0);
        assert_eq!(stats.num_warps, 0);
        assert!(stats.total_cycles <= 2);
    }

    #[test]
    fn compute_only_kernel_time_matches_trace() {
        let k = one_warp_kernel(vec![TraceInstr::compute(10), TraceInstr::compute(10)], 4);
        let stats = sim().run(&k, CoalescingPolicy::Baseline, 0).unwrap();
        assert!(stats.total_cycles >= 20);
        assert!(stats.total_cycles < 40);
        assert_eq!(stats.total_accesses, 0);
    }

    #[test]
    fn single_load_counts_accesses_and_costs_memory_latency() {
        let k = one_warp_kernel(
            vec![TraceInstr::load(vec![
                Some(0),
                Some(16),
                Some(4096),
                Some(8192),
            ])],
            4,
        );
        let stats = sim().run(&k, CoalescingPolicy::Baseline, 0).unwrap();
        assert_eq!(stats.total_accesses, 3, "lanes 0 and 1 share a block");
        assert_eq!(stats.total_requests, 4);
        // Must include interconnect (2×8) and DRAM (≥ 26 mem cycles ≈ 40 core).
        assert!(stats.total_cycles > 50, "got {}", stats.total_cycles);
    }

    #[test]
    fn disabled_coalescing_issues_more_accesses_and_is_slower() {
        let addrs: Vec<Option<u64>> = (0..4).map(|i| Some(i * 8)).collect();
        let k = one_warp_kernel(vec![TraceInstr::load(addrs)], 4);
        let base = sim().run(&k, CoalescingPolicy::Baseline, 0).unwrap();
        let off = sim().run(&k, CoalescingPolicy::Disabled, 0).unwrap();
        assert_eq!(base.total_accesses, 1);
        assert_eq!(off.total_accesses, 4);
        assert!(off.total_cycles > base.total_cycles);
    }

    #[test]
    fn round_marks_split_time() {
        let k = one_warp_kernel(
            vec![
                TraceInstr::compute(50),
                TraceInstr::RoundMark { round: 1 },
                TraceInstr::compute(100),
                TraceInstr::RoundMark { round: 2 },
            ],
            4,
        );
        let stats = sim().run(&k, CoalescingPolicy::Baseline, 0).unwrap();
        let after1 = stats.cycles_after_round(1);
        let after2 = stats.cycles_after_round(2);
        assert!(
            after1 > 100 && after1 < 120,
            "round 2 takes ~100 cycles, got {after1}"
        );
        assert!(after2 <= 2);
    }

    #[test]
    fn tags_split_access_counts() {
        let k = one_warp_kernel(
            vec![
                TraceInstr::load_tagged(vec![Some(0), Some(4096), None, None], 1),
                TraceInstr::load_tagged(vec![Some(0), Some(1), Some(2), Some(3)], 2),
            ],
            4,
        );
        let stats = sim().run(&k, CoalescingPolicy::Baseline, 0).unwrap();
        assert_eq!(stats.accesses_for_tag(1), 2);
        assert_eq!(stats.accesses_for_tag(2), 1);
        assert_eq!(stats.total_accesses, 3);
    }

    #[test]
    fn more_memory_traffic_takes_more_time() {
        let spread: Vec<Option<u64>> = (0..4).map(|i| Some(i * 4096)).collect();
        let k_light = one_warp_kernel(vec![TraceInstr::load(spread.clone())], 4);
        let heavy: Vec<TraceInstr> = (0..8).map(|_| TraceInstr::load(spread.clone())).collect();
        let k_heavy = one_warp_kernel(heavy, 4);
        let light = sim().run(&k_light, CoalescingPolicy::Baseline, 0).unwrap();
        let heavy = sim().run(&k_heavy, CoalescingPolicy::Baseline, 0).unwrap();
        assert!(heavy.total_cycles > light.total_cycles);
        assert_eq!(heavy.total_accesses, 8 * light.total_accesses);
    }

    #[test]
    fn multi_warp_multi_sm_completes() {
        let cfg = GpuConfig {
            num_sms: 3,
            ..GpuConfig::tiny()
        };
        let trace = WarpTrace::from_instrs(vec![
            TraceInstr::load((0..4).map(|i| Some(i * 256)).collect()),
            TraceInstr::compute(5),
            TraceInstr::load((0..4).map(|i| Some(i * 512)).collect()),
        ]);
        let k = TraceKernel::new(vec![trace; 7], 4);
        let stats = GpuSimulator::new(cfg)
            .run(&k, CoalescingPolicy::Baseline, 0)
            .unwrap();
        assert_eq!(stats.num_warps, 7);
        assert_eq!(stats.total_accesses, 7 * 8);
    }

    #[test]
    fn deterministic_across_runs() {
        let trace = WarpTrace::from_instrs(vec![TraceInstr::load(
            (0..4).map(|i| Some(i * 64)).collect(),
        )]);
        let k = TraceKernel::new(vec![trace; 4], 4);
        let p = CoalescingPolicy::rss_rts(2).unwrap();
        let a = sim().run(&k, p, 9).unwrap();
        let b = sim().run(&k, p, 9).unwrap();
        assert_eq!(a, b);
        let c = sim().run(&k, p, 10).unwrap();
        // A different seed draws different subwarps; access counts may
        // differ (not guaranteed, but cycles rarely coincide — allow equality
        // of either one, require equality of totals only for same seed).
        assert_eq!(a.num_warps, c.num_warps);
    }

    #[test]
    fn latency_and_finish_stats_are_recorded() {
        let k = one_warp_kernel(
            vec![TraceInstr::load(vec![Some(0), Some(4096), None, None])],
            4,
        );
        let stats = sim().run(&k, CoalescingPolicy::Baseline, 0).unwrap();
        assert_eq!(stats.warp_finish_cycle.len(), 1);
        assert!(stats.warp_finish_cycle[0] > 0);
        assert!(stats.warp_finish_cycle[0] <= stats.total_cycles);
        // Two accesses, each with a full round trip through icnt + DRAM.
        assert!(
            stats.avg_mem_latency() > 2.0 * 8.0,
            "at least the crossbar latency"
        );
        assert!(stats.mem_latency_sum > 0);
    }

    #[test]
    fn warps_finish_no_later_than_the_kernel() {
        let trace = WarpTrace::from_instrs(vec![
            TraceInstr::load((0..4).map(|i| Some(i * 256)).collect()),
            TraceInstr::compute(20),
        ]);
        let k = TraceKernel::new(vec![trace; 5], 4);
        let cfg = GpuConfig {
            num_sms: 2,
            ..GpuConfig::tiny()
        };
        let stats = GpuSimulator::new(cfg)
            .run(&k, CoalescingPolicy::Baseline, 0)
            .unwrap();
        assert_eq!(stats.warp_finish_cycle.len(), 5);
        for &f in &stats.warp_finish_cycle {
            assert!(f > 0 && f <= stats.total_cycles);
        }
        assert_eq!(
            *stats.warp_finish_cycle.iter().max().unwrap(),
            stats.total_cycles,
            "the last warp defines the kernel end"
        );
    }

    #[test]
    fn mshrs_merge_cross_warp_requests_to_the_same_block() {
        // Two warps on one SM loading the same block back to back.
        let trace = WarpTrace::from_instrs(vec![TraceInstr::load(vec![
            Some(0),
            Some(8),
            Some(16),
            Some(24),
        ])]);
        let k = TraceKernel::new(vec![trace; 2], 4);
        let off = GpuConfig::tiny();
        let on = GpuConfig {
            mshr_entries: 64,
            ..GpuConfig::tiny()
        };
        let stats_off = GpuSimulator::new(off)
            .run(&k, CoalescingPolicy::Baseline, 0)
            .unwrap();
        let stats_on = GpuSimulator::new(on)
            .run(&k, CoalescingPolicy::Baseline, 0)
            .unwrap();
        assert_eq!(stats_off.mshr_merged, 0);
        assert_eq!(stats_on.mshr_merged, 1, "second warp's access piggybacks");
        // Coalesced-access accounting is unchanged (it is pre-MSHR).
        assert_eq!(stats_on.total_accesses, stats_off.total_accesses);
        assert!(stats_on.total_cycles <= stats_off.total_cycles);
    }

    #[test]
    fn mshr_capacity_zero_never_merges() {
        let trace = WarpTrace::from_instrs(vec![TraceInstr::load(vec![Some(0); 4])]);
        let k = TraceKernel::new(vec![trace; 4], 4);
        let stats = sim().run(&k, CoalescingPolicy::Baseline, 0).unwrap();
        assert_eq!(stats.mshr_merged, 0);
    }

    #[test]
    fn mshr_capacity_limits_tracked_blocks() {
        // Capacity 1: only the first in-flight block can absorb merges;
        // requests to other blocks go to memory unmerged.
        let trace = WarpTrace::from_instrs(vec![TraceInstr::load(vec![
            Some(0),
            Some(4096),
            None,
            None,
        ])]);
        let k = TraceKernel::new(vec![trace; 3], 4);
        let cfg = GpuConfig {
            mshr_entries: 1,
            ..GpuConfig::tiny()
        };
        let stats = GpuSimulator::new(cfg)
            .run(&k, CoalescingPolicy::Baseline, 0)
            .unwrap();
        // 3 warps x 2 blocks = 6 accesses; block 0 is tracked, so up to 2
        // of the 4 same-block repeats merge (while in flight).
        assert!(
            stats.mshr_merged >= 1 && stats.mshr_merged <= 3,
            "merged {}",
            stats.mshr_merged
        );
    }

    #[test]
    fn l1_hits_skip_the_memory_system() {
        // Same block loaded twice by the same warp: second load hits.
        let k = one_warp_kernel(
            vec![
                TraceInstr::load(vec![Some(0), None, None, None]),
                TraceInstr::load(vec![Some(8), None, None, None]),
            ],
            4,
        );
        let cfg = GpuConfig {
            l1_sets: 16,
            ..GpuConfig::tiny()
        };
        let stats = GpuSimulator::new(cfg)
            .run(&k, CoalescingPolicy::Baseline, 0)
            .unwrap();
        assert_eq!(stats.l1_hits, 1);
        assert_eq!(stats.total_accesses, 2, "coalescer accounting is pre-L1");

        let stats_off = sim().run(&k, CoalescingPolicy::Baseline, 0).unwrap();
        assert_eq!(stats_off.l1_hits, 0);
        assert!(stats.total_cycles < stats_off.total_cycles);
    }

    #[test]
    fn cached_table_flattens_timing() {
        // Repeatedly load random-ish blocks from a 16-block table; once
        // resident, every load hits and the per-load time is constant.
        let blocks: Vec<u64> = (0..16).map(|i| i * 64).collect();
        let mut instrs = Vec::new();
        for r in 0..8u64 {
            for i in 0..4u64 {
                let b = blocks[((r * 7 + i * 3) % 16) as usize];
                instrs.push(TraceInstr::load(vec![Some(b), None, None, None]));
            }
        }
        let k = one_warp_kernel(instrs, 4);
        let cfg = GpuConfig {
            l1_sets: 16,
            l1_ways: 4,
            ..GpuConfig::tiny()
        };
        let stats = GpuSimulator::new(cfg)
            .run(&k, CoalescingPolicy::Baseline, 0)
            .unwrap();
        // 16 compulsory misses, everything else hits.
        assert_eq!(stats.l1_hits, 32 - 16);
    }

    #[test]
    fn cycle_limit_is_enforced() {
        let cfg = GpuConfig {
            max_cycles: 10,
            ..GpuConfig::tiny()
        };
        let k = one_warp_kernel(vec![TraceInstr::compute(1000)], 4);
        let err = GpuSimulator::new(cfg)
            .run(&k, CoalescingPolicy::Baseline, 0)
            .unwrap_err();
        assert_eq!(err, SimError::CycleLimit { limit: 10 });
        assert!(err.to_string().contains("cycle limit"));
    }

    #[test]
    fn invalid_config_is_reported() {
        let cfg = GpuConfig {
            num_sms: 0,
            ..GpuConfig::tiny()
        };
        let k = one_warp_kernel(vec![], 4);
        assert!(matches!(
            GpuSimulator::new(cfg).run(&k, CoalescingPolicy::Baseline, 0),
            Err(SimError::Config(_))
        ));
    }

    #[test]
    fn policy_mismatch_is_reported() {
        // FSS with 8 subwarps cannot split a 4-thread warp.
        let k = one_warp_kernel(vec![TraceInstr::compute(1)], 4);
        let p = CoalescingPolicy::fss(8).unwrap();
        assert!(matches!(sim().run(&k, p, 0), Err(SimError::Policy(_))));
    }

    fn memory_kernel() -> TraceKernel {
        let trace = WarpTrace::from_instrs(vec![
            TraceInstr::load((0..4).map(|i| Some(i * 4096)).collect()),
            TraceInstr::compute(5),
            TraceInstr::load((0..4).map(|i| Some(i * 256)).collect()),
        ]);
        TraceKernel::new(vec![trace; 3], 4)
    }

    #[test]
    fn inactive_fault_plan_changes_nothing() {
        let k = memory_kernel();
        let clean = sim().run(&k, CoalescingPolicy::Baseline, 1).unwrap();
        let faulted = sim()
            .run_faulted(&k, CoalescingPolicy::Baseline, 1, &crate::FaultPlan::none())
            .unwrap();
        assert_eq!(clean, faulted);
    }

    #[test]
    fn invalid_fault_plan_is_a_config_error() {
        let k = memory_kernel();
        let plan = crate::FaultPlan::seeded(0).with_drop(2.0, 0);
        let err = sim()
            .run_faulted(&k, CoalescingPolicy::Baseline, 1, &plan)
            .unwrap_err();
        match err {
            SimError::Config(msg) => assert!(msg.contains("fault plan"), "{msg}"),
            other => panic!("expected Config, got {other:?}"),
        }
    }

    #[test]
    fn lost_replies_stall_in_bounded_time_with_a_diagnostic() {
        // Drop 100% of the only controller's replies with no retries:
        // every memory warp wedges. The exact livelock detector must fire
        // long before the 500M-cycle limit.
        let k = memory_kernel();
        let plan = crate::FaultPlan::seeded(5).with_mc_drop(0, 1.0, 0);
        let err = sim()
            .run_faulted(&k, CoalescingPolicy::Baseline, 1, &plan)
            .unwrap_err();
        match err {
            SimError::Stalled {
                cycle,
                outstanding,
                diagnostic,
                ..
            } => {
                assert!(cycle < 100_000, "detected at cycle {cycle}");
                assert!(outstanding > 0);
                assert!(diagnostic.contains("sm 0 warp"), "{diagnostic}");
                assert!(diagnostic.contains("replies were lost"), "{diagnostic}");
            }
            other => panic!("expected Stalled, got {other:?}"),
        }
    }

    #[test]
    fn retransmits_recover_dropped_replies() {
        // Every reply is dropped once, then retransmitted successfully:
        // the run completes, slower, with identical access accounting.
        let k = memory_kernel();
        let clean = sim().run(&k, CoalescingPolicy::Baseline, 1).unwrap();
        let plan = crate::FaultPlan::seeded(6).with_drop(0.5, 8);
        let faulted = sim()
            .run_faulted(&k, CoalescingPolicy::Baseline, 1, &plan)
            .unwrap();
        assert!(faulted.fault_retries > 0, "a drop must have fired");
        assert_eq!(faulted.replies_lost, 0);
        assert_eq!(faulted.dropped_replies, faulted.fault_retries);
        assert_eq!(faulted.total_accesses, clean.total_accesses);
        assert_eq!(faulted.total_requests, clean.total_requests);
        assert!(faulted.total_cycles > clean.total_cycles);
    }

    #[test]
    fn reply_jitter_slows_the_run_but_not_the_access_counts() {
        let k = memory_kernel();
        let clean = sim().run(&k, CoalescingPolicy::Baseline, 1).unwrap();
        let plan = crate::FaultPlan::seeded(7)
            .with_jitter(crate::ReplyJitter::Uniform { min: 200, max: 400 });
        let faulted = sim()
            .run_faulted(&k, CoalescingPolicy::Baseline, 1, &plan)
            .unwrap();
        assert!(faulted.total_cycles > clean.total_cycles + 100);
        assert_eq!(faulted.total_accesses, clean.total_accesses);
        assert_eq!(faulted.accesses_by_tag, clean.accesses_by_tag);
    }

    #[test]
    fn backpressure_bursts_slow_the_run() {
        let k = memory_kernel();
        let clean = sim().run(&k, CoalescingPolicy::Baseline, 1).unwrap();
        let plan = crate::FaultPlan::seeded(8).with_backpressure(0.05, 32);
        let faulted = sim()
            .run_faulted(&k, CoalescingPolicy::Baseline, 1, &plan)
            .unwrap();
        assert!(faulted.total_cycles > clean.total_cycles);
        assert_eq!(faulted.total_accesses, clean.total_accesses);
    }

    #[test]
    fn permanent_backpressure_trips_the_windowed_watchdog() {
        // The interconnect freezes forever while packets are pending:
        // the machine is never quiescent, so only the windowed backstop
        // can catch it.
        let cfg = GpuConfig {
            watchdog_window: 2_000,
            ..GpuConfig::tiny()
        };
        let k = memory_kernel();
        let plan = crate::FaultPlan::seeded(9).with_backpressure(1.0, u64::MAX / 2);
        let err = GpuSimulator::new(cfg)
            .run_faulted(&k, CoalescingPolicy::Baseline, 1, &plan)
            .unwrap_err();
        match err {
            SimError::Stalled {
                cycle, diagnostic, ..
            } => {
                assert!(cycle < 100_000, "detected at cycle {cycle}");
                assert!(diagnostic.contains("req_net"), "{diagnostic}");
            }
            other => panic!("expected Stalled, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_window_zero_disables_the_backstop() {
        let cfg = GpuConfig {
            watchdog_window: 0,
            max_cycles: 5_000,
            ..GpuConfig::tiny()
        };
        let k = memory_kernel();
        let plan = crate::FaultPlan::seeded(9).with_backpressure(1.0, u64::MAX / 2);
        let err = GpuSimulator::new(cfg)
            .run_faulted(&k, CoalescingPolicy::Baseline, 1, &plan)
            .unwrap_err();
        assert_eq!(err, SimError::CycleLimit { limit: 5_000 });
    }

    #[test]
    fn stalled_display_names_the_details() {
        let err = SimError::Stalled {
            cycle: 42,
            outstanding: 3,
            diagnostic: "sm 0 warp 1".into(),
            trail: vec![],
        };
        let s = err.to_string();
        assert!(s.contains("42") && s.contains("3 replies") && s.contains("sm 0 warp 1"));
        assert!(!s.contains("recent events"), "no trail section when empty");

        let err = SimError::Stalled {
            cycle: 42,
            outstanding: 3,
            diagnostic: "sm 0 warp 1".into(),
            trail: vec!["[error @42] fault.reply_lost a=0 b=7".into()],
        };
        let s = err.to_string();
        assert!(s.contains("recent events"), "{s}");
        assert!(s.contains("fault.reply_lost"), "{s}");
    }

    #[test]
    fn instrumentation_does_not_perturb_timing() {
        let k = memory_kernel();
        let plain = sim().run(&k, CoalescingPolicy::Baseline, 1).unwrap();
        let mut tel = crate::SimTelemetry::new();
        let instrumented = sim()
            .run_instrumented(
                &k,
                LaunchPolicy::Uniform(CoalescingPolicy::Baseline),
                1,
                &FaultPlan::none(),
                &mut tel,
            )
            .unwrap();
        assert_eq!(plain, instrumented);
        // The profile saw every load and every reply.
        assert_eq!(tel.profile.accesses_per_load.count(), 2 * 3);
        assert_eq!(tel.profile.mem_latency.count(), plain.total_accesses);
        assert_eq!(
            tel.profile.mcs.iter().map(|m| m.serviced).sum::<u64>(),
            plain.total_accesses
        );
        // Lifecycle events are present with cycle timestamps.
        assert!(tel.events.events().any(|e| e.code == "launch"));
        assert!(tel.events.events().any(|e| e.code == "done"));
        assert!(
            tel.events
                .events()
                .filter(|e| e.code == "warp_finished")
                .count()
                == 3
        );
    }

    #[test]
    fn instrumented_runs_are_deterministic() {
        let k = memory_kernel();
        let p = LaunchPolicy::Uniform(CoalescingPolicy::rss_rts(2).unwrap());
        let mut ta = crate::SimTelemetry::new();
        let mut tb = crate::SimTelemetry::new();
        let a = sim()
            .run_instrumented(&k, p, 9, &FaultPlan::none(), &mut ta)
            .unwrap();
        let b = sim()
            .run_instrumented(&k, p, 9, &FaultPlan::none(), &mut tb)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(ta.profile, tb.profile);
        assert_eq!(
            ta.events.events().collect::<Vec<_>>(),
            tb.events.events().collect::<Vec<_>>()
        );
    }

    #[test]
    fn instrumented_stall_carries_an_event_trail() {
        let k = memory_kernel();
        let plan = crate::FaultPlan::seeded(5).with_mc_drop(0, 1.0, 0);
        let mut tel = crate::SimTelemetry::new();
        let err = sim()
            .run_instrumented(
                &k,
                LaunchPolicy::Uniform(CoalescingPolicy::Baseline),
                1,
                &plan,
                &mut tel,
            )
            .unwrap_err();
        match err {
            SimError::Stalled { trail, .. } => {
                assert!(!trail.is_empty());
                assert!(trail.len() <= STALL_TRAIL_EVENTS);
                assert!(
                    trail.iter().any(|l| l.contains("reply_lost")),
                    "the lost reply must appear in the trail: {trail:?}"
                );
                assert!(
                    trail.last().is_some_and(|l| l.contains("sim.stalled")),
                    "the stall event itself closes the trail: {trail:?}"
                );
            }
            other => panic!("expected Stalled, got {other:?}"),
        }
    }

    /// Runs one (kernel, launch, seed, plan) through both cores with
    /// full telemetry and asserts bit-identical stats, profiles, and
    /// event streams.
    fn assert_cores_agree(
        sim: &GpuSimulator,
        k: &dyn Kernel,
        launch: LaunchPolicy,
        seed: u64,
        plan: &FaultPlan,
    ) {
        let mut te = crate::SimTelemetry::new();
        let mut tr = crate::SimTelemetry::new();
        let event = sim.run_instrumented(k, launch, seed, plan, &mut te);
        let reference = sim.run_instrumented_reference(k, launch, seed, plan, &mut tr);
        assert_eq!(event, reference);
        assert_eq!(te.profile, tr.profile);
        assert_eq!(
            te.events.events().collect::<Vec<_>>(),
            tr.events.events().collect::<Vec<_>>()
        );
    }

    #[test]
    fn event_core_matches_the_reference_loop() {
        let sim = sim();
        let mem = memory_kernel();
        let compute = one_warp_kernel(
            vec![
                TraceInstr::compute(100),
                TraceInstr::load((0..4).map(|i| Some(i * 4096)).collect()),
                TraceInstr::compute(3),
            ],
            4,
        );
        for seed in [0, 1, 9] {
            for policy in [
                CoalescingPolicy::Baseline,
                CoalescingPolicy::Disabled,
                CoalescingPolicy::rss_rts(2).unwrap(),
            ] {
                let launch = LaunchPolicy::Uniform(policy);
                assert_cores_agree(&sim, &mem, launch, seed, &FaultPlan::none());
                assert_cores_agree(&sim, &compute, launch, seed, &FaultPlan::none());
            }
        }
    }

    #[test]
    fn event_core_matches_the_reference_under_skip_safe_faults() {
        // Jitter and drop/retransmit plans draw randomness per memory
        // event, so the skip-ahead core must replay their streams
        // exactly; only backpressure forces single-stepping.
        let sim = sim();
        let k = memory_kernel();
        let jitter = crate::FaultPlan::seeded(7)
            .with_jitter(crate::ReplyJitter::Uniform { min: 200, max: 400 });
        let drops = crate::FaultPlan::seeded(6).with_drop(0.5, 8);
        let launch = LaunchPolicy::Uniform(CoalescingPolicy::Baseline);
        assert!(!jitter.perturbs_per_cycle());
        assert!(!drops.perturbs_per_cycle());
        assert_cores_agree(&sim, &k, launch, 1, &jitter);
        assert_cores_agree(&sim, &k, launch, 1, &drops);
    }

    #[test]
    fn event_core_matches_the_reference_on_idle_heavy_configs() {
        // Huge interconnect latency: almost every cycle is a dead tick,
        // maximizing skip distance.
        let cfg = GpuConfig {
            icnt_latency: 700,
            ..GpuConfig::tiny()
        };
        let sim = GpuSimulator::new(cfg);
        let k = memory_kernel();
        assert_cores_agree(
            &sim,
            &k,
            LaunchPolicy::Uniform(CoalescingPolicy::Baseline),
            3,
            &FaultPlan::none(),
        );
    }

    #[test]
    fn event_core_reproduces_reference_stalls() {
        // A lost reply must produce the same Stalled error (cycle,
        // diagnostic, trail) from both cores.
        let k = memory_kernel();
        let plan = crate::FaultPlan::seeded(5).with_mc_drop(0, 1.0, 0);
        let launch = LaunchPolicy::Uniform(CoalescingPolicy::Baseline);
        let mut te = crate::SimTelemetry::new();
        let mut tr = crate::SimTelemetry::new();
        let event = sim()
            .run_instrumented(&k, launch, 1, &plan, &mut te)
            .unwrap_err();
        let reference = sim()
            .run_instrumented_reference(&k, launch, 1, &plan, &mut tr)
            .unwrap_err();
        assert_eq!(event, reference);
    }

    #[test]
    fn event_core_reproduces_the_cycle_limit() {
        let cfg = GpuConfig {
            max_cycles: 10,
            ..GpuConfig::tiny()
        };
        let k = one_warp_kernel(vec![TraceInstr::compute(1000)], 4);
        let err = GpuSimulator::new(cfg.clone())
            .run(&k, CoalescingPolicy::Baseline, 0)
            .unwrap_err();
        let ref_err = GpuSimulator::new(cfg)
            .run_instrumented_reference(
                &k,
                LaunchPolicy::Uniform(CoalescingPolicy::Baseline),
                0,
                &FaultPlan::none(),
                &mut crate::SimTelemetry::off(),
            )
            .unwrap_err();
        assert_eq!(err, SimError::CycleLimit { limit: 10 });
        assert_eq!(err, ref_err);
    }

    #[test]
    fn event_core_skips_while_visiting_fewer_cycles_is_invisible() {
        // The windowed backstop must fire at the same cycle whether the
        // span to starvation was walked or skipped: shrink the window
        // below the (huge) interconnect latency so the starve cycle
        // falls inside a skippable gap.
        let cfg = GpuConfig {
            watchdog_window: 50,
            icnt_latency: 10_000,
            ..GpuConfig::tiny()
        };
        let k = memory_kernel();
        let launch = LaunchPolicy::Uniform(CoalescingPolicy::Baseline);
        let sim = GpuSimulator::new(cfg);
        let event = sim
            .run_instrumented(
                &k,
                launch,
                1,
                &FaultPlan::none(),
                &mut crate::SimTelemetry::off(),
            )
            .map(|s| s.total_cycles);
        let reference = sim
            .run_instrumented_reference(
                &k,
                launch,
                1,
                &FaultPlan::none(),
                &mut crate::SimTelemetry::off(),
            )
            .map(|s| s.total_cycles);
        assert_eq!(event, reference);
    }

    #[test]
    fn zero_length_traces_finish_at_cycle_zero_in_both_cores() {
        // Empty-trace warps never issue; their finish events come from
        // the event core's seeded heap and must match the reference.
        let k = TraceKernel::new(
            vec![
                WarpTrace::from_instrs(vec![]),
                WarpTrace::from_instrs(vec![TraceInstr::load(
                    (0..4).map(|i| Some(i * 4096)).collect(),
                )]),
                WarpTrace::from_instrs(vec![]),
            ],
            4,
        );
        let launch = LaunchPolicy::Uniform(CoalescingPolicy::Baseline);
        let sim = sim();
        assert_cores_agree(&sim, &k, launch, 2, &FaultPlan::none());
        let stats = sim.run(&k, CoalescingPolicy::Baseline, 2).unwrap();
        assert_eq!(stats.warp_finish_cycle[0], 1, "empty warp is done at once");
        assert_eq!(stats.warp_finish_cycle[2], 1);
        assert!(stats.warp_finish_cycle[1] > 1);
    }

    #[test]
    fn event_core_matches_the_reference_with_many_warps_per_scheduler() {
        // LRR with far more warps than issue slots: the round-robin
        // cursor must evolve identically even though the event core
        // skips scheduler selection on gated SMs.
        let cfg = GpuConfig {
            scheduler: crate::SchedulerPolicy::Lrr,
            ..GpuConfig::tiny()
        };
        let trace = WarpTrace::from_instrs(vec![
            TraceInstr::load((0..4).map(|i| Some(i * 4096)).collect()),
            TraceInstr::compute(7),
            TraceInstr::load((0..4).map(|i| Some(i * 256)).collect()),
        ]);
        let k = TraceKernel::new(vec![trace; 9], 4);
        let sim = GpuSimulator::new(cfg);
        for seed in [0, 5] {
            assert_cores_agree(
                &sim,
                &k,
                LaunchPolicy::Uniform(CoalescingPolicy::Baseline),
                seed,
                &FaultPlan::none(),
            );
        }
    }
}
