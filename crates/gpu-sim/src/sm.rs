use crate::{SchedulerPolicy, TraceInstr, WarpTrace};
use rcoal_core::SubwarpAssignment;

/// Execution state of one warp resident on an SM. Borrows its trace
/// from the launched [`crate::Kernel`], so warp state is a few machine
/// words and launching copies no instruction streams.
#[derive(Debug, Clone)]
pub(crate) struct WarpCtx<'k> {
    pub trace: &'k WarpTrace,
    pub pc: usize,
    /// Core cycle until which the warp is occupied by compute.
    pub busy_until: u64,
    /// Memory replies still outstanding for the current load.
    pub outstanding: u32,
    /// Subwarp assignment for ordinary loads.
    pub assignment: SubwarpAssignment,
    /// Subwarp assignment for loads tagged vulnerable by a selective
    /// launch policy (identical to `assignment` for uniform launches).
    pub vulnerable_assignment: SubwarpAssignment,
}

impl<'k> WarpCtx<'k> {
    pub fn new(
        trace: &'k WarpTrace,
        assignment: SubwarpAssignment,
        vulnerable_assignment: SubwarpAssignment,
    ) -> Self {
        WarpCtx {
            trace,
            pc: 0,
            busy_until: 0,
            outstanding: 0,
            assignment,
            vulnerable_assignment,
        }
    }

    pub fn done(&self, now: u64) -> bool {
        self.pc >= self.trace.len() && self.outstanding == 0 && self.busy_until <= now
    }

    pub fn ready(&self, now: u64) -> bool {
        self.pc < self.trace.len() && self.outstanding == 0 && self.busy_until <= now
    }

    /// The instruction at the warp's pc. The returned reference borrows
    /// the *kernel's* trace (lifetime `'k`), not the warp context, so
    /// the issue stage can hold it while mutating warp state.
    pub fn current_instr(&self) -> Option<&'k TraceInstr> {
        self.trace.instrs().get(self.pc)
    }
}

/// One streaming multiprocessor: a set of resident warps and a
/// configurable warp scheduler with `warp_schedulers` issue slots per
/// cycle.
#[derive(Debug, Clone)]
pub(crate) struct Sm<'k> {
    pub warps: Vec<WarpCtx<'k>>,
    pub schedulers: usize,
    policy: SchedulerPolicy,
    /// GTO: warp granted an issue slot most recently.
    greedy: Option<usize>,
    /// LRR: scan start for the next cycle.
    rr_next: usize,
}

impl<'k> Sm<'k> {
    #[cfg(test)]
    pub fn new(schedulers: usize) -> Self {
        Self::with_policy(schedulers, SchedulerPolicy::Gto)
    }

    pub fn with_policy(schedulers: usize, policy: SchedulerPolicy) -> Self {
        Sm {
            warps: Vec::new(),
            schedulers: schedulers.max(1),
            policy,
            greedy: None,
            rr_next: 0,
        }
    }

    /// Fills `picked` with up to `schedulers` distinct warps ready to
    /// issue at `now`, ordered by the scheduling policy. Updates the
    /// scheduler state (greedy pointer / round-robin cursor).
    ///
    /// Takes the output buffer from the caller so the per-cycle issue
    /// stage allocates nothing — the simulator reuses one scratch
    /// vector across every SM and cycle of a run.
    pub fn select_ready_into(&mut self, now: u64, picked: &mut Vec<usize>) {
        picked.clear();
        if self.warps.is_empty() {
            return;
        }
        let n = self.warps.len();
        match self.policy {
            SchedulerPolicy::Gto => {
                // Greedy slot: stick with the last-issued warp if ready.
                if let Some(g) = self.greedy {
                    if self.warps[g].ready(now) {
                        picked.push(g);
                    }
                }
                for i in 0..n {
                    if picked.len() >= self.schedulers {
                        break;
                    }
                    if !picked.contains(&i) && self.warps[i].ready(now) {
                        picked.push(i);
                    }
                }
                self.greedy = picked.first().copied().or(self.greedy);
            }
            SchedulerPolicy::Lrr => {
                for k in 0..n {
                    if picked.len() >= self.schedulers {
                        break;
                    }
                    let i = (self.rr_next + k) % n;
                    if self.warps[i].ready(now) {
                        picked.push(i);
                    }
                }
                if let Some(&last) = picked.last() {
                    self.rr_next = (last + 1) % n;
                }
            }
        }
    }

    /// Allocating wrapper around [`Sm::select_ready_into`], kept for
    /// tests.
    #[cfg(test)]
    pub fn select_ready(&mut self, now: u64) -> Vec<usize> {
        let mut picked = Vec::with_capacity(self.schedulers);
        self.select_ready_into(now, &mut picked);
        picked
    }

    pub fn all_done(&self, now: u64) -> bool {
        self.warps.iter().all(|w| w.done(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceInstr;

    fn trace(n_instr: usize) -> WarpTrace {
        (0..n_instr).map(|_| TraceInstr::compute(1)).collect()
    }

    fn warp(t: &WarpTrace) -> WarpCtx<'_> {
        let a = SubwarpAssignment::single(4).unwrap();
        WarpCtx::new(t, a.clone(), a)
    }

    #[test]
    fn empty_trace_is_done_immediately() {
        let t = trace(0);
        let w = warp(&t);
        assert!(w.done(0));
        assert!(!w.ready(0));
    }

    #[test]
    fn warp_is_not_done_while_compute_is_in_flight() {
        let t = trace(0);
        let mut w = warp(&t);
        w.busy_until = 10;
        assert!(!w.done(5));
        assert!(w.done(10));
    }

    #[test]
    fn warp_readiness_respects_busy_and_outstanding() {
        let t = trace(2);
        let mut w = warp(&t);
        assert!(w.ready(0));
        w.busy_until = 10;
        assert!(!w.ready(5));
        assert!(w.ready(10));
        w.busy_until = 0;
        w.outstanding = 3;
        assert!(!w.ready(0));
    }

    #[test]
    fn gto_scheduler_picks_oldest_first_then_sticks() {
        let t = trace(1);
        let mut sm = Sm::new(2);
        sm.warps = vec![warp(&t), warp(&t), warp(&t)];
        assert_eq!(sm.select_ready(0), vec![0, 1]);
        // Greedy: warp 0 keeps its slot while ready.
        assert_eq!(sm.select_ready(1), vec![0, 1]);
        sm.warps[0].busy_until = 100;
        assert_eq!(sm.select_ready(2), vec![1, 2]);
        // New greedy warp is 1.
        assert_eq!(sm.select_ready(3), vec![1, 2]);
    }

    #[test]
    fn lrr_scheduler_rotates_across_warps() {
        let t = trace(5);
        let mut sm = Sm::with_policy(1, SchedulerPolicy::Lrr);
        sm.warps = vec![warp(&t), warp(&t), warp(&t)];
        assert_eq!(sm.select_ready(0), vec![0]);
        assert_eq!(sm.select_ready(1), vec![1]);
        assert_eq!(sm.select_ready(2), vec![2]);
        assert_eq!(sm.select_ready(3), vec![0], "wraps around");
    }

    #[test]
    fn lrr_skips_unready_warps() {
        let t = trace(5);
        let mut sm = Sm::with_policy(1, SchedulerPolicy::Lrr);
        sm.warps = vec![warp(&t), warp(&t), warp(&t)];
        sm.warps[1].outstanding = 1;
        assert_eq!(sm.select_ready(0), vec![0]);
        assert_eq!(sm.select_ready(1), vec![2]);
    }

    #[test]
    fn all_done_tracks_warps() {
        let t0 = trace(0);
        let t1 = trace(1);
        let mut sm = Sm::new(2);
        sm.warps = vec![warp(&t0), warp(&t1)];
        assert!(!sm.all_done(0));
        sm.warps[1].pc = 1;
        assert!(sm.all_done(0));
    }

    #[test]
    fn current_instr_borrows_the_kernel_trace() {
        let t = trace(2);
        let mut w = warp(&t);
        let instr = w.current_instr().unwrap();
        // Mutating the warp does not invalidate the instruction ref.
        w.pc += 1;
        w.busy_until = 5;
        assert_eq!(*instr, TraceInstr::compute(1));
        assert_eq!(w.current_instr(), Some(&TraceInstr::compute(1)));
        w.pc += 1;
        assert_eq!(w.current_instr(), None);
    }
}
