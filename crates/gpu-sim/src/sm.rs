use crate::{SchedulerPolicy, TraceInstr, WarpTrace};
use rcoal_core::SubwarpAssignment;

/// One streaming multiprocessor: the resident warps and a configurable
/// warp scheduler with `schedulers` issue slots per cycle.
///
/// Warp state is kept as a structure of arrays: the three fields every
/// scheduling decision scans (`pc`, `busy_until`, `outstanding`) live in
/// their own dense vectors, so a "who is ready at cycle T" pass touches
/// three contiguous arrays instead of striding over per-warp structs
/// that also carry trace pointers and subwarp assignments. The cold
/// per-warp data (borrowed traces, assignments) sits in parallel
/// vectors indexed by the same warp index.
///
/// Traces are borrowed from the launched [`crate::Kernel`] (lifetime
/// `'k`), so launching copies no instruction streams.
#[derive(Debug, Clone)]
pub(crate) struct Sm<'k> {
    /// Instruction trace of each warp (borrowed from the kernel).
    traces: Vec<&'k WarpTrace>,
    /// Cached `traces[i].len()`, so readiness scans stay in SoA arrays.
    trace_len: Vec<usize>,
    /// Next instruction index of each warp.
    pub pc: Vec<usize>,
    /// Core cycle until which each warp is occupied by compute.
    pub busy_until: Vec<u64>,
    /// Memory replies still outstanding for each warp's current load.
    pub outstanding: Vec<u32>,
    /// Subwarp assignment for ordinary loads.
    assignments: Vec<SubwarpAssignment>,
    /// Subwarp assignment for loads tagged vulnerable by a selective
    /// launch policy (identical to the ordinary one for uniform
    /// launches).
    vulnerable_assignments: Vec<SubwarpAssignment>,
    pub schedulers: usize,
    policy: SchedulerPolicy,
    /// GTO: warp granted an issue slot most recently.
    greedy: Option<usize>,
    /// LRR: scan start for the next cycle.
    rr_next: usize,
}

impl<'k> Sm<'k> {
    #[cfg(test)]
    pub fn new(schedulers: usize) -> Self {
        Self::with_policy(schedulers, SchedulerPolicy::Gto)
    }

    pub fn with_policy(schedulers: usize, policy: SchedulerPolicy) -> Self {
        Sm {
            traces: Vec::new(),
            trace_len: Vec::new(),
            pc: Vec::new(),
            busy_until: Vec::new(),
            outstanding: Vec::new(),
            assignments: Vec::new(),
            vulnerable_assignments: Vec::new(),
            schedulers: schedulers.max(1),
            policy,
            greedy: None,
            rr_next: 0,
        }
    }

    /// Adds a resident warp with fresh execution state.
    pub fn push_warp(
        &mut self,
        trace: &'k WarpTrace,
        assignment: SubwarpAssignment,
        vulnerable_assignment: SubwarpAssignment,
    ) {
        self.traces.push(trace);
        self.trace_len.push(trace.len());
        self.pc.push(0);
        self.busy_until.push(0);
        self.outstanding.push(0);
        self.assignments.push(assignment);
        self.vulnerable_assignments.push(vulnerable_assignment);
    }

    /// Number of warps resident on this SM.
    pub fn num_warps(&self) -> usize {
        self.pc.len()
    }

    /// Subwarp assignment of warp `i` for ordinary loads.
    pub fn assignment(&self, i: usize) -> &SubwarpAssignment {
        &self.assignments[i]
    }

    /// Subwarp assignment of warp `i` for vulnerable-tagged loads.
    pub fn vulnerable_assignment(&self, i: usize) -> &SubwarpAssignment {
        &self.vulnerable_assignments[i]
    }

    /// Whether warp `i` has retired its trace and drained all replies.
    pub fn done(&self, i: usize, now: u64) -> bool {
        self.pc[i] >= self.trace_len[i] && self.outstanding[i] == 0 && self.busy_until[i] <= now
    }

    /// Whether warp `i` has consumed its whole trace (it may still be
    /// inside its compute tail or waiting on memory replies).
    pub fn retired(&self, i: usize) -> bool {
        self.pc[i] >= self.trace_len[i]
    }

    /// Whether warp `i` can issue an instruction at `now`.
    pub fn ready(&self, i: usize, now: u64) -> bool {
        self.pc[i] < self.trace_len[i] && self.outstanding[i] == 0 && self.busy_until[i] <= now
    }

    /// The instruction at warp `i`'s pc. The returned reference borrows
    /// the *kernel's* trace (lifetime `'k`), not the SM, so the issue
    /// stage can hold it while mutating warp state.
    pub fn current_instr(&self, i: usize) -> Option<&'k TraceInstr> {
        self.traces[i].instrs().get(self.pc[i])
    }

    /// Fills `picked` with up to `schedulers` distinct warps ready to
    /// issue at `now`, ordered by the scheduling policy. Updates the
    /// scheduler state (greedy pointer / round-robin cursor).
    ///
    /// Takes the output buffer from the caller so the per-cycle issue
    /// stage allocates nothing — the simulator reuses one scratch
    /// vector across every SM and cycle of a run.
    pub fn select_ready_into(&mut self, now: u64, picked: &mut Vec<usize>) {
        picked.clear();
        if self.pc.is_empty() {
            return;
        }
        let n = self.pc.len();
        match self.policy {
            SchedulerPolicy::Gto => {
                // Greedy slot: stick with the last-issued warp if ready.
                if let Some(g) = self.greedy {
                    if self.ready(g, now) {
                        picked.push(g);
                    }
                }
                for i in 0..n {
                    if picked.len() >= self.schedulers {
                        break;
                    }
                    if !picked.contains(&i) && self.ready(i, now) {
                        picked.push(i);
                    }
                }
                self.greedy = picked.first().copied().or(self.greedy);
            }
            SchedulerPolicy::Lrr => {
                for k in 0..n {
                    if picked.len() >= self.schedulers {
                        break;
                    }
                    let i = (self.rr_next + k) % n;
                    if self.ready(i, now) {
                        picked.push(i);
                    }
                }
                if let Some(&last) = picked.last() {
                    self.rr_next = (last + 1) % n;
                }
            }
        }
    }

    /// Allocating wrapper around [`Sm::select_ready_into`], kept for
    /// tests.
    #[cfg(test)]
    pub fn select_ready(&mut self, now: u64) -> Vec<usize> {
        let mut picked = Vec::with_capacity(self.schedulers);
        self.select_ready_into(now, &mut picked);
        picked
    }

    pub fn all_done(&self, now: u64) -> bool {
        (0..self.pc.len()).all(|i| self.done(i, now))
    }

    /// The next core cycle (> `now`) at which a warp on this SM can
    /// change observable state without an external reply, or `u64::MAX`
    /// if no such cycle exists.
    ///
    /// Per warp: a warp waiting on replies advertises nothing (the
    /// reply pipeline owns its wake-up; loads only issue from ready
    /// warps, so `outstanding > 0` implies `busy_until <= now`). A warp
    /// with instructions left wakes at `busy_until` — or `now + 1` if
    /// already ready but unpicked this cycle (scheduler slot limit). A
    /// retired warp still inside its compute tail becomes *done* at
    /// `busy_until`, which the finish-cycle bookkeeping must observe.
    pub fn next_warp_event(&self, now: u64) -> u64 {
        let mut next = u64::MAX;
        for i in 0..self.pc.len() {
            if self.outstanding[i] > 0 {
                continue;
            }
            let candidate = if self.pc[i] < self.trace_len[i] {
                self.busy_until[i].max(now + 1)
            } else if self.busy_until[i] > now {
                self.busy_until[i]
            } else {
                continue;
            };
            next = next.min(candidate);
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceInstr;

    fn trace(n_instr: usize) -> WarpTrace {
        (0..n_instr).map(|_| TraceInstr::compute(1)).collect()
    }

    fn sm_with_warps<'k>(schedulers: usize, t: &'k WarpTrace, n: usize) -> Sm<'k> {
        let mut sm = Sm::new(schedulers);
        let a = SubwarpAssignment::single(4).unwrap();
        for _ in 0..n {
            sm.push_warp(t, a.clone(), a.clone());
        }
        sm
    }

    #[test]
    fn empty_trace_is_done_immediately() {
        let t = trace(0);
        let sm = sm_with_warps(1, &t, 1);
        assert!(sm.done(0, 0));
        assert!(!sm.ready(0, 0));
    }

    #[test]
    fn warp_is_not_done_while_compute_is_in_flight() {
        let t = trace(0);
        let mut sm = sm_with_warps(1, &t, 1);
        sm.busy_until[0] = 10;
        assert!(!sm.done(0, 5));
        assert!(sm.done(0, 10));
    }

    #[test]
    fn warp_readiness_respects_busy_and_outstanding() {
        let t = trace(2);
        let mut sm = sm_with_warps(1, &t, 1);
        assert!(sm.ready(0, 0));
        sm.busy_until[0] = 10;
        assert!(!sm.ready(0, 5));
        assert!(sm.ready(0, 10));
        sm.busy_until[0] = 0;
        sm.outstanding[0] = 3;
        assert!(!sm.ready(0, 0));
    }

    #[test]
    fn gto_scheduler_picks_oldest_first_then_sticks() {
        let t = trace(1);
        let mut sm = sm_with_warps(2, &t, 3);
        assert_eq!(sm.select_ready(0), vec![0, 1]);
        // Greedy: warp 0 keeps its slot while ready.
        assert_eq!(sm.select_ready(1), vec![0, 1]);
        sm.busy_until[0] = 100;
        assert_eq!(sm.select_ready(2), vec![1, 2]);
        // New greedy warp is 1.
        assert_eq!(sm.select_ready(3), vec![1, 2]);
    }

    #[test]
    fn lrr_scheduler_rotates_across_warps() {
        let t = trace(5);
        let a = SubwarpAssignment::single(4).unwrap();
        let mut sm = Sm::with_policy(1, SchedulerPolicy::Lrr);
        for _ in 0..3 {
            sm.push_warp(&t, a.clone(), a.clone());
        }
        assert_eq!(sm.select_ready(0), vec![0]);
        assert_eq!(sm.select_ready(1), vec![1]);
        assert_eq!(sm.select_ready(2), vec![2]);
        assert_eq!(sm.select_ready(3), vec![0], "wraps around");
    }

    #[test]
    fn lrr_skips_unready_warps() {
        let t = trace(5);
        let a = SubwarpAssignment::single(4).unwrap();
        let mut sm = Sm::with_policy(1, SchedulerPolicy::Lrr);
        for _ in 0..3 {
            sm.push_warp(&t, a.clone(), a.clone());
        }
        sm.outstanding[1] = 1;
        assert_eq!(sm.select_ready(0), vec![0]);
        assert_eq!(sm.select_ready(1), vec![2]);
    }

    #[test]
    fn all_done_tracks_warps() {
        let t0 = trace(0);
        let t1 = trace(1);
        let a = SubwarpAssignment::single(4).unwrap();
        let mut sm = Sm::new(2);
        sm.push_warp(&t0, a.clone(), a.clone());
        sm.push_warp(&t1, a.clone(), a);
        assert!(!sm.all_done(0));
        sm.pc[1] = 1;
        assert!(sm.all_done(0));
    }

    #[test]
    fn current_instr_borrows_the_kernel_trace() {
        let t = trace(2);
        let mut sm = sm_with_warps(1, &t, 1);
        let instr = sm.current_instr(0).unwrap();
        // Mutating the warp does not invalidate the instruction ref.
        sm.pc[0] += 1;
        sm.busy_until[0] = 5;
        assert_eq!(*instr, TraceInstr::compute(1));
        assert_eq!(sm.current_instr(0), Some(&TraceInstr::compute(1)));
        sm.pc[0] += 1;
        assert_eq!(sm.current_instr(0), None);
    }

    #[test]
    fn next_warp_event_reports_wakeups_and_ready_warps() {
        let t = trace(2);
        let mut sm = sm_with_warps(2, &t, 3);
        // A ready-but-unpicked warp can issue next cycle.
        assert_eq!(sm.next_warp_event(0), 1);
        // All warps busy: the earliest busy_until wins.
        sm.busy_until = vec![40, 25, 90];
        assert_eq!(sm.next_warp_event(0), 25);
        // Warps waiting on memory advertise nothing.
        sm.busy_until = vec![0, 0, 0];
        sm.outstanding = vec![2, 1, 4];
        assert_eq!(sm.next_warp_event(0), u64::MAX);
        // A retired warp inside its compute tail still reports its
        // finish cycle; fully-done warps are silent.
        sm.outstanding = vec![0, 0, 0];
        sm.pc = vec![2, 2, 2];
        sm.busy_until = vec![0, 77, 0];
        assert_eq!(sm.next_warp_event(10), 77);
        sm.busy_until = vec![0, 0, 0];
        assert_eq!(sm.next_warp_event(10), u64::MAX);
    }
}
