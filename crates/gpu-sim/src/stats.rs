/// Aggregate results of one simulated kernel launch.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SimStats {
    /// Core cycles from launch to the last warp's completion.
    pub total_cycles: u64,
    /// Coalesced memory accesses issued to the memory system.
    pub total_accesses: u64,
    /// Per-lane requests before coalescing (the data-movement the
    /// coalescer saved is `total_requests - total_accesses`).
    pub total_requests: u64,
    /// Coalesced accesses grouped by the issuing load's `tag` (the AES
    /// kernel tags each load with its round number).
    pub accesses_by_tag: Vec<u64>,
    /// `round_complete_cycle[r]` is the core cycle at which the *last*
    /// warp passed `RoundMark { round: r }`; zero if never passed.
    pub round_complete_cycle: Vec<u64>,
    /// Number of warps executed.
    pub num_warps: usize,
    /// Fraction of DRAM reads that hit an open row, averaged over
    /// controllers that serviced traffic.
    pub row_hit_rate: f64,
    /// Sum over all memory requests of (reply cycle − issue cycle).
    pub mem_latency_sum: u64,
    /// Coalesced accesses that merged into an in-flight request via the
    /// MSHRs instead of travelling to memory (0 when MSHRs are disabled).
    pub mshr_merged: u64,
    /// Coalesced accesses served by the L1 cache (0 when the L1 is
    /// disabled).
    pub l1_hits: u64,
    /// Core cycle at which each warp finished, indexed by global warp id.
    pub warp_finish_cycle: Vec<u64>,
    /// DRAM replies dropped by fault injection (retransmitted or lost).
    pub dropped_replies: u64,
    /// Dropped replies that were retransmitted to their controller.
    pub fault_retries: u64,
    /// Dropped replies whose retry budget was exhausted; each one
    /// permanently wedges its warp.
    pub replies_lost: u64,
}

impl SimStats {
    /// Coalesced accesses carrying tag `tag`.
    pub fn accesses_for_tag(&self, tag: u16) -> u64 {
        self.accesses_by_tag
            .get(usize::from(tag))
            .copied()
            .unwrap_or(0)
    }

    /// Core cycles spent after phase `round` completed — with the AES
    /// kernel's convention, `cycles_after_round(9)` is the last-round
    /// execution time the attacker correlates against.
    ///
    /// **Footgun**: a round the kernel never passed silently counts from
    /// launch (its mark is the zero sentinel), returning `total_cycles`
    /// as if the "round" took the whole run. Use
    /// [`SimStats::try_cycles_after_round`] when the round's existence
    /// is not already guaranteed.
    pub fn cycles_after_round(&self, round: u16) -> u64 {
        let mark = self
            .round_complete_cycle
            .get(usize::from(round))
            .copied()
            .unwrap_or(0);
        self.total_cycles.saturating_sub(mark)
    }

    /// Like [`SimStats::cycles_after_round`], but `None` when no warp
    /// ever passed `RoundMark { round }` — instead of silently counting
    /// from launch.
    pub fn try_cycles_after_round(&self, round: u16) -> Option<u64> {
        let mark = self.round_complete_cycle.get(usize::from(round)).copied()?;
        if mark == 0 {
            return None; // zero is the "never passed" sentinel
        }
        Some(self.total_cycles.saturating_sub(mark))
    }

    /// Average round-trip latency of a coalesced memory access in core
    /// cycles (interconnect + queueing + DRAM service).
    pub fn avg_mem_latency(&self) -> f64 {
        if self.total_accesses == 0 {
            0.0
        } else {
            self.mem_latency_sum as f64 / self.total_accesses as f64
        }
    }

    /// Ratio of pre-coalescing requests to issued accesses; 1.0 means
    /// coalescing saved nothing.
    pub fn coalescing_factor(&self) -> f64 {
        if self.total_accesses == 0 {
            0.0
        } else {
            self.total_requests as f64 / self.total_accesses as f64
        }
    }

    pub(crate) fn record_tagged_accesses(&mut self, tag: u16, n: u64) {
        let idx = usize::from(tag);
        if self.accesses_by_tag.len() <= idx {
            self.accesses_by_tag.resize(idx + 1, 0);
        }
        self.accesses_by_tag[idx] += n;
        self.total_accesses += n;
    }

    pub(crate) fn record_round_mark(&mut self, round: u16, cycle: u64) {
        let idx = usize::from(round);
        if self.round_complete_cycle.len() <= idx {
            self.round_complete_cycle.resize(idx + 1, 0);
        }
        self.round_complete_cycle[idx] = self.round_complete_cycle[idx].max(cycle);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tagged_accesses_accumulate() {
        let mut s = SimStats::default();
        s.record_tagged_accesses(10, 5);
        s.record_tagged_accesses(10, 2);
        s.record_tagged_accesses(1, 3);
        assert_eq!(s.accesses_for_tag(10), 7);
        assert_eq!(s.accesses_for_tag(1), 3);
        assert_eq!(s.accesses_for_tag(99), 0);
        assert_eq!(s.total_accesses, 10);
    }

    #[test]
    fn round_marks_keep_latest_cycle() {
        let mut s = SimStats::default();
        s.record_round_mark(9, 100);
        s.record_round_mark(9, 80); // an earlier warp finished first
        s.total_cycles = 150;
        assert_eq!(s.cycles_after_round(9), 50);
        assert_eq!(
            s.cycles_after_round(3),
            150,
            "unpassed round counts from launch"
        );
    }

    #[test]
    fn try_cycles_after_round_rejects_unpassed_rounds() {
        let mut s = SimStats::default();
        s.record_round_mark(9, 100);
        s.total_cycles = 150;
        assert_eq!(s.try_cycles_after_round(9), Some(50));
        // Round 3 was allocated by the resize but never passed (zero
        // sentinel); round 42 is out of range entirely.
        assert_eq!(s.try_cycles_after_round(3), None);
        assert_eq!(s.try_cycles_after_round(42), None);
    }

    #[test]
    fn avg_mem_latency() {
        let s = SimStats {
            total_accesses: 4,
            mem_latency_sum: 200,
            ..SimStats::default()
        };
        assert!((s.avg_mem_latency() - 50.0).abs() < 1e-12);
        assert_eq!(SimStats::default().avg_mem_latency(), 0.0);
    }

    #[test]
    fn coalescing_factor() {
        let s = SimStats {
            total_requests: 320,
            total_accesses: 80,
            ..SimStats::default()
        };
        assert!((s.coalescing_factor() - 4.0).abs() < 1e-12);
        assert_eq!(SimStats::default().coalescing_factor(), 0.0);
    }
}
