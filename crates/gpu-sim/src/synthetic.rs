//! Synthetic memory-access kernels with controlled locality, for
//! evaluating what randomized coalescing costs workloads *other* than
//! AES: perfectly-coalescable streams, strided scans, random gathers and
//! single-block broadcasts.

use crate::{Kernel, TraceInstr, WarpTrace};
use rcoal_rng::StdRng;
use rcoal_rng::{Rng, SeedableRng};

/// Per-lane address pattern of a synthetic kernel's loads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessPattern {
    /// Consecutive 4-byte elements: lane `i` of load `k` reads
    /// `base + (k·W + i)·4`. Coalesces to one access per 64-byte block.
    Streaming,
    /// Fixed stride in bytes between lanes: lane `i` reads
    /// `base + k·row + i·stride`. `stride ≥ 64` defeats coalescing even
    /// at baseline.
    Strided {
        /// Byte distance between consecutive lanes.
        stride: u64,
    },
    /// Uniformly random addresses within `range` bytes (gather); the
    /// locality profile of hash tables and the AES T-tables.
    Random {
        /// Size of the addressed region in bytes.
        range: u64,
    },
    /// Every lane reads the same block (broadcast); one access at
    /// baseline, one per subwarp under RCoal.
    Broadcast,
}

impl std::fmt::Display for AccessPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccessPattern::Streaming => f.write_str("streaming"),
            AccessPattern::Strided { stride } => write!(f, "strided({stride})"),
            AccessPattern::Random { range } => write!(f, "random({range})"),
            AccessPattern::Broadcast => f.write_str("broadcast"),
        }
    }
}

/// A synthetic [`Kernel`]: `num_warps` warps, each issuing
/// `loads_per_warp` warp-wide loads following [`AccessPattern`], with a
/// little compute between loads.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticKernel {
    pattern: AccessPattern,
    num_warps: usize,
    loads_per_warp: usize,
    warp_size: usize,
    compute_per_load: u32,
    seed: u64,
    /// Traces are generated eagerly at construction: [`Kernel::trace`]
    /// hands out borrows, so the simulator never copies a trace.
    traces: Vec<WarpTrace>,
}

impl SyntheticKernel {
    /// Creates a synthetic kernel; the `seed` fixes the `Random` pattern's
    /// addresses.
    pub fn new(
        pattern: AccessPattern,
        num_warps: usize,
        loads_per_warp: usize,
        warp_size: usize,
    ) -> Self {
        let mut kernel = SyntheticKernel {
            pattern,
            num_warps,
            loads_per_warp,
            warp_size: warp_size.max(1),
            compute_per_load: 4,
            seed: 0x1abe1,
            traces: Vec::new(),
        };
        kernel.rebuild_traces();
        kernel
    }

    /// Overrides the address-randomness seed (regenerating the traces).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.rebuild_traces();
        self
    }

    /// The configured pattern.
    pub fn pattern(&self) -> AccessPattern {
        self.pattern
    }

    fn rebuild_traces(&mut self) {
        self.traces = (0..self.num_warps).map(|w| self.build_trace(w)).collect();
    }

    fn build_trace(&self, warp_id: usize) -> WarpTrace {
        let w = self.warp_size as u64;
        let base = warp_id as u64 * 0x10_0000;
        let mut rng = StdRng::seed_from_u64(self.seed ^ (warp_id as u64).wrapping_mul(0x9e37));
        let mut trace = WarpTrace::default();
        for k in 0..self.loads_per_warp as u64 {
            let addrs: Vec<Option<u64>> = (0..w)
                .map(|i| {
                    Some(match self.pattern {
                        AccessPattern::Streaming => base + (k * w + i) * 4,
                        AccessPattern::Strided { stride } => base + k * 4096 + i * stride,
                        AccessPattern::Random { range } => base + rng.gen_range(0..range.max(1)),
                        AccessPattern::Broadcast => base + k * 64,
                    })
                })
                .collect();
            trace.push(TraceInstr::load(addrs));
            trace.push(TraceInstr::compute(self.compute_per_load));
        }
        trace
    }
}

impl Kernel for SyntheticKernel {
    fn num_warps(&self) -> usize {
        self.num_warps
    }

    fn warp_width(&self, _warp_id: usize) -> usize {
        self.warp_size
    }

    fn trace(&self, warp_id: usize) -> &WarpTrace {
        &self.traces[warp_id]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GpuConfig, GpuSimulator};
    use rcoal_core::CoalescingPolicy;

    fn run(pattern: AccessPattern, policy: CoalescingPolicy) -> crate::SimStats {
        let kernel = SyntheticKernel::new(pattern, 2, 8, 32);
        GpuSimulator::new(GpuConfig::paper())
            .run(&kernel, policy, 3)
            .expect("simulation")
    }

    #[test]
    fn streaming_coalesces_perfectly_at_baseline() {
        let stats = run(AccessPattern::Streaming, CoalescingPolicy::Baseline);
        // 32 lanes x 4 B = 128 B = two 64-byte blocks per load.
        assert_eq!(stats.total_accesses, 2 * 8 * 2);
        assert_eq!(stats.total_requests, 2 * 8 * 32);
    }

    #[test]
    fn broadcast_is_one_access_per_subwarp() {
        let base = run(AccessPattern::Broadcast, CoalescingPolicy::Baseline);
        assert_eq!(base.total_accesses, 2 * 8);
        let fss8 = run(
            AccessPattern::Broadcast,
            CoalescingPolicy::fss(8).expect("valid"),
        );
        assert_eq!(fss8.total_accesses, 2 * 8 * 8, "one per subwarp");
    }

    #[test]
    fn wide_strides_defeat_coalescing_everywhere() {
        let base = run(
            AccessPattern::Strided { stride: 64 },
            CoalescingPolicy::Baseline,
        );
        let off = run(
            AccessPattern::Strided { stride: 64 },
            CoalescingPolicy::Disabled,
        );
        assert_eq!(base.total_accesses, off.total_accesses);
        // RCoal therefore costs such kernels nothing.
        let rcoal = run(
            AccessPattern::Strided { stride: 64 },
            CoalescingPolicy::rss_rts(8).expect("valid"),
        );
        assert_eq!(rcoal.total_accesses, base.total_accesses);
    }

    #[test]
    fn random_pattern_is_seed_deterministic() {
        let k1 = SyntheticKernel::new(AccessPattern::Random { range: 4096 }, 1, 4, 32);
        let k2 = SyntheticKernel::new(AccessPattern::Random { range: 4096 }, 1, 4, 32);
        assert_eq!(k1.trace(0), k2.trace(0));
        let k3 = k1.clone().with_seed(99);
        assert_ne!(k3.trace(0), k2.trace(0));
        assert_eq!(k3.pattern(), AccessPattern::Random { range: 4096 });
    }

    #[test]
    fn subwarping_cost_depends_on_locality() {
        // The relative cost of FSS(8) vs baseline is large for broadcast,
        // moderate for random gathers, and ~0 for wide strides.
        let ratio = |p: AccessPattern| {
            run(p, CoalescingPolicy::fss(8).expect("valid")).total_accesses as f64
                / run(p, CoalescingPolicy::Baseline).total_accesses as f64
        };
        let broadcast = ratio(AccessPattern::Broadcast);
        let random = ratio(AccessPattern::Random { range: 1024 });
        let strided = ratio(AccessPattern::Strided { stride: 128 });
        assert!(broadcast > random, "{broadcast} vs {random}");
        assert!(random > strided, "{random} vs {strided}");
        assert!((strided - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pattern_display() {
        assert_eq!(AccessPattern::Streaming.to_string(), "streaming");
        assert_eq!(
            AccessPattern::Strided { stride: 64 }.to_string(),
            "strided(64)"
        );
        assert_eq!(
            AccessPattern::Random { range: 1024 }.to_string(),
            "random(1024)"
        );
        assert_eq!(AccessPattern::Broadcast.to_string(), "broadcast");
    }
}
