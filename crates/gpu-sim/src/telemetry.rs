//! Per-launch simulator telemetry: a structured event stream plus a
//! leakage-channel profile.
//!
//! [`SimTelemetry`] is handed to [`crate::GpuSimulator::run_instrumented`]
//! and filled in as the launch executes. Everything in it lives in the
//! **cycle domain**: timestamps are core cycles and every histogram is
//! fed in deterministic simulation order, so for a fixed seed the whole
//! struct is bit-identical no matter how many worker threads drive the
//! simulator. Wall-clock measurements belong to the experiment/CLI edges
//! (see `rcoal_telemetry::Span`), never in here.
//!
//! The disabled form ([`SimTelemetry::off`]) is near-zero-cost: every
//! hook is behind a single branch on [`SimTelemetry::is_enabled`] and the
//! event ring has capacity zero, so the simulator's hot loop does no
//! extra allocation or bookkeeping.

use rcoal_core::CoalesceResult;
use rcoal_telemetry::{Event, EventRing, Hist64, Severity};

/// Default event-ring capacity for an enabled [`SimTelemetry`].
pub const DEFAULT_EVENT_CAPACITY: usize = 4096;

/// Per-memory-controller slice of the leakage profile.
///
/// Row locality is one of the three timing-signal sources the RCoal
/// paper names (§III): randomized coalescing perturbs which rows are
/// touched together, and these counters expose how much.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct McProfile {
    /// Serviced reads that hit an already-open row.
    pub row_hits: u64,
    /// Serviced reads that paid a precharge/activate.
    pub row_misses: u64,
    /// Total reads serviced by this controller.
    pub serviced: u64,
    /// Controller queue depth sampled at each request arrival.
    pub queue_depth: Hist64,
}

impl McProfile {
    /// Fraction of serviced reads that hit an open row.
    pub fn row_hit_rate(&self) -> f64 {
        if self.serviced == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.serviced as f64
        }
    }

    /// Accumulates `other` into `self` (used when aggregating launches).
    pub fn merge(&mut self, other: &McProfile) {
        self.row_hits += other.row_hits;
        self.row_misses += other.row_misses;
        self.serviced += other.serviced;
        self.queue_depth.merge(&other.queue_depth);
    }
}

/// The leakage-channel profile of one (or many merged) kernel launches.
///
/// Each field maps onto a component of the timing channel: coalescer
/// access counts (the primary signal), DRAM row locality and queueing
/// (secondary), interconnect serialization (secondary), and SM issue
/// behaviour (how the signal reaches the clock).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimProfile {
    /// Coalesced accesses generated per executed load instruction.
    pub accesses_per_load: Hist64,
    /// Coalesced accesses generated per subwarp per load (including
    /// subwarps that produced zero accesses) — the distribution RCoal's
    /// randomization reshapes.
    pub accesses_per_subwarp: Hist64,
    /// Active lanes served by each coalesced access.
    pub lanes_per_access: Hist64,
    /// Round-trip latency (core cycles) of each delivered memory reply.
    pub mem_latency: Hist64,
    /// Core cycles in which an SM had unfinished warps but issued
    /// nothing, summed over SMs.
    pub issue_stall_cycles: u64,
    /// Request-network packets deferred by ejection-port contention.
    pub icnt_req_deferred: u64,
    /// Reply-network packets deferred by ejection-port contention.
    pub icnt_reply_deferred: u64,
    /// Spread (max − min) of per-warp finish cycles.
    pub warp_finish_spread: u64,
    /// Per-memory-controller row locality and queue depth.
    pub mcs: Vec<McProfile>,
}

impl SimProfile {
    /// Sizes the per-controller slice (idempotent; never shrinks).
    pub fn ensure_mcs(&mut self, n: usize) {
        if self.mcs.len() < n {
            self.mcs.resize(n, McProfile::default());
        }
    }

    /// Accumulates `other` into `self`.
    ///
    /// Merging launches in a fixed order (e.g. launch index) keeps the
    /// aggregate deterministic across worker-thread counts.
    pub fn merge(&mut self, other: &SimProfile) {
        self.accesses_per_load.merge(&other.accesses_per_load);
        self.accesses_per_subwarp.merge(&other.accesses_per_subwarp);
        self.lanes_per_access.merge(&other.lanes_per_access);
        self.mem_latency.merge(&other.mem_latency);
        self.issue_stall_cycles += other.issue_stall_cycles;
        self.icnt_req_deferred += other.icnt_req_deferred;
        self.icnt_reply_deferred += other.icnt_reply_deferred;
        self.warp_finish_spread = self.warp_finish_spread.max(other.warp_finish_spread);
        self.ensure_mcs(other.mcs.len());
        for (mine, theirs) in self.mcs.iter_mut().zip(&other.mcs) {
            mine.merge(theirs);
        }
    }
}

/// Telemetry sink for one simulated kernel launch.
///
/// Pass [`SimTelemetry::off`] for the no-op sink (the default used by
/// [`crate::GpuSimulator::run`]) or [`SimTelemetry::new`] to record.
#[derive(Debug, Clone)]
pub struct SimTelemetry {
    enabled: bool,
    /// Ring of the most recent structured events (cycle-stamped).
    pub events: EventRing,
    /// Leakage-channel counters and histograms.
    pub profile: SimProfile,
    /// Per-load scratch for subwarp access counting (reused; no steady
    /// state allocation).
    subwarp_scratch: Vec<u64>,
}

impl SimTelemetry {
    /// The no-op sink: records nothing, allocates nothing.
    pub fn off() -> Self {
        SimTelemetry {
            enabled: false,
            events: EventRing::with_capacity(0),
            profile: SimProfile::default(),
            subwarp_scratch: Vec::new(),
        }
    }

    /// An enabled sink with the default event-ring capacity.
    pub fn new() -> Self {
        Self::with_event_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// An enabled sink retaining up to `capacity` events.
    pub fn with_event_capacity(capacity: usize) -> Self {
        SimTelemetry {
            enabled: true,
            events: EventRing::with_capacity(capacity),
            profile: SimProfile::default(),
            subwarp_scratch: Vec::new(),
        }
    }

    /// Sets the minimum severity retained in the event ring.
    pub fn with_min_severity(mut self, min: Severity) -> Self {
        self.events =
            std::mem::replace(&mut self.events, EventRing::with_capacity(0)).with_min_severity(min);
        self
    }

    /// Whether this sink records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a structured event (no-op when disabled).
    #[inline]
    pub(crate) fn event(
        &mut self,
        cycle: u64,
        severity: Severity,
        component: &'static str,
        code: &'static str,
        a: u64,
        b: u64,
    ) {
        if self.enabled {
            self.events.record(Event {
                cycle,
                severity,
                component,
                code,
                a,
                b,
            });
        }
    }

    /// Profiles one coalesced load: accesses per load, per subwarp
    /// (zero-access subwarps included), and lanes per access.
    ///
    /// Caller guards on [`SimTelemetry::is_enabled`].
    pub(crate) fn record_load(&mut self, cycle: u64, num_subwarps: usize, result: &CoalesceResult) {
        self.profile
            .accesses_per_load
            .record(result.num_accesses() as u64);
        self.subwarp_scratch.clear();
        self.subwarp_scratch.resize(num_subwarps, 0);
        for access in result.accesses() {
            self.profile
                .lanes_per_access
                .record(u64::from(access.num_lanes()));
            if let Some(slot) = self.subwarp_scratch.get_mut(usize::from(access.sid)) {
                *slot += 1;
            }
        }
        for i in 0..self.subwarp_scratch.len() {
            let n = self.subwarp_scratch[i];
            self.profile.accesses_per_subwarp.record(n);
        }
        self.event(
            cycle,
            Severity::Debug,
            "coalescer",
            "load",
            num_subwarps as u64,
            result.num_accesses() as u64,
        );
    }
}

impl Default for SimTelemetry {
    /// The default sink is **off** — instrumentation is opt-in.
    fn default() -> Self {
        Self::off()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_sink_is_disabled_and_empty() {
        let mut tel = SimTelemetry::off();
        assert!(!tel.is_enabled());
        tel.event(1, Severity::Error, "sim", "stalled", 0, 0);
        assert!(tel.events.is_empty());
        assert_eq!(tel.events.capacity(), 0);
    }

    #[test]
    fn default_is_off() {
        assert!(!SimTelemetry::default().is_enabled());
    }

    #[test]
    fn enabled_sink_records_events() {
        let mut tel = SimTelemetry::new();
        assert!(tel.is_enabled());
        tel.event(7, Severity::Info, "sim", "launch", 4, 32);
        assert_eq!(tel.events.len(), 1);
    }

    #[test]
    fn min_severity_survives_the_builder() {
        let mut tel = SimTelemetry::new().with_min_severity(Severity::Warn);
        tel.event(1, Severity::Debug, "sm", "round_mark", 0, 0);
        tel.event(2, Severity::Error, "fault", "reply_lost", 0, 0);
        assert_eq!(tel.events.len(), 1);
    }

    #[test]
    fn profile_merge_accumulates_and_sizes_mcs() {
        let mut a = SimProfile::default();
        a.accesses_per_load.record(4);
        a.issue_stall_cycles = 10;
        a.warp_finish_spread = 5;

        let mut b = SimProfile::default();
        b.accesses_per_load.record(8);
        b.issue_stall_cycles = 3;
        b.warp_finish_spread = 9;
        b.ensure_mcs(2);
        b.mcs[1].row_hits = 7;
        b.mcs[1].serviced = 10;

        a.merge(&b);
        assert_eq!(a.accesses_per_load.count(), 2);
        assert_eq!(a.issue_stall_cycles, 13);
        assert_eq!(a.warp_finish_spread, 9, "spread merges as max");
        assert_eq!(a.mcs.len(), 2);
        assert_eq!(a.mcs[1].row_hits, 7);
        assert!((a.mcs[1].row_hit_rate() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn record_load_counts_zero_access_subwarps() {
        use rcoal_core::{Coalescer, SubwarpAssignment};
        let coalescer = Coalescer::with_block_size(32).unwrap();
        let assignment = SubwarpAssignment::in_order(&[2, 2]).unwrap();
        // Subwarp 0 loads one block; subwarp 1 is fully inactive.
        let addrs = vec![Some(0), Some(8), None, None];
        let result = coalescer.coalesce(&assignment, &addrs);
        let mut tel = SimTelemetry::new();
        tel.record_load(5, assignment.num_subwarps(), &result);
        assert_eq!(tel.profile.accesses_per_load.count(), 1);
        assert_eq!(tel.profile.accesses_per_subwarp.count(), 2);
        // One subwarp issued 1 access (bucket 1), one issued 0 (bucket 0).
        assert_eq!(tel.profile.accesses_per_subwarp.bucket(0), 1);
        assert_eq!(tel.profile.accesses_per_subwarp.bucket(1), 1);
        assert_eq!(tel.profile.lanes_per_access.count(), 1);
        assert_eq!(tel.events.len(), 1);
    }
}
