//! # rcoal-parallel — deterministic parallel execution
//!
//! Pure-`std` data parallelism for the workspace's embarrassingly
//! parallel sweeps (per-plaintext kernel launches, per-policy figure
//! rows, per-guess correlation scans). The design contract is
//! *determinism*: [`parallel_map`] returns exactly the vector the
//! sequential loop would return, for any thread count, because
//!
//! * work items are distributed by an atomic index (no per-thread
//!   pre-partitioning, so there is no load-balance-dependent split), and
//! * results are collected **by item index**, never by completion order.
//!
//! Every item must therefore derive its own randomness from its index
//! (the workspace's seed-per-launch convention), never from shared
//! mutable state; under that convention the output is bit-identical at
//! `threads = 1` and `threads = N`.
//!
//! `threads <= 1` takes a true sequential path on the calling thread —
//! no worker is spawned, and fallible maps short-circuit exactly like a
//! plain `for` loop.
//!
//! ```
//! use rcoal_parallel::{parallel_map, resolve_threads};
//!
//! let squares = parallel_map(resolve_threads(None), &[1u64, 2, 3, 4], |_i, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::thread;

/// Environment variable overriding the worker-thread count for every
/// parallel sweep in the workspace (`0` and unparseable values are
/// ignored; explicit API arguments win over the environment).
pub const THREADS_ENV: &str = "RCOAL_THREADS";

/// Resolves the worker-thread count for a parallel sweep.
///
/// Precedence: an explicit `requested` count (already validated by the
/// caller), else a positive [`THREADS_ENV`] value, else
/// [`std::thread::available_parallelism`], else 1.
pub fn resolve_threads(requested: Option<usize>) -> usize {
    if let Some(n) = requested {
        return n.max(1);
    }
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items` on up to `threads` worker threads, returning
/// the results in item order. `f(i, &items[i])` must depend only on its
/// arguments (derive per-item randomness from `i`); the output is then
/// identical for every thread count.
///
/// With `threads <= 1` (or fewer than two items) no thread is spawned
/// and the map runs sequentially on the calling thread.
pub fn parallel_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if threads <= 1 || items.len() < 2 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let indexed = run_workers(threads, items, |i, x| Ok::<R, Never>(f(i, x)), None);
    let mut out = Vec::with_capacity(items.len());
    for (_, r) in indexed {
        match r {
            Ok(v) => out.push(v),
            Err(never) => match never {},
        }
    }
    out
}

/// Fallible [`parallel_map`]: maps `f` over `items` and collects
/// `Ok` results in item order, or returns the error of the
/// *lowest-indexed* failing item — the same error the sequential
/// short-circuiting loop would return, keeping failure behavior
/// deterministic across thread counts.
///
/// After the first observed error, workers stop claiming new items
/// (items already claimed still finish); every item below the failing
/// index is guaranteed to have completed, so the reported error index
/// cannot drift with scheduling.
///
/// # Errors
///
/// The error produced by the lowest-indexed item on which `f` failed.
pub fn try_parallel_map<T, R, E, F>(threads: usize, items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    if threads <= 1 || items.len() < 2 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let abort = AtomicBool::new(false);
    let indexed = run_workers(threads, items, &f, Some(&abort));
    let mut out = Vec::with_capacity(items.len());
    for (_, r) in indexed {
        out.push(r?);
    }
    Ok(out)
}

/// An uninhabited error type for the infallible path (a local stand-in
/// for the unstable `!`).
enum Never {}

/// Shared worker loop: claims indices from an atomic counter, applies
/// `f`, and returns all results sorted by item index. When `abort` is
/// provided, an `Err` result raises the flag and stops further claims.
///
/// The atomic counter hands indices out in increasing order, so by the
/// time index `k` fails, every index below `k` has already been claimed
/// and will run to completion — which is what makes "first error by
/// index" well defined under any interleaving.
fn run_workers<T, R, E, F>(
    threads: usize,
    items: &[T],
    f: F,
    abort: Option<&AtomicBool>,
) -> Vec<(usize, Result<R, E>)>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    let n = items.len();
    let next = AtomicUsize::new(0);
    let workers = threads.min(n);
    let f = &f;
    let next = &next;
    let mut indexed: Vec<(usize, Result<R, E>)> = thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut local: Vec<(usize, Result<R, E>)> = Vec::new();
                    loop {
                        if abort.is_some_and(|a| a.load(Ordering::Relaxed)) {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let r = f(i, &items[i]);
                        if r.is_err() {
                            if let Some(a) = abort {
                                a.store(true, Ordering::Relaxed);
                            }
                        }
                        local.push((i, r));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(local) => local,
                // A panicking closure propagates to the caller, as it
                // would in the sequential loop.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn matches_sequential_output_for_any_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let seq = parallel_map(1, &items, |i, &x| x * 3 + i as u64);
        for threads in [2, 3, 8, 64] {
            let par = parallel_map(threads, &items, |i, &x| x * 3 + i as u64);
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(8, &empty, |_, &x| x).is_empty());
        assert_eq!(parallel_map(8, &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = parallel_map(100, &[1u32, 2, 3], |_, &x| x);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn try_map_collects_in_order() {
        let items: Vec<u32> = (0..100).collect();
        let out: Result<Vec<u32>, String> = try_parallel_map(4, &items, |_, &x| Ok(x * 2));
        assert_eq!(out.unwrap(), items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn try_map_returns_the_lowest_indexed_error() {
        let items: Vec<u32> = (0..64).collect();
        for threads in [1, 4, 16] {
            let err = try_parallel_map(threads, &items, |i, _| {
                if i >= 13 {
                    Err(format!("fail at {i}"))
                } else {
                    Ok(i)
                }
            })
            .unwrap_err();
            assert_eq!(err, "fail at 13", "threads = {threads}");
        }
    }

    #[test]
    fn sequential_path_short_circuits() {
        let seen = Mutex::new(Vec::new());
        let items: Vec<u32> = (0..10).collect();
        let err: Result<Vec<u32>, &str> = try_parallel_map(1, &items, |i, &x| {
            seen.lock().unwrap().push(i);
            if i == 3 {
                Err("boom")
            } else {
                Ok(x)
            }
        });
        assert_eq!(err.unwrap_err(), "boom");
        assert_eq!(*seen.lock().unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn parallel_errors_stop_new_claims() {
        // With an early error, far fewer than all items should run
        // (best effort — only check that the result is still correct).
        let items: Vec<u32> = (0..10_000).collect();
        let err = try_parallel_map(8, &items, |i, _| {
            if i == 0 {
                Err("first")
            } else {
                Ok(i)
            }
        })
        .unwrap_err();
        assert_eq!(err, "first");
    }

    #[test]
    fn resolve_threads_precedence() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(0)), 1, "explicit zero clamps to one");
        assert!(resolve_threads(None) >= 1);
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..32).collect();
        let result = std::panic::catch_unwind(|| {
            parallel_map(4, &items, |i, &x| {
                assert!(i != 5, "deliberate panic");
                x
            })
        });
        assert!(result.is_err());
    }
}
