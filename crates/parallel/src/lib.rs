//! # rcoal-parallel — deterministic parallel execution
//!
//! Pure-`std` data parallelism for the workspace's embarrassingly
//! parallel sweeps (per-plaintext kernel launches, per-policy figure
//! rows, per-guess correlation scans). The design contract is
//! *determinism*: [`parallel_map`] returns exactly the vector the
//! sequential loop would return, for any thread count, because
//!
//! * work items are distributed by an atomic index (no per-thread
//!   pre-partitioning, so there is no load-balance-dependent split), and
//! * results are collected **by item index**, never by completion order.
//!
//! Every item must therefore derive its own randomness from its index
//! (the workspace's seed-per-launch convention), never from shared
//! mutable state; under that convention the output is bit-identical at
//! `threads = 1` and `threads = N`.
//!
//! `threads <= 1` takes a true sequential path on the calling thread —
//! no worker is spawned, and fallible maps short-circuit exactly like a
//! plain `for` loop.
//!
//! ```
//! use rcoal_parallel::{parallel_map, resolve_threads};
//!
//! let squares = parallel_map(resolve_threads(None), &[1u64, 2, 3, 4], |_i, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod supervise;

pub use supervise::{supervised_map, FailureKind, OutcomeCounts, SupervisorPolicy, TaskFailure};

use rcoal_telemetry::MetricsRegistry;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::thread;
use std::time::{Duration, Instant};

/// Environment variable overriding the worker-thread count for every
/// parallel sweep in the workspace (`0` and unparseable values are
/// ignored; explicit API arguments win over the environment).
pub const THREADS_ENV: &str = "RCOAL_THREADS";

/// Resolves the worker-thread count for a parallel sweep.
///
/// Precedence: an explicit `requested` count (already validated by the
/// caller), else a positive [`THREADS_ENV`] value, else
/// [`std::thread::available_parallelism`], else 1.
pub fn resolve_threads(requested: Option<usize>) -> usize {
    if let Some(n) = requested {
        return n.max(1);
    }
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items` on up to `threads` worker threads, returning
/// the results in item order. `f(i, &items[i])` must depend only on its
/// arguments (derive per-item randomness from `i`); the output is then
/// identical for every thread count.
///
/// With `threads <= 1` (or fewer than two items) no thread is spawned
/// and the map runs sequentially on the calling thread.
pub fn parallel_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if threads <= 1 || items.len() < 2 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let (indexed, _) = run_workers(threads, items, |i, x| Ok::<R, Never>(f(i, x)), None, false);
    let mut out = Vec::with_capacity(items.len());
    for (_, r) in indexed {
        match r {
            Ok(v) => out.push(v),
            Err(never) => match never {},
        }
    }
    out
}

/// [`parallel_map`] plus a host-domain [`PoolReport`] describing how the
/// work spread over the pool.
///
/// The mapped output is still deterministic; the report is **not** (it
/// reflects this run's scheduling) and must never feed back into
/// results — record it into a metrics registry and nothing else.
pub fn parallel_map_metered<T, R, F>(threads: usize, items: &[T], f: F) -> (Vec<R>, PoolReport)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let start = Instant::now();
    if threads <= 1 || items.len() < 2 {
        let out: Vec<R> = items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
        return (out, PoolReport::sequential(items.len(), start.elapsed()));
    }
    let (indexed, stats) = run_workers(threads, items, |i, x| Ok::<R, Never>(f(i, x)), None, true);
    let mut out = Vec::with_capacity(items.len());
    for (_, r) in indexed {
        match r {
            Ok(v) => out.push(v),
            Err(never) => match never {},
        }
    }
    (
        out,
        PoolReport::from_workers(stats, items.len(), start.elapsed()),
    )
}

/// Fallible [`parallel_map`]: maps `f` over `items` and collects
/// `Ok` results in item order, or returns the error of the
/// *lowest-indexed* failing item — the same error the sequential
/// short-circuiting loop would return, keeping failure behavior
/// deterministic across thread counts.
///
/// After the first observed error, workers stop claiming new items
/// (items already claimed still finish); every item below the failing
/// index is guaranteed to have completed, so the reported error index
/// cannot drift with scheduling.
///
/// # Errors
///
/// The error produced by the lowest-indexed item on which `f` failed.
pub fn try_parallel_map<T, R, E, F>(threads: usize, items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    if threads <= 1 || items.len() < 2 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let abort = AtomicBool::new(false);
    let (indexed, _) = run_workers(threads, items, &f, Some(&abort), false);
    let mut out = Vec::with_capacity(items.len());
    for (_, r) in indexed {
        out.push(r?);
    }
    Ok(out)
}

/// [`try_parallel_map`] plus a host-domain [`PoolReport`]. The report is
/// returned even when the map fails (covering the items that did run).
pub fn try_parallel_map_metered<T, R, E, F>(
    threads: usize,
    items: &[T],
    f: F,
) -> (Result<Vec<R>, E>, PoolReport)
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    let start = Instant::now();
    if threads <= 1 || items.len() < 2 {
        let out: Result<Vec<R>, E> = items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
        return (out, PoolReport::sequential(items.len(), start.elapsed()));
    }
    let abort = AtomicBool::new(false);
    let (indexed, stats) = run_workers(threads, items, &f, Some(&abort), true);
    let report = PoolReport::from_workers(stats, items.len(), start.elapsed());
    let mut out = Vec::with_capacity(items.len());
    for (_, r) in indexed {
        match r {
            Ok(v) => out.push(v),
            Err(e) => return (Err(e), report),
        }
    }
    (Ok(out), report)
}

/// Host-domain utilization report of one parallel sweep.
///
/// Everything here is wall-clock and scheduling-dependent: two runs with
/// identical inputs produce identical *results* but different reports.
/// Record reports into a [`MetricsRegistry`]; never compare them across
/// runs or let them influence computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolReport {
    /// Workers that actually ran (1 for the sequential path).
    pub workers: usize,
    /// Items mapped.
    pub items: usize,
    /// Items completed by each worker.
    pub per_worker_items: Vec<u64>,
    /// Time each worker spent inside the mapped closure.
    pub per_worker_busy: Vec<Duration>,
    /// Wall-clock duration of the whole sweep.
    pub wall: Duration,
    /// Typed task-outcome tally. The unsupervised maps report all-ok
    /// (they abort on the first failure instead of classifying it);
    /// [`supervised_map`] fills in retries, quarantines, and timeouts.
    pub outcomes: OutcomeCounts,
}

impl PoolReport {
    pub(crate) fn sequential(items: usize, wall: Duration) -> Self {
        PoolReport {
            workers: 1,
            items,
            per_worker_items: vec![items as u64],
            per_worker_busy: vec![wall],
            wall,
            outcomes: OutcomeCounts::all_ok(items),
        }
    }

    pub(crate) fn from_workers(stats: Vec<(u64, Duration)>, items: usize, wall: Duration) -> Self {
        PoolReport {
            workers: stats.len(),
            items,
            per_worker_items: stats.iter().map(|&(n, _)| n).collect(),
            per_worker_busy: stats.into_iter().map(|(_, d)| d).collect(),
            wall,
            outcomes: OutcomeCounts::all_ok(items),
        }
    }

    /// Fraction of the pool's total capacity (`workers × wall`) spent
    /// inside the mapped closure — 1.0 is a perfectly packed pool.
    pub fn utilization(&self) -> f64 {
        let capacity = self.wall.as_secs_f64() * self.workers as f64;
        if capacity <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self.per_worker_busy.iter().map(Duration::as_secs_f64).sum();
        (busy / capacity).min(1.0)
    }

    /// Items mapped per wall-clock second.
    pub fn items_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.items as f64 / secs
        }
    }

    /// Records the report into `registry` under `pool.<name>.*`:
    /// total items and wall micros as counters, worker count and
    /// per-mille utilization as gauges, and per-worker item counts as a
    /// histogram (so imbalance is visible without one metric per worker).
    pub fn record_into(&self, registry: &MetricsRegistry, name: &str) {
        registry
            .counter(&format!("pool.{name}.items"))
            .add(self.items as u64);
        registry
            .counter(&format!("pool.{name}.wall_micros"))
            .add(self.wall.as_micros().min(u128::from(u64::MAX)) as u64);
        registry.counter(&format!("pool.{name}.sweeps")).inc();
        registry
            .gauge(&format!("pool.{name}.workers"))
            .raise_to(self.workers as u64);
        registry
            .gauge(&format!("pool.{name}.utilization_permille"))
            .set((self.utilization() * 1000.0) as u64);
        let worker_items = registry.histogram(&format!("pool.{name}.worker_items"));
        for &n in &self.per_worker_items {
            worker_items.record(n);
        }
        let worker_busy = registry.histogram(&format!("pool.{name}.worker_busy_micros"));
        for d in &self.per_worker_busy {
            worker_busy.record(d.as_micros().min(u128::from(u64::MAX)) as u64);
        }
        // Supervision counters stay at zero for unsupervised sweeps, so
        // dashboards can alert on any nonzero value.
        registry
            .counter(&format!("pool.{name}.retries"))
            .add(self.outcomes.retries);
        registry
            .counter(&format!("pool.{name}.quarantined"))
            .add(self.outcomes.quarantined);
        registry
            .counter(&format!("pool.{name}.timed_out"))
            .add(self.outcomes.timed_out);
    }
}

/// An uninhabited error type for the infallible path (a local stand-in
/// for the unstable `!`).
enum Never {}

/// Shared worker loop: claims indices from an atomic counter, applies
/// `f`, and returns all results sorted by item index. When `abort` is
/// provided, an `Err` result raises the flag and stops further claims.
/// With `metered` set, each worker also reports `(items, busy)` —
/// unmetered sweeps skip every `Instant::now()` call.
///
/// The atomic counter hands indices out in increasing order, so by the
/// time index `k` fails, every index below `k` has already been claimed
/// and will run to completion — which is what makes "first error by
/// index" well defined under any interleaving.
#[allow(clippy::type_complexity)]
fn run_workers<T, R, E, F>(
    threads: usize,
    items: &[T],
    f: F,
    abort: Option<&AtomicBool>,
    metered: bool,
) -> (Vec<(usize, Result<R, E>)>, Vec<(u64, Duration)>)
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    let n = items.len();
    let next = AtomicUsize::new(0);
    let workers = threads.min(n);
    let f = &f;
    let next = &next;
    let (mut indexed, stats): (Vec<(usize, Result<R, E>)>, Vec<(u64, Duration)>) =
        thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(move || {
                        let mut local: Vec<(usize, Result<R, E>)> = Vec::new();
                        let mut busy = Duration::ZERO;
                        loop {
                            if abort.is_some_and(|a| a.load(Ordering::Relaxed)) {
                                break;
                            }
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            let t0 = metered.then(Instant::now);
                            let r = f(i, &items[i]);
                            if let Some(t0) = t0 {
                                busy += t0.elapsed();
                            }
                            if r.is_err() {
                                if let Some(a) = abort {
                                    a.store(true, Ordering::Relaxed);
                                }
                            }
                            local.push((i, r));
                        }
                        (local, busy)
                    })
                })
                .collect();
            let mut indexed = Vec::with_capacity(n);
            let mut stats = Vec::with_capacity(workers);
            for h in handles {
                match h.join() {
                    Ok((local, busy)) => {
                        stats.push((local.len() as u64, busy));
                        indexed.extend(local);
                    }
                    // A panicking closure propagates to the caller, as it
                    // would in the sequential loop.
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            (indexed, stats)
        });
    indexed.sort_unstable_by_key(|&(i, _)| i);
    (indexed, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn matches_sequential_output_for_any_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let seq = parallel_map(1, &items, |i, &x| x * 3 + i as u64);
        for threads in [2, 3, 8, 64] {
            let par = parallel_map(threads, &items, |i, &x| x * 3 + i as u64);
            assert_eq!(par, seq, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(8, &empty, |_, &x| x).is_empty());
        assert_eq!(parallel_map(8, &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = parallel_map(100, &[1u32, 2, 3], |_, &x| x);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn try_map_collects_in_order() {
        let items: Vec<u32> = (0..100).collect();
        let out: Result<Vec<u32>, String> = try_parallel_map(4, &items, |_, &x| Ok(x * 2));
        assert_eq!(
            out.unwrap(),
            items.iter().map(|x| x * 2).collect::<Vec<_>>()
        );
    }

    #[test]
    fn try_map_returns_the_lowest_indexed_error() {
        let items: Vec<u32> = (0..64).collect();
        for threads in [1, 4, 16] {
            let err = try_parallel_map(threads, &items, |i, _| {
                if i >= 13 {
                    Err(format!("fail at {i}"))
                } else {
                    Ok(i)
                }
            })
            .unwrap_err();
            assert_eq!(err, "fail at 13", "threads = {threads}");
        }
    }

    #[test]
    fn sequential_path_short_circuits() {
        let seen = Mutex::new(Vec::new());
        let items: Vec<u32> = (0..10).collect();
        let err: Result<Vec<u32>, &str> = try_parallel_map(1, &items, |i, &x| {
            seen.lock().unwrap().push(i);
            if i == 3 {
                Err("boom")
            } else {
                Ok(x)
            }
        });
        assert_eq!(err.unwrap_err(), "boom");
        assert_eq!(*seen.lock().unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn parallel_errors_stop_new_claims() {
        // With an early error, far fewer than all items should run
        // (best effort — only check that the result is still correct).
        let items: Vec<u32> = (0..10_000).collect();
        let err = try_parallel_map(8, &items, |i, _| if i == 0 { Err("first") } else { Ok(i) })
            .unwrap_err();
        assert_eq!(err, "first");
    }

    #[test]
    fn resolve_threads_precedence() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(0)), 1, "explicit zero clamps to one");
        assert!(resolve_threads(None) >= 1);
    }

    #[test]
    fn metered_map_matches_unmetered_output() {
        let items: Vec<u64> = (0..123).collect();
        let plain = parallel_map(4, &items, |i, &x| x * 7 + i as u64);
        let (metered, report) = parallel_map_metered(4, &items, |i, &x| x * 7 + i as u64);
        assert_eq!(metered, plain, "metering must not change results");
        assert_eq!(report.items, 123);
        assert!(report.workers >= 1 && report.workers <= 4);
        assert_eq!(
            report.per_worker_items.iter().sum::<u64>(),
            123,
            "every item is attributed to exactly one worker"
        );
        assert_eq!(report.per_worker_items.len(), report.workers);
        assert_eq!(report.per_worker_busy.len(), report.workers);
    }

    #[test]
    fn metered_sequential_path_reports_one_worker() {
        let (out, report) = parallel_map_metered(1, &[1u32, 2, 3], |_, &x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
        assert_eq!(report.workers, 1);
        assert_eq!(report.per_worker_items, vec![3]);
        assert!(report.utilization() <= 1.0);
    }

    #[test]
    fn try_metered_reports_even_on_failure() {
        let items: Vec<u32> = (0..64).collect();
        let (out, report) =
            try_parallel_map_metered(4, &items, |i, &x| if i == 20 { Err("boom") } else { Ok(x) });
        assert_eq!(out.unwrap_err(), "boom");
        assert!(report.items == 64 && report.workers >= 1);
    }

    #[test]
    fn pool_report_records_into_registry() {
        let report = PoolReport {
            workers: 2,
            items: 10,
            per_worker_items: vec![6, 4],
            per_worker_busy: vec![Duration::from_micros(500), Duration::from_micros(300)],
            wall: Duration::from_micros(600),
            outcomes: OutcomeCounts::all_ok(10),
        };
        // busy 800µs over capacity 1200µs ⇒ 2/3 utilization.
        assert!((report.utilization() - 2.0 / 3.0).abs() < 1e-9);
        let reg = MetricsRegistry::new();
        report.record_into(&reg, "sweep");
        let snap = reg.snapshot();
        assert_eq!(snap.counters["pool.sweep.items"], 10);
        assert_eq!(snap.counters["pool.sweep.sweeps"], 1);
        assert_eq!(snap.gauges["pool.sweep.workers"], 2);
        assert_eq!(snap.gauges["pool.sweep.utilization_permille"], 666);
        assert_eq!(snap.hists["pool.sweep.worker_items"].count, 2);
        assert_eq!(snap.hists["pool.sweep.worker_items"].sum, 10);
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..32).collect();
        let result = std::panic::catch_unwind(|| {
            parallel_map(4, &items, |i, &x| {
                assert!(i != 5, "deliberate panic");
                x
            })
        });
        assert!(result.is_err());
    }

    // ---- supervised mode --------------------------------------------

    /// Supervised maps quarantine a panicking task instead of killing
    /// the pool: every other task keeps its result, ordering is by item
    /// index, and no task is lost.
    #[test]
    fn supervised_panic_is_quarantined_not_fatal() {
        let items: Vec<u32> = (0..32).collect();
        let policy = SupervisorPolicy::default()
            .with_max_retries(1)
            .with_backoff(Duration::ZERO);
        for threads in [1, 4] {
            let (out, report) = supervised_map(threads, &policy, &items, |i, &x| {
                assert!(i != 5, "deliberate panic at 5");
                Ok::<u32, String>(x * 2)
            });
            assert_eq!(out.len(), 32, "no lost tasks (threads = {threads})");
            for (i, r) in out.iter().enumerate() {
                if i == 5 {
                    let failure = r.as_ref().unwrap_err();
                    assert_eq!(failure.index, 5);
                    assert_eq!(failure.attempts, 2, "retry budget was spent");
                    assert!(
                        matches!(&failure.kind, FailureKind::Panicked(m) if m.contains("deliberate")),
                        "{failure:?}"
                    );
                } else {
                    assert_eq!(*r.as_ref().unwrap(), items[i] * 2, "index order preserved");
                }
            }
            assert_eq!(report.outcomes.quarantined, 1);
            assert_eq!(report.outcomes.ok, 31);
            assert_eq!(report.outcomes.retries, 1);
        }
    }

    /// After a panic the pool stays usable: an immediately following
    /// sweep on the same thread count completes cleanly.
    #[test]
    fn supervised_pool_remains_usable_after_panic() {
        let items: Vec<u32> = (0..64).collect();
        let policy = SupervisorPolicy::default()
            .with_max_retries(0)
            .with_backoff(Duration::ZERO);
        let (first, _) = supervised_map(4, &policy, &items, |i, &x| {
            assert!(i % 7 != 3, "poison");
            Ok::<u32, String>(x)
        });
        assert!(first.iter().any(|r| r.is_err()));
        let (second, report) = supervised_map(4, &policy, &items, |_, &x| Ok::<u32, String>(x + 1));
        assert!(second.iter().all(|r| r.is_ok()), "pool is reusable");
        assert_eq!(
            second
                .iter()
                .map(|r| *r.as_ref().unwrap())
                .collect::<Vec<_>>(),
            items.iter().map(|x| x + 1).collect::<Vec<_>>()
        );
        assert_eq!(report.outcomes.ok, 64);
        assert_eq!(report.outcomes.failed(), 0);
    }

    /// Errors are retried with backoff and succeed when the failure was
    /// transient (keyed off an attempt counter, the chaos-test pattern).
    #[test]
    fn supervised_retries_recover_transient_failures() {
        use std::sync::atomic::AtomicU32;
        let attempts: Vec<AtomicU32> = (0..8).map(|_| AtomicU32::new(0)).collect();
        let items: Vec<u32> = (0..8).collect();
        let policy = SupervisorPolicy::default()
            .with_max_retries(2)
            .with_backoff(Duration::ZERO);
        let (out, report) = supervised_map(2, &policy, &items, |i, &x| {
            let n = attempts[i].fetch_add(1, Ordering::Relaxed);
            // Item 3 fails twice then recovers; item 6 always fails.
            if (i == 3 && n < 2) || i == 6 {
                Err(format!("transient {i}"))
            } else {
                Ok(x)
            }
        });
        assert!(out[3].is_ok(), "transient failure recovered");
        let failure = out[6].as_ref().unwrap_err();
        assert_eq!(failure.attempts, 3, "budget exhausted");
        assert!(matches!(&failure.kind, FailureKind::Errored(e) if e.contains("transient 6")));
        assert_eq!(report.outcomes.retried, 1, "item 3");
        assert_eq!(report.outcomes.quarantined, 1, "item 6");
        assert_eq!(report.outcomes.ok, 6);
        assert_eq!(
            report.outcomes.retries,
            2 + 2,
            "two for item 3, two for item 6"
        );
    }

    /// A task overrunning the deadline is classified timed-out and its
    /// (late) result discarded.
    #[test]
    fn supervised_deadline_classifies_slow_tasks() {
        let items: Vec<u32> = (0..4).collect();
        let policy = SupervisorPolicy::default()
            .with_max_retries(0)
            .with_backoff(Duration::ZERO)
            .with_deadline(Duration::from_millis(5));
        let (out, report) = supervised_map(2, &policy, &items, |i, &x| {
            if i == 2 {
                std::thread::sleep(Duration::from_millis(50));
            }
            Ok::<u32, String>(x)
        });
        let failure = out[2].as_ref().unwrap_err();
        assert!(
            matches!(failure.kind, FailureKind::TimedOut(d) if d >= Duration::from_millis(5)),
            "{failure:?}"
        );
        assert_eq!(report.outcomes.timed_out, 1);
        assert_eq!(report.outcomes.ok, 3);
    }

    /// Supervision outcome counters flow into the metrics registry.
    #[test]
    fn supervised_outcomes_record_into_registry() {
        let items: Vec<u32> = (0..8).collect();
        let policy = SupervisorPolicy::default()
            .with_max_retries(1)
            .with_backoff(Duration::ZERO);
        let (_, report) = supervised_map(2, &policy, &items, |i, &x| {
            if i == 1 {
                Err("always".to_string())
            } else {
                Ok(x)
            }
        });
        let reg = MetricsRegistry::new();
        report.record_into(&reg, "supervised");
        let snap = reg.snapshot();
        assert_eq!(snap.counters["pool.supervised.quarantined"], 1);
        assert_eq!(snap.counters["pool.supervised.retries"], 1);
        assert_eq!(snap.counters["pool.supervised.timed_out"], 0);
    }

    /// Exponential backoff grows and saturates.
    #[test]
    fn backoff_schedule_is_exponential_and_capped() {
        let p = SupervisorPolicy::default().with_backoff(Duration::from_millis(10));
        assert_eq!(p.backoff_for(1), Duration::from_millis(10));
        assert_eq!(p.backoff_for(2), Duration::from_millis(20));
        assert_eq!(p.backoff_for(3), Duration::from_millis(40));
        assert_eq!(p.backoff_for(1000), SupervisorPolicy::MAX_BACKOFF);
        let zero = p.with_backoff(Duration::ZERO);
        assert_eq!(zero.backoff_for(5), Duration::ZERO);
    }
}
