//! Supervised execution: panic isolation, retry budgets, and deadline
//! accounting on top of the deterministic worker pool.
//!
//! The plain maps in this crate propagate the first failure (an `Err`
//! aborts the sweep; a panic unwinds through the pool). That is the
//! right contract for figure generation — a wrong answer should never
//! be papered over — but the wrong one for long campaign sweeps, where
//! one poisoned scenario must not discard hours of completed work.
//! [`supervised_map`] inverts the contract: **every item always gets a
//! terminal outcome**, and the pool itself never fails.
//!
//! * A panicking task is caught with [`std::panic::catch_unwind`] and
//!   quarantined with its payload; the worker moves on.
//! * A failing task is retried up to [`SupervisorPolicy::max_retries`]
//!   times with exponential backoff, then quarantined with its error.
//! * A task whose attempt overruns [`SupervisorPolicy::deadline`] is
//!   classified as timed out. The watchdog is *detection, not
//!   preemption*: the attempt runs to completion on its worker (the
//!   simulator's own `SimError::Stalled` watchdog bounds task runtime),
//!   but its result is discarded and the overrun is surfaced — so a
//!   wall-clock-dependent result can never silently enter a sweep that
//!   promised determinism. Deadlines are host-domain and therefore
//!   **opt-in**; the default policy has none.
//!
//! Determinism: the mapped closure must be a pure function of
//! `(index, item)`, so a retry re-executes the identical computation —
//! a deterministic failure stays a failure (and is quarantined), while
//! a host-transient one (e.g. an injected fault schedule keyed off the
//! attempt count in chaos tests) can recover.

use crate::PoolReport;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;
use std::time::{Duration, Instant};

/// How a supervised pool treats misbehaving tasks.
///
/// The default policy isolates panics and grants two retries with a
/// 10 ms exponential backoff, and sets **no deadline** — deadlines
/// compare wall-clock time and are therefore host-domain; enable one
/// only where a discarded-late-result is acceptable (campaign sweeps,
/// chaos tests), never where results must be machine-independent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisorPolicy {
    /// Extra attempts granted to a failing task (0 = fail fast).
    pub max_retries: u32,
    /// Base backoff before retry `k` (slept for `backoff << (k - 1)`,
    /// capped at [`SupervisorPolicy::MAX_BACKOFF`]).
    pub backoff: Duration,
    /// Per-attempt wall-clock budget; `None` disables the watchdog.
    pub deadline: Option<Duration>,
    /// Whether task panics are caught and quarantined (`true`) or
    /// propagated like the unsupervised maps (`false`).
    pub catch_panics: bool,
}

impl Default for SupervisorPolicy {
    fn default() -> Self {
        SupervisorPolicy {
            max_retries: 2,
            backoff: Duration::from_millis(10),
            deadline: None,
            catch_panics: true,
        }
    }
}

impl SupervisorPolicy {
    /// Upper bound on a single backoff sleep.
    pub const MAX_BACKOFF: Duration = Duration::from_secs(1);

    /// Sets the retry budget.
    #[must_use]
    pub fn with_max_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Sets the base backoff (`Duration::ZERO` retries immediately).
    #[must_use]
    pub fn with_backoff(mut self, backoff: Duration) -> Self {
        self.backoff = backoff;
        self
    }

    /// Arms the per-attempt deadline watchdog.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Lets task panics unwind through the pool (the unsupervised
    /// behaviour), keeping retries and deadlines active.
    #[must_use]
    pub fn without_panic_isolation(mut self) -> Self {
        self.catch_panics = false;
        self
    }

    /// The sleep granted before retry attempt `attempt + 1` (attempts
    /// are 1-based; exponential in the number of failures so far).
    pub fn backoff_for(&self, attempts_so_far: u32) -> Duration {
        if self.backoff.is_zero() {
            return Duration::ZERO;
        }
        let shift = attempts_so_far.saturating_sub(1).min(16);
        self.backoff
            .saturating_mul(1u32 << shift)
            .min(Self::MAX_BACKOFF)
    }
}

/// Why a task was denied a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind<E> {
    /// The final attempt panicked; the payload is rendered to a string.
    Panicked(String),
    /// The final attempt returned this error.
    Errored(E),
    /// The final attempt completed only after the policy deadline; its
    /// result was discarded. Carries the elapsed wall-clock time.
    TimedOut(Duration),
}

/// Terminal failure record of one quarantined task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskFailure<E> {
    /// Index of the item in the input slice.
    pub index: usize,
    /// Attempts performed (1 = no retry was granted or needed).
    pub attempts: u32,
    /// The failure of the final attempt.
    pub kind: FailureKind<E>,
}

impl<E: std::fmt::Display> std::fmt::Display for TaskFailure<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            FailureKind::Panicked(msg) => {
                write!(
                    f,
                    "task {} panicked after {} attempt(s): {msg}",
                    self.index, self.attempts
                )
            }
            FailureKind::Errored(e) => write!(
                f,
                "task {} failed after {} attempt(s): {e}",
                self.index, self.attempts
            ),
            FailureKind::TimedOut(d) => write!(
                f,
                "task {} overran its deadline ({} ms elapsed, {} attempt(s))",
                self.index,
                d.as_millis(),
                self.attempts
            ),
        }
    }
}

/// Typed per-sweep outcome tally (ok / retried / quarantined /
/// timed-out), carried by [`PoolReport`].
///
/// `ok` counts tasks that succeeded on their first attempt; `retried`
/// counts tasks that succeeded only after at least one retry (the two
/// are disjoint; `ok + retried` is the number of tasks with results).
/// `retries` is the total number of extra attempts granted across all
/// tasks, successful or not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OutcomeCounts {
    /// Tasks that succeeded first try.
    pub ok: u64,
    /// Tasks that succeeded after retrying.
    pub retried: u64,
    /// Tasks quarantined with a panic or error.
    pub quarantined: u64,
    /// Tasks quarantined for overrunning the deadline.
    pub timed_out: u64,
    /// Extra attempts performed beyond each task's first.
    pub retries: u64,
}

impl OutcomeCounts {
    /// The tally of an unsupervised sweep: every task ok, nothing else.
    pub fn all_ok(items: usize) -> Self {
        OutcomeCounts {
            ok: items as u64,
            ..Self::default()
        }
    }

    /// Tasks that ended without a result (quarantined or timed out).
    pub fn failed(&self) -> u64 {
        self.quarantined + self.timed_out
    }

    fn absorb(&mut self, other: OutcomeCounts) {
        self.ok += other.ok;
        self.retried += other.retried;
        self.quarantined += other.quarantined;
        self.timed_out += other.timed_out;
        self.retries += other.retries;
    }
}

/// Maps `f` over `items` under supervision: results come back in item
/// order, one `Result<R, TaskFailure<E>>` per item, and the pool itself
/// never panics or aborts — a poisoned item is quarantined, the rest of
/// the sweep completes. See the module docs for the exact semantics.
///
/// The report's [`PoolReport::outcomes`] carries the typed tally;
/// everything else in the report keeps the host-domain caveats of the
/// unsupervised maps.
pub fn supervised_map<T, R, E, F>(
    threads: usize,
    policy: &SupervisorPolicy,
    items: &[T],
    f: F,
) -> (Vec<Result<R, TaskFailure<E>>>, PoolReport)
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    let start = Instant::now();
    if threads <= 1 || items.len() < 2 {
        let mut outcomes = OutcomeCounts::default();
        let out: Vec<Result<R, TaskFailure<E>>> = items
            .iter()
            .enumerate()
            .map(|(i, x)| run_task(policy, i, x, &f, &mut outcomes))
            .collect();
        let mut report = PoolReport::sequential(items.len(), start.elapsed());
        report.outcomes = outcomes;
        return (out, report);
    }

    let n = items.len();
    let next = AtomicUsize::new(0);
    let workers = threads.min(n);
    let f = &f;
    let next = &next;
    let (mut indexed, stats, outcomes) = thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut local: Vec<(usize, Result<R, TaskFailure<E>>)> = Vec::new();
                    let mut busy = Duration::ZERO;
                    let mut outcomes = OutcomeCounts::default();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let t0 = Instant::now();
                        let r = run_task(policy, i, &items[i], f, &mut outcomes);
                        busy += t0.elapsed();
                        local.push((i, r));
                    }
                    (local, busy, outcomes)
                })
            })
            .collect();
        let mut indexed = Vec::with_capacity(n);
        let mut stats = Vec::with_capacity(workers);
        let mut outcomes = OutcomeCounts::default();
        for h in handles {
            match h.join() {
                Ok((local, busy, worker_outcomes)) => {
                    stats.push((local.len() as u64, busy));
                    outcomes.absorb(worker_outcomes);
                    indexed.extend(local);
                }
                // Unreachable when catch_panics is on; with isolation
                // explicitly disabled, propagate like the plain maps.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        (indexed, stats, outcomes)
    });
    indexed.sort_unstable_by_key(|&(i, _)| i);
    let mut report = PoolReport::from_workers(stats, n, start.elapsed());
    report.outcomes = outcomes;
    (indexed.into_iter().map(|(_, r)| r).collect(), report)
}

/// One task under supervision: the attempt/retry/deadline loop.
fn run_task<T, R, E, F>(
    policy: &SupervisorPolicy,
    index: usize,
    item: &T,
    f: &F,
    outcomes: &mut OutcomeCounts,
) -> Result<R, TaskFailure<E>>
where
    F: Fn(usize, &T) -> Result<R, E>,
{
    let max_attempts = policy.max_retries.saturating_add(1);
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        let t0 = Instant::now();
        let attempt: Result<Result<R, E>, String> = if policy.catch_panics {
            catch_unwind(AssertUnwindSafe(|| f(index, item))).map_err(|p| panic_message(&*p))
        } else {
            Ok(f(index, item))
        };
        let elapsed = t0.elapsed();
        let overran = policy.deadline.is_some_and(|d| elapsed > d);
        let failure: FailureKind<E> = match attempt {
            Ok(Ok(value)) if !overran => {
                if attempts > 1 {
                    outcomes.retried += 1;
                } else {
                    outcomes.ok += 1;
                }
                return Ok(value);
            }
            // A late success is a watchdog violation: the result is
            // discarded so wall-clock speed can never select results.
            Ok(Ok(_)) => FailureKind::TimedOut(elapsed),
            Ok(Err(_)) if overran => FailureKind::TimedOut(elapsed),
            Ok(Err(e)) => FailureKind::Errored(e),
            Err(_) if overran => FailureKind::TimedOut(elapsed),
            Err(msg) => FailureKind::Panicked(msg),
        };
        if attempts >= max_attempts {
            match failure {
                FailureKind::TimedOut(_) => outcomes.timed_out += 1,
                _ => outcomes.quarantined += 1,
            }
            return Err(TaskFailure {
                index,
                attempts,
                kind: failure,
            });
        }
        outcomes.retries += 1;
        let backoff = policy.backoff_for(attempts);
        if backoff > Duration::ZERO {
            thread::sleep(backoff);
        }
    }
}

/// Renders a panic payload the way the default hook would.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
