//! Self-contained seeded pseudo-randomness for the RCoal workspace.
//!
//! Every randomized draw in the reproduction — subwarp compositions,
//! plaintext batches, synthetic address streams, injected faults — flows
//! through this crate, so a single `(algorithm, seed)` pair pins an
//! entire experiment. The generator is xoshiro256** seeded through
//! splitmix64: tiny, fast, and with no external dependencies, which
//! keeps the workspace building offline.
//!
//! The API mirrors the subset of the `rand` crate the workspace uses
//! (`Rng::gen_range`/`fill`/`gen_bool`, `SeedableRng::seed_from_u64`,
//! `seq::SliceRandom::shuffle`), so call sites read idiomatically:
//!
//! ```
//! use rcoal_rng::{Rng, SeedableRng, StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let lane = rng.gen_range(0usize..32);
//! assert!(lane < 32);
//! let again = StdRng::seed_from_u64(42).gen_range(0usize..32);
//! assert_eq!(lane, again, "same seed, same stream");
//! ```

use std::ops::Range;

/// Minimal source of uniform 64-bit words. Object-safe so generic code
/// can take `R: Rng + ?Sized`.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

impl<T: RngCore + ?Sized> RngCore for &mut T {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from `seed`; equal seeds yield equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience draws on top of [`RngCore`]; blanket-implemented.
pub trait Rng: RngCore {
    /// A uniform draw from the half-open `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }

    /// Fills `dest` with uniformly random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Maps a random word to the unit interval `[0, 1)` with 53-bit
/// precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types drawable uniformly from a `Range` by [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// A uniform draw from `range`. Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

/// Unbiased integer draw in `[0, span)` via rejection sampling.
fn next_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Reject draws from the final partial copy of [0, span) so every
    // residue is equally likely.
    let zone = u64::MAX - (u64::MAX % span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range on empty range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                range.start + next_below(rng, span) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range on empty range");
        let v = range.start + (range.end - range.start) * unit_f64(rng.next_u64());
        // Guard the upper bound against rounding when end - start is
        // large relative to the ulp at `end`.
        if v >= range.end {
            range.start.max(range.end - range.end.abs() * f64::EPSILON)
        } else {
            v
        }
    }
}

/// The workspace's standard generator: xoshiro256** with the state
/// expanded from the seed by splitmix64. Equal seeds give equal streams
/// across platforms and releases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Re-export module mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::StdRng;
}

/// Slice helpers mirroring `rand::seq`.
pub mod seq {
    use crate::{RngCore, SampleUniform};

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_range(rng, 0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::SliceRandom;

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let u = rng.gen_range(0usize..5);
            assert!(u < 5);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "counts = {counts:?}");
        }
    }

    #[test]
    fn unit_interval_never_reaches_one() {
        assert!(unit_f64(u64::MAX) < 1.0);
        assert_eq!(unit_f64(0), 0.0);
    }

    #[test]
    fn strictly_positive_lower_bound_is_respected() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(v > 0.0 && v < 1.0);
        }
    }

    #[test]
    fn fill_covers_odd_lengths_and_varies() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut a = [0u8; 13];
        rng.fill(&mut a);
        let mut b = [0u8; 13];
        rng.fill(&mut b);
        assert_ne!(a, b);
        // Over many fills every byte position takes many values.
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            let mut buf = [0u8; 1];
            rng.fill(&mut buf);
            seen.insert(buf[0]);
        }
        assert!(seen.len() > 16);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits = {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.5), "clamped above one always fires");
    }

    #[test]
    fn shuffle_permutes_without_loss() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        // Shuffling actually moves things (astronomically unlikely to
        // be identity).
        assert_ne!(v, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_through_unsized_rng_reference() {
        // The `R: Rng + ?Sized` bound used across the workspace must
        // accept `&mut StdRng` transparently.
        fn draw<R: crate::Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0u64..10)
        }
        let mut rng = StdRng::seed_from_u64(2);
        let v = draw(&mut rng);
        assert!(v < 10);
    }

    #[test]
    fn rejection_sampling_handles_non_power_of_two_spans() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[rng.gen_range(0usize..3)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "counts = {counts:?}");
        }
    }
}
